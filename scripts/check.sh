#!/usr/bin/env bash
# Repo health gate: formatting, lints (deny warnings), full test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace --no-deps (deny rustdoc warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> dse --smoke (design-space exploration fast path)"
ISOS_CACHE_DIR="${TMPDIR:-/tmp}/isos-check-dse-cache" cargo run --release -q -p isos-explore --bin dse -- \
  --smoke --net G58 --out "${TMPDIR:-/tmp}/isos-check-dse" >/dev/null

echo "All checks passed."
