#!/usr/bin/env bash
# Repo health gate: formatting, lints (deny warnings), full test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace --no-deps (deny rustdoc warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo test --workspace -q"
cargo test --workspace -q

# The run-level pool must be metrics-invisible: the whole suite passes
# with any worker count, golden metrics included. One pass at 8 workers
# (clamped to real cores by ISOS_THREADS handling) pins that.
echo "==> cargo test --workspace -q (ISOS_THREADS=8)"
ISOS_THREADS=8 cargo test --workspace -q

echo "==> dse --smoke (design-space exploration fast path)"
ISOS_CACHE_DIR="${TMPDIR:-/tmp}/isos-check-dse-cache" cargo run --release -q -p isos-explore --bin dse -- \
  --smoke --net G58 --out "${TMPDIR:-/tmp}/isos-check-dse" >/dev/null

echo "==> dse --arch configs/arch --smoke (declarative descriptions)"
ISOS_CACHE_DIR="${TMPDIR:-/tmp}/isos-check-dse-cache" cargo run --release -q -p isos-explore --bin dse -- \
  --arch configs/arch --smoke --out "${TMPDIR:-/tmp}/isos-check-dse-arch" >/dev/null

echo "==> trace_run smoke (G58 timeline export)"
TRACE_OUT="${TMPDIR:-/tmp}/isos-check-traces"
cargo run --release -q -p isosceles-bench --bin trace_run -- \
  --net G58 --model isosceles --out "$TRACE_OUT" >/dev/null
TRACE_JSON="$TRACE_OUT/G58-isosceles.trace.json"
[ -s "$TRACE_JSON" ] || { echo "trace smoke: $TRACE_JSON missing or empty" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 - "$TRACE_JSON" <<'PY'
import json, sys
events = json.load(open(sys.argv[1]))["traceEvents"]
assert events, "trace JSON has no events"
assert any(e["ph"] == "X" for e in events), "trace JSON has no slices"
PY
else
  grep -q '"traceEvents"' "$TRACE_JSON" && grep -q '"ph":"X"' "$TRACE_JSON" \
    || { echo "trace smoke: $TRACE_JSON malformed" >&2; exit 1; }
fi

echo "==> perf_report --smoke --baseline BENCH_10.json (schema + regression gate)"
PERF_JSON="${TMPDIR:-/tmp}/isos-check-perf/BENCH_smoke.json"
# Smoke-level perf gate: G58 only, compared against the committed report.
# The committed numbers are min-of-24 from a quiet machine while smoke is
# min-of-10, so the margin is wide (150%) — this catches order-of-magnitude
# kernel regressions, not noise. Full-matrix gating is a manual run:
#   perf_report --threads 8 --baseline BENCH_5.json
cargo run --release -q -p isosceles-bench --bin perf_report -- \
  --smoke --repeat 10 --baseline BENCH_10.json --regress-pct 150 \
  --out "$PERF_JSON"
[ -s "$PERF_JSON" ] || { echo "perf smoke: $PERF_JSON missing or empty" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 - "$PERF_JSON" <<'PY'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["schema"].startswith("isosceles-perf-report/"), r["schema"]
assert r["timings"], "no timings recorded"
models = {"isosceles", "isosceles-single", "sparten", "fused-layer"}
suite = {"R81", "R90", "R95", "R96", "R98", "R99", "V68", "V90", "G58", "M75", "M89"}
for t in r["timings"]:
    assert t["workload"] in suite, f"unknown workload {t['workload']}"
    assert t["model"] in models, f"unknown model {t['model']}"
    assert t["millis"] > 0, f"non-positive timing {t}"
assert r["total_millis"] > 0
PY
else
  grep -q '"schema":"isosceles-perf-report/' "$PERF_JSON" \
    && grep -q '"millis"' "$PERF_JSON" \
    || { echo "perf smoke: $PERF_JSON malformed" >&2; exit 1; }
fi

echo "==> stream_run --smoke (streaming tail-latency schema check)"
STREAM_JSON="${TMPDIR:-/tmp}/isos-check-stream/stream_smoke.json"
ISOS_CACHE_DIR="${TMPDIR:-/tmp}/isos-check-stream-cache" cargo run --release -q -p isosceles-bench --bin stream_run -- \
  --smoke --out "$STREAM_JSON" 2>/dev/null
[ -s "$STREAM_JSON" ] || { echo "stream smoke: $STREAM_JSON missing or empty" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 - "$STREAM_JSON" <<'PY'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["schema"].startswith("isosceles-stream-report/"), r["schema"]
assert r["rows"], "no stream rows"
models = {"isosceles", "isosceles-single", "sparten", "fused-layer"}
for row in r["rows"]:
    assert row["model"] in models, f"unknown model {row['model']}"
    assert row["p50_cycles"] <= row["p95_cycles"] <= row["p99_cycles"], row
    assert row["throughput_imgs_per_sec"] > 0, row
    busy = row["busy_cycles"] + row["idle_cycles"] + row["formation_cycles"]
    assert busy == row["cycles"], f"server-time conservation broken: {row}"
PY
else
  grep -q '"schema":"isosceles-stream-report/' "$STREAM_JSON" \
    && grep -q '"p99_cycles"' "$STREAM_JSON" \
    || { echo "stream smoke: $STREAM_JSON malformed" >&2; exit 1; }
fi

echo "==> serve --smoke (simulation service self-check)"
ISOS_CACHE_DIR="${TMPDIR:-/tmp}/isos-check-serve-cache" cargo run --release -q -p isos-serve --bin serve -- \
  --smoke

echo "All checks passed."
