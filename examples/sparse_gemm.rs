//! Sparse matrix-sparse matrix multiplication on ISOSceles (the Sec. VII
//! extension): Gustavson's dataflow on the fetcher + PE array + K-merger
//! path, with a performance estimate on the Table-I configuration.
//!
//! ```sh
//! cargo run --example sparse_gemm -- 512 0.02
//! ```
//! Arguments: matrix size (default 256) and density (default 0.05).

use isos_tensor::gen;
use isosceles::spgemm::{estimate_run, spgemm};
use isosceles::IsoscelesConfig;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    let density: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);

    let a = gen::random_csf(vec![n, n].into(), density, 1);
    let b = gen::random_csf(vec![n, n].into(), density, 2);
    println!(
        "A, B: {n}x{n} at {:.1}% density ({} / {} nonzeros)",
        density * 100.0,
        a.nnz(),
        b.nnz()
    );

    let out = spgemm(&a, &b);
    println!(
        "C = A*B: {} nonzeros ({:.2}% dense)",
        out.output.nnz(),
        out.output.density() * 100.0
    );
    println!(
        "work: {} effectual MACs, {} B-row fetches, {} merged elements, {} comparisons",
        out.stats.macs, out.stats.b_row_fetches, out.stats.merged, out.stats.merger_comparisons
    );
    // Gustavson does no ineffectual work: every MAC pairs two nonzeros.
    let dense_macs = (n as u64).pow(3);
    println!(
        "vs dense: {dense_macs} MACs -> {:.1}x less work",
        dense_macs as f64 / out.stats.macs.max(1) as f64
    );

    let cfg = IsoscelesConfig::default();
    let est = estimate_run(&out, &a, &b, &cfg);
    println!(
        "\nestimated on ISOSceles (Table I config): {} cycles, {:.1} KB off-chip, {}-bound",
        est.cycles,
        est.total_traffic() / 1e3,
        if est.bw_util.ratio() > est.mac_util.ratio() {
            "memory"
        } else {
            "compute"
        }
    );

    // Sanity-check against a dense matmul on small sizes.
    if n <= 512 {
        let ad = a.to_dense();
        let bd = b.to_dense();
        let mut golden = isos_tensor::Dense::zeros(vec![n, n].into());
        for i in 0..n {
            for k in 0..n {
                let av = ad.data()[i * n + k];
                if av == 0.0 {
                    continue;
                }
                for j in 0..n {
                    golden.data_mut()[i * n + j] += av * bd.data()[k * n + j];
                }
            }
        }
        let err = out.output.to_dense().max_abs_diff(&golden);
        println!("max |SpGEMM - dense matmul| = {err:.2e}");
        assert!(err < 1e-3);
    }
}
