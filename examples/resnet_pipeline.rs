//! End-to-end ResNet-50 walkthrough: build the pruned model, inspect how
//! the greedy mapper pipelines it (Table IV), run the cycle-level model,
//! and compare against the SparTen and Fused-Layer baselines.
//!
//! ```sh
//! cargo run --example resnet_pipeline -- 0.96
//! ```
//! The optional argument is the weight sparsity (default 0.96).

use isos_baselines::{FusedLayerConfig, SpartenConfig};
use isos_nn::models::resnet50;
use isos_sim::energy::{energy_of, EnergyParams};
use isosceles::accel::Accelerator;
use isosceles::mapping::{map_network, ExecMode};
use isosceles::IsoscelesConfig;

fn main() {
    let sparsity: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.96);
    let net = resnet50(sparsity, 20230225);
    println!(
        "{}: {} layers, {:.1}M weights ({:.1}M nonzero), {:.2}G dense MACs, {:.0}M effectual",
        net.name,
        net.len(),
        net.total_dense_weights() as f64 / 1e6,
        net.total_nnz_weights() / 1e6,
        net.total_dense_macs() / 1e9,
        net.total_effectual_macs() / 1e6
    );

    let cfg = IsoscelesConfig::default();
    let mapping = map_network(&net, &cfg, ExecMode::Pipelined);
    println!("\npipeline mapping ({} groups):", mapping.groups.len());
    for g in &mapping.groups {
        let tag = if g.is_pipelined() {
            "pipeline"
        } else {
            "single "
        };
        println!(
            "  [{tag}] {:<22} {} layers{}{}",
            g.name,
            g.layers.len(),
            if g.p_tiles > 1 {
                format!(", P-tiled x{}", g.p_tiles)
            } else {
                String::new()
            },
            if g.k_tiles > 1 {
                format!(", K-tiled x{}", g.k_tiles)
            } else {
                String::new()
            },
        );
    }

    let isos = cfg.simulate(&net, 20230225);
    let sparten = SpartenConfig::default().simulate(&net, 20230225);
    let fused = FusedLayerConfig::default().simulate(&net, 20230225);

    println!(
        "\n{:<14} {:>12} {:>12} {:>10} {:>10}",
        "model", "cycles", "traffic MB", "MAC util", "BW util"
    );
    for (name, m) in [
        ("Fused-Layer", &fused.total),
        ("SparTen", &sparten.total),
        ("ISOSceles", &isos.total),
    ] {
        println!(
            "{:<14} {:>12} {:>12.1} {:>9.0}% {:>9.0}%",
            name,
            m.cycles,
            m.total_traffic() / 1e6,
            m.mac_util.ratio() * 100.0,
            m.bw_util.ratio() * 100.0
        );
    }
    println!(
        "\nISOSceles is {:.1}x faster than SparTen and {:.1}x faster than Fused-Layer",
        sparten.total.cycles as f64 / isos.total.cycles as f64,
        fused.total.cycles as f64 / isos.total.cycles as f64
    );
    let e = energy_of(&isos.total.activity, &EnergyParams::default());
    println!(
        "energy per inference: {:.2} mJ ({:.0}% DRAM)",
        e.total_mj(),
        e.dram_fraction() * 100.0
    );
}
