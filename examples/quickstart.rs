//! Quickstart: run one sparse convolution through the IS-OS dataflow,
//! check it against the dense golden model, then simulate a small pruned
//! network on the cycle-level ISOSceles model.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use isos_nn::graph::Network;
use isos_nn::layer::{ActShape, Layer, LayerKind};
use isos_nn::reference;
use isos_nn::sparsity::{apply_activation_profile, apply_weight_profile, WeightProfile};
use isos_tensor::gen;
use isosceles::arch::run_network;
use isosceles::dataflow::{execute_conv, Pou};
use isosceles::mapping::ExecMode;
use isosceles::IsoscelesConfig;

fn main() {
    // --- 1. Functional: a sparse 3x3 convolution under IS-OS. ---
    // Input activations [H, W, C] and filters [C, R, K, S] in CSF; 50%
    // activation sparsity, 90% weight sparsity.
    let input = gen::random_csf(vec![16, 16, 8].into(), 0.5, 1);
    let filter = gen::random_csf(vec![8, 3, 16, 3].into(), 0.1, 2);
    println!(
        "input: {} nonzeros ({:.0}% sparse); filter: {} nonzeros ({:.0}% sparse)",
        input.nnz(),
        input.sparsity() * 100.0,
        filter.nnz(),
        filter.sparsity() * 100.0
    );

    let exec = execute_conv(&input, &filter, 1, 1, &Pou::relu(16));
    println!(
        "IS-OS frontend: {} effectual MACs, {} partials emitted",
        exec.stats.frontend.macs, exec.stats.frontend.partials_emitted
    );
    println!(
        "OS backend: {} R-merged, {} K-merged, {} outputs after ReLU",
        exec.stats.backend.r_merged,
        exec.stats.backend.k_merged,
        exec.stats.backend.outputs_emitted
    );

    // Validate against the dense golden model.
    let golden = reference::bn_relu(
        &reference::conv2d(&input.to_dense(), &filter.to_dense(), 1, 1),
        &[1.0; 16],
        &[0.0; 16],
    );
    let err = exec.output.to_dense().max_abs_diff(&golden);
    println!("max |IS-OS - golden| = {err:.2e}");
    assert!(err < 1e-3, "IS-OS output must match the reference");

    // --- 2. Performance: a 6-layer pruned CNN on the Table-I machine. ---
    let mut net = Network::new("quickstart-cnn");
    let mut prev = None;
    for (i, k) in [32usize, 32, 64, 64, 128, 128].into_iter().enumerate() {
        let in_shape = match prev {
            None => ActShape::new(32, 32, 16),
            Some(p) => net.layer(p).output,
        };
        let stride = if i == 2 || i == 4 { 2 } else { 1 };
        let inputs: Vec<usize> = prev.into_iter().collect();
        prev = Some(net.add(
            Layer::new(
                &format!("conv{i}"),
                LayerKind::Conv {
                    r: 3,
                    s: 3,
                    stride,
                    pad: 1,
                },
                in_shape,
                k,
            ),
            &inputs,
        ));
    }
    apply_weight_profile(&mut net, WeightProfile::Uniform { sparsity: 0.9 });
    apply_activation_profile(&mut net, 42);

    let cfg = IsoscelesConfig::default();
    let pipelined = run_network(&net, &cfg, ExecMode::Pipelined, 42);
    let single = run_network(&net, &cfg, ExecMode::SingleLayer, 42);
    println!();
    println!(
        "pipelined:   {:>8} cycles, {:>8.1} KB off-chip, MAC util {:.0}%",
        pipelined.total.cycles,
        pipelined.total.total_traffic() / 1e3,
        pipelined.total.mac_util.ratio() * 100.0
    );
    println!(
        "layer-by-layer: {:>5} cycles, {:>8.1} KB off-chip",
        single.total.cycles,
        single.total.total_traffic() / 1e3
    );
    println!(
        "inter-layer pipelining: {:.2}x faster, {:.2}x less traffic",
        single.total.cycles as f64 / pipelined.total.cycles as f64,
        single.total.total_traffic() / pipelined.total.total_traffic()
    );
}
