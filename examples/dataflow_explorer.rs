//! Dataflow explorer: makes the IS-OS dataflow's defining properties
//! visible on a small layer — wavefront ordering, concordant traversal,
//! effectual-work scaling with the sparsity product, and the merger work
//! behind the sparse transposes.
//!
//! ```sh
//! cargo run --example dataflow_explorer
//! ```

use isos_tensor::{gen, Csf};
use isosceles::dataflow::{execute_conv, Pou};

fn main() {
    // --- Property 1: outputs leave in exactly the order the next layer's
    // frontend consumes (channel innermost, then column, then row). ---
    let input = gen::random_csf(vec![4, 8, 3].into(), 0.6, 11);
    let filter = gen::random_csf(vec![3, 3, 4, 3].into(), 0.4, 12);
    let l1 = execute_conv(&input, &filter, 1, 1, &Pou::relu(4));
    println!("first output wavefronts (row p, column q, channel k):");
    for (point, value) in l1.output.iter().take(8) {
        println!("  O[{}, {}, {}] = {value:.3}", point[0], point[1], point[2]);
    }
    let points: Vec<_> = l1.output.iter().map(|(p, _)| p).collect();
    assert!(
        points.windows(2).all(|w| w[0] < w[1]),
        "production order must be concordant"
    );
    println!("  -> strictly increasing in (p, q, k): consumable as-is by the next layer\n");

    // --- Property 2: a second layer consumes that stream directly; no
    // transposition or re-sorting between layers. ---
    let filter2 = gen::random_csf(vec![4, 3, 2, 3].into(), 0.4, 13);
    let l2 = execute_conv(&l1.output, &filter2, 1, 1, &Pou::relu(2));
    println!(
        "chained second layer: {} outputs from {} intermediate nonzeros\n",
        l2.output.nnz(),
        l1.output.nnz()
    );

    // --- Property 3: effectual MACs scale with the *product* of input and
    // weight density (the reason sparse CNNs are memory-bound, Sec. I). ---
    println!(
        "{:<12} {:>12} {:>16} {:>10}",
        "density", "MACs", "dense-equiv", "ratio"
    );
    let shape_in = vec![16, 16, 8];
    let shape_f = vec![8, 3, 8, 3];
    let dense_macs = {
        let i = gen::random_csf(shape_in.clone().into(), 1.0, 1);
        let f = gen::random_csf(shape_f.clone().into(), 1.0, 2);
        execute_conv(&i, &f, 1, 1, &Pou::linear(8))
            .stats
            .frontend
            .macs
    };
    for d in [1.0, 0.5, 0.25, 0.1] {
        let i = gen::random_csf(shape_in.clone().into(), d, 1);
        let f = gen::random_csf(shape_f.clone().into(), d, 2);
        let macs = execute_conv(&i, &f, 1, 1, &Pou::linear(8))
            .stats
            .frontend
            .macs;
        println!(
            "{:<12} {:>12} {:>16} {:>9.3}",
            format!("{d:.2}x{d:.2}"),
            macs,
            dense_macs,
            macs as f64 / dense_macs as f64
        );
    }
    println!("  -> work falls ~quadratically while footprint falls linearly\n");

    // --- Property 4: the mergers do the sparse transposes. ---
    let stats = l1.stats.backend;
    println!("merger work for the first layer:");
    println!(
        "  R-mergers emitted {} elements ({} reductions); K-mergers emitted {}",
        stats.r_merged, stats.reductions, stats.k_merged
    );
    println!(
        "  {} comparator activations total",
        stats.merger_comparisons
    );

    // --- Property 5: intermediate (partial-result) state stays small. ---
    let partial_peak = filter.shape()[2] * filter.shape()[1] * filter.shape()[3];
    println!(
        "\nper-lane partial-result bound: K*R*S = {partial_peak} accumulators \
         ({} B at 16-bit) — the 'thin wavefront' that makes deep pipelines cheap",
        partial_peak * 2
    );

    // Keep the example honest.
    let golden = isos_nn::reference::bn_relu(
        &isos_nn::reference::conv2d(&input.to_dense(), &filter.to_dense(), 1, 1),
        &[1.0; 4],
        &[0.0; 4],
    );
    assert!(
        Csf::from_dense(&golden)
            .to_dense()
            .max_abs_diff(&l1.output.to_dense())
            < 1e-3
    );
}
