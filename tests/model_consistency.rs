//! Integration tests: cross-model invariants that must hold regardless of
//! calibration — conservation of work, mapping coverage, determinism, and
//! dominance relations between execution modes.

use isos_baselines::{IsoscelesSingleConfig, SpartenConfig};
use isos_nn::models::{googlenet_inception3a, mobilenet_v1, paper_suite, resnet50, vgg16};
use isosceles::accel::Accelerator;
use isosceles::arch::simulate_mapping;
use isosceles::mapping::{map_network, ExecMode};
use isosceles::IsoscelesConfig;

const SEED: u64 = 7;

#[test]
fn whole_suite_simulates_on_all_models() {
    let cfg = IsoscelesConfig::default();
    for w in paper_suite(SEED) {
        let isos = cfg.simulate(&w.network, SEED);
        assert!(isos.total.cycles > 0, "{}", w.id);
        assert!(isos.total.total_traffic() > 0.0, "{}", w.id);
        let sp = SpartenConfig::default().simulate(&w.network, SEED);
        assert!(sp.total.cycles > 0, "{}", w.id);
    }
}

#[test]
fn executed_macs_match_expected_effectual_work() {
    // The cycle model must execute exactly the network's effectual MACs
    // (modulo the per-column wobble's float rounding): no work lost, none
    // invented.
    let cfg = IsoscelesConfig::default();
    for net in [
        resnet50(0.95, SEED),
        mobilenet_v1(0.89, SEED),
        googlenet_inception3a(0.58, SEED),
    ] {
        let expected: f64 = net.total_effectual_macs();
        let r = cfg.simulate(&net, SEED);
        let err = (r.total.effectual_macs - expected).abs() / expected;
        assert!(
            err < 0.01,
            "{}: executed {} vs expected {}",
            net.name,
            r.total.effectual_macs,
            expected
        );
    }
}

#[test]
fn pipelined_never_worse_than_single_layer() {
    let cfg = IsoscelesConfig::default();
    for net in [
        resnet50(0.96, SEED),
        mobilenet_v1(0.75, SEED),
        vgg16(0.9, SEED),
    ] {
        let pipe = cfg.simulate(&net, SEED);
        let single = IsoscelesSingleConfig(cfg).simulate(&net, SEED);
        assert!(
            pipe.total.cycles <= single.total.cycles,
            "{}: pipelined {} > single {}",
            net.name,
            pipe.total.cycles,
            single.total.cycles
        );
        assert!(
            pipe.total.total_traffic() <= single.total.total_traffic() * 1.001,
            "{}: pipelining must not add traffic",
            net.name
        );
    }
}

#[test]
fn simulation_is_deterministic() {
    let cfg = IsoscelesConfig::default();
    let net = resnet50(0.96, SEED);
    let a = cfg.simulate(&net, SEED);
    let b = cfg.simulate(&net, SEED);
    assert_eq!(a.total.cycles, b.total.cycles);
    assert_eq!(a.total.total_traffic(), b.total.total_traffic());
}

#[test]
fn mapping_covers_every_layer_once_for_all_workloads() {
    let cfg = IsoscelesConfig::default();
    for w in paper_suite(SEED) {
        for mode in [ExecMode::Pipelined, ExecMode::SingleLayer] {
            let mapping = map_network(&w.network, &cfg, mode);
            let mut seen = vec![0u32; w.network.len()];
            for g in &mapping.groups {
                for &id in &g.layers {
                    seen[id] += 1;
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "{} {:?}", w.id, mode);
        }
    }
}

#[test]
fn per_group_metrics_sum_to_totals() {
    let cfg = IsoscelesConfig::default();
    let net = resnet50(0.9, SEED);
    let mapping = map_network(&net, &cfg, ExecMode::Pipelined);
    let r = simulate_mapping(&net, &cfg, &mapping, SEED);
    let cyc: u64 = r.groups.iter().map(|(_, m)| m.cycles).sum();
    assert_eq!(cyc, r.total.cycles);
    let traffic: f64 = r.groups.iter().map(|(_, m)| m.total_traffic()).sum();
    assert!((traffic - r.total.total_traffic()).abs() < 1.0);
}

#[test]
fn more_bandwidth_never_slows_execution() {
    let net = mobilenet_v1(0.75, SEED);
    let mut cfg = IsoscelesConfig::default();
    let base = cfg.simulate(&net, SEED);
    cfg.dram_bytes_per_cycle = 256.0;
    let fast = cfg.simulate(&net, SEED);
    assert!(fast.total.cycles <= base.total.cycles);
}

#[test]
fn more_macs_never_slow_execution() {
    let net = vgg16(0.68, SEED);
    let mut cfg = IsoscelesConfig::default();
    let base = cfg.simulate(&net, SEED);
    cfg.macs_per_lane = 128;
    let fat = cfg.simulate(&net, SEED);
    assert!(fat.total.cycles <= base.total.cycles);
}

#[test]
fn spatial_microsim_agrees_with_interval_model() {
    // The element-level spatial design has #layers x the MACs of the
    // time-multiplexed machine; when compute-bound, the interval model's
    // cycles should sit between 1x and ~(#layers + preload slack) x the
    // spatial cycles.
    use isos_nn::layer::{ActShape, Layer, LayerKind};
    use isos_tensor::{gen, Csf};
    use isosceles::arch::{build_chain, simulate_micro};

    let cfg = IsoscelesConfig {
        lanes: 32,
        macs_per_lane: 32,
        ..Default::default()
    };
    let n_layers = 3usize;
    let input = gen::random_csf(vec![24, 32, 8].into(), 0.6, 1);
    let filters: Vec<(Csf, usize, usize)> = (0..n_layers)
        .map(|i| {
            (
                gen::random_csf(vec![8, 3, 8, 3].into(), 0.4, 80 + i as u64),
                1,
                1,
            )
        })
        .collect();
    let chain = build_chain(input, &filters);
    let micro = simulate_micro(&chain, &cfg);

    let mut net = isos_nn::graph::Network::new("twin");
    let mut prev: Option<usize> = None;
    for (i, layer) in chain.iter().enumerate() {
        let d = layer.input.shape().dims();
        let l = Layer::new(
            &format!("c{i}"),
            LayerKind::Conv {
                r: 3,
                s: 3,
                stride: 1,
                pad: 1,
            },
            ActShape::new(d[0], d[1], d[2]),
            8,
        )
        .with_weight_density(layer.filter.density())
        .with_act_density(layer.input.density(), layer.input.density());
        let inputs: Vec<usize> = prev.into_iter().collect();
        prev = Some(net.add(l, &inputs));
    }
    let interval = cfg.simulate(&net, 9);
    let ratio = interval.total.cycles as f64 / micro.cycles as f64;
    assert!(
        (0.8..=8.0).contains(&ratio),
        "interval {} vs spatial {} (ratio {ratio:.2})",
        interval.total.cycles,
        micro.cycles
    );
}

#[test]
fn utilizations_are_well_formed_everywhere() {
    let cfg = IsoscelesConfig::default();
    for w in paper_suite(SEED) {
        let r = cfg.simulate(&w.network, SEED);
        for (name, m) in &r.groups {
            let mac = m.mac_util.ratio();
            let bw = m.bw_util.ratio();
            assert!((0.0..=1.0).contains(&mac), "{}/{name}: mac {mac}", w.id);
            assert!((0.0..=1.0).contains(&bw), "{}/{name}: bw {bw}", w.id);
        }
    }
}
