//! Integration tests: multi-layer functional execution under the IS-OS
//! dataflow, validated end-to-end against the dense golden model.

use isos_nn::reference;
use isos_tensor::{gen, Csf, Dense};
use isosceles::dataflow::{execute_add, execute_conv, execute_dwconv, execute_fc, Pou};

/// ReLU-including reference conv.
fn golden_conv(input: &Dense, filter: &Dense, stride: usize, pad: usize, k: usize) -> Dense {
    reference::bn_relu(
        &reference::conv2d(input, filter, stride, pad),
        &vec![1.0; k],
        &vec![0.0; k],
    )
}

#[test]
fn three_layer_cnn_matches_reference() {
    // conv3x3 -> conv3x3(stride 2) -> conv1x1, all sparse, chained through
    // the IS-OS output order without any re-sorting.
    let input = gen::random_dense(vec![12, 12, 4].into(), 0.6, 1);
    let f1 = gen::random_dense(vec![4, 3, 8, 3].into(), 0.3, 2);
    let f2 = gen::random_dense(vec![8, 3, 8, 3].into(), 0.3, 3);
    let f3 = gen::random_dense(vec![8, 1, 16, 1].into(), 0.3, 4);

    let l1 = execute_conv(
        &Csf::from_dense(&input),
        &Csf::from_dense(&f1),
        1,
        1,
        &Pou::relu(8),
    );
    let l2 = execute_conv(&l1.output, &Csf::from_dense(&f2), 2, 1, &Pou::relu(8));
    let l3 = execute_conv(&l2.output, &Csf::from_dense(&f3), 1, 0, &Pou::relu(16));

    let g1 = golden_conv(&input, &f1, 1, 1, 8);
    let g2 = golden_conv(&g1, &f2, 2, 1, 8);
    let g3 = golden_conv(&g2, &f3, 1, 0, 16);

    assert_eq!(l3.output.shape().dims(), g3.shape().dims());
    assert!(
        l3.output.to_dense().max_abs_diff(&g3) < 1e-3,
        "three-layer chain diverged"
    );
}

#[test]
fn resnet_style_block_with_skip_matches_reference() {
    // conv1x1 -> conv3x3 -> conv1x1, plus identity skip, joined by an add
    // with ReLU — a bottleneck block shaped like ResNet's.
    let input = gen::random_dense(vec![8, 8, 8].into(), 0.5, 10);
    let f1 = gen::random_dense(vec![8, 1, 4, 1].into(), 0.4, 11);
    let f2 = gen::random_dense(vec![4, 3, 4, 3].into(), 0.4, 12);
    let f3 = gen::random_dense(vec![4, 1, 8, 1].into(), 0.4, 13);

    let icsf = Csf::from_dense(&input);
    let l1 = execute_conv(&icsf, &Csf::from_dense(&f1), 1, 0, &Pou::relu(4));
    let l2 = execute_conv(&l1.output, &Csf::from_dense(&f2), 1, 1, &Pou::relu(4));
    // Last conv is linear: the non-linearity comes after the add.
    let l3 = execute_conv(&l2.output, &Csf::from_dense(&f3), 1, 0, &Pou::linear(8));
    let out = execute_add(&l3.output, &icsf, &Pou::relu(8));

    let g1 = golden_conv(&input, &f1, 1, 0, 4);
    let g2 = golden_conv(&g1, &f2, 1, 1, 4);
    let g3 = reference::conv2d(&g2, &f3, 1, 0);
    let golden = reference::bn_relu(&reference::add(&g3, &input), &[1.0; 8], &[0.0; 8]);
    assert!(
        out.output.to_dense().max_abs_diff(&golden) < 1e-3,
        "bottleneck block diverged"
    );
}

#[test]
fn mobilenet_style_separable_block_matches_reference() {
    // Depth-wise 3x3 then point-wise 1x1, the MobileNet building block.
    let input = gen::random_dense(vec![10, 10, 6].into(), 0.55, 20);
    let dw = gen::random_dense(vec![6, 3, 3].into(), 0.5, 21);
    let pw = gen::random_dense(vec![6, 1, 12, 1].into(), 0.3, 22);

    let l1 = execute_dwconv(
        &Csf::from_dense(&input),
        &Csf::from_dense(&dw),
        1,
        1,
        &Pou::relu(6),
    );
    let l2 = execute_conv(&l1.output, &Csf::from_dense(&pw), 1, 0, &Pou::relu(12));

    let g1 = reference::bn_relu(
        &reference::dwconv2d(&input, &dw, 1, 1),
        &[1.0; 6],
        &[0.0; 6],
    );
    let g2 = golden_conv(&g1, &pw, 1, 0, 12);
    assert!(l2.output.to_dense().max_abs_diff(&g2) < 1e-3);
}

#[test]
fn classifier_head_matches_reference() {
    // GAP output (1x1xC) into an FC layer executed as SpMV.
    let features = gen::random_dense(vec![4, 4, 16].into(), 0.4, 30);
    let gap = reference::global_avg_pool(&features);
    let weights = gen::random_dense(vec![16, 10].into(), 0.5, 31);

    let fc = execute_fc(
        &Csf::from_dense(&gap),
        &Csf::from_dense(&weights),
        &Pou::linear(10),
    );
    let golden = reference::fully_connected(&gap, &weights);
    assert!(fc.output.to_dense().max_abs_diff(&golden) < 1e-4);
}

#[test]
fn extreme_sparsity_end_to_end() {
    // 99% sparse everything: outputs may be empty; nothing panics and
    // whatever survives matches the reference.
    let input = gen::random_dense(vec![16, 16, 8].into(), 0.05, 40);
    let f = gen::random_dense(vec![8, 3, 8, 3].into(), 0.02, 41);
    let l = execute_conv(
        &Csf::from_dense(&input),
        &Csf::from_dense(&f),
        1,
        1,
        &Pou::relu(8),
    );
    let g = golden_conv(&input, &f, 1, 1, 8);
    assert!(l.output.to_dense().max_abs_diff(&g) < 1e-4);
}

#[test]
fn dense_execution_end_to_end() {
    // Fully dense inputs exercise the same machinery (IS-OS supports dense
    // as the degenerate case).
    let input = gen::random_dense(vec![6, 6, 3].into(), 1.0, 50);
    let f = gen::random_dense(vec![3, 3, 5, 3].into(), 1.0, 51);
    let l = execute_conv(
        &Csf::from_dense(&input),
        &Csf::from_dense(&f),
        1,
        0,
        &Pou::relu(5),
    );
    let g = golden_conv(&input, &f, 1, 0, 5);
    assert!(l.output.to_dense().max_abs_diff(&g) < 1e-3);
}
