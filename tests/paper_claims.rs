//! Integration tests asserting the paper's headline claims hold in shape:
//! who wins, by roughly what factor, and which resource binds. Tolerances
//! are deliberately wide — this is a reproduction on synthetic sparsity,
//! not a bit-exact replay (see EXPERIMENTS.md for the measured numbers).

use isos_baselines::{FusedLayerConfig, IsoscelesSingleConfig, SpartenConfig};
use isos_nn::models::{paper_suite, resnet50};
use isos_sim::stats::geometric_mean;
use isosceles::accel::Accelerator;
use isosceles::IsoscelesConfig;

const SEED: u64 = 20230225;

#[test]
fn headline_gmeans_match_paper_shape() {
    let cfg = IsoscelesConfig::default();
    let mut vs_sparten = Vec::new();
    let mut vs_fused = Vec::new();
    let mut traffic_ratio = Vec::new();
    for w in paper_suite(SEED) {
        let isos = cfg.simulate(&w.network, SEED);
        let sparten = SpartenConfig::default().simulate(&w.network, SEED);
        let fused = FusedLayerConfig::default().simulate(&w.network, SEED);
        let s = sparten.total.cycles as f64 / isos.total.cycles as f64;
        assert!(s > 1.0, "{}: ISOSceles must beat SparTen ({s:.2}x)", w.id);
        vs_sparten.push(s);
        vs_fused.push(fused.total.cycles as f64 / isos.total.cycles as f64);
        traffic_ratio.push(sparten.total.total_traffic() / isos.total.total_traffic());
    }
    let g_sparten = geometric_mean(&vs_sparten);
    let g_fused = geometric_mean(&vs_fused);
    let g_traffic = geometric_mean(&traffic_ratio);
    // Paper: 4.3x, 7.5x, 4.7x.
    assert!(
        (2.5..=6.5).contains(&g_sparten),
        "gmean vs SparTen {g_sparten:.2}"
    );
    assert!(
        (5.0..=13.0).contains(&g_fused),
        "gmean vs Fused {g_fused:.2}"
    );
    assert!(
        (3.0..=6.5).contains(&g_traffic),
        "gmean traffic ratio {g_traffic:.2}"
    );
}

#[test]
fn speedup_grows_with_resnet_sparsity() {
    // Paper Fig. 14a: ResNet speedups over Fused-Layer grow monotonically
    // from R81 to R99 (5.9x -> 18.0x).
    let cfg = IsoscelesConfig::default();
    let mut prev = 0.0;
    for sparsity in [0.81, 0.90, 0.96, 0.99] {
        let net = resnet50(sparsity, SEED);
        let isos = cfg.simulate(&net, SEED);
        let fused = FusedLayerConfig::default().simulate(&net, SEED);
        let speedup = fused.total.cycles as f64 / isos.total.cycles as f64;
        assert!(
            speedup > prev,
            "speedup must grow with sparsity: {speedup:.1} after {prev:.1}"
        );
        prev = speedup;
    }
    assert!(
        prev > 10.0,
        "R99 speedup {prev:.1} should be >10x (paper 18x)"
    );
}

#[test]
fn fused_layer_is_compute_bound_sparten_is_memory_bound() {
    // Paper Figs. 15/16.
    let net = resnet50(0.96, SEED);
    let sparten = SpartenConfig::default().simulate(&net, SEED);
    let fused = FusedLayerConfig::default().simulate(&net, SEED);
    assert!(
        fused.total.mac_util.ratio() > 0.8,
        "Fused-Layer compute-bound"
    );
    assert!(fused.total.bw_util.ratio() < 0.5, "Fused-Layer BW is slack");
    assert!(sparten.total.bw_util.ratio() > 0.9, "SparTen saturates BW");
    assert!(sparten.total.mac_util.ratio() < 0.3, "SparTen MACs idle");
}

#[test]
fn isosceles_util_exceeds_sparten_and_falls_with_sparsity() {
    // Paper Fig. 16: ISOSceles ~3.4x SparTen's MAC utilization, and its
    // own utilization drops as ResNet gets sparser (more memory-bound).
    let cfg = IsoscelesConfig::default();
    let mut isos_utils = Vec::new();
    for sparsity in [0.81, 0.96, 0.99] {
        let net = resnet50(sparsity, SEED);
        let isos = cfg.simulate(&net, SEED);
        let sparten = SpartenConfig::default().simulate(&net, SEED);
        assert!(
            isos.total.mac_util.ratio() > 1.5 * sparten.total.mac_util.ratio(),
            "sparsity {sparsity}: ISOSceles util should clearly exceed SparTen's"
        );
        isos_utils.push(isos.total.mac_util.ratio());
    }
    assert!(isos_utils[0] > isos_utils[2], "util falls with sparsity");
}

#[test]
fn fig18_pipelining_decomposition() {
    // Paper Sec. VI-C on R96: IS-OS dataflow alone beats SparTen ~1.9x;
    // pipelining adds ~2.6x more; traffic tracks cycles (memory-bound).
    let cfg = IsoscelesConfig::default();
    let net = resnet50(0.96, SEED);
    let sparten = SpartenConfig::default().simulate(&net, SEED);
    let single = IsoscelesSingleConfig(cfg).simulate(&net, SEED);
    let full = cfg.simulate(&net, SEED);

    let dataflow_gain = sparten.total.cycles as f64 / single.total.cycles as f64;
    let pipeline_gain = single.total.cycles as f64 / full.total.cycles as f64;
    assert!(
        (1.3..=3.0).contains(&dataflow_gain),
        "dataflow gain {dataflow_gain:.2} (paper 1.9)"
    );
    assert!(
        (1.8..=3.5).contains(&pipeline_gain),
        "pipeline gain {pipeline_gain:.2} (paper 2.6)"
    );

    let traffic_gain = single.total.total_traffic() / full.total.total_traffic();
    assert!(
        (traffic_gain / pipeline_gain - 1.0).abs() < 0.5,
        "traffic gain {traffic_gain:.2} should track cycle gain {pipeline_gain:.2}"
    );
}

#[test]
fn traffic_split_matches_fig14c() {
    // Fused-Layer dominated by weights, SparTen by activations, ISOSceles
    // low on both.
    let cfg = IsoscelesConfig::default();
    for w in paper_suite(SEED) {
        if w.id == "G58" {
            continue; // tiny block: activations dominate everything
        }
        let fused = FusedLayerConfig::default().simulate(&w.network, SEED);
        let sparten = SpartenConfig::default().simulate(&w.network, SEED);
        assert!(
            fused.total.weight_traffic > fused.total.act_traffic,
            "{}: Fused-Layer should be weight-dominated",
            w.id
        );
        assert!(
            sparten.total.act_traffic > sparten.total.weight_traffic,
            "{}: SparTen should be activation-dominated",
            w.id
        );
        let isos = cfg.simulate(&w.network, SEED);
        assert!(
            isos.total.act_traffic < 0.6 * sparten.total.act_traffic,
            "{}: pipelining must slash activation traffic",
            w.id
        );
    }
}

#[test]
fn energy_band_matches_fig17() {
    use isos_sim::energy::{energy_of, EnergyParams};
    let cfg = IsoscelesConfig::default();
    let params = EnergyParams::default();
    let mut fractions = Vec::new();
    for sparsity in [0.81, 0.99] {
        let net = resnet50(sparsity, SEED);
        let isos = cfg.simulate(&net, SEED);
        let e = energy_of(&isos.total.activity, &params);
        // Paper band: 0.2-1.9 mJ per ResNet inference.
        assert!(
            (0.1..=2.5).contains(&e.total_mj()),
            "sparsity {sparsity}: {:.2} mJ out of band",
            e.total_mj()
        );
        fractions.push(e.dram_fraction());
    }
    assert!(
        fractions[1] > fractions[0],
        "DRAM share must grow with sparsity ({:.2} -> {:.2})",
        fractions[0],
        fractions[1]
    );
}
