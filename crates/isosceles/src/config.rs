//! ISOSceles system configuration (paper Table I).

use serde::{Deserialize, Serialize};

/// Configuration of an ISOSceles accelerator instance.
///
/// Defaults reproduce Table I: 64 lanes of 64 8-bit MACs (4096 total), a
/// 1 MB shared filter buffer, 8 KB context arrays and 8 KB queues per lane,
/// 16 radix-256 mergers per lane, 128 GB/s HBM at 1 GHz.
///
/// # Examples
///
/// ```
/// use isosceles::IsoscelesConfig;
/// let cfg = IsoscelesConfig::default();
/// assert_eq!(cfg.total_macs(), 4096);
/// assert_eq!(cfg.total_sram_bytes(), 2 * 1024 * 1024);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct IsoscelesConfig {
    /// Number of frontend/backend lane pairs.
    pub lanes: usize,
    /// MAC units per lane (coarse-grain PEs; Sec. IV-B).
    pub macs_per_lane: usize,
    /// Multiplier precision in bits.
    pub multiplier_bits: u32,
    /// Accumulator precision in bits.
    pub accumulator_bits: u32,
    /// Shared filter buffer capacity in bytes.
    pub filter_buffer_bytes: u64,
    /// Context array capacity per lane in bytes.
    pub context_bytes_per_lane: u64,
    /// Queue capacity per lane in bytes.
    pub queue_bytes_per_lane: u64,
    /// Mergers per lane.
    pub mergers_per_lane: usize,
    /// Merger radix (the K-merger; Sec. IV-A).
    pub merger_radix: usize,
    /// DRAM bandwidth in bytes per cycle (128 GB/s at 1 GHz = 128 B/cyc).
    pub dram_bytes_per_cycle: f64,
    /// Clock frequency in GHz (for converting cycles to time).
    pub frequency_ghz: f64,
    /// Maximum layers time-multiplexed on the single IS-OS block
    /// (contexts; Sec. IV-B supports 2-16).
    pub max_contexts: usize,
    /// Dynamic scheduling interval in cycles (Sec. IV-B: every 100 cycles
    /// PEs are reallocated proportionally to demand).
    pub scheduler_interval: u64,
    /// PE efficiency under coarse-grain packing: fraction of allocated MAC
    /// slots doing effectual work (fragmentation from vector packing and
    /// scheduling quantization; Sec. VI-B).
    pub pe_efficiency: f64,
    /// Effective filter-buffer bytes consumed per stored compressed weight
    /// byte (wide-word padding and bank alignment of the heavily banked
    /// buffer; calibrated so R96 pipelines 1-2 ResNet blocks and R99 many
    /// more, as in Sec. V).
    pub filter_buffer_alloc_overhead: f64,
}

impl Default for IsoscelesConfig {
    fn default() -> Self {
        Self {
            lanes: 64,
            macs_per_lane: 64,
            multiplier_bits: 8,
            accumulator_bits: 16,
            filter_buffer_bytes: 1 << 20,
            context_bytes_per_lane: 8 << 10,
            queue_bytes_per_lane: 8 << 10,
            mergers_per_lane: 16,
            merger_radix: 256,
            dram_bytes_per_cycle: 128.0,
            frequency_ghz: 1.0,
            max_contexts: 16,
            scheduler_interval: 100,
            pe_efficiency: 0.95,
            filter_buffer_alloc_overhead: 1.5,
        }
    }
}

impl IsoscelesConfig {
    /// Total MAC units (Table I: 4096).
    pub fn total_macs(&self) -> usize {
        self.lanes * self.macs_per_lane
    }

    /// Total on-chip SRAM in bytes (Table I: 2 MB).
    pub fn total_sram_bytes(&self) -> u64 {
        self.filter_buffer_bytes
            + self.lanes as u64 * (self.context_bytes_per_lane + self.queue_bytes_per_lane)
    }

    /// Accumulator width in bytes.
    pub fn accumulator_bytes(&self) -> u64 {
        (self.accumulator_bits as u64).div_ceil(8)
    }

    /// Filter-buffer bytes a layer's compressed weights occupy, including
    /// allocation overhead.
    pub fn filter_buffer_occupancy(&self, weight_csf_bytes: f64) -> f64 {
        weight_csf_bytes * self.filter_buffer_alloc_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_summary_values() {
        let cfg = IsoscelesConfig::default();
        assert_eq!(cfg.lanes, 64);
        assert_eq!(cfg.total_macs(), 4096);
        assert_eq!(cfg.total_sram_bytes(), 2 * 1024 * 1024);
        assert_eq!(cfg.accumulator_bytes(), 2);
        assert_eq!(cfg.dram_bytes_per_cycle, 128.0);
    }

    #[test]
    fn occupancy_applies_overhead() {
        let cfg = IsoscelesConfig::default();
        assert_eq!(
            cfg.filter_buffer_occupancy(100.0),
            100.0 * cfg.filter_buffer_alloc_overhead
        );
        assert!(cfg.filter_buffer_occupancy(100.0) > 100.0);
    }
}
