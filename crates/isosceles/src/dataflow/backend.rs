//! The output-stationary (OS) backend.
//!
//! Each backend lane produces one output activation row: it (1) consumes
//! partial-result streams from the `R` surrounding frontend lanes, (2)
//! R-merges them so the reduction dimension becomes innermost (the sparse
//! transpose), (3) reduces along `R` to complete the convolution, (4)
//! K-merges the per-channel streams so the output leaves the lane in
//! `(q, k)` order — exactly the order the next layer's frontend consumes —
//! and (5) applies the POU (paper Sec. IV-A, Fig. 11).

use super::frontend::PartialStreams;
use super::pou::Pou;
use isos_tensor::merge::{comparator_levels, HeapMerger};
use isos_tensor::{Coord, Csf, Point, Shape};
use serde::{Deserialize, Serialize};

/// Work counters for a backend pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackendStats {
    /// Partial results consumed from frontend queues.
    pub partials_consumed: u64,
    /// Elements emitted by R-mergers (cycles on the merge path).
    pub r_merged: u64,
    /// Reduction additions performed.
    pub reductions: u64,
    /// Elements emitted by K-mergers.
    pub k_merged: u64,
    /// Output activations after the POU (nonzero only).
    pub outputs_emitted: u64,
    /// Comparator activations across all mergers.
    pub merger_comparisons: u64,
}

/// The result of running the OS backend: the layer's compressed output and
/// work counters.
#[derive(Clone, Debug)]
pub struct BackendOutput {
    /// Output activations `[P, Q, K]` in CSF.
    pub output: Csf,
    /// Work counters.
    pub stats: BackendStats,
}

/// Runs the OS backend over all output rows.
///
/// `partials` comes from [`super::frontend::run_frontend`]. The output
/// shape is `[p_dim, q_dim, k_dim]`; `r_dim` is the vertical kernel
/// extent; `h_dim` bounds the frontend lanes; `stride`/`pad` follow the
/// convolution arithmetic (backend lane `p` sources frontend lanes
/// `h = p*stride + r - pad`).
///
/// # Panics
///
/// Panics if `pou` has fewer channels than `k_dim`.
#[allow(clippy::too_many_arguments)] // mirrors the hardware's port list
pub fn run_backend(
    partials: &PartialStreams,
    p_dim: usize,
    q_dim: usize,
    k_dim: usize,
    r_dim: usize,
    h_dim: usize,
    stride: usize,
    pad: usize,
    pou: &Pou,
) -> BackendOutput {
    assert!(pou.channels() >= k_dim, "POU channels < k_dim");
    let mut stats = BackendStats::default();
    // Outputs are bounded by both the partial count and the dense volume.
    let mut entries: Vec<(Point, f32)> =
        Vec::with_capacity(partials.total_partials().min(p_dim * q_dim * k_dim));
    // Per-channel reduced runs: allocated once, reused across output rows.
    let mut per_k: Vec<Vec<(u64, f32)>> = vec![Vec::new(); k_dim];
    // Word-level R-merge scratch, shared by every (p, k): partials
    // accumulate into a dense per-column scratch, touched columns live in
    // a packed `u64` bitmask, and the sorted run is replayed with
    // `trailing_zeros`. Stream order (r ascending, stream-local order
    // within a stream) matches the stable R-merger's emission order for
    // equal keys, so the reduced values are bit-identical to the
    // merge-reduce pair the hardware implements; the charged stats are
    // the merger's exact arithmetic (`comparator_levels` per emission).
    let mut scratch = vec![0.0f32; q_dim];
    let mut touched = vec![0u64; q_dim.div_ceil(64)];

    for p in 0..p_dim {
        // Per output channel: R-merge + reduce.
        for (k, reduced) in per_k.iter_mut().enumerate() {
            reduced.clear();
            let mut streams = 0u64;
            let mut elems = 0u64;
            for r in 0..r_dim {
                let Some(h) = (p * stride + r).checked_sub(pad).filter(|&h| h < h_dim) else {
                    continue;
                };
                let s = partials.stream(h as Coord, r as Coord, k as Coord);
                if !s.is_empty() {
                    stats.partials_consumed += s.len() as u64;
                    streams += 1;
                    elems += s.len() as u64;
                    for &(q, v) in s {
                        let q = q as usize;
                        let (w, bit) = (q / 64, 1u64 << (q % 64));
                        if touched[w] & bit == 0 {
                            touched[w] |= bit;
                            scratch[q] = v;
                        } else {
                            scratch[q] += v;
                        }
                    }
                }
            }
            if streams == 0 {
                continue;
            }
            stats.r_merged += elems;
            stats.merger_comparisons += elems * comparator_levels(streams as usize) as u64;
            // Sorted replay; clear the scratch as it drains so the next
            // (p, k) starts pristine.
            for (w, word) in touched.iter_mut().enumerate() {
                let mut bits = *word;
                *word = 0;
                while bits != 0 {
                    let q = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let v = scratch[q];
                    scratch[q] = 0.0;
                    if v != 0.0 {
                        // Key packs (q, k) so the K-merger emits K innermost.
                        reduced.push(((q as u64) << 24 | k as u64, v));
                    }
                }
            }
            stats.reductions += elems.saturating_sub(reduced.len() as u64);
        }

        // K-merger (pipelined min-heap, radix K): serialize channels so K
        // is the innermost output rank.
        let mut k_merger = HeapMerger::new(per_k.iter().map(|v| v.iter().copied()).collect());
        for (key, v) in k_merger.by_ref() {
            let q = (key >> 24) as Coord;
            let k = (key & 0xFF_FFFF) as Coord;
            let activated = pou.apply(k as usize, v);
            if activated != 0.0 {
                stats.outputs_emitted += 1;
                entries.push((Point::from_slice(&[p as Coord, q, k]), activated));
            }
        }
        let kstats = k_merger.stats();
        stats.k_merged += kstats.emitted;
        stats.merger_comparisons += kstats.comparisons;
    }

    let output = Csf::from_sorted_unique(Shape::new(vec![p_dim, q_dim, k_dim]), entries);
    BackendOutput { output, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::frontend::run_frontend;
    use isos_tensor::gen;

    #[test]
    fn backend_completes_simple_convolution() {
        // 1x3 input row of ones, 1x2 kernel of ones -> outputs [2, 2].
        let input = Csf::from_dense(&isos_tensor::Dense::from_vec(
            vec![1, 3, 1].into(),
            vec![1.0, 1.0, 1.0],
        ));
        let filter = Csf::from_dense(&isos_tensor::Dense::from_vec(
            vec![1, 1, 1, 2].into(),
            vec![1.0, 1.0],
        ));
        let partials = run_frontend(&input, &filter, 2, 1, 0);
        let out = run_backend(&partials, 1, 2, 1, 1, 1, 1, 0, &Pou::relu(1));
        let dense = out.output.to_dense();
        assert_eq!(dense.data(), &[2.0, 2.0]);
        assert_eq!(out.stats.outputs_emitted, 2);
    }

    #[test]
    fn backend_output_is_q_then_k_ordered() {
        let input = Csf::from_dense(&gen::random_dense(vec![3, 6, 2].into(), 0.7, 1));
        let filter = Csf::from_dense(&gen::random_dense(vec![2, 3, 4, 3].into(), 0.5, 2));
        let partials = run_frontend(&input, &filter, 4, 1, 0);
        let out = run_backend(&partials, 1, 4, 4, 3, 3, 1, 0, &Pou::relu(4));
        // CSF order [P,Q,K] is exactly (p, q, k) lexicographic.
        let pts: Vec<_> = out.output.iter().map(|(p, _)| p).collect();
        assert!(pts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn relu_drops_negative_outputs() {
        // Kernel -1 on a positive input: all outputs negative -> empty.
        let input = Csf::from_dense(&isos_tensor::Dense::from_vec(
            vec![1, 2, 1].into(),
            vec![1.0, 2.0],
        ));
        let filter = Csf::from_dense(&isos_tensor::Dense::from_vec(
            vec![1, 1, 1, 1].into(),
            vec![-1.0],
        ));
        let partials = run_frontend(&input, &filter, 2, 1, 0);
        let out = run_backend(&partials, 1, 2, 1, 1, 1, 1, 0, &Pou::relu(1));
        assert_eq!(out.output.nnz(), 0);
        // But a linear POU keeps them.
        let out2 = run_backend(&partials, 1, 2, 1, 1, 1, 1, 0, &Pou::linear(1));
        assert_eq!(out2.output.nnz(), 2);
    }

    #[test]
    fn merger_stats_are_populated() {
        let input = Csf::from_dense(&gen::random_dense(vec![4, 8, 3].into(), 0.6, 3));
        let filter = Csf::from_dense(&gen::random_dense(vec![3, 3, 8, 3].into(), 0.4, 4));
        let partials = run_frontend(&input, &filter, 6, 1, 0);
        let out = run_backend(&partials, 2, 6, 8, 3, 4, 1, 0, &Pou::relu(8));
        assert!(out.stats.r_merged > 0);
        assert!(out.stats.k_merged > 0);
        assert!(out.stats.merger_comparisons > 0);
        // Streams whose (h, r) pairing falls outside [0, P) go unconsumed,
        // so consumption is bounded by emission but must be substantial.
        assert!(out.stats.partials_consumed > 0);
        assert!(out.stats.partials_consumed <= partials.stats().partials_emitted);
    }
}
