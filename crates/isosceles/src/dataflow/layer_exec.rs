//! End-to-end functional execution of one layer under the IS-OS dataflow.
//!
//! Combines the IS frontend and OS backend into a layer executor for every
//! layer kind ISOSceles supports (Sec. IV-C): standard convolution,
//! depth-wise convolution, fully-connected (SpMV, frontend-only), and the
//! point-wise add of skip connections. Outputs are bit-equivalent to the
//! dense golden model up to float accumulation order.

use super::backend::{run_backend, BackendStats};
use super::frontend::{run_frontend, FrontendStats};
use super::pou::Pou;
use isos_tensor::{Coord, Csf, Point, Shape};
use serde::{Deserialize, Serialize};

/// Combined work counters for one layer execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerExecStats {
    /// Frontend counters.
    pub frontend: FrontendStats,
    /// Backend counters.
    pub backend: BackendStats,
}

/// A layer's functional output plus its work counters.
#[derive(Clone, Debug)]
pub struct LayerExec {
    /// Output activations in CSF (`[P, Q, K]`, or `[1, 1, K]` for FC).
    pub output: Csf,
    /// Work counters.
    pub stats: LayerExecStats,
}

/// Executes a standard convolution under IS-OS.
///
/// `input` is `[H, W, C]`, `filter` is `[C, R, K, S]`. The output is
/// `[P, Q, K]` with the usual stride/pad arithmetic; `pou` is applied per
/// output element.
///
/// # Panics
///
/// Panics if ranks mismatch or the kernel exceeds the padded input.
pub fn execute_conv(input: &Csf, filter: &Csf, stride: usize, pad: usize, pou: &Pou) -> LayerExec {
    let (h, w, _c) = dims3(input.shape());
    let fd = filter.shape().dims();
    let (r, k, s) = (fd[1], fd[2], fd[3]);
    assert_eq!(fd[0], input.shape()[2], "channel mismatch");
    assert!(h + 2 * pad >= r && w + 2 * pad >= s, "kernel too large");
    let p_dim = (h + 2 * pad - r) / stride + 1;
    let q_dim = (w + 2 * pad - s) / stride + 1;

    let partials = run_frontend(input, filter, q_dim, stride, pad);
    let out = run_backend(&partials, p_dim, q_dim, k, r, h, stride, pad, pou);
    LayerExec {
        output: out.output,
        stats: LayerExecStats {
            frontend: partials.stats(),
            backend: out.stats,
        },
    }
}

/// Executes a depth-wise convolution under IS-OS.
///
/// `filter` is `[C, R, S]`. Per Sec. IV-C, depth-wise convolution disables
/// cross-channel accumulation and fetches only output channel `k = c` per
/// input activation — modeled by expanding the filter to `[C, R, K=C, S]`
/// with a single nonzero output channel per input channel, then running
/// the standard path (the expansion is sparse, so it costs nothing extra).
///
/// # Panics
///
/// Panics if ranks mismatch.
pub fn execute_dwconv(
    input: &Csf,
    filter: &Csf,
    stride: usize,
    pad: usize,
    pou: &Pou,
) -> LayerExec {
    assert_eq!(filter.ndim(), 3, "depth-wise filter must be [C,R,S]");
    let c = filter.shape()[0];
    let entries = filter
        .iter()
        .map(|(p, v)| {
            let (ci, r, s) = (p[0], p[1], p[2]);
            (Point::from_slice(&[ci, r, ci, s]), v)
        })
        .collect();
    let expanded = Csf::from_entries(
        Shape::new(vec![c, filter.shape()[1], c, filter.shape()[2]]),
        entries,
    );
    execute_conv(input, &expanded, stride, pad, pou)
}

/// Executes a fully-connected layer as SpMV, reusing the frontend
/// structure and bypassing the backend (Sec. IV-C).
///
/// `input` is any-rank (flattened in concordant order); `weights` is
/// `[N, K]` with `N` the flattened input size. No non-linearity is applied
/// when `pou` is [`Pou::linear`].
///
/// # Panics
///
/// Panics if sizes disagree.
pub fn execute_fc(input: &Csf, weights: &Csf, pou: &Pou) -> LayerExec {
    let n = input.shape().volume();
    assert_eq!(weights.ndim(), 2, "weights must be [N,K]");
    assert_eq!(weights.shape()[0], n, "input size mismatch");
    let k_dim = weights.shape()[1];
    let mut stats = LayerExecStats::default();
    let mut acc = vec![0.0f32; k_dim];
    let wroot = weights.root();
    // Word-level row probes: one popcount lookup per input nonzero
    // instead of a binary search over the weight root fiber.
    let windex = wroot.index();
    // Flatten the input concordantly; each nonzero fetches one weight
    // sub-column, exactly like the FC mode where all lanes share the input.
    let in_shape = input.shape().clone();
    for (p, x) in input.iter() {
        stats.frontend.inputs_consumed += 1;
        let flat = in_shape.linear_index(&p) as Coord;
        let Some(row) = windex.position(flat).map(|i| wroot.child(i)) else {
            continue;
        };
        stats.frontend.filter_fetches += 1;
        for (k, wv) in row.iter_leaf() {
            stats.frontend.macs += 1;
            acc[k as usize] += x * wv;
        }
    }
    let mut entries: Vec<(Point, f32)> = Vec::with_capacity(k_dim);
    for (k, v) in acc.into_iter().enumerate() {
        let v = pou.apply(k, v);
        if v != 0.0 {
            entries.push((Point::from_slice(&[0, 0, k as Coord]), v));
        }
    }
    stats.backend.outputs_emitted = entries.len() as u64;
    LayerExec {
        output: Csf::from_sorted_unique(Shape::new(vec![1, 1, k_dim]), entries),
        stats,
    }
}

/// Element-wise addition of two activation tensors (`[P, Q, K]`), with the
/// POU applied to the sum — the skip-connection join of Fig. 13, executed
/// on the merger path.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn execute_add(a: &Csf, b: &Csf, pou: &Pou) -> LayerExec {
    assert_eq!(a.shape(), b.shape(), "add shape mismatch");
    let mut stats = LayerExecStats::default();
    // A 2-way merge + reduce over identical coordinate spaces, streaming
    // straight off the CSF walkers — no materialized copies of the inputs.
    let merged = isos_tensor::merge::merge_reduce(vec![a.iter(), b.iter()]);
    let k_rank = a.ndim() - 1;
    let mut entries: Vec<(Point, f32)> = Vec::with_capacity(a.nnz() + b.nnz());
    for (p, v) in merged {
        stats.backend.reductions += 1;
        let v = pou.apply(p[k_rank] as usize, v);
        if v != 0.0 {
            entries.push((p, v));
        }
    }
    stats.backend.outputs_emitted = entries.len() as u64;
    LayerExec {
        output: Csf::from_sorted_unique(a.shape().clone(), entries),
        stats,
    }
}

fn dims3(shape: &Shape) -> (usize, usize, usize) {
    assert_eq!(shape.ndim(), 3, "activations must be [H,W,C]");
    (shape[0], shape[1], shape[2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use isos_nn::reference;
    use isos_tensor::{gen, Dense};

    /// IS-OS conv must match the golden dense conv + BN/ReLU.
    #[allow(clippy::too_many_arguments)]
    fn check_conv(
        h: usize,
        w: usize,
        c: usize,
        r: usize,
        s: usize,
        k: usize,
        stride: usize,
        pad: usize,
        in_density: f64,
        w_density: f64,
        seed: u64,
    ) {
        let input = gen::random_dense(vec![h, w, c].into(), in_density, seed);
        let filter = gen::random_dense(vec![c, r, k, s].into(), w_density, seed + 1);
        let golden_pre = reference::conv2d(&input, &filter, stride, pad);
        let scale = vec![1.0; k];
        let bias = vec![0.0; k];
        let golden = reference::bn_relu(&golden_pre, &scale, &bias);

        let exec = execute_conv(
            &Csf::from_dense(&input),
            &Csf::from_dense(&filter),
            stride,
            pad,
            &Pou::relu(k),
        );
        let got = exec.output.to_dense();
        assert_eq!(got.shape(), golden.shape());
        assert!(
            got.max_abs_diff(&golden) < 1e-3,
            "mismatch {h}x{w}x{c} k{r}x{s}x{k} stride{stride} pad{pad}: {}",
            got.max_abs_diff(&golden)
        );
    }

    #[test]
    fn conv_matches_reference_basic() {
        check_conv(6, 8, 3, 3, 3, 4, 1, 0, 0.5, 0.3, 10);
    }

    #[test]
    fn conv_matches_reference_padded() {
        check_conv(6, 8, 3, 3, 3, 4, 1, 1, 0.5, 0.3, 20);
    }

    #[test]
    fn conv_matches_reference_strided() {
        check_conv(9, 11, 2, 3, 3, 5, 2, 1, 0.6, 0.4, 30);
    }

    #[test]
    fn conv_matches_reference_1x1() {
        check_conv(5, 5, 8, 1, 1, 16, 1, 0, 0.4, 0.2, 40);
    }

    #[test]
    fn conv_matches_reference_dense() {
        check_conv(4, 6, 2, 2, 2, 3, 1, 0, 1.0, 1.0, 50);
    }

    #[test]
    fn conv_matches_reference_very_sparse() {
        check_conv(8, 8, 4, 3, 3, 4, 1, 1, 0.1, 0.05, 60);
    }

    #[test]
    fn conv_matches_reference_wide_kernel() {
        check_conv(8, 10, 2, 5, 5, 3, 1, 2, 0.5, 0.3, 70);
    }

    #[test]
    fn dwconv_matches_reference() {
        let input = gen::random_dense(vec![6, 7, 4].into(), 0.6, 80);
        let filter = gen::random_dense(vec![4, 3, 3].into(), 0.5, 81);
        let golden_pre = reference::dwconv2d(&input, &filter, 1, 1);
        let golden = reference::bn_relu(&golden_pre, &[1.0; 4], &[0.0; 4]);
        let exec = execute_dwconv(
            &Csf::from_dense(&input),
            &Csf::from_dense(&filter),
            1,
            1,
            &Pou::relu(4),
        );
        assert!(exec.output.to_dense().max_abs_diff(&golden) < 1e-4);
    }

    #[test]
    fn dwconv_strided_matches_reference() {
        let input = gen::random_dense(vec![8, 8, 3].into(), 0.7, 90);
        let filter = gen::random_dense(vec![3, 3, 3].into(), 0.8, 91);
        let golden_pre = reference::dwconv2d(&input, &filter, 2, 1);
        let golden = reference::bn_relu(&golden_pre, &[1.0; 3], &[0.0; 3]);
        let exec = execute_dwconv(
            &Csf::from_dense(&input),
            &Csf::from_dense(&filter),
            2,
            1,
            &Pou::relu(3),
        );
        assert!(exec.output.to_dense().max_abs_diff(&golden) < 1e-4);
    }

    #[test]
    fn fc_matches_reference() {
        let input = gen::random_dense(vec![1, 1, 32].into(), 0.5, 100);
        let weights = gen::random_dense(vec![32, 10].into(), 0.3, 101);
        let golden = reference::fully_connected(&input, &weights);
        let exec = execute_fc(
            &Csf::from_dense(&input),
            &Csf::from_dense(&weights),
            &Pou::linear(10),
        );
        assert!(exec.output.to_dense().max_abs_diff(&golden) < 1e-4);
        // SpMV MAC count: every (nonzero input, nonzero row weight) pair.
        assert!(exec.stats.frontend.macs <= (input.nnz() * weights.nnz()) as u64);
    }

    #[test]
    fn add_matches_reference() {
        let a = gen::random_dense(vec![3, 4, 5].into(), 0.5, 110);
        let b = gen::random_dense(vec![3, 4, 5].into(), 0.5, 111);
        let golden = reference::bn_relu(&reference::add(&a, &b), &[1.0; 5], &[0.0; 5]);
        let exec = execute_add(&Csf::from_dense(&a), &Csf::from_dense(&b), &Pou::relu(5));
        assert!(exec.output.to_dense().max_abs_diff(&golden) < 1e-5);
    }

    #[test]
    fn conv_bn_parameters_flow_through() {
        let input = gen::random_dense(vec![4, 4, 2].into(), 0.8, 120);
        let filter = gen::random_dense(vec![2, 3, 3, 3].into(), 0.6, 121);
        let scale: Vec<f32> = vec![0.5, 2.0, 1.5];
        let bias: Vec<f32> = vec![0.1, -0.2, 0.3];
        let golden = reference::bn_relu(&reference::conv2d(&input, &filter, 1, 1), &scale, &bias);
        let exec = execute_conv(
            &Csf::from_dense(&input),
            &Csf::from_dense(&filter),
            1,
            1,
            &Pou::new(scale, bias),
        );
        assert!(exec.output.to_dense().max_abs_diff(&golden) < 1e-4);
    }

    #[test]
    fn mac_count_matches_effectual_expectation() {
        // Every (nonzero input, matching-channel nonzero weight) pair that
        // lands in-range is one MAC; compare against a direct count.
        let input = gen::random_dense(vec![5, 6, 3].into(), 0.5, 130);
        let filter = gen::random_dense(vec![3, 2, 4, 2].into(), 0.5, 131);
        let exec = execute_conv(
            &Csf::from_dense(&input),
            &Csf::from_dense(&filter),
            1,
            0,
            &Pou::relu(4),
        );
        let mut expected = 0u64;
        let fcsf = Csf::from_dense(&filter);
        for (p, _) in Csf::from_dense(&input).iter() {
            let (w, c) = (p[1] as usize, p[2]);
            if let Some(fc) = fcsf.root().find(c) {
                for (_r, kf) in fc.iter_children() {
                    for (_k, sf) in kf.iter_children() {
                        for (s, _) in sf.iter_leaf() {
                            let s = s as usize;
                            if w >= s && w - s < 5 {
                                expected += 1;
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(exec.stats.frontend.macs, expected);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let input = Csf::empty(vec![4, 4, 2].into());
        let filter = Csf::from_dense(&gen::random_dense(vec![2, 3, 3, 3].into(), 0.5, 140));
        let exec = execute_conv(&input, &filter, 1, 1, &Pou::relu(3));
        assert_eq!(exec.output.nnz(), 0);
        assert_eq!(exec.stats.frontend.macs, 0);
    }

    #[test]
    fn output_chains_into_next_layer() {
        // The defining IS-OS property: outputs are produced in exactly the
        // order the next frontend consumes ([P,Q,K] == next layer's
        // [H,W,C]).
        let input = gen::random_dense(vec![6, 6, 2].into(), 0.7, 150);
        let f1 = gen::random_dense(vec![2, 3, 4, 3].into(), 0.5, 151);
        let f2 = gen::random_dense(vec![4, 3, 3, 3].into(), 0.5, 152);
        let l1 = execute_conv(
            &Csf::from_dense(&input),
            &Csf::from_dense(&f1),
            1,
            1,
            &Pou::relu(4),
        );
        let l2 = execute_conv(&l1.output, &Csf::from_dense(&f2), 1, 1, &Pou::relu(3));

        let g1 = reference::bn_relu(&reference::conv2d(&input, &f1, 1, 1), &[1.0; 4], &[0.0; 4]);
        let g2 = reference::bn_relu(&reference::conv2d(&g1, &f2, 1, 1), &[1.0; 3], &[0.0; 3]);
        assert!(l2.output.to_dense().max_abs_diff(&g2) < 1e-3);
    }

    #[test]
    fn dense_dims_helper_rejects_wrong_rank() {
        let d = Dense::zeros(vec![2, 2].into());
        let f = Csf::from_dense(&gen::random_dense(vec![2, 1, 1, 1].into(), 1.0, 1));
        let result = std::panic::catch_unwind(|| {
            execute_conv(&Csf::from_dense(&d), &f, 1, 0, &Pou::relu(1))
        });
        assert!(result.is_err());
    }
}
