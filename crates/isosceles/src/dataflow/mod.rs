//! The IS-OS dataflow, functional implementation (paper Sec. III).
//!
//! The input-stationary–output-stationary dataflow is ISOSceles's core
//! contribution: it consumes input activations and produces output
//! activations *in the same order* (channel-then-column wavefronts), which
//! is what makes deep inter-layer pipelining possible with tiny
//! intermediate state. It is written as two pipelined loop nests (Fig. 8):
//!
//! - [`frontend::run_frontend`] — the IS frontend: one lane per input row,
//!   each multiplying input nonzeros against the `R x K x S` filter
//!   nonzeros of the matching channel and accumulating along `S`;
//! - [`backend::run_backend`] — the OS backend: one lane per output row,
//!   R-merging partials from the `R` surrounding frontend lanes (a sparse
//!   transpose), reducing along `R`, K-merging so channels interleave
//!   innermost, and applying the POU;
//! - [`layer_exec`] — whole-layer executors for conv / depth-wise / FC /
//!   add, validated against the golden model in `isos-nn`.

pub mod backend;
pub mod frontend;
pub mod layer_exec;
mod pou;

pub use backend::{BackendOutput, BackendStats};
pub use frontend::{FrontendStats, PartialStreams};
pub use layer_exec::{
    execute_add, execute_conv, execute_dwconv, execute_fc, LayerExec, LayerExecStats,
};
pub use pou::Pou;
