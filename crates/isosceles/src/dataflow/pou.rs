//! Point-wise Operation Unit (POU): batch normalization + ReLU.
//!
//! Each backend lane ends in a POU that applies BN and the non-linearity
//! before the output wavefront leaves the lane (paper Sec. IV-A). ReLU is
//! where output activation sparsity is created.

use serde::{Deserialize, Serialize};

/// Per-channel scale/bias followed by ReLU.
///
/// # Examples
///
/// ```
/// use isosceles::dataflow::Pou;
/// let pou = Pou::new(vec![2.0, 1.0], vec![0.0, -5.0]);
/// assert_eq!(pou.apply(0, 3.0), 6.0);
/// assert_eq!(pou.apply(1, 3.0), 0.0); // 3 - 5 < 0 -> ReLU clamps
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Pou {
    scale: Vec<f32>,
    bias: Vec<f32>,
}

impl Pou {
    /// Creates a POU with per-output-channel `scale` and `bias`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ or are zero.
    pub fn new(scale: Vec<f32>, bias: Vec<f32>) -> Self {
        assert_eq!(scale.len(), bias.len(), "scale/bias length mismatch");
        assert!(!scale.is_empty(), "POU needs at least one channel");
        Self { scale, bias }
    }

    /// The identity POU (scale 1, bias 0) over `channels` channels: pure
    /// ReLU.
    pub fn relu(channels: usize) -> Self {
        Self::new(vec![1.0; channels], vec![0.0; channels])
    }

    /// A pass-through POU that applies no non-linearity (used for the last
    /// layer of a pipeline when the paper's layer has no ReLU, e.g. the
    /// conv before a skip-connection add).
    pub fn linear(channels: usize) -> Self {
        Self {
            scale: vec![1.0; channels],
            bias: vec![f32::NEG_INFINITY; channels], // sentinel, see apply
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.scale.len()
    }

    /// Applies BN + ReLU for output channel `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn apply(&self, k: usize, value: f32) -> f32 {
        let bias = self.bias[k];
        if bias == f32::NEG_INFINITY {
            // Linear pass-through (no BN, no ReLU).
            return value * self.scale[k];
        }
        (value * self.scale[k] + bias).max(0.0)
    }

    /// Per-channel scales.
    pub fn scales(&self) -> &[f32] {
        &self.scale
    }

    /// Per-channel biases (`-inf` marks the linear pass-through).
    pub fn biases(&self) -> &[f32] {
        &self.bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negative() {
        let pou = Pou::relu(2);
        assert_eq!(pou.apply(0, -1.5), 0.0);
        assert_eq!(pou.apply(1, 1.5), 1.5);
    }

    #[test]
    fn bn_applies_scale_then_bias() {
        let pou = Pou::new(vec![3.0], vec![1.0]);
        assert_eq!(pou.apply(0, 2.0), 7.0);
    }

    #[test]
    fn linear_passes_negatives() {
        let pou = Pou::linear(1);
        assert_eq!(pou.apply(0, -2.0), -2.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = Pou::new(vec![1.0], vec![1.0, 2.0]);
    }
}
