//! The input-stationary (IS) frontend.
//!
//! Each frontend lane consumes one input activation row element by element
//! (wavefront by wavefront), fetches the filter sub-tensor for the
//! element's input channel, and multiplies across the `R x K x S` filter
//! nonzeros, accumulating partial results along `S` (paper Sec. IV-A,
//! Fig. 11). The result is one sorted partial-result stream per
//! `(lane h, filter row r, output channel k)`, ready for the OS backend's
//! R-mergers.
//!
//! This is the *functional* model: it performs exactly the effectual
//! multiplies the hardware would and produces the same streams, without
//! modeling time (the cycle-level model lives in [`crate::arch`]).

use isos_tensor::{Coord, Csf};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Work counters for a frontend pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrontendStats {
    /// Nonzero input activations consumed.
    pub inputs_consumed: u64,
    /// Filter sub-tensor fetches (one per input element with a matching
    /// nonzero channel fiber).
    pub filter_fetches: u64,
    /// Effectual multiply-accumulates performed.
    pub macs: u64,
    /// Partial results emitted (nonzero only, as in the PE output queue).
    pub partials_emitted: u64,
}

/// Partial-result streams keyed by `(h, r, k)`, each sorted by output
/// column `q`.
#[derive(Clone, Debug, Default)]
pub struct PartialStreams {
    streams: HashMap<(Coord, Coord, Coord), Vec<(Coord, f32)>>,
    stats: FrontendStats,
}

impl PartialStreams {
    /// The stream for frontend lane `h`, PE row `r`, output channel `k`,
    /// or an empty slice if no partials were produced there.
    pub fn stream(&self, h: Coord, r: Coord, k: Coord) -> &[(Coord, f32)] {
        self.streams.get(&(h, r, k)).map_or(&[], Vec::as_slice)
    }

    /// Work counters.
    pub fn stats(&self) -> FrontendStats {
        self.stats
    }

    /// Total partial-result elements across all streams.
    pub fn total_partials(&self) -> usize {
        self.streams.values().map(Vec::len).sum()
    }

    /// Distinct `(h, r, k)` streams.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }
}

/// Runs the IS frontend over a full layer.
///
/// `input` is `[H, W, C]` (CSF, concordant in lane-then-wavefront order);
/// `filter` is `[C, R, K, S]`. `q_dim` is the output width; `stride`/`pad`
/// follow the usual convolution arithmetic.
///
/// # Panics
///
/// Panics if tensor ranks are not 3 and 4 respectively.
pub fn run_frontend(
    input: &Csf,
    filter: &Csf,
    q_dim: usize,
    stride: usize,
    pad: usize,
) -> PartialStreams {
    assert_eq!(input.ndim(), 3, "input must be [H,W,C]");
    assert_eq!(filter.ndim(), 4, "filter must be [C,R,K,S]");
    let mut out = PartialStreams::default();
    // Accumulators: (h, r, k) -> q -> partial sum. BTreeMap keeps q sorted,
    // mirroring the in-order emission of the PE's S-deep register file.
    let mut acc: HashMap<(Coord, Coord, Coord), BTreeMap<Coord, f32>> = HashMap::new();
    let filter_root = filter.root();

    for (h, w_fiber) in input.root().iter_children() {
        // One lane: consume the row's wavefronts in W-then-C order.
        for (w, c_fiber) in w_fiber.iter_children() {
            for (c, ival) in c_fiber.iter_leaf() {
                out.stats.inputs_consumed += 1;
                // Fetch the filter sub-tensor for this input channel. The
                // hardware indexes the filter buffer by C, a concordant
                // step because C is the filter's outermost rank.
                let Some(f_c) = filter_root.find(c) else {
                    continue;
                };
                out.stats.filter_fetches += 1;
                for (r, k_fiber) in f_c.iter_children() {
                    for (k, s_fiber) in k_fiber.iter_children() {
                        let slot = acc.entry((h, r, k)).or_default();
                        for (s, fval) in s_fiber.iter_leaf() {
                            // Output column receiving this contribution:
                            // q*stride + s - pad == w.
                            let Some(num) = (w + pad as Coord).checked_sub(s) else {
                                continue;
                            };
                            if !(num as usize).is_multiple_of(stride) {
                                continue;
                            }
                            let q = num / stride as Coord;
                            if (q as usize) >= q_dim {
                                continue;
                            }
                            out.stats.macs += 1;
                            *slot.entry(q).or_insert(0.0) += ival * fval;
                        }
                    }
                }
            }
        }
    }

    for ((h, r, k), per_q) in acc {
        let stream: Vec<(Coord, f32)> = per_q
            .into_iter()
            .filter(|&(_, v)| v != 0.0) // PEs emit only nonzero partials
            .collect();
        if !stream.is_empty() {
            out.stats.partials_emitted += stream.len() as u64;
            out.streams.insert((h, r, k), stream);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use isos_tensor::Point;

    fn csf3(shape: [usize; 3], entries: &[([u32; 3], f32)]) -> Csf {
        Csf::from_entries(
            shape.to_vec().into(),
            entries
                .iter()
                .map(|&(c, v)| (Point::from_slice(&c), v))
                .collect(),
        )
    }

    fn csf4(shape: [usize; 4], entries: &[([u32; 4], f32)]) -> Csf {
        Csf::from_entries(
            shape.to_vec().into(),
            entries
                .iter()
                .map(|&(c, v)| (Point::from_slice(&c), v))
                .collect(),
        )
    }

    #[test]
    fn single_element_produces_srk_partials() {
        // One input nonzero at (h=0, w=1, c=0); filter has nonzeros at
        // (c=0, r=0, k=0, s=0) and (c=0, r=0, k=0, s=1).
        let input = csf3([1, 4, 1], &[([0, 1, 0], 2.0)]);
        let filter = csf4([1, 1, 1, 2], &[([0, 0, 0, 0], 3.0), ([0, 0, 0, 1], 5.0)]);
        let p = run_frontend(&input, &filter, 3, 1, 0);
        // s=0 -> q=1 (2*3); s=1 -> q=0 (2*5).
        assert_eq!(p.stream(0, 0, 0), &[(0, 10.0), (1, 6.0)]);
        assert_eq!(p.stats().macs, 2);
        assert_eq!(p.stats().inputs_consumed, 1);
    }

    #[test]
    fn accumulates_across_channels_and_s() {
        // Two input channels at the same (h, w); both hit q=0.
        let input = csf3([1, 1, 2], &[([0, 0, 0], 1.0), ([0, 0, 1], 10.0)]);
        let filter = csf4([2, 1, 1, 1], &[([0, 0, 0, 0], 2.0), ([1, 0, 0, 0], 3.0)]);
        let p = run_frontend(&input, &filter, 1, 1, 0);
        assert_eq!(p.stream(0, 0, 0), &[(0, 32.0)]);
    }

    #[test]
    fn empty_filter_channel_skips_fetch() {
        let input = csf3([1, 1, 2], &[([0, 0, 1], 5.0)]);
        // Filter only has channel 0; input only channel 1: nothing happens.
        let filter = csf4([2, 1, 1, 1], &[([0, 0, 0, 0], 2.0)]);
        let p = run_frontend(&input, &filter, 1, 1, 0);
        assert_eq!(p.total_partials(), 0);
        assert_eq!(p.stats().filter_fetches, 0);
        assert_eq!(p.stats().inputs_consumed, 1);
    }

    #[test]
    fn stride_two_skips_odd_columns() {
        let input = csf3([1, 4, 1], &[([0, 1, 0], 1.0), ([0, 2, 0], 1.0)]);
        let filter = csf4([1, 1, 1, 1], &[([0, 0, 0, 0], 1.0)]);
        let p = run_frontend(&input, &filter, 2, 2, 0);
        // w=1 -> q=0.5 invalid; w=2 -> q=1.
        assert_eq!(p.stream(0, 0, 0), &[(1, 1.0)]);
    }

    #[test]
    fn padding_shifts_columns() {
        let input = csf3([1, 2, 1], &[([0, 0, 0], 1.0)]);
        let filter = csf4([1, 1, 1, 3], &[([0, 0, 0, 2], 7.0)]);
        // q = w + pad - s = 0 + 1 - 2 < 0: dropped without pad... with
        // pad=1: q = -1 -> invalid; with pad=2: q = 0.
        let p1 = run_frontend(&input, &filter, 2, 1, 1);
        assert_eq!(p1.stream(0, 0, 0), &[]);
        let p2 = run_frontend(&input, &filter, 2, 1, 2);
        assert_eq!(p2.stream(0, 0, 0), &[(0, 7.0)]);
    }

    #[test]
    fn streams_are_sorted_by_q() {
        let input = Csf::from_dense(&isos_tensor::gen::random_dense(
            vec![2, 10, 3].into(),
            0.6,
            11,
        ));
        let filter = Csf::from_dense(&isos_tensor::gen::random_dense(
            vec![3, 2, 4, 3].into(),
            0.4,
            12,
        ));
        let p = run_frontend(&input, &filter, 8, 1, 0);
        for h in 0..2 {
            for r in 0..2 {
                for k in 0..4 {
                    let s = p.stream(h, r, k);
                    assert!(s.windows(2).all(|w| w[0].0 < w[1].0), "unsorted stream");
                }
            }
        }
        assert!(p.stats().macs > 0);
        // Effectual MACs cannot exceed nnz(input) * nnz(filter).
        assert!(p.stats().macs <= (input.nnz() * filter.nnz()) as u64);
    }
}
