//! Result types for simulation runs — re-exported from
//! [`isos_sim::metrics`].
//!
//! The types used to be defined here, which forced every crate that
//! merely *names* a result (`isos-baselines`, `isosceles-bench`,
//! `isos-explore`) to depend on the ISOSceles model crate. They now live
//! in the shared substrate; this module remains so existing
//! `isosceles::metrics::{RunMetrics, NetworkMetrics}` paths keep
//! working.

pub use isos_sim::metrics::{apportion_capped, apportion_cycles, NetworkMetrics, RunMetrics};
