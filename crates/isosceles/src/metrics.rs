//! Result types shared by the ISOSceles model and the baselines.

use isos_sim::energy::Activity;
use isos_sim::stats::Utilization;
use serde::{Deserialize, Serialize};

/// Metrics from simulating one pipeline group or one whole network.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Execution cycles.
    pub cycles: u64,
    /// Off-chip weight traffic in bytes (Fig. 14c split).
    pub weight_traffic: f64,
    /// Off-chip activation traffic in bytes (input + output + halo).
    pub act_traffic: f64,
    /// MAC array utilization (Fig. 16).
    pub mac_util: Utilization,
    /// Memory bandwidth utilization (Fig. 15).
    pub bw_util: Utilization,
    /// Activity for the energy model (Fig. 17).
    pub activity: Activity,
    /// Effectual MACs performed.
    pub effectual_macs: f64,
}

impl RunMetrics {
    /// Total off-chip traffic in bytes.
    pub fn total_traffic(&self) -> f64 {
        self.weight_traffic + self.act_traffic
    }

    /// Speedup of `self` relative to `other` (higher = `self` faster).
    ///
    /// # Panics
    ///
    /// Panics if `self.cycles` is zero.
    pub fn speedup_over(&self, other: &RunMetrics) -> f64 {
        assert!(self.cycles > 0, "zero-cycle run");
        other.cycles as f64 / self.cycles as f64
    }

    /// Accumulates another run executed sequentially after this one.
    pub fn accumulate(&mut self, other: &RunMetrics) {
        self.cycles += other.cycles;
        self.weight_traffic += other.weight_traffic;
        self.act_traffic += other.act_traffic;
        self.mac_util.merge(&other.mac_util);
        self.bw_util.merge(&other.bw_util);
        self.activity.merge(&other.activity);
        self.effectual_macs += other.effectual_macs;
    }
}

/// Per-group breakdown of a network run (Fig. 18 reports these).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct NetworkMetrics {
    /// Whole-network totals.
    pub total: RunMetrics,
    /// Per-pipeline-group results, in execution order.
    pub groups: Vec<(String, RunMetrics)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_sums_components() {
        let mut a = RunMetrics {
            cycles: 100,
            weight_traffic: 10.0,
            act_traffic: 20.0,
            effectual_macs: 1000.0,
            ..Default::default()
        };
        let b = RunMetrics {
            cycles: 50,
            weight_traffic: 5.0,
            act_traffic: 5.0,
            effectual_macs: 500.0,
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.cycles, 150);
        assert_eq!(a.total_traffic(), 40.0);
        assert_eq!(a.effectual_macs, 1500.0);
    }

    #[test]
    fn speedup_is_cycle_ratio() {
        let fast = RunMetrics {
            cycles: 100,
            ..Default::default()
        };
        let slow = RunMetrics {
            cycles: 400,
            ..Default::default()
        };
        assert_eq!(fast.speedup_over(&slow), 4.0);
    }
}
