//! Programmable interconnect configuration (paper Fig. 12/13).
//!
//! Diverse CNN graphs map onto ISOSceles by configuring which hardware
//! unit feeds which queue: fetchers push off-chip activations into queues,
//! each layer's pipeline (intersect → PE → mergers → POU) drains one queue
//! and fills another, and writers drain the final queues to DRAM. Fig. 13
//! shows the resulting src→dst table for a ResNet block; this module
//! generates that configuration for any [`PipelineGroup`].

use crate::mapping::PipelineGroup;
use isos_nn::graph::{Network, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A hardware endpoint in the interconnect configuration.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Unit {
    /// Off-chip input activation fetcher for an external tensor
    /// (producer layer name, or the network input).
    Fetcher(String),
    /// The POU output of an on-chip layer context.
    Pou(String),
    /// The merger path of an on-chip layer context (skip-connection adds).
    Merger(String),
    /// Off-chip output activation writer.
    Writer(String),
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Unit::Fetcher(n) => write!(f, "fetcher[{n}]"),
            Unit::Pou(n) => write!(f, "pou[{n}]"),
            Unit::Merger(n) => write!(f, "merger[{n}]"),
            Unit::Writer(n) => write!(f, "writer[{n}]"),
        }
    }
}

/// One configured connection: `src` pushes wavefronts into the queue
/// feeding `dst`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Connection {
    /// Producing unit.
    pub src: Unit,
    /// Consuming unit.
    pub dst: Unit,
    /// Queue id within the group's queue budget.
    pub queue: usize,
}

/// The full interconnect configuration for one pipeline group.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct InterconnectConfig {
    /// Group name.
    pub group: String,
    /// Connections in queue order.
    pub connections: Vec<Connection>,
}

impl InterconnectConfig {
    /// Number of queues used.
    pub fn queue_count(&self) -> usize {
        self.connections.len()
    }

    /// Number of distinct off-chip fetchers.
    pub fn fetcher_count(&self) -> usize {
        self.connections
            .iter()
            .filter(|c| matches!(c.src, Unit::Fetcher(_)))
            .count()
    }

    /// Renders the Fig. 13-style mapping table.
    pub fn to_table(&self) -> String {
        let mut out = format!("mapping configuration for {}\n", self.group);
        out.push_str(&format!("{:<28} {:<28} queue\n", "src", "dst"));
        for c in &self.connections {
            out.push_str(&format!(
                "{:<28} {:<28} {}\n",
                c.src.to_string(),
                c.dst.to_string(),
                c.queue
            ));
        }
        out
    }
}

/// Builds the interconnect configuration for `group` within `net`.
///
/// Layers with external producers get fetchers; every in-group edge gets a
/// queue from the producer's POU (or merger, for adds) to the consumer;
/// group sinks get writers. Matches the paper's Fig. 13 for a ResNet
/// block: fetcher → queue0 → layer0 → queue1 → layer1 ... merger → writer.
pub fn configure(net: &Network, group: &PipelineGroup) -> InterconnectConfig {
    let in_group = |id: &NodeId| group.layers.contains(id);
    let unit_of = |id: NodeId| {
        let layer = net.layer(id);
        if matches!(layer.kind, isos_nn::layer::LayerKind::Add) {
            Unit::Merger(layer.name.clone())
        } else {
            Unit::Pou(layer.name.clone())
        }
    };
    let mut connections = Vec::new();
    let mut queue = 0usize;
    let mut push = |src: Unit, dst: Unit, connections: &mut Vec<Connection>| {
        connections.push(Connection { src, dst, queue });
        queue += 1;
    };

    for &id in &group.layers {
        let dst = unit_of(id);
        let inputs = &net.nodes()[id].inputs;
        if inputs.is_empty() {
            push(Unit::Fetcher("input".into()), dst.clone(), &mut connections);
        }
        for &p in inputs {
            let src = if in_group(&p) {
                unit_of(p)
            } else {
                Unit::Fetcher(net.layer(p).name.clone())
            };
            push(src, dst.clone(), &mut connections);
        }
    }
    for &id in &group.layers {
        let consumers = net.consumers(id);
        let external = consumers.is_empty() || consumers.iter().any(|c| !in_group(c));
        if external {
            push(
                unit_of(id),
                Unit::Writer(net.layer(id).name.clone()),
                &mut connections,
            );
        }
    }
    InterconnectConfig {
        group: group.name.clone(),
        connections,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{map_network, ExecMode};
    use crate::IsoscelesConfig;
    use isos_nn::models::resnet50;

    fn resnet_block_config() -> InterconnectConfig {
        let net = resnet50(0.96, 1);
        let mapping = map_network(&net, &IsoscelesConfig::default(), ExecMode::Pipelined);
        let block = mapping
            .groups
            .iter()
            .find(|g| g.layers.len() >= 4)
            .expect("a pipelined block");
        configure(&net, block)
    }

    #[test]
    fn resnet_block_matches_fig13_shape() {
        let cfg = resnet_block_config();
        // One off-chip fetcher feeds the block (conv1 and the skip share
        // the block input, each via its own queue, like Fig. 13's
        // fetcher->queue0 plus the skip queue).
        assert!(cfg.fetcher_count() >= 2, "{}", cfg.to_table());
        // Exactly one writer drains the block's final add.
        let writers = cfg
            .connections
            .iter()
            .filter(|c| matches!(c.dst, Unit::Writer(_)))
            .count();
        assert!(writers >= 1);
        // Every queue id is unique and dense.
        let mut ids: Vec<usize> = cfg.connections.iter().map(|c| c.queue).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), cfg.connections.len());
    }

    #[test]
    fn adds_route_through_mergers() {
        let cfg = resnet_block_config();
        assert!(
            cfg.connections
                .iter()
                .any(|c| matches!(&c.dst, Unit::Merger(n) if n.ends_with(".add"))),
            "skip join must target a merger:\n{}",
            cfg.to_table()
        );
    }

    #[test]
    fn table_renders_every_connection() {
        let cfg = resnet_block_config();
        let table = cfg.to_table();
        assert_eq!(table.lines().count(), cfg.connections.len() + 2);
        assert!(table.contains("fetcher["));
        assert!(table.contains("writer["));
    }

    #[test]
    fn single_layer_group_is_fetcher_layer_writer() {
        let net = resnet50(0.96, 1);
        let mapping = map_network(&net, &IsoscelesConfig::default(), ExecMode::Pipelined);
        let single = mapping
            .groups
            .iter()
            .find(|g| g.layers.len() == 1 && g.name == "conv1")
            .expect("conv1 single group");
        let cfg = configure(&net, single);
        assert_eq!(cfg.queue_count(), 2); // fetcher -> conv1 -> writer
    }
}
