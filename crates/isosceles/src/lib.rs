//! ISOSceles: a sparse CNN accelerator with inter-layer pipelining.
//!
//! This crate is a from-scratch reproduction of the system in *ISOSceles:
//! Accelerating Sparse CNNs through Inter-Layer Pipelining* (HPCA 2023). It
//! has two halves that share one set of data structures:
//!
//! - **Functional**: [`dataflow`] executes layers under the IS-OS dataflow
//!   (IS frontend, OS backend with R-/K-mergers, POU), producing outputs
//!   bit-equivalent to a dense golden model. This demonstrates the
//!   dataflow's defining property: activations are consumed and produced
//!   in the same wavefront order, so layers chain with tiny intermediates.
//! - **Performance**: [`arch`] simulates the time-multiplexed accelerator
//!   (Table I configuration in [`IsoscelesConfig`]) at cycle level —
//!   dynamic PE scheduling, DRAM bandwidth contention, weight preloading,
//!   inter-layer queues — over the execution plan built by [`mapping`]
//!   (greedy pipelining with P/K tiling, Table IV).
//!
//! # Examples
//!
//! Functional layer execution, validated against a dense reference:
//!
//! ```
//! use isosceles::dataflow::{execute_conv, Pou};
//! use isos_tensor::{gen, Csf};
//! let input = gen::random_csf(vec![8, 8, 4].into(), 0.5, 1);
//! let filter = gen::random_csf(vec![4, 3, 8, 3].into(), 0.1, 2);
//! let out = execute_conv(&input, &filter, 1, 1, &Pou::relu(8));
//! assert_eq!(out.output.shape().dims(), &[8, 8, 8]);
//! ```
//!
//! Cycle-level simulation of a pruned network:
//!
//! ```
//! use isosceles::{accel::Accelerator, IsoscelesConfig};
//! let net = isos_nn::models::googlenet_inception3a(0.58, 1);
//! let result = IsoscelesConfig::default().simulate(&net, 1);
//! assert!(result.total.cycles > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accel;
pub mod arch;
pub mod config;
pub mod dataflow;
pub mod interconnect;
pub mod mapping;
pub mod metrics;
pub mod spgemm;

pub use accel::Accelerator;
pub use config::IsoscelesConfig;
pub use mapping::{map_network, ExecMode, Mapping, PipelineGroup};
pub use metrics::{NetworkMetrics, RunMetrics};
