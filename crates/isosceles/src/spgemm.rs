//! Sparse matrix–sparse matrix multiplication on ISOSceles hardware.
//!
//! Paper Sec. VII: "small changes to ISOSceles would allow it to support
//! Gustavson's dataflow (by using the fetcher, PE array, and K-merger, and
//! bypassing other modules), which pipelines naturally." This module
//! implements that extension: row-wise (Gustavson) SpGEMM where each
//! nonzero `A[i,k]` fetches row `B[k,:]` (the fetcher + filter-buffer
//! path), scales it in the PE array, and the per-row partial products are
//! merged and reduced by the K-merger — the same structures the OS backend
//! uses for transposition.

use crate::metrics::RunMetrics;
use isos_tensor::merge::comparator_levels;
use isos_tensor::{Csf, Point, Shape};
use serde::{Deserialize, Serialize};

/// Work counters for one SpGEMM.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpgemmStats {
    /// Rows of `A` processed.
    pub a_rows: u64,
    /// Nonzeros of `A` consumed.
    pub a_nnz: u64,
    /// Row fetches of `B` (one per `A` nonzero with a matching row).
    pub b_row_fetches: u64,
    /// Effectual multiplies.
    pub macs: u64,
    /// Elements emitted by the per-row K-mergers.
    pub merged: u64,
    /// Comparator activations in the mergers.
    pub merger_comparisons: u64,
}

/// Result of an SpGEMM: the product and its work counters.
#[derive(Clone, Debug)]
pub struct SpgemmOutput {
    /// `A x B` in CSF (`[M, N]`).
    pub output: Csf,
    /// Work counters.
    pub stats: SpgemmStats,
}

/// Multiplies two sparse matrices with Gustavson's dataflow.
///
/// `a` is `[M, K]`, `b` is `[K, N]`; the result is `[M, N]`. Both inputs
/// are traversed concordantly; per output row, the scaled `B` rows are
/// combined by column — the merge-reduce pattern of a backend lane.
///
/// The software engine runs the merge as a word-level scratch accumulator:
/// scaled `B` rows accumulate into a dense per-row scratch, touched columns
/// are tracked in a packed `u64` bitmask, and the sorted output is replayed
/// with `trailing_zeros` iteration. Because each scaled row has unique
/// columns and the K-merger's tie-break is stable (lower stream first), the
/// scratch accumulates values in exactly the merge-emission order, so the
/// output values are bit-identical to the merger's. The charged
/// [`SpgemmStats`] are likewise identical: every scaled element is emitted
/// once and costs [`comparator_levels`] of the stream radix, exactly what
/// the radix-bounded K-merger charges.
///
/// # Panics
///
/// Panics if the inner dimensions disagree or inputs are not matrices.
pub fn spgemm(a: &Csf, b: &Csf) -> SpgemmOutput {
    assert_eq!(a.ndim(), 2, "A must be a matrix");
    assert_eq!(b.ndim(), 2, "B must be a matrix");
    assert_eq!(a.shape()[1], b.shape()[0], "inner dimension mismatch");
    let m = a.shape()[0];
    let n = b.shape()[1];

    let mut stats = SpgemmStats::default();
    let mut entries: Vec<(Point, f32)> = Vec::new();
    let b_root = b.root();
    // Word-level row-fetch index: one popcount probe per A nonzero instead
    // of a per-element binary search over B's root fiber.
    let b_index = b_root.index();
    // Per-output-row scratch, reused across rows; `touched` packs the
    // columns written this row.
    let mut scratch = vec![0.0f32; n];
    let mut touched = vec![0u64; n.div_ceil(64)];

    for (i, a_row) in a.root().iter_children() {
        stats.a_rows += 1;
        // Streams = scaled B rows, visited in A-nonzero order (the
        // merger's stream order). Count them for the comparator charge.
        let mut streams = 0u64;
        let mut elems = 0u64;
        for (k, a_val) in a_row.iter_leaf() {
            stats.a_nnz += 1;
            let Some(pos) = b_index.position(k) else {
                continue;
            };
            let b_row = b_root.child(pos);
            stats.b_row_fetches += 1;
            streams += 1;
            for (j, b_val) in b_row.iter_leaf() {
                stats.macs += 1;
                elems += 1;
                let j = j as usize;
                let (w, bit) = (j / 64, 1u64 << (j % 64));
                if touched[w] & bit == 0 {
                    touched[w] |= bit;
                    scratch[j] = a_val * b_val;
                } else {
                    scratch[j] += a_val * b_val;
                }
            }
        }
        if streams == 0 {
            continue;
        }
        stats.merged += elems;
        stats.merger_comparisons += elems * comparator_levels(streams as usize) as u64;
        // Sorted replay of the touched columns; clear as we go so the
        // scratch is pristine for the next row.
        for (w, word) in touched.iter_mut().enumerate() {
            let mut bits = *word;
            *word = 0;
            while bits != 0 {
                let j = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let v = scratch[j];
                scratch[j] = 0.0;
                if v != 0.0 {
                    entries.push((Point::from_slice(&[i, j as u32]), v));
                }
            }
        }
    }
    SpgemmOutput {
        output: Csf::from_sorted_unique(Shape::new(vec![m, n]), entries),
        stats,
    }
}

/// Analytic performance estimate for one SpGEMM on the Table-I ISOSceles
/// configuration, using the same cost model as the CNN path: one cycle per
/// effectual MAC across the MAC array versus streaming both operands and
/// the result once over DRAM.
pub fn estimate_run(
    out: &SpgemmOutput,
    a: &Csf,
    b: &Csf,
    cfg: &crate::IsoscelesConfig,
) -> RunMetrics {
    let bytes =
        |t: &Csf| isos_nn::layer::compressed_bytes(t.nnz() as f64, t.shape().volume() as f64);
    let mut m = RunMetrics {
        effectual_macs: out.stats.macs as f64,
        weight_traffic: bytes(b),
        act_traffic: bytes(a) + bytes(&out.output),
        ..Default::default()
    };
    let compute = m.effectual_macs / cfg.total_macs() as f64;
    let memory = m.total_traffic() / cfg.dram_bytes_per_cycle;
    m.cycles = compute.max(memory).ceil().max(1.0) as u64;
    m.mac_util.add(compute.min(m.cycles as f64), m.cycles);
    m.bw_util.add(memory.min(m.cycles as f64), m.cycles);
    m.activity.dram_bytes = m.total_traffic();
    m.activity.macs = m.effectual_macs;
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use isos_tensor::{gen, Dense};

    fn dense_matmul(a: &Dense, b: &Dense) -> Dense {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        assert_eq!(b.shape()[0], k);
        let mut out = Dense::zeros(vec![m, n].into());
        for i in 0..m {
            for kk in 0..k {
                let av = a.data()[i * k + kk];
                if av == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out.data_mut()[i * n + j] += av * b.data()[kk * n + j];
                }
            }
        }
        out
    }

    #[test]
    fn spgemm_matches_dense_matmul() {
        for seed in 0..5 {
            let ad = gen::random_dense(vec![13, 17].into(), 0.3, seed);
            let bd = gen::random_dense(vec![17, 11].into(), 0.25, seed + 100);
            let out = spgemm(&Csf::from_dense(&ad), &Csf::from_dense(&bd));
            let golden = dense_matmul(&ad, &bd);
            assert!(
                out.output.to_dense().max_abs_diff(&golden) < 1e-4,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn mac_count_is_exact() {
        let ad = gen::random_dense(vec![8, 8].into(), 0.4, 7);
        let bd = gen::random_dense(vec![8, 8].into(), 0.4, 8);
        let a = Csf::from_dense(&ad);
        let b = Csf::from_dense(&bd);
        let out = spgemm(&a, &b);
        // Gustavson MACs = sum over A nonzeros of |B[k,:]|.
        let mut expected = 0u64;
        for (p, _) in a.iter() {
            if let Some(row) = b.root().find(p[1]) {
                expected += row.len() as u64;
            }
        }
        assert_eq!(out.stats.macs, expected);
    }

    #[test]
    fn empty_inputs_produce_empty_output() {
        let a = Csf::empty(vec![4, 4].into());
        let b = gen::random_csf(vec![4, 4].into(), 0.5, 1);
        let out = spgemm(&a, &b);
        assert_eq!(out.output.nnz(), 0);
        assert_eq!(out.stats.macs, 0);
    }

    #[test]
    fn identity_matrix_is_neutral() {
        let eye = Csf::from_entries(
            vec![6, 6].into(),
            (0..6u32)
                .map(|i| (Point::from_slice(&[i, i]), 1.0))
                .collect(),
        );
        let x = gen::random_csf(vec![6, 6].into(), 0.4, 3);
        let out = spgemm(&eye, &x);
        assert_eq!(out.output, x);
    }

    #[test]
    fn estimate_reports_traffic_and_cycles() {
        let a = gen::random_csf(vec![64, 64].into(), 0.1, 1);
        let b = gen::random_csf(vec![64, 64].into(), 0.1, 2);
        let out = spgemm(&a, &b);
        let est = estimate_run(&out, &a, &b, &crate::IsoscelesConfig::default());
        assert!(est.cycles > 0);
        assert!(est.total_traffic() > 0.0);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn dimension_mismatch_panics() {
        let a = gen::random_csf(vec![4, 5].into(), 0.5, 1);
        let b = gen::random_csf(vec![4, 4].into(), 0.5, 2);
        let _ = spgemm(&a, &b);
    }
}
