//! Cycle-level simulation of inter-layer pipelined execution.
//!
//! One [`PipelineGroup`] at a time is resident on the single time-
//! multiplexed IS-OS block (paper Sec. IV-B). The simulation advances in
//! scheduler intervals (100 cycles): each interval, layers post MAC demand
//! for the output columns whose wavefront dependencies are satisfied, the
//! dynamic scheduler divides the 4096 MACs proportionally to the previous
//! interval's demand, and the DRAM grants weight-fetch / input-fetch /
//! output-writeback bandwidth. Compute-bound and memory-bound phases — and
//! the fragmentation loss of periodic scheduling — emerge from this
//! contention rather than being assumed.

use super::scheduler::DynamicScheduler;
use crate::config::IsoscelesConfig;
use crate::mapping::{map_network, ExecMode, Mapping, PipelineGroup};
use crate::metrics::{apportion_capped, apportion_cycles, NetworkMetrics, RunMetrics};
use isos_nn::graph::{Network, NodeId};
use isos_nn::work::{layer_work, LayerWork};
use isos_sim::dram::arbitrate;
use isos_sim::harness::{MemClient, MemHarness};
use isos_sim::stats::Utilization;
use isos_trace::{NullSink, StallKind, TraceEvent, TraceSink, UnitId, UnitKind};

/// Where a simulated layer's input comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Source {
    /// Fetched from DRAM (producer outside the group, or network input).
    External(usize),
    /// Streamed on-chip from another layer in the group.
    Local(usize),
}

/// Per-layer execution state.
#[derive(Debug)]
struct SimLayer {
    work: LayerWork,
    /// Prefix sums of `macs_per_col` for O(1) demand queries.
    cum_macs: Vec<f64>,
    producers: Vec<Source>,
    writes_extern: bool,
    weight_left: f64,
    /// Weight bytes granted so far (per-layer traffic attribution).
    weight_streamed: f64,
    cols_done: usize,
    col_progress: f64,
    produced_bytes: f64,
    written_bytes: f64,
    macs_executed: f64,
    /// Columns of decoupling allowed past the slowest consumer.
    ahead_cols: usize,
}

/// An input tensor streamed from DRAM.
#[derive(Debug)]
struct ExtStream {
    bytes_per_col: Vec<f64>,
    fetched_cols: usize,
    byte_progress: f64,
    /// Traffic multiplier: K-tiling re-reads and P-tiling halos.
    scale: f64,
    /// Group-local index of the consumer layer the stream feeds (its
    /// granted bytes are attributed to that layer's breakdown).
    owner: usize,
    /// Bytes granted so far (per-layer traffic attribution).
    granted: f64,
}

impl ExtStream {
    fn remaining_bytes_to(&self, target_col: usize) -> f64 {
        let target = target_col.min(self.bytes_per_col.len());
        if self.fetched_cols >= target {
            return 0.0;
        }
        let raw: f64 = self.bytes_per_col[self.fetched_cols..target].iter().sum();
        let rem = raw * self.scale - self.byte_progress;
        if rem < 1e-6 {
            0.0
        } else {
            rem
        }
    }

    fn advance(&mut self, granted: f64) {
        self.byte_progress += granted;
        while self.fetched_cols < self.bytes_per_col.len() {
            let need = self.bytes_per_col[self.fetched_cols] * self.scale;
            if self.byte_progress + 1e-6 < need {
                break;
            }
            self.byte_progress -= need;
            self.fetched_cols += 1;
        }
    }
}

/// Result of simulating one pipeline group: the group totals plus the
/// per-layer breakdown behind them (Fig. 12-16 report layers).
#[derive(Clone, Debug, PartialEq)]
pub struct GroupRun {
    /// Group totals.
    pub metrics: RunMetrics,
    /// Per-member-layer metrics in group order; they accumulate back to
    /// `metrics` (exactly for cycles, to float association for the rest).
    pub layers: Vec<(String, RunMetrics)>,
}

/// Simulates one pipeline group to completion.
///
/// # Panics
///
/// Panics if the simulation deadlocks (a model bug) or exceeds a safety
/// bound of cycles.
pub fn simulate_group(
    net: &Network,
    cfg: &IsoscelesConfig,
    group: &PipelineGroup,
    seed: u64,
) -> GroupRun {
    simulate_group_traced(net, cfg, group, seed, 0, &mut NullSink)
}

/// [`simulate_group`] with trace emission.
///
/// When `sink` is enabled, every member layer becomes one trace unit and
/// every scheduler interval emits one compute event per unit — effectual
/// busy time plus the stall taxonomy, conserving the interval length —
/// and one DRAM event per memory stream. `t0` offsets event timestamps
/// so consecutive groups of a network land on one shared timeline.
/// Tracing only observes the simulation: the returned metrics are
/// bit-identical to the untraced run either way.
pub fn simulate_group_traced(
    net: &Network,
    cfg: &IsoscelesConfig,
    group: &PipelineGroup,
    seed: u64,
    t0: u64,
    sink: &mut dyn TraceSink,
) -> GroupRun {
    let (mut layers, mut ext_streams) = build_group_state(net, cfg, group, seed);
    let interval = cfg.scheduler_interval;
    let total_macs = cfg.total_macs() as f64;
    let mut mem = MemHarness::new(cfg.dram_bytes_per_cycle);
    let mut sched = DynamicScheduler::new(total_macs);
    let mut metrics = RunMetrics::default();

    let tracing = sink.enabled();
    let unit_ids: Vec<UnitId> = layers
        .iter()
        .map(|l| sink.unit(&l.work.name, UnitKind::Layer))
        .collect();

    let safety_cycles: u64 = 500_000_000_000;
    let mut stalled_intervals = 0u32;
    loop {
        let t_start = t0 + metrics.cycles;
        // 1. Wavefront-dependency analysis: how far may each layer run?
        let n = layers.len();
        let mut ready = vec![0usize; n];
        // Stall-attribution observations (integer snapshots; free to
        // compute, only read when tracing).
        let mut r_inputs = vec![0usize; n];
        let mut r_bps = vec![usize::MAX; n];
        let mut gated = vec![false; n];
        let done_before: Vec<bool> = layers
            .iter()
            .map(|l| l.cols_done >= l.work.out_cols)
            .collect();
        for i in 0..n {
            let avail_in = layers[i]
                .producers
                .iter()
                .map(|s| match *s {
                    Source::External(e) => ext_streams[e].fetched_cols,
                    Source::Local(j) => layers[j].cols_done,
                })
                .min()
                .unwrap_or(layers[i].work.in_cols);
            let r_input = max_out_cols(&layers[i].work, avail_in);
            // Backpressure: don't run more than `ahead_cols` past the
            // slowest in-group consumer.
            let mut r_bp = usize::MAX;
            for j in 0..n {
                if layers[j].producers.contains(&Source::Local(i)) {
                    let consumed = if layers[j].cols_done >= layers[j].work.out_cols {
                        usize::MAX
                    } else {
                        layers[j].cols_done * layers[j].work.stride
                    };
                    r_bp = r_bp.min(consumed.saturating_add(layers[i].ahead_cols));
                }
            }
            let weight_gated = layers[i].weight_left > 0.0;
            let r = if weight_gated {
                layers[i].cols_done
            } else {
                r_input.min(r_bp)
            };
            ready[i] = r.clamp(layers[i].cols_done, layers[i].work.out_cols);
            r_inputs[i] = r_input;
            r_bps[i] = r_bp;
            gated[i] = weight_gated;
        }

        // 2. MAC demand and dynamic allocation.
        let demand: Vec<f64> = (0..n)
            .map(|i| {
                let l = &layers[i];
                (l.cum_macs[ready[i]] - l.cum_macs[l.cols_done] - l.col_progress).max(0.0)
            })
            .collect();
        let alloc = sched.allocate(&demand);
        let interval_capacity = interval as f64 * cfg.pe_efficiency;
        let mut executed_total = 0.0;
        let mut leftover_pes = 0.0;
        let mut unmet: Vec<f64> = vec![0.0; n];
        let mut used_per = vec![0.0f64; n];
        for i in 0..n {
            let budget = demand[i].min(alloc[i] * interval_capacity);
            let used = advance_layer(&mut layers[i], budget, ready[i]);
            used_per[i] = used;
            executed_total += used;
            leftover_pes += (alloc[i] * interval_capacity - used) / interval_capacity;
            unmet[i] = (demand[i] - used).max(0.0);
        }
        // Work-conserving pass: PEs freed by layers whose demand shrank
        // since the last interval pick up queued work from other contexts
        // (the scheduler reallocates shares only every interval, but idle
        // PEs still drain whatever is in their context queues).
        let mut extra_share = vec![0.0f64; n];
        if leftover_pes > 0.0 {
            let extra = arbitrate(&unmet, leftover_pes * interval_capacity);
            for i in 0..n {
                if extra[i] > 0.0 {
                    let used = advance_layer(&mut layers[i], extra[i], ready[i]);
                    used_per[i] += used;
                    executed_total += used;
                    extra_share[i] = extra[i];
                }
            }
        }

        // 3. DRAM: weight fetches, input prefetch, output writeback, all
        // through the shared memory harness (demand → grant → throttle →
        // accumulate). Weight streams first (same order every interval),
        // then the external input streams, prefetching a few columns ahead
        // of the consumers (the decoupled fetcher FSMs of Sec. IV-A).
        // Clients carry the trace unit of the layer their stream serves.
        let prefetch = 8usize;
        let clients: Vec<MemClient> = layers
            .iter()
            .enumerate()
            .map(|(i, l)| MemClient::weight(l.weight_left).for_unit(unit_ids[i]))
            .chain(ext_streams.iter().map(|s| {
                MemClient::activation(s.remaining_bytes_to(s.fetched_cols + prefetch))
                    .for_unit(unit_ids[s.owner])
            }))
            .collect();
        let write_pending: Vec<f64> = layers
            .iter()
            .map(|l| {
                if l.writes_extern {
                    l.produced_bytes - l.written_bytes
                } else {
                    0.0
                }
            })
            .collect();
        if tracing {
            // One compute event per layer plus at most one DRAM event per
            // memory stream this interval; reserving up front keeps the
            // sink from growing its buffer mid-stream.
            sink.hint_events(n + clients.len() + write_pending.len());
        }
        let grants = mem.step_traced(&clients, &write_pending, &unit_ids, interval, t_start, sink);
        for (i, l) in layers.iter_mut().enumerate() {
            l.weight_left = (l.weight_left - grants.reads[i]).max(0.0);
            l.weight_streamed += grants.reads[i];
        }
        for (e, s) in ext_streams.iter_mut().enumerate() {
            let g = grants.reads[layers.len() + e];
            s.advance(g);
            s.granted += g;
        }
        // Writeback distributed proportionally across sinks.
        for (l, w) in layers.iter_mut().zip(&grants.writes) {
            l.written_bytes += w;
        }

        // Per-unit occupancy attribution for this interval. Pure
        // observation of the state the simulation already computed: busy
        // is the effectual share of the PE time each context was offered,
        // the intersection/merge inefficiency (`1 - pe_efficiency`) and
        // scheduler-lag contention land on `MergeBound`, and idle time is
        // classified by *why* the context could not run (weights still
        // streaming, upstream wavefront missing, downstream queue budget,
        // or writeback drain).
        if tracing {
            let t_f = interval as f64;
            for i in 0..n {
                let l = &layers[i];
                let wb_now = l.writes_extern && l.produced_bytes - l.written_bytes >= 1.0;
                let mut busy = 0.0;
                let mut stalls = [0.0f64; 4];
                if done_before[i] {
                    // Compute finished in an earlier interval: the context
                    // is either draining writeback or simply drained.
                    let k = if wb_now {
                        StallKind::DramThrottled
                    } else {
                        StallKind::InputStarved
                    };
                    stalls[k.index()] = t_f;
                } else if gated[i] {
                    // Weights still streaming from DRAM gate all issue.
                    stalls[StallKind::DramThrottled.index()] = t_f;
                } else {
                    let offered = alloc[i] * interval_capacity + extra_share[i];
                    let active = if offered > 1e-9 {
                        (used_per[i] / offered).min(1.0) * t_f
                    } else {
                        0.0
                    };
                    busy = active * cfg.pe_efficiency;
                    stalls[StallKind::MergeBound.index()] += active - busy;
                    let idle = t_f - active;
                    if idle > 0.0 {
                        let k = if demand[i] - used_per[i] > 1e-9 {
                            // Ready work left unserved: shared-array
                            // contention / scheduler-interval lag.
                            StallKind::MergeBound
                        } else if ready[i] >= l.work.out_cols {
                            // Finished mid-interval.
                            if wb_now {
                                StallKind::DramThrottled
                            } else {
                                StallKind::InputStarved
                            }
                        } else if r_bps[i] < r_inputs[i] {
                            StallKind::OutputBlocked
                        } else {
                            StallKind::InputStarved
                        };
                        stalls[k.index()] += idle;
                    }
                }
                sink.emit(TraceEvent::Compute {
                    unit: unit_ids[i],
                    t: t_start,
                    cycles: interval,
                    busy,
                    stalls,
                });
            }
        }

        // 4. Bookkeeping.
        metrics.cycles += interval;
        metrics.mac_util.add(executed_total / total_macs, interval);
        metrics.effectual_macs += executed_total;

        let done = layers.iter().all(|l| {
            l.cols_done >= l.work.out_cols
                && (!l.writes_extern || l.produced_bytes - l.written_bytes < 1.0)
        });
        if done {
            break;
        }
        // The proportional scheduler follows the *previous* interval's
        // demand, so a layer that just became ready legitimately idles for
        // one interval (the fragmentation loss of Sec. VI-B). Only a
        // sustained stall is a model bug.
        let moved = executed_total > 1e-9 || grants.moved();
        stalled_intervals = if moved { 0 } else { stalled_intervals + 1 };
        assert!(
            stalled_intervals <= 3,
            "pipeline deadlock in group {}: ready {ready:?} demand {demand:?} layers {:?} ext {:?}",
            group.name,
            layers
                .iter()
                .map(|l| (
                    l.work.name.clone(),
                    l.cols_done,
                    l.work.out_cols,
                    l.weight_left
                ))
                .collect::<Vec<_>>(),
            ext_streams
                .iter()
                .map(|s| (s.fetched_cols, s.bytes_per_col.len(), s.byte_progress))
                .collect::<Vec<_>>()
        );
        assert!(metrics.cycles < safety_cycles, "runaway simulation");
    }

    mem.finish(&mut metrics);
    // Each MAC reads one weight byte from the shared filter buffer
    // (amortized over wide words) and read-modify-writes a 16-bit partial
    // in the lane-local context array.
    let local_bytes_per_mac = 2.0 * cfg.accumulator_bytes() as f64;
    metrics.charge_compute_activity(metrics.effectual_macs, local_bytes_per_mac);

    // Per-layer breakdown. The interval loop attributes traffic to the
    // stream that moved it; cycles (a group-shared resource) are
    // apportioned by each layer's executed MACs, and the group's busy
    // MAC/DRAM time by each layer's share of its MACs/traffic —
    // water-filled against the layer's own cycles so clamping cannot
    // drop busy mass and the breakdown still sums to the group totals.
    let macs_per_layer: Vec<f64> = layers.iter().map(|l| l.macs_executed).collect();
    let layer_cycles = apportion_cycles(metrics.cycles, &macs_per_layer);
    let caps: Vec<f64> = layer_cycles.iter().map(|&c| c as f64).collect();
    let mut ext_read = vec![0.0f64; layers.len()];
    for s in &ext_streams {
        ext_read[s.owner] += s.granted;
    }
    let traffic_per_layer: Vec<f64> = layers
        .iter()
        .zip(&ext_read)
        .map(|(l, &acts_in)| l.weight_streamed + acts_in + l.written_bytes)
        .collect();
    let mac_busy = apportion_capped(metrics.mac_util.busy(), &macs_per_layer, &caps);
    let bw_busy = apportion_capped(metrics.bw_util.busy(), &traffic_per_layer, &caps);
    let per_layer: Vec<(String, RunMetrics)> = layers
        .iter()
        .zip(&layer_cycles)
        .zip(&ext_read)
        .enumerate()
        .map(|(i, ((l, &cycles), &acts_in))| {
            let mut m = RunMetrics {
                cycles,
                weight_traffic: l.weight_streamed,
                act_traffic: acts_in + l.written_bytes,
                effectual_macs: l.macs_executed,
                ..Default::default()
            };
            m.mac_util = Utilization::new();
            m.mac_util.add(mac_busy[i], cycles);
            m.bw_util = Utilization::new();
            m.bw_util.add(bw_busy[i], cycles);
            m.activity.dram_bytes = m.total_traffic();
            m.charge_compute_activity(l.macs_executed, local_bytes_per_mac);
            (l.work.name.clone(), m)
        })
        .collect();
    GroupRun {
        metrics,
        layers: per_layer,
    }
}

/// Simulates a whole network: maps it into groups and runs them in order
/// on the shared IS-OS block.
///
/// This is the mode-parameterized core behind the
/// [`Accelerator`](crate::accel::Accelerator) impls; callers that just
/// want "run this model" should go through the trait instead.
pub fn run_network(
    net: &Network,
    cfg: &IsoscelesConfig,
    mode: ExecMode,
    seed: u64,
) -> NetworkMetrics {
    let mapping = map_network(net, cfg, mode);
    simulate_mapping(net, cfg, &mapping, seed)
}

/// [`run_network`] with trace emission (see [`simulate_group_traced`]).
pub fn run_network_traced(
    net: &Network,
    cfg: &IsoscelesConfig,
    mode: ExecMode,
    seed: u64,
    sink: &mut dyn TraceSink,
) -> NetworkMetrics {
    let mapping = map_network(net, cfg, mode);
    simulate_mapping_traced(net, cfg, &mapping, seed, sink)
}

/// Simulates a network under a precomputed mapping.
pub fn simulate_mapping(
    net: &Network,
    cfg: &IsoscelesConfig,
    mapping: &Mapping,
    seed: u64,
) -> NetworkMetrics {
    simulate_mapping_traced(net, cfg, mapping, seed, &mut NullSink)
}

/// [`simulate_mapping`] with trace emission. Groups run sequentially on
/// the shared IS-OS block, so each group's events start where the
/// previous group's cycles ended and the whole network lands on one
/// timeline.
pub fn simulate_mapping_traced(
    net: &Network,
    cfg: &IsoscelesConfig,
    mapping: &Mapping,
    seed: u64,
    sink: &mut dyn TraceSink,
) -> NetworkMetrics {
    let mut out = NetworkMetrics::default();
    let mut t0 = 0u64;
    for group in &mapping.groups {
        let run = simulate_group_traced(net, cfg, group, seed, t0, sink);
        t0 += run.metrics.cycles;
        out.push_group(group.name.clone(), run.metrics, run.layers);
    }
    out
}

/// Largest output-column count producible from `avail_in` input columns.
fn max_out_cols(work: &LayerWork, avail_in: usize) -> usize {
    if avail_in >= work.in_cols {
        return work.out_cols;
    }
    if avail_in < work.s_kernel {
        return 0;
    }
    (((avail_in - work.s_kernel) / work.stride) + 1).min(work.out_cols)
}

/// Spends `budget` MACs advancing columns up to `ready`; returns MACs
/// actually consumed.
fn advance_layer(layer: &mut SimLayer, budget: f64, ready: usize) -> f64 {
    let mut left = budget;
    let mut used = 0.0;
    while layer.cols_done < ready {
        let col = layer.cols_done;
        let need = layer.work.macs_per_col[col] - layer.col_progress;
        // The 1e-4 slack absorbs float drift between the prefix-sum demand
        // and the per-column values (a 1e-4 MAC is far below model noise).
        if left + 1e-4 >= need {
            left -= need;
            used += need.max(0.0);
            layer.col_progress = 0.0;
            layer.cols_done += 1;
            layer.produced_bytes += layer.work.out_bytes_per_col[col];
        } else {
            layer.col_progress += left;
            used += left;
            break;
        }
    }
    layer.macs_executed += used;
    used
}

/// Builds the simulation state for one group.
fn build_group_state(
    net: &Network,
    cfg: &IsoscelesConfig,
    group: &PipelineGroup,
    seed: u64,
) -> (Vec<SimLayer>, Vec<ExtStream>) {
    let local_index: std::collections::HashMap<NodeId, usize> = group
        .layers
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, i))
        .collect();
    let mut ext_streams: Vec<ExtStream> = Vec::new();
    let mut ext_index: std::collections::HashMap<NodeId, usize> = std::collections::HashMap::new();
    let mut layers: Vec<SimLayer> = Vec::new();

    for &id in &group.layers {
        let layer = net.layer(id);
        let work = layer_work(layer, seed ^ (id as u64).wrapping_mul(0x9E37_79B9));
        let (r_kernel, _) = layer.kind.kernel();
        // Traffic multipliers for this layer's external input: K-tiling
        // re-reads the input per tile; P-tiling re-reads halo rows at each
        // tile boundary (Sec. IV-C).
        let halo_frac = if group.p_tiles > 1 && layer.input.h > 0 {
            ((group.p_tiles - 1) * r_kernel.saturating_sub(1)) as f64 / layer.input.h as f64
        } else {
            0.0
        };
        let scale = group.k_tiles as f64 * (1.0 + halo_frac);

        let inputs = &net.nodes()[id].inputs;
        let owner = layers.len();
        let mut producers: Vec<Source> = Vec::new();
        if inputs.is_empty() {
            // Network input: one stream shaped like this layer's input.
            let e = *ext_index.entry(id + 1_000_000).or_insert_with(|| {
                ext_streams.push(ExtStream {
                    bytes_per_col: work.in_bytes_per_col.clone(),
                    fetched_cols: 0,
                    byte_progress: 0.0,
                    scale,
                    owner,
                    granted: 0.0,
                });
                ext_streams.len() - 1
            });
            producers.push(Source::External(e));
        }
        for &p in inputs {
            if let Some(&j) = local_index.get(&p) {
                producers.push(Source::Local(j));
            } else {
                let e = *ext_index.entry(p).or_insert_with(|| {
                    ext_streams.push(ExtStream {
                        bytes_per_col: work.in_bytes_per_col.clone(),
                        fetched_cols: 0,
                        byte_progress: 0.0,
                        scale,
                        owner,
                        granted: 0.0,
                    });
                    ext_streams.len() - 1
                });
                producers.push(Source::External(e));
            }
        }
        let writes_extern = net
            .consumers(id)
            .iter()
            .any(|c| !local_index.contains_key(c))
            || net.consumers(id).is_empty();

        // Decoupling depth from the per-lane queue budget. The floor must
        // exceed the longest pipeline lag inside a group (a skip
        // connection's queue buffers the whole main branch's wavefront
        // lag, Sec. IV-A / Fig. 13), or the group livelocks.
        let min_ahead: usize = 1 + group
            .layers
            .iter()
            .map(|&j| net.layer(j).kind.kernel().1)
            .sum::<usize>();
        let rows = work.out_rows.max(1) as f64;
        let mean_col_bytes = (work.out_csf_bytes() / work.out_cols.max(1) as f64 / rows).max(1.0);
        let ahead_cols =
            ((cfg.queue_bytes_per_lane as f64 / mean_col_bytes) as usize).clamp(min_ahead, 128);

        let mut cum_macs = Vec::with_capacity(work.out_cols + 1);
        let mut am = 0.0;
        cum_macs.push(0.0);
        for c in 0..work.out_cols {
            am += work.macs_per_col[c];
            cum_macs.push(am);
        }
        let weight_left = work.weight_csf_bytes;
        layers.push(SimLayer {
            work,
            cum_macs,
            producers,
            writes_extern,
            weight_left,
            weight_streamed: 0.0,
            cols_done: 0,
            col_progress: 0.0,
            produced_bytes: 0.0,
            written_bytes: 0.0,
            macs_executed: 0.0,
            ahead_cols,
        });
    }
    (layers, ext_streams)
}
