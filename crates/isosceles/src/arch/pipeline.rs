//! Cycle-level simulation of inter-layer pipelined execution.
//!
//! One [`PipelineGroup`] at a time is resident on the single time-
//! multiplexed IS-OS block (paper Sec. IV-B). The simulation advances in
//! scheduler intervals (100 cycles): each interval, layers post MAC demand
//! for the output columns whose wavefront dependencies are satisfied, the
//! dynamic scheduler divides the 4096 MACs proportionally to the previous
//! interval's demand, and the DRAM grants weight-fetch / input-fetch /
//! output-writeback bandwidth. Compute-bound and memory-bound phases — and
//! the fragmentation loss of periodic scheduling — emerge from this
//! contention rather than being assumed.

use super::scheduler::DynamicScheduler;
use crate::config::IsoscelesConfig;
use crate::mapping::{map_network, ExecMode, Mapping, PipelineGroup};
use crate::metrics::{apportion_capped, apportion_cycles, NetworkMetrics, RunMetrics};
use isos_nn::graph::{Network, NodeId};
use isos_nn::work::{layer_work, LayerWork};
use isos_sim::dram::{exact_recip, throttle};
use isos_sim::harness::{Grants, MemClient, MemHarness};
use isos_sim::stats::Utilization;
use isos_sim::threads::run_threads;
use isos_trace::{NullSink, StallKind, TraceEvent, TraceSink, UnitId, UnitKind};

/// Where a simulated layer's input comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Source {
    /// Fetched from DRAM (producer outside the group, or network input).
    External(usize),
    /// Streamed on-chip from another layer in the group.
    Local(usize),
}

/// Per-layer execution state.
#[derive(Debug)]
struct SimLayer {
    work: LayerWork,
    /// Prefix sums of `macs_per_col` for O(1) demand queries.
    cum_macs: Vec<f64>,
    producers: Vec<Source>,
    writes_extern: bool,
    weight_left: f64,
    /// Weight bytes granted so far (per-layer traffic attribution).
    weight_streamed: f64,
    cols_done: usize,
    col_progress: f64,
    produced_bytes: f64,
    written_bytes: f64,
    macs_executed: f64,
    /// Columns of decoupling allowed past the slowest consumer.
    ahead_cols: usize,
}

/// An input tensor streamed from DRAM.
///
/// The per-column byte profile is *not* stored here: it is exactly the
/// owning consumer layer's `work.in_bytes_per_col` (streams are deduped
/// on their first consumer), so the methods borrow that slice from the
/// caller instead of each group simulation cloning it.
#[derive(Debug)]
struct ExtStream {
    /// Column count of the byte profile (for the deadlock diagnostics).
    cols: usize,
    fetched_cols: usize,
    byte_progress: f64,
    /// Traffic multiplier: K-tiling re-reads and P-tiling halos.
    scale: f64,
    /// Group-local index of the consumer layer the stream feeds (its
    /// granted bytes are attributed to that layer's breakdown, and its
    /// `work.in_bytes_per_col` is this stream's byte profile).
    owner: usize,
    /// Bytes granted so far (per-layer traffic attribution).
    granted: f64,
}

impl ExtStream {
    fn remaining_bytes_to(&self, bytes_per_col: &[f64], target_col: usize) -> f64 {
        let target = target_col.min(bytes_per_col.len());
        if self.fetched_cols >= target {
            return 0.0;
        }
        let raw: f64 = bytes_per_col[self.fetched_cols..target].iter().sum();
        let rem = raw * self.scale - self.byte_progress;
        if rem < 1e-6 {
            0.0
        } else {
            rem
        }
    }

    fn advance(&mut self, bytes_per_col: &[f64], granted: f64) {
        self.byte_progress += granted;
        while self.fetched_cols < bytes_per_col.len() {
            let need = bytes_per_col[self.fetched_cols] * self.scale;
            if self.byte_progress + 1e-6 < need {
                break;
            }
            self.byte_progress -= need;
            self.fetched_cols += 1;
        }
    }
}

/// Buffers reused across every interval of one group simulation.
///
/// The interval loop used to allocate a dozen short `Vec`s per interval;
/// at sub-microsecond interval cost those allocations *were* the
/// simulation time. One scratch set lives for the whole group instead,
/// sized once to the member count, and every interval overwrites it in
/// place — the loop body itself never touches the heap.
#[derive(Default)]
struct IntervalScratch {
    ready: Vec<usize>,
    r_inputs: Vec<usize>,
    r_bps: Vec<usize>,
    gated: Vec<bool>,
    done_before: Vec<bool>,
    demand: Vec<f64>,
    alloc: Vec<f64>,
    unmet: Vec<f64>,
    used_per: Vec<f64>,
    extra_share: Vec<f64>,
    clients: Vec<MemClient>,
    write_pending: Vec<f64>,
    grants: Grants,
    /// Untraced read-demand buffers, granted in place by
    /// [`MemHarness::step_classed`]: per-layer weight demand and per-
    /// external-stream activation demand (the traced path posts `clients`
    /// and reads `grants` instead).
    weight_reads: Vec<f64>,
    act_reads: Vec<f64>,
    /// Consumer adjacency (who reads layer `i`'s output), rebuilt per
    /// group; the inner vectors keep their allocations across groups.
    consumers: Vec<Vec<usize>>,
    /// Trace unit ids per member layer, rebuilt per group.
    unit_ids: Vec<UnitId>,
}

/// Resets a pooled buffer to `n` copies of `fill`, discarding whatever a
/// previous group left behind (the clear makes reuse indistinguishable
/// from a fresh allocation).
fn clear_resize<T: Clone>(buf: &mut Vec<T>, n: usize, fill: T) {
    buf.clear();
    buf.resize(n, fill);
}

/// Result of simulating one pipeline group: the group totals plus the
/// per-layer breakdown behind them (Fig. 12-16 report layers).
#[derive(Clone, Debug, PartialEq)]
pub struct GroupRun {
    /// Group totals.
    pub metrics: RunMetrics,
    /// Per-member-layer metrics in group order; they accumulate back to
    /// `metrics` (exactly for cycles, to float association for the rest).
    pub layers: Vec<(String, RunMetrics)>,
}

/// Simulates one pipeline group to completion.
///
/// # Panics
///
/// Panics if the simulation deadlocks (a model bug) or exceeds a safety
/// bound of cycles.
pub fn simulate_group(
    net: &Network,
    cfg: &IsoscelesConfig,
    group: &PipelineGroup,
    seed: u64,
) -> GroupRun {
    simulate_group_traced(net, cfg, group, seed, 0, &mut NullSink)
}

/// [`simulate_group`] with trace emission.
///
/// When `sink` is enabled, every member layer becomes one trace unit and
/// every scheduler interval emits one compute event per unit — effectual
/// busy time plus the stall taxonomy, conserving the interval length —
/// and one DRAM event per memory stream. `t0` offsets event timestamps
/// so consecutive groups of a network land on one shared timeline.
/// Tracing only observes the simulation: the returned metrics are
/// bit-identical to the untraced run either way.
pub fn simulate_group_traced(
    net: &Network,
    cfg: &IsoscelesConfig,
    group: &PipelineGroup,
    seed: u64,
    t0: u64,
    sink: &mut dyn TraceSink,
) -> GroupRun {
    simulate_group_into(
        net,
        cfg,
        group,
        seed,
        t0,
        sink,
        &mut IntervalScratch::default(),
    )
}

/// [`simulate_group_traced`] writing through a caller-owned scratch, so
/// the network executors pay the interval-buffer allocations once per
/// run (or per worker) instead of once per group. The scratch carries no
/// state between groups — every buffer is cleared and rebuilt — so the
/// results are bit-identical to a fresh scratch.
fn simulate_group_into(
    net: &Network,
    cfg: &IsoscelesConfig,
    group: &PipelineGroup,
    seed: u64,
    t0: u64,
    sink: &mut dyn TraceSink,
    sc: &mut IntervalScratch,
) -> GroupRun {
    let (mut layers, mut ext_streams) = build_group_state(net, cfg, group, seed);
    let interval = cfg.scheduler_interval;
    let total_macs = cfg.total_macs() as f64;
    let mut mem = MemHarness::new(cfg.dram_bytes_per_cycle);
    let mut sched = DynamicScheduler::new(total_macs);
    let mut metrics = RunMetrics::default();

    let tracing = sink.enabled();
    sc.unit_ids.clear();
    sc.unit_ids.extend(
        layers
            .iter()
            .map(|l| sink.unit(&l.work.name, UnitKind::Layer)),
    );

    let safety_cycles: u64 = 500_000_000_000;
    let mut stalled_intervals = 0u32;
    let n = layers.len();
    // Consumer adjacency, precomputed once: the backpressure scan used to
    // test every (producer, consumer) pair every interval.
    for c in sc.consumers.iter_mut() {
        c.clear();
    }
    if sc.consumers.len() < n {
        sc.consumers.resize_with(n, Vec::new);
    }
    for (j, l) in layers.iter().enumerate() {
        for s in &l.producers {
            if let Source::Local(i) = *s {
                sc.consumers[i].push(j);
            }
        }
    }
    clear_resize(&mut sc.ready, n, 0);
    clear_resize(&mut sc.r_inputs, n, 0);
    clear_resize(&mut sc.r_bps, n, usize::MAX);
    clear_resize(&mut sc.gated, n, false);
    clear_resize(&mut sc.done_before, n, false);
    clear_resize(&mut sc.demand, n, 0.0);
    clear_resize(&mut sc.unmet, n, 0.0);
    clear_resize(&mut sc.used_per, n, 0.0);
    clear_resize(&mut sc.extra_share, n, 0.0);
    clear_resize(
        &mut sc.clients,
        n + ext_streams.len(),
        MemClient::weight(0.0),
    );
    clear_resize(&mut sc.write_pending, n, 0.0);
    clear_resize(&mut sc.weight_reads, n, 0.0);
    clear_resize(&mut sc.act_reads, ext_streams.len(), 0.0);
    let interval_capacity = interval as f64 * cfg.pe_efficiency;
    // Table I's 4096 MACs are a power of two, so the per-interval
    // utilization ratio can use a multiply (see `exact_recip`).
    let inv_total_macs = exact_recip(total_macs);
    loop {
        let t_start = t0 + metrics.cycles;
        // 1. Wavefront-dependency analysis: how far may each layer run?
        // (`r_inputs`/`r_bps`/`gated`/`done_before` are stall-attribution
        // observations: integer snapshots, free to compute, only read
        // when tracing.) A finished layer's readiness is trivial — its
        // demand is zero and its attribution snapshots are never read
        // (the trace block branches on `done_before` first) — so the
        // drain phase of a group skips the producer/consumer scans.
        if tracing {
            for i in 0..n {
                let done = layers[i].cols_done >= layers[i].work.out_cols;
                sc.done_before[i] = done;
                if done {
                    sc.ready[i] = layers[i].work.out_cols;
                    sc.demand[i] = 0.0;
                    continue;
                }
                let avail_in = layers[i]
                    .producers
                    .iter()
                    .map(|s| match *s {
                        Source::External(e) => ext_streams[e].fetched_cols,
                        Source::Local(j) => layers[j].cols_done,
                    })
                    .min()
                    .unwrap_or(layers[i].work.in_cols);
                let r_input = max_out_cols(&layers[i].work, avail_in);
                // Backpressure: don't run more than `ahead_cols` past the
                // slowest in-group consumer.
                let mut r_bp = usize::MAX;
                for &j in &sc.consumers[i] {
                    let consumed = if layers[j].cols_done >= layers[j].work.out_cols {
                        usize::MAX
                    } else {
                        layers[j].cols_done * layers[j].work.stride
                    };
                    r_bp = r_bp.min(consumed.saturating_add(layers[i].ahead_cols));
                }
                let weight_gated = layers[i].weight_left > 0.0;
                let r = if weight_gated {
                    layers[i].cols_done
                } else {
                    r_input.min(r_bp)
                };
                sc.ready[i] = r.clamp(layers[i].cols_done, layers[i].work.out_cols);
                sc.r_inputs[i] = r_input;
                sc.r_bps[i] = r_bp;
                sc.gated[i] = weight_gated;
                // 2. MAC demand (zero for finished layers, folded above).
                let l = &layers[i];
                sc.demand[i] =
                    (l.cum_macs[sc.ready[i]] - l.cum_macs[l.cols_done] - l.col_progress).max(0.0);
            }
        } else {
            // Untraced twin of the loop above: the stall-attribution
            // snapshots have no reader, so weight-gated layers skip the
            // producer/consumer scans entirely (`ready` pins to `cols_done`
            // and the demand expression collapses to the same
            // `cum[c] - cum[c] - progress` value the full path computes),
            // and the overwhelmingly common single-producer /
            // single-consumer shapes dodge the iterator reductions.
            for i in 0..n {
                let l = &layers[i];
                if l.cols_done >= l.work.out_cols {
                    sc.ready[i] = l.work.out_cols;
                    sc.demand[i] = 0.0;
                    continue;
                }
                if l.weight_left > 0.0 {
                    sc.ready[i] = l.cols_done;
                    // `cum[c] - cum[c]` in the full path is exactly +0.0
                    // (finite operands), so the literal keeps every bit.
                    sc.demand[i] = (0.0 - l.col_progress).max(0.0);
                    continue;
                }
                let avail_in = match l.producers.as_slice() {
                    &[Source::Local(j)] => layers[j].cols_done,
                    &[Source::External(e)] => ext_streams[e].fetched_cols,
                    ps => ps
                        .iter()
                        .map(|s| match *s {
                            Source::External(e) => ext_streams[e].fetched_cols,
                            Source::Local(j) => layers[j].cols_done,
                        })
                        .min()
                        .unwrap_or(l.work.in_cols),
                };
                let l = &layers[i];
                let r_input = max_out_cols(&l.work, avail_in);
                let r_bp = match sc.consumers[i].as_slice() {
                    &[] => usize::MAX,
                    &[j] => {
                        let c = &layers[j];
                        if c.cols_done >= c.work.out_cols {
                            usize::MAX
                        } else {
                            (c.cols_done * c.work.stride).saturating_add(layers[i].ahead_cols)
                        }
                    }
                    cs => {
                        let mut r_bp = usize::MAX;
                        for &j in cs {
                            let consumed = if layers[j].cols_done >= layers[j].work.out_cols {
                                usize::MAX
                            } else {
                                layers[j].cols_done * layers[j].work.stride
                            };
                            r_bp = r_bp.min(consumed.saturating_add(layers[i].ahead_cols));
                        }
                        r_bp
                    }
                };
                let l = &layers[i];
                let r = r_input.min(r_bp).clamp(l.cols_done, l.work.out_cols);
                sc.ready[i] = r;
                sc.demand[i] = (l.cum_macs[r] - l.cum_macs[l.cols_done] - l.col_progress).max(0.0);
            }
        }
        sched.allocate_into(&sc.demand, &mut sc.alloc);
        let mut executed_total = 0.0;
        let mut any_leftover = false;
        let mut any_unmet = false;
        for (((((l, &d), &a), &r), u), um) in layers
            .iter_mut()
            .zip(&sc.demand)
            .zip(&sc.alloc)
            .zip(&sc.ready)
            .zip(&mut sc.used_per)
            .zip(&mut sc.unmet)
        {
            let offered = a * interval_capacity;
            // `advance_layer` with `ready == cols_done` is a strict no-op
            // (zero-MAC columns only auto-advance when `ready` moved past
            // them), so the call is skipped for idle and finished layers.
            let used = if r > l.cols_done {
                advance_layer(l, d.min(offered), r)
            } else {
                0.0
            };
            *u = used;
            executed_total += used;
            // Every `offered - used` term is >= 0 (`used` never exceeds the
            // `d.min(offered)` budget), so the sign of the leftover sum is
            // just "did any layer leave PEs idle" — the division-heavy sum
            // itself is only evaluated when the redistribution pass runs.
            any_leftover |= offered - used > 0.0;
            let unmet = (d - used).max(0.0);
            *um = unmet;
            any_unmet |= unmet > 0.0;
        }
        if tracing {
            sc.extra_share.fill(0.0);
        }
        // Work-conserving pass: PEs freed by layers whose demand shrank
        // since the last interval pick up queued work from other contexts
        // (the scheduler reallocates shares only every interval, but idle
        // PEs still drain whatever is in their context queues). `unmet`
        // is throttled in place into the extra grants — it has no reader
        // after this pass. With every demand already served the pass is a
        // no-op (throttling zeros and granting nothing), so it is skipped.
        if any_leftover && any_unmet {
            // Rebuilt exactly as the advance loop used to accumulate it:
            // same terms, same left-to-right order, so the redistributed
            // budget is bit-identical. `a * interval_capacity` re-rounds to
            // the same `offered` the advance loop saw.
            let mut leftover_pes = 0.0;
            for (&a, &u) in sc.alloc.iter().zip(&sc.used_per) {
                leftover_pes += (a * interval_capacity - u) / interval_capacity;
            }
            throttle(&mut sc.unmet, leftover_pes * interval_capacity);
            for (i, l) in layers.iter_mut().enumerate() {
                if sc.unmet[i] > 0.0 {
                    let used = advance_layer(l, sc.unmet[i], sc.ready[i]);
                    sc.used_per[i] += used;
                    executed_total += used;
                    if tracing {
                        sc.extra_share[i] = sc.unmet[i];
                    }
                }
            }
        }

        // 3. DRAM: weight fetches, input prefetch, output writeback, all
        // through the shared memory harness (demand → grant → throttle →
        // accumulate). Weight streams first (same order every interval),
        // then the external input streams, prefetching a few columns ahead
        // of the consumers (the decoupled fetcher FSMs of Sec. IV-A).
        // Clients carry the trace unit of the layer their stream serves.
        let prefetch = 8usize;
        let granted_read;
        let granted_write;
        if tracing {
            for (((l, unit), c), wp) in layers
                .iter()
                .zip(&sc.unit_ids)
                .zip(&mut sc.clients)
                .zip(&mut sc.write_pending)
            {
                *c = MemClient::weight(l.weight_left).for_unit(*unit);
                *wp = if l.writes_extern {
                    l.produced_bytes - l.written_bytes
                } else {
                    0.0
                };
            }
            for (e, s) in ext_streams.iter().enumerate() {
                sc.clients[n + e] = MemClient::activation(s.remaining_bytes_to(
                    &layers[s.owner].work.in_bytes_per_col,
                    s.fetched_cols + prefetch,
                ))
                .for_unit(sc.unit_ids[s.owner]);
            }
            // One compute event per layer plus at most one DRAM event per
            // memory stream this interval; reserving up front keeps the
            // sink from growing its buffer mid-stream.
            sink.hint_events(n + sc.clients.len() + sc.write_pending.len());
            mem.step_traced_into(
                &sc.clients,
                &sc.write_pending,
                &sc.unit_ids,
                interval,
                t_start,
                sink,
                &mut sc.grants,
            );
            granted_read = sc.grants.granted_read;
            granted_write = sc.grants.granted_write;
        } else {
            // Untraced: post the class-split demand straight from layer
            // state and let the harness grant it in place — no client
            // structs, no grant buffers. Weight demand first, then the
            // activation streams, matching the client order above, so the
            // grants are bit-identical to the traced path's.
            for ((l, wr), wp) in layers
                .iter()
                .zip(&mut sc.weight_reads)
                .zip(&mut sc.write_pending)
            {
                *wr = l.weight_left;
                *wp = if l.writes_extern {
                    l.produced_bytes - l.written_bytes
                } else {
                    0.0
                };
            }
            for (s, ar) in ext_streams.iter().zip(&mut sc.act_reads) {
                *ar = s.remaining_bytes_to(
                    &layers[s.owner].work.in_bytes_per_col,
                    s.fetched_cols + prefetch,
                );
            }
            let (gr, gw) = mem.step_classed(
                &mut sc.weight_reads,
                &mut sc.act_reads,
                &mut sc.write_pending,
                interval,
            );
            granted_read = gr;
            granted_write = gw;
        }
        let (read_grants_w, read_grants_a, write_grants): (&[f64], &[f64], &[f64]) = if tracing {
            (
                &sc.grants.reads[..n],
                &sc.grants.reads[n..],
                &sc.grants.writes,
            )
        } else {
            (&sc.weight_reads, &sc.act_reads, &sc.write_pending)
        };
        // One fused pass applies the weight grants and the writeback (one
        // writer per layer, distributed proportionally across sinks) and
        // computes the termination check on the resulting state — the
        // value is unchanged from checking after the trace block, which
        // only observes.
        let mut all_done = true;
        for ((l, &g), &w) in layers.iter_mut().zip(read_grants_w).zip(write_grants) {
            l.weight_left = (l.weight_left - g).max(0.0);
            l.weight_streamed += g;
            l.written_bytes += w;
            all_done &= l.cols_done >= l.work.out_cols
                && (!l.writes_extern || l.produced_bytes - l.written_bytes < 1.0);
        }
        for (s, &g) in ext_streams.iter_mut().zip(read_grants_a) {
            s.advance(&layers[s.owner].work.in_bytes_per_col, g);
            s.granted += g;
        }

        // Per-unit occupancy attribution for this interval. Pure
        // observation of the state the simulation already computed: busy
        // is the effectual share of the PE time each context was offered,
        // the intersection/merge inefficiency (`1 - pe_efficiency`) and
        // scheduler-lag contention land on `MergeBound`, and idle time is
        // classified by *why* the context could not run (weights still
        // streaming, upstream wavefront missing, downstream queue budget,
        // or writeback drain).
        if tracing {
            let t_f = interval as f64;
            for (i, l) in layers.iter().enumerate() {
                let wb_now = l.writes_extern && l.produced_bytes - l.written_bytes >= 1.0;
                let mut busy = 0.0;
                let mut stalls = [0.0f64; 4];
                if sc.done_before[i] {
                    // Compute finished in an earlier interval: the context
                    // is either draining writeback or simply drained.
                    let k = if wb_now {
                        StallKind::DramThrottled
                    } else {
                        StallKind::InputStarved
                    };
                    stalls[k.index()] = t_f;
                } else if sc.gated[i] {
                    // Weights still streaming from DRAM gate all issue.
                    stalls[StallKind::DramThrottled.index()] = t_f;
                } else {
                    let offered = sc.alloc[i] * interval_capacity + sc.extra_share[i];
                    let active = if offered > 1e-9 {
                        (sc.used_per[i] / offered).min(1.0) * t_f
                    } else {
                        0.0
                    };
                    busy = active * cfg.pe_efficiency;
                    stalls[StallKind::MergeBound.index()] += active - busy;
                    let idle = t_f - active;
                    if idle > 0.0 {
                        let k = if sc.demand[i] - sc.used_per[i] > 1e-9 {
                            // Ready work left unserved: shared-array
                            // contention / scheduler-interval lag.
                            StallKind::MergeBound
                        } else if sc.ready[i] >= l.work.out_cols {
                            // Finished mid-interval.
                            if wb_now {
                                StallKind::DramThrottled
                            } else {
                                StallKind::InputStarved
                            }
                        } else if sc.r_bps[i] < sc.r_inputs[i] {
                            StallKind::OutputBlocked
                        } else {
                            StallKind::InputStarved
                        };
                        stalls[k.index()] += idle;
                    }
                }
                sink.emit(TraceEvent::Compute {
                    unit: sc.unit_ids[i],
                    t: t_start,
                    cycles: interval,
                    busy,
                    stalls,
                });
            }
        }

        // 4. Bookkeeping.
        metrics.cycles += interval;
        let mac_ratio = match inv_total_macs {
            Some(inv) => executed_total * inv,
            None => executed_total / total_macs,
        };
        metrics.mac_util.add(mac_ratio, interval);
        metrics.effectual_macs += executed_total;

        if all_done {
            break;
        }
        // The proportional scheduler follows the *previous* interval's
        // demand, so a layer that just became ready legitimately idles for
        // one interval (the fragmentation loss of Sec. VI-B). Only a
        // sustained stall is a model bug.
        let moved = executed_total > 1e-9 || granted_read > 1e-6 || granted_write > 1e-6;
        stalled_intervals = if moved { 0 } else { stalled_intervals + 1 };
        assert!(
            stalled_intervals <= 3,
            "pipeline deadlock in group {}: ready {:?} demand {:?} layers {:?} ext {:?}",
            group.name,
            sc.ready,
            sc.demand,
            layers
                .iter()
                .map(|l| (
                    l.work.name.clone(),
                    l.cols_done,
                    l.work.out_cols,
                    l.weight_left
                ))
                .collect::<Vec<_>>(),
            ext_streams
                .iter()
                .map(|s| (s.fetched_cols, s.cols, s.byte_progress))
                .collect::<Vec<_>>()
        );
        assert!(metrics.cycles < safety_cycles, "runaway simulation");
    }

    mem.finish(&mut metrics);
    // Each MAC reads one weight byte from the shared filter buffer
    // (amortized over wide words) and read-modify-writes a 16-bit partial
    // in the lane-local context array.
    let local_bytes_per_mac = 2.0 * cfg.accumulator_bytes() as f64;
    metrics.charge_compute_activity(metrics.effectual_macs, local_bytes_per_mac);

    // Per-layer breakdown. The interval loop attributes traffic to the
    // stream that moved it; cycles (a group-shared resource) are
    // apportioned by each layer's executed MACs, and the group's busy
    // MAC/DRAM time by each layer's share of its MACs/traffic —
    // water-filled against the layer's own cycles so clamping cannot
    // drop busy mass and the breakdown still sums to the group totals.
    let macs_per_layer: Vec<f64> = layers.iter().map(|l| l.macs_executed).collect();
    let layer_cycles = apportion_cycles(metrics.cycles, &macs_per_layer);
    let caps: Vec<f64> = layer_cycles.iter().map(|&c| c as f64).collect();
    let mut ext_read = vec![0.0f64; layers.len()];
    for s in &ext_streams {
        ext_read[s.owner] += s.granted;
    }
    let traffic_per_layer: Vec<f64> = layers
        .iter()
        .zip(&ext_read)
        .map(|(l, &acts_in)| l.weight_streamed + acts_in + l.written_bytes)
        .collect();
    let mac_busy = apportion_capped(metrics.mac_util.busy(), &macs_per_layer, &caps);
    let bw_busy = apportion_capped(metrics.bw_util.busy(), &traffic_per_layer, &caps);
    let per_layer: Vec<(String, RunMetrics)> = layers
        .iter_mut()
        .zip(&layer_cycles)
        .zip(&ext_read)
        .enumerate()
        .map(|(i, ((l, &cycles), &acts_in))| {
            let mut m = RunMetrics {
                cycles,
                weight_traffic: l.weight_streamed,
                act_traffic: acts_in + l.written_bytes,
                effectual_macs: l.macs_executed,
                ..Default::default()
            };
            m.mac_util = Utilization::new();
            m.mac_util.add(mac_busy[i], cycles);
            m.bw_util = Utilization::new();
            m.bw_util.add(bw_busy[i], cycles);
            m.activity.dram_bytes = m.total_traffic();
            m.charge_compute_activity(l.macs_executed, local_bytes_per_mac);
            // The layer state dies with this function; hand its name
            // to the breakdown instead of cloning the string.
            (std::mem::take(&mut l.work.name), m)
        })
        .collect();
    GroupRun {
        metrics,
        layers: per_layer,
    }
}

/// Simulates a whole network: maps it into groups and runs them in order
/// on the shared IS-OS block.
///
/// This is the mode-parameterized core behind the
/// [`Accelerator`](crate::accel::Accelerator) impls; callers that just
/// want "run this model" should go through the trait instead.
pub fn run_network(
    net: &Network,
    cfg: &IsoscelesConfig,
    mode: ExecMode,
    seed: u64,
) -> NetworkMetrics {
    let mapping = map_network(net, cfg, mode);
    simulate_mapping(net, cfg, &mapping, seed)
}

/// [`run_network`] with trace emission (see [`simulate_group_traced`]).
pub fn run_network_traced(
    net: &Network,
    cfg: &IsoscelesConfig,
    mode: ExecMode,
    seed: u64,
    sink: &mut dyn TraceSink,
) -> NetworkMetrics {
    let mapping = map_network(net, cfg, mode);
    simulate_mapping_traced(net, cfg, &mapping, seed, sink)
}

/// Simulates a network under a precomputed mapping, running independent
/// groups on the run-level worker pool
/// ([`isos_sim::threads::run_threads`]).
pub fn simulate_mapping(
    net: &Network,
    cfg: &IsoscelesConfig,
    mapping: &Mapping,
    seed: u64,
) -> NetworkMetrics {
    simulate_mapping_threads(net, cfg, mapping, seed, run_threads())
}

/// [`simulate_mapping`] with an explicit worker count, honored verbatim
/// (no core-count clamp — determinism tests exercise exact counts).
///
/// Each group's simulation is a pure function of `(net, cfg, group,
/// seed)`: groups time-share the physical IS-OS block, but no simulation
/// state flows between them, so they can run on any worker in any order.
/// Results are gathered into per-group slots and merged in mapping order,
/// which makes the returned [`NetworkMetrics`] — including every
/// float accumulation in the per-layer breakdowns — bit-identical at any
/// `threads` value.
pub fn simulate_mapping_threads(
    net: &Network,
    cfg: &IsoscelesConfig,
    mapping: &Mapping,
    seed: u64,
    threads: usize,
) -> NetworkMetrics {
    let groups = &mapping.groups;
    let workers = threads.max(1).min(groups.len().max(1));
    if workers <= 1 {
        return simulate_mapping_seq(net, cfg, mapping, seed, &mut NullSink);
    }
    let slots: Vec<std::sync::Mutex<Option<GroupRun>>> =
        groups.iter().map(|_| std::sync::Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let mut sc = IntervalScratch::default();
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(group) = groups.get(i) else { break };
                    let run = simulate_group_into(net, cfg, group, seed, 0, &mut NullSink, &mut sc);
                    *slots[i].lock().expect("group slot poisoned") = Some(run);
                }
            });
        }
    });
    let mut out = NetworkMetrics::default();
    for (group, slot) in groups.iter().zip(slots) {
        let run = slot
            .into_inner()
            .expect("group slot poisoned")
            .expect("worker filled every slot");
        out.push_group(group.name.clone(), run.metrics, run.layers);
    }
    out
}

/// [`simulate_mapping`] with trace emission. With an enabled sink,
/// groups run sequentially on the shared IS-OS block, so each group's
/// events start where the previous group's cycles ended and the whole
/// network lands on one timeline; a disabled sink takes the parallel
/// path (tracing only observes the simulation, so the metrics are
/// bit-identical either way).
pub fn simulate_mapping_traced(
    net: &Network,
    cfg: &IsoscelesConfig,
    mapping: &Mapping,
    seed: u64,
    sink: &mut dyn TraceSink,
) -> NetworkMetrics {
    if sink.enabled() {
        simulate_mapping_seq(net, cfg, mapping, seed, sink)
    } else {
        simulate_mapping(net, cfg, mapping, seed)
    }
}

/// The sequential executor: groups in mapping order on one thread, with
/// trace timestamps chained across groups.
fn simulate_mapping_seq(
    net: &Network,
    cfg: &IsoscelesConfig,
    mapping: &Mapping,
    seed: u64,
    sink: &mut dyn TraceSink,
) -> NetworkMetrics {
    let mut out = NetworkMetrics::default();
    let mut t0 = 0u64;
    let mut sc = IntervalScratch::default();
    for group in &mapping.groups {
        let run = simulate_group_into(net, cfg, group, seed, t0, sink, &mut sc);
        t0 += run.metrics.cycles;
        out.push_group(group.name.clone(), run.metrics, run.layers);
    }
    out
}

/// Largest output-column count producible from `avail_in` input columns.
fn max_out_cols(work: &LayerWork, avail_in: usize) -> usize {
    if avail_in >= work.in_cols {
        return work.out_cols;
    }
    if avail_in < work.s_kernel {
        return 0;
    }
    let lead = avail_in - work.s_kernel;
    // Unit stride — the overwhelmingly common case — skips the integer
    // division (a ~20-cycle instruction in a loop that runs per layer
    // per interval); `lead / 1 == lead` exactly.
    let cols = if work.stride == 1 {
        lead
    } else {
        lead / work.stride
    };
    (cols + 1).min(work.out_cols)
}

/// Spends `budget` MACs advancing columns up to `ready`; returns MACs
/// actually consumed.
fn advance_layer(layer: &mut SimLayer, budget: f64, ready: usize) -> f64 {
    let mut left = budget;
    let mut used = 0.0;
    while layer.cols_done < ready {
        let col = layer.cols_done;
        let need = layer.work.macs_per_col[col] - layer.col_progress;
        // The 1e-4 slack absorbs float drift between the prefix-sum demand
        // and the per-column values (a 1e-4 MAC is far below model noise).
        if left + 1e-4 >= need {
            left -= need;
            used += need.max(0.0);
            layer.col_progress = 0.0;
            layer.cols_done += 1;
            layer.produced_bytes += layer.work.out_bytes_per_col[col];
        } else {
            layer.col_progress += left;
            used += left;
            break;
        }
    }
    layer.macs_executed += used;
    used
}

/// Builds the simulation state for one group.
fn build_group_state(
    net: &Network,
    cfg: &IsoscelesConfig,
    group: &PipelineGroup,
    seed: u64,
) -> (Vec<SimLayer>, Vec<ExtStream>) {
    // Groups hold at most a handful of layers, so membership lookups are
    // linear scans rather than hash maps (hashing costs more than the
    // scan at this size, and this runs once per group per simulation).
    let local_index = |id: NodeId| group.layers.iter().position(|&l| l == id);
    let mut ext_streams: Vec<ExtStream> = Vec::new();
    let mut ext_ids: Vec<NodeId> = Vec::new();
    let mut layers: Vec<SimLayer> = Vec::with_capacity(group.layers.len());

    // Decoupling depth floor, shared by every member: it must exceed the
    // longest pipeline lag inside the group (a skip connection's queue
    // buffers the whole main branch's wavefront lag, Sec. IV-A /
    // Fig. 13), or the group livelocks.
    let min_ahead: usize = 1 + group
        .layers
        .iter()
        .map(|&j| net.layer(j).kind.kernel().1)
        .sum::<usize>();

    for &id in &group.layers {
        let layer = net.layer(id);
        let work = layer_work(layer, seed ^ (id as u64).wrapping_mul(0x9E37_79B9));
        let (r_kernel, _) = layer.kind.kernel();
        // Traffic multipliers for this layer's external input: K-tiling
        // re-reads the input per tile; P-tiling re-reads halo rows at each
        // tile boundary (Sec. IV-C).
        let halo_frac = if group.p_tiles > 1 && layer.input.h > 0 {
            ((group.p_tiles - 1) * r_kernel.saturating_sub(1)) as f64 / layer.input.h as f64
        } else {
            0.0
        };
        let scale = group.k_tiles as f64 * (1.0 + halo_frac);

        let inputs = &net.nodes()[id].inputs;
        let owner = layers.len();
        let mut producers: Vec<Source> = Vec::new();
        let mut ext_stream_for = |key: NodeId, work: &LayerWork| -> usize {
            if let Some(e) = ext_ids.iter().position(|&k| k == key) {
                return e;
            }
            ext_streams.push(ExtStream {
                cols: work.in_bytes_per_col.len(),
                fetched_cols: 0,
                byte_progress: 0.0,
                scale,
                owner,
                granted: 0.0,
            });
            ext_ids.push(key);
            ext_streams.len() - 1
        };
        if inputs.is_empty() {
            // Network input: one stream shaped like this layer's input.
            let e = ext_stream_for(id + 1_000_000, &work);
            producers.push(Source::External(e));
        }
        for &p in inputs {
            if let Some(j) = local_index(p) {
                producers.push(Source::Local(j));
            } else {
                let e = ext_stream_for(p, &work);
                producers.push(Source::External(e));
            }
        }
        let writes_extern = net.consumers(id).iter().any(|c| local_index(*c).is_none())
            || net.consumers(id).is_empty();

        // Decoupling depth from the per-lane queue budget, floored at the
        // group-wide `min_ahead`.
        let rows = work.out_rows.max(1) as f64;
        let mean_col_bytes = (work.out_csf_bytes() / work.out_cols.max(1) as f64 / rows).max(1.0);
        let ahead_cols =
            ((cfg.queue_bytes_per_lane as f64 / mean_col_bytes) as usize).clamp(min_ahead, 128);

        let mut cum_macs = Vec::with_capacity(work.out_cols + 1);
        let mut am = 0.0;
        cum_macs.push(0.0);
        for c in 0..work.out_cols {
            am += work.macs_per_col[c];
            cum_macs.push(am);
        }
        let weight_left = work.weight_csf_bytes;
        layers.push(SimLayer {
            work,
            cum_macs,
            producers,
            writes_extern,
            weight_left,
            weight_streamed: 0.0,
            cols_done: 0,
            col_progress: 0.0,
            produced_bytes: 0.0,
            written_bytes: 0.0,
            macs_executed: 0.0,
            ahead_cols,
        });
    }
    (layers, ext_streams)
}
