//! The shared filter buffer (paper Sec. IV-A).
//!
//! All lanes fetch weights from one 1 MB buffer that must sustain up to
//! 4096 elements per cycle. The paper makes that affordable with three
//! techniques, all modeled here: (1) wide words supply many weights per
//! access, (2) heavy banking along input channels spreads concurrent
//! requests, and (3) requests from different lanes for the *same* input
//! channel coalesce into one access — common because lanes march through
//! the same activation columns together.

use isos_sim::sram::{Sram, SramStats};
use isos_tensor::{Coord, Csf};
use serde::{Deserialize, Serialize};

/// Per-layer placement of a filter tensor in the buffer.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FilterAllocation {
    /// Offset of the layer's region, in bytes.
    pub base: u64,
    /// Bytes occupied (compressed, with allocation overhead).
    pub bytes: u64,
    /// Word offset of each input channel's fiber within the region
    /// (index = channel).
    channel_words: Vec<u64>,
    /// Words each channel's fiber occupies.
    channel_len_words: Vec<u64>,
}

impl FilterAllocation {
    /// The `(bank-selection key, word address, word count)` of channel
    /// `c`'s weights, or `None` if the channel is empty.
    pub fn locate(&self, c: Coord) -> Option<(u32, u64, u64)> {
        let c = c as usize;
        if c >= self.channel_words.len() || self.channel_len_words[c] == 0 {
            return None;
        }
        let word = self.base / 64 + self.channel_words[c];
        Some((c as u32, word, self.channel_len_words[c]))
    }
}

/// Result of serving one cycle of lane requests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeResult {
    /// SRAM cycles consumed (1 unless bank conflicts serialized).
    pub cycles: u64,
    /// Requests satisfied from an access another lane triggered.
    pub coalesced: u64,
}

/// The shared, banked, wide-word filter buffer.
///
/// # Examples
///
/// ```
/// use isosceles::arch::filter_buffer::FilterBuffer;
/// use isos_tensor::gen;
/// let mut fb = FilterBuffer::new(1 << 20, 64, 32);
/// let filter = gen::random_csf(vec![8, 3, 16, 3].into(), 0.2, 1);
/// let alloc = fb.load(&filter, 1.5).expect("fits");
/// assert!(alloc.bytes > 0);
/// // Three lanes asking for channel 0 in the same cycle coalesce.
/// let r = fb.serve(&alloc, &[0, 0, 0]);
/// assert_eq!(r.coalesced, 2);
/// ```
#[derive(Clone, Debug)]
pub struct FilterBuffer {
    sram: Sram,
    banks: u32,
    next_free: u64,
    /// Packed per-channel seen-this-cycle mask, reused across [`serve`]
    /// calls (bit `c` set once channel `c`'s request has been issued).
    /// Distinct non-empty channels occupy distinct words, so channel-level
    /// dedup is exactly request-level dedup.
    ///
    /// [`serve`]: FilterBuffer::serve
    seen_words: Vec<u64>,
}

impl FilterBuffer {
    /// Creates a buffer of `capacity_bytes` with `word_bytes`-wide words
    /// across `banks` banks.
    pub fn new(capacity_bytes: u64, word_bytes: u32, banks: u32) -> Self {
        Self {
            sram: Sram::new("filter-buffer", capacity_bytes, word_bytes, banks),
            banks,
            next_free: 0,
            seen_words: Vec::new(),
        }
    }

    /// Bytes still unallocated.
    pub fn free_bytes(&self) -> u64 {
        self.sram.capacity_bytes() - self.next_free
    }

    /// Allocates and "loads" a layer's compressed filter (`[C, R, K, S]`),
    /// laying channel fibers at word granularity so a channel fetch is one
    /// contiguous wide read.
    ///
    /// `alloc_overhead` is the wide-word padding factor
    /// ([`crate::IsoscelesConfig::filter_buffer_alloc_overhead`]).
    ///
    /// # Errors
    ///
    /// Returns the bytes that did not fit when capacity is exhausted
    /// (the mapper should have K-tiled the layer).
    pub fn load(&mut self, filter: &Csf, alloc_overhead: f64) -> Result<FilterAllocation, u64> {
        assert_eq!(filter.ndim(), 4, "filter must be [C,R,K,S]");
        let word = self.sram.word_bytes() as u64;
        let c_dim = filter.shape()[0];
        let mut channel_words = vec![0u64; c_dim];
        let mut channel_len_words = vec![0u64; c_dim];
        let mut cursor_words = 0u64;
        for (c, fiber) in filter.root().iter_children() {
            let nnz = fiber.nnz_below() as u64;
            // value byte + ~1.5 B metadata per nonzero, padded to words and
            // scaled by the allocation overhead.
            let bytes = ((nnz as f64 * 2.5 * alloc_overhead).ceil() as u64).max(word);
            let words = bytes.div_ceil(word);
            channel_words[c as usize] = cursor_words;
            channel_len_words[c as usize] = words;
            cursor_words += words;
        }
        let total_bytes = cursor_words * word;
        if total_bytes > self.free_bytes() {
            return Err(total_bytes - self.free_bytes());
        }
        let base = self.next_free;
        self.next_free += total_bytes;
        self.sram.write_bytes(total_bytes);
        Ok(FilterAllocation {
            base,
            bytes: total_bytes,
            channel_words,
            channel_len_words,
        })
    }

    /// Frees everything (a new pipeline group begins).
    pub fn reset(&mut self) {
        self.next_free = 0;
    }

    /// Serves one cycle of per-lane channel requests against `alloc`,
    /// coalescing duplicates and serializing bank conflicts.
    ///
    /// Duplicate detection is a packed `u64` bitmask over the channel
    /// space — a bit test per lane instead of a linear scan of the
    /// requests issued so far. Channel allocation is word-granular, so two
    /// lanes coalesce exactly when they name the same channel.
    pub fn serve(&mut self, alloc: &FilterAllocation, lane_channels: &[Coord]) -> ServeResult {
        let mut requests: Vec<(u32, u64)> = Vec::with_capacity(lane_channels.len());
        self.seen_words.clear();
        self.seen_words
            .resize(alloc.channel_words.len().div_ceil(64), 0);
        let mut coalesced = 0u64;
        for &c in lane_channels {
            let Some((bank_key, word, _len)) = alloc.locate(c) else {
                continue;
            };
            let (w, bit) = (c as usize / 64, 1u64 << (c % 64));
            if self.seen_words[w] & bit != 0 {
                coalesced += 1;
            } else {
                self.seen_words[w] |= bit;
                requests.push((bank_key % self.banks, word));
            }
        }
        // Sram::serve_banked also detects coalescing; we pre-dedup so its
        // conflict accounting sees distinct requests only.
        let cycles = self.sram.serve_banked(&requests).max(1);
        ServeResult { cycles, coalesced }
    }

    /// Access counters of the underlying SRAM.
    pub fn stats(&self) -> SramStats {
        self.sram.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isos_tensor::gen;

    fn filter(c: usize, density: f64, seed: u64) -> Csf {
        gen::random_csf(vec![c, 3, 8, 3].into(), density, seed)
    }

    #[test]
    fn load_places_channels_contiguously() {
        let mut fb = FilterBuffer::new(1 << 20, 64, 32);
        let f = filter(8, 0.3, 1);
        let alloc = fb.load(&f, 1.0).unwrap();
        let mut last_end = 0u64;
        for c in 0..8u32 {
            if let Some((_, word, len)) = alloc.locate(c) {
                assert!(word >= last_end, "channels must not overlap");
                last_end = word + len;
            }
        }
        assert_eq!(alloc.bytes % 64, 0, "word-granular allocation");
    }

    #[test]
    fn empty_channels_locate_none() {
        let mut fb = FilterBuffer::new(1 << 20, 64, 32);
        // Density 0 except one channel.
        let f = Csf::from_entries(
            vec![4, 1, 1, 1].into(),
            vec![(isos_tensor::Point::from_slice(&[2, 0, 0, 0]), 1.0)],
        );
        let alloc = fb.load(&f, 1.0).unwrap();
        assert!(alloc.locate(0).is_none());
        assert!(alloc.locate(2).is_some());
        assert!(alloc.locate(9).is_none());
    }

    #[test]
    fn overfull_load_reports_shortfall() {
        let mut fb = FilterBuffer::new(4 << 10, 64, 8);
        let f = filter(64, 0.9, 2);
        let err = fb.load(&f, 4.0).unwrap_err();
        assert!(err > 0);
        // After reset it still fails (the filter is just too big).
        fb.reset();
        assert!(fb.load(&f, 4.0).is_err());
    }

    #[test]
    fn coalescing_collapses_same_channel_requests() {
        let mut fb = FilterBuffer::new(1 << 20, 64, 32);
        let f = filter(8, 0.5, 3);
        let alloc = fb.load(&f, 1.0).unwrap();
        // 64 lanes all on channel 3: one access, 63 coalesced.
        let r = fb.serve(&alloc, &vec![3; 64]);
        assert_eq!(r.coalesced, 63);
        assert_eq!(r.cycles, 1);
    }

    #[test]
    fn distinct_channels_spread_across_banks() {
        let mut fb = FilterBuffer::new(1 << 20, 64, 32);
        let f = filter(32, 0.5, 4);
        let alloc = fb.load(&f, 1.0).unwrap();
        // 32 distinct channels on 32 banks: ideally 1 cycle, certainly
        // far fewer than serialized.
        let lanes: Vec<u32> = (0..32).collect();
        let r = fb.serve(&alloc, &lanes);
        assert!(r.cycles <= 4, "cycles {}", r.cycles);
        assert_eq!(r.coalesced, 0);
    }

    #[test]
    fn multiple_layers_share_the_buffer() {
        let mut fb = FilterBuffer::new(256 << 10, 64, 32);
        let a = fb.load(&filter(8, 0.3, 5), 1.5).unwrap();
        let b = fb.load(&filter(8, 0.3, 6), 1.5).unwrap();
        assert!(b.base >= a.base + a.bytes, "regions must not overlap");
    }
}
