//! Activation fetchers and writers (paper Sec. IV-A, "Main memory
//! accesses").
//!
//! Because the IS-OS dataflow traverses activations concordantly, the
//! off-chip interface needs no address generation logic beyond a simple
//! FSM that walks a compressed row: each per-lane fetcher streams one
//! input activation row `[W, C]` fiber by fiber, and each writer streams
//! one output row. Both are decoupled from the lanes by queues to hide
//! memory latency. This module models the FSM byte-exactly over a CSF row
//! so the byte schedule (which cycle each element becomes available at a
//! given bandwidth) can be charged.

use isos_tensor::{Coord, Csf, Fiber};
use serde::{Deserialize, Serialize};

/// One streamed activation element with its fetch cost.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StreamedElem {
    /// Column (`W` for inputs, `Q` for outputs).
    pub col: Coord,
    /// Channel.
    pub channel: Coord,
    /// Value.
    pub value: f32,
    /// Bytes consumed from the memory stream for this element (value +
    /// amortized metadata; column boundaries carry the fiber header).
    pub bytes: u32,
}

/// A fetcher FSM walking one compressed activation row.
///
/// Iterate it to obtain the exact element/byte schedule; the cumulative
/// byte count divided by per-lane bandwidth gives each element's earliest
/// arrival cycle.
#[derive(Debug)]
pub struct RowFetcher<'a> {
    cols: std::vec::IntoIter<(Coord, Fiber<'a>)>,
    current: Option<(Coord, std::vec::IntoIter<(Coord, f32)>)>,
    bytes_streamed: u64,
    elements: u64,
}

/// Bytes of metadata at each column (fiber) boundary: coordinate + offset.
const COL_HEADER_BYTES: u32 = 2;
/// Bytes per element: 8-bit value + channel coordinate.
const ELEM_BYTES: u32 = 2;

impl<'a> RowFetcher<'a> {
    /// Creates a fetcher over row `h` of an `[H, W, C]` activation tensor.
    ///
    /// Rows are independent sub-tensors, so per-row traversal stays
    /// concordant even when the row dimension is tiled (Sec. IV-C notes
    /// halo rows remain concordant for the same reason).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 3.
    pub fn new(acts: &'a Csf, h: Coord) -> Self {
        assert_eq!(acts.ndim(), 3, "activations must be [H,W,C]");
        let cols = acts
            .root()
            .find(h)
            .map(|row| row.iter_children().collect::<Vec<_>>())
            .unwrap_or_default();
        Self {
            cols: cols.into_iter(),
            current: None,
            bytes_streamed: 0,
            elements: 0,
        }
    }

    /// Total bytes streamed so far.
    pub fn bytes_streamed(&self) -> u64 {
        self.bytes_streamed
    }

    /// Elements delivered so far.
    pub fn elements(&self) -> u64 {
        self.elements
    }
}

impl Iterator for RowFetcher<'_> {
    type Item = StreamedElem;

    fn next(&mut self) -> Option<StreamedElem> {
        loop {
            if let Some((col, ref mut leaf)) = self.current {
                if let Some((channel, value)) = leaf.next() {
                    self.bytes_streamed += ELEM_BYTES as u64;
                    self.elements += 1;
                    return Some(StreamedElem {
                        col,
                        channel,
                        value,
                        bytes: ELEM_BYTES,
                    });
                }
                self.current = None;
            }
            let (col, fiber) = self.cols.next()?;
            self.bytes_streamed += COL_HEADER_BYTES as u64;
            let mut leaf = fiber.iter_leaf().collect::<Vec<_>>().into_iter();
            // The first element of a column carries its header cost.
            if let Some((channel, value)) = leaf.next() {
                self.bytes_streamed += ELEM_BYTES as u64;
                self.elements += 1;
                self.current = Some((col, leaf));
                return Some(StreamedElem {
                    col,
                    channel,
                    value,
                    bytes: ELEM_BYTES + COL_HEADER_BYTES,
                });
            }
        }
    }
}

/// Computes each element's earliest availability cycle for one row at
/// `bytes_per_cycle` of streaming bandwidth: the arrival schedule the
/// decoupling queue absorbs.
pub fn arrival_schedule(acts: &Csf, h: Coord, bytes_per_cycle: f64) -> Vec<(StreamedElem, u64)> {
    assert!(bytes_per_cycle > 0.0, "bandwidth must be positive");
    let mut cum_bytes = 0u64;
    RowFetcher::new(acts, h)
        .map(|e| {
            cum_bytes += e.bytes as u64;
            let cycle = (cum_bytes as f64 / bytes_per_cycle).ceil() as u64;
            (e, cycle)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use isos_tensor::{gen, Point};

    fn acts() -> Csf {
        Csf::from_entries(
            vec![2, 4, 3].into(),
            vec![
                (Point::from_slice(&[0, 1, 0]), 1.0),
                (Point::from_slice(&[0, 1, 2]), 2.0),
                (Point::from_slice(&[0, 3, 1]), 3.0),
                (Point::from_slice(&[1, 0, 0]), 4.0),
            ],
        )
    }

    #[test]
    fn fetcher_streams_row_in_wavefront_order() {
        let t = acts();
        let elems: Vec<StreamedElem> = RowFetcher::new(&t, 0).collect();
        assert_eq!(elems.len(), 3);
        // (w=1,c=0), (w=1,c=2), (w=3,c=1): column-then-channel order.
        assert_eq!((elems[0].col, elems[0].channel), (1, 0));
        assert_eq!((elems[1].col, elems[1].channel), (1, 2));
        assert_eq!((elems[2].col, elems[2].channel), (3, 1));
    }

    #[test]
    fn byte_accounting_charges_headers_once_per_column() {
        let t = acts();
        let mut f = RowFetcher::new(&t, 0);
        let first = f.next().unwrap();
        assert_eq!(first.bytes, ELEM_BYTES + COL_HEADER_BYTES);
        let second = f.next().unwrap();
        assert_eq!(second.bytes, ELEM_BYTES);
        let third = f.next().unwrap();
        assert_eq!(third.bytes, ELEM_BYTES + COL_HEADER_BYTES);
        assert!(f.next().is_none());
        assert_eq!(
            f.bytes_streamed(),
            (3 * ELEM_BYTES + 2 * COL_HEADER_BYTES) as u64
        );
        assert_eq!(f.elements(), 3);
    }

    #[test]
    fn missing_row_streams_nothing() {
        let t = acts();
        assert_eq!(RowFetcher::new(&t, 7).count(), 0);
    }

    #[test]
    fn arrival_schedule_is_monotone_and_bandwidth_scaled() {
        let t = gen::random_csf(vec![4, 16, 8].into(), 0.5, 9);
        let slow = arrival_schedule(&t, 1, 1.0);
        let fast = arrival_schedule(&t, 1, 4.0);
        assert_eq!(slow.len(), fast.len());
        assert!(slow.windows(2).all(|w| w[0].1 <= w[1].1));
        for (s, f) in slow.iter().zip(&fast) {
            assert!(f.1 <= s.1, "4x bandwidth cannot be slower");
        }
        // Last arrival ~ total bytes / bandwidth.
        let total: u64 = slow.iter().map(|(e, _)| e.bytes as u64).sum();
        assert_eq!(slow.last().unwrap().1, total);
    }

    #[test]
    fn per_row_streams_cover_the_tensor() {
        let t = gen::random_csf(vec![6, 10, 4].into(), 0.4, 10);
        let total: usize = (0..6).map(|h| RowFetcher::new(&t, h).count()).sum();
        assert_eq!(total, t.nnz());
    }
}
