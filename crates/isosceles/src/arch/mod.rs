//! The ISOSceles architecture performance model (paper Sec. IV).
//!
//! [`pipeline`] drives the interval-based cycle simulation of each
//! pipeline group over the time-multiplexed IS-OS block; [`scheduler`]
//! implements the 100-cycle dynamic PE reallocation.

pub mod fetcher;
pub mod filter_buffer;
pub mod microsim;
pub mod pe;
pub mod pipeline;
pub mod scheduler;

pub use microsim::{build_chain, simulate_micro, MicroLayer, MicroResult};
pub use pipeline::{
    run_network, run_network_traced, simulate_group, simulate_group_traced, simulate_mapping,
    simulate_mapping_traced, GroupRun,
};
pub use scheduler::DynamicScheduler;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IsoscelesConfig;
    use crate::mapping::{map_network, ExecMode};
    use isos_nn::graph::Network;
    use isos_nn::layer::{ActShape, Layer, LayerKind};
    use isos_nn::models;
    use isos_nn::sparsity::{apply_activation_profile, apply_weight_profile, WeightProfile};

    fn small_chain(n: usize, density: f64) -> Network {
        let mut net = Network::new("chain");
        let mut prev: Option<usize> = None;
        for i in 0..n {
            let l = Layer::new(
                &format!("c{i}"),
                LayerKind::Conv {
                    r: 3,
                    s: 3,
                    stride: 1,
                    pad: 1,
                },
                ActShape::new(32, 32, 32),
                32,
            );
            let inputs: Vec<usize> = prev.into_iter().collect();
            prev = Some(net.add(l, &inputs));
        }
        apply_weight_profile(
            &mut net,
            WeightProfile::Uniform {
                sparsity: 1.0 - density,
            },
        );
        apply_activation_profile(&mut net, 3);
        net
    }

    #[test]
    fn simulation_terminates_and_counts_work() {
        let net = small_chain(4, 0.2);
        let cfg = IsoscelesConfig::default();
        let result = run_network(&net, &cfg, ExecMode::Pipelined, 1);
        assert!(result.total.cycles > 0);
        // All effectual MACs were executed (within wobble rounding).
        let expected = net.total_effectual_macs();
        assert!(
            (result.total.effectual_macs - expected).abs() / expected < 0.01,
            "executed {} vs expected {expected}",
            result.total.effectual_macs
        );
    }

    #[test]
    fn pipelined_traffic_is_lower_than_single_layer() {
        let net = small_chain(6, 0.2);
        let cfg = IsoscelesConfig::default();
        let pipe = run_network(&net, &cfg, ExecMode::Pipelined, 1);
        let single = run_network(&net, &cfg, ExecMode::SingleLayer, 1);
        // Pipelining keeps intermediate activations on-chip.
        assert!(
            pipe.total.act_traffic < 0.7 * single.total.act_traffic,
            "pipe {} vs single {}",
            pipe.total.act_traffic,
            single.total.act_traffic
        );
        // Weight traffic is identical (weights stream once either way).
        let w_ratio = pipe.total.weight_traffic / single.total.weight_traffic;
        assert!((w_ratio - 1.0).abs() < 0.05, "weight ratio {w_ratio}");
        // And pipelined should not be slower.
        assert!(pipe.total.cycles <= single.total.cycles);
    }

    #[test]
    fn memory_bound_network_saturates_bandwidth() {
        // Very sparse weights + activations: tiny compute, big streams ->
        // memory-bound single-layer run.
        let net = small_chain(2, 0.02);
        let cfg = IsoscelesConfig::default();
        let single = run_network(&net, &cfg, ExecMode::SingleLayer, 1);
        assert!(
            single.total.bw_util.ratio() > 0.5,
            "bw util {}",
            single.total.bw_util.ratio()
        );
    }

    #[test]
    fn denser_network_needs_more_cycles() {
        let cfg = IsoscelesConfig::default();
        let sparse = run_network(&small_chain(3, 0.1), &cfg, ExecMode::Pipelined, 1);
        let dense = run_network(&small_chain(3, 0.8), &cfg, ExecMode::Pipelined, 1);
        assert!(dense.total.cycles > sparse.total.cycles);
    }

    #[test]
    fn resnet_r96_end_to_end_simulates() {
        let net = models::resnet50(0.96, 1);
        let cfg = IsoscelesConfig::default();
        let result = run_network(&net, &cfg, ExecMode::Pipelined, 1);
        assert!(result.total.cycles > 10_000);
        assert!(result.total.total_traffic() > 1e6, "R96 should move MBs");
        // Groups cover the whole network.
        let mapping = map_network(&net, &cfg, ExecMode::Pipelined);
        assert_eq!(result.groups.len(), mapping.groups.len());
    }

    #[test]
    fn skip_connection_groups_simulate_without_deadlock() {
        // One ResNet block with its add in a single pipeline.
        let net = models::resnet50(0.96, 1);
        let cfg = IsoscelesConfig::default();
        let mapping = map_network(&net, &cfg, ExecMode::Pipelined);
        let block_group = mapping
            .groups
            .iter()
            .find(|g| g.layers.len() > 3)
            .expect("some pipelined block");
        let run = simulate_group(&net, &cfg, block_group, 1);
        assert!(run.metrics.cycles > 0);
    }

    #[test]
    fn group_layer_breakdown_conserves_totals() {
        let net = models::resnet50(0.96, 1);
        let cfg = IsoscelesConfig::default();
        let mapping = map_network(&net, &cfg, ExecMode::Pipelined);
        let group = mapping
            .groups
            .iter()
            .find(|g| g.layers.len() > 3)
            .expect("some pipelined block");
        let run = simulate_group(&net, &cfg, group, 1);
        assert_eq!(run.layers.len(), group.layers.len());
        let mut sum = crate::metrics::RunMetrics::default();
        for (_, m) in &run.layers {
            sum.accumulate(m);
        }
        assert_eq!(sum.cycles, run.metrics.cycles);
        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1.0);
        assert!(rel(sum.weight_traffic, run.metrics.weight_traffic) < 1e-6);
        assert!(rel(sum.act_traffic, run.metrics.act_traffic) < 1e-6);
        assert!(rel(sum.effectual_macs, run.metrics.effectual_macs) < 1e-6);
        assert!(rel(sum.activity.dram_bytes, run.metrics.activity.dram_bytes) < 1e-6);
    }

    #[test]
    fn mac_utilization_is_bounded() {
        let net = small_chain(4, 0.3);
        let cfg = IsoscelesConfig::default();
        let r = run_network(&net, &cfg, ExecMode::Pipelined, 1);
        let u = r.total.mac_util.ratio();
        assert!(u > 0.0 && u <= 1.0, "util {u}");
    }
}

#[cfg(test)]
mod tiling_tests {
    use crate::config::IsoscelesConfig;
    use crate::mapping::PipelineGroup;
    use isos_nn::graph::Network;
    use isos_nn::layer::{ActShape, Layer, LayerKind};

    fn one_layer_net(h: usize, k: usize) -> Network {
        let mut net = Network::new("t");
        let l = Layer::new(
            "conv",
            LayerKind::Conv {
                r: 3,
                s: 3,
                stride: 1,
                pad: 1,
            },
            ActShape::new(h, 32, 16),
            k,
        )
        .with_weight_density(0.2)
        .with_act_density(0.5, 0.5);
        net.add(l, &[]);
        net
    }

    fn group(p_tiles: usize, k_tiles: usize) -> PipelineGroup {
        PipelineGroup {
            name: "conv".into(),
            layers: vec![0],
            p_tiles,
            k_tiles,
        }
    }

    #[test]
    fn k_tiling_multiplies_input_traffic_not_weights() {
        let net = one_layer_net(32, 64);
        let cfg = IsoscelesConfig::default();
        let base = super::simulate_group(&net, &cfg, &group(1, 1), 1).metrics;
        let tiled = super::simulate_group(&net, &cfg, &group(1, 4), 1).metrics;
        // Inputs re-read once per K tile; outputs and weights unchanged.
        let input_bytes = net.layer(0).in_act_csf_bytes();
        let expected = base.act_traffic + 3.0 * input_bytes;
        assert!(
            (tiled.act_traffic - expected).abs() / expected < 0.02,
            "tiled {} vs expected {expected}",
            tiled.act_traffic
        );
        assert!((tiled.weight_traffic - base.weight_traffic).abs() < 1.0);
        assert!(tiled.cycles >= base.cycles);
    }

    #[test]
    fn p_tiling_adds_halo_traffic_only() {
        let net = one_layer_net(128, 16);
        let cfg = IsoscelesConfig::default();
        let base = super::simulate_group(&net, &cfg, &group(1, 1), 1).metrics;
        let tiled = super::simulate_group(&net, &cfg, &group(2, 1), 1).metrics;
        // One tile boundary re-fetches (R-1)=2 of 128 input rows: ~1.6%.
        let ratio = tiled.act_traffic / base.act_traffic;
        assert!(ratio > 1.0 && ratio < 1.05, "halo overhead ratio {ratio}");
    }

    #[test]
    fn tiling_preserves_mac_work() {
        let net = one_layer_net(64, 32);
        let cfg = IsoscelesConfig::default();
        let base = super::simulate_group(&net, &cfg, &group(1, 1), 1).metrics;
        let tiled = super::simulate_group(&net, &cfg, &group(2, 2), 1).metrics;
        assert!((base.effectual_macs - tiled.effectual_macs).abs() / base.effectual_macs < 1e-9);
    }
}
