//! Element-granular microarchitecture simulation of the *fully spatial*
//! ISOSceles design (paper Sec. IV-A, Fig. 9): one IS-OS block per layer,
//! one lane per activation row, driven cycle by cycle from real CSF
//! tensors. Every frontend lane consumes one nonzero input per cycle
//! (when its PE backlog allows), every PE array retires a bounded number
//! of MACs per cycle, every backend lane emits one merged output element
//! per cycle per replicated merger, and bounded queues propagate
//! backpressure between blocks — Fig. 11's machinery at element
//! granularity.
//!
//! Two things come out of it:
//!
//! 1. it *reproduces the motivation for time-multiplexing* (Sec. IV-B):
//!    the spatial design's MAC utilization collapses as sparsity grows
//!    and work varies across layers, which is exactly why the real
//!    ISOSceles shares one block among all layers;
//! 2. it *cross-validates the interval model*: at compute-bound
//!    densities, time-multiplexed cycles approach `#layers x` the
//!    spatial design's, the expected ratio for 1/#layers the MACs (see
//!    `--bin microsim_validation` and the integration tests).

use crate::config::IsoscelesConfig;
use crate::dataflow::{execute_conv, Pou};
use isos_tensor::{Coord, Csf};
use serde::{Deserialize, Serialize};

/// One conv layer's static description for the micro-simulator.
#[derive(Clone, Debug)]
pub struct MicroLayer {
    /// Input activations `[H, W, C]`.
    pub input: Csf,
    /// Filters `[C, R, K, S]`.
    pub filter: Csf,
    /// Stride.
    pub stride: usize,
    /// Padding.
    pub pad: usize,
}

/// Cycle-level results of a micro-simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MicroResult {
    /// Total cycles until the last output element left the last layer.
    pub cycles: u64,
    /// Effectual MACs performed (exact, from the tensors).
    pub macs: u64,
    /// Output elements emitted by the final layer.
    pub outputs: u64,
    /// Cycles in which at least one frontend lane stalled on a full
    /// downstream queue (backpressure).
    pub backpressure_stalls: u64,
    /// MAC array utilization.
    pub mac_utilization: f64,
}

/// Per-element work item of one frontend lane: consuming input column `w`
/// costs `macs` multiply-accumulates.
#[derive(Clone, Copy, Debug)]
struct LaneElem {
    w: Coord,
    macs: u32,
}

/// Runtime state of one layer in the micro-pipeline.
#[derive(Debug)]
struct LayerState {
    /// Per input row (lane): the element stream and a cursor.
    lane_elems: Vec<Vec<LaneElem>>,
    lane_cursor: Vec<usize>,
    /// Per lane: outstanding MAC backlog in the PE array.
    lane_backlog: Vec<u64>,
    /// Per output row: per-column output element counts (from the exact
    /// functional execution).
    out_elems_per_col: Vec<Vec<u32>>,
    /// Per output row: (column cursor, elements already emitted in it).
    emit_cursor: Vec<(usize, u32)>,
    /// Per output row: elements emitted but not yet consumed downstream
    /// (the inter-layer queue).
    queue_occupancy: Vec<u32>,
    /// Per input row: how many elements of each column the *next* layer
    /// has available... tracked on the consumer side instead.
    /// Input columns fully delivered per lane (for wavefront deps).
    in_cols_done: Vec<Coord>,
    in_cols_total: Coord,
    out_rows: usize,
    out_cols: usize,
    stride: usize,
    pad: usize,
    r_dim: usize,
    s_dim: usize,
    /// Count of input elements remaining per (lane, column) — consumed by
    /// the dependency tracker.
    per_col_remaining: Vec<Vec<u32>>,
}

/// Simulates `layers` as one spatially-pipelined chain at element
/// granularity.
///
/// Layer `i+1`'s input tensor must equal layer `i`'s functional output
/// (build chains with [`build_chain`] to guarantee this).
///
/// # Panics
///
/// Panics if the chain shapes are inconsistent or the simulation exceeds
/// a safety bound.
#[allow(clippy::needless_range_loop)] // lanes index several parallel arrays
pub fn simulate_micro(layers: &[MicroLayer], cfg: &IsoscelesConfig) -> MicroResult {
    assert!(!layers.is_empty(), "empty pipeline");
    let mut states: Vec<LayerState> = layers.iter().map(build_state).collect();
    // Columns with no nonzeros are trivially delivered; advance the
    // wavefront markers past them (an all-empty lane is complete at t=0).
    for st in &mut states {
        for lane in 0..st.lane_elems.len() {
            advance_wavefront(st, lane);
        }
    }
    let mut result = MicroResult::default();
    let total_macs: u64 = states
        .iter()
        .flat_map(|s| s.lane_elems.iter().flatten())
        .map(|e| e.macs as u64)
        .sum();
    result.macs = total_macs;

    let macs_per_lane = cfg.macs_per_lane as u64;
    let mergers = cfg.mergers_per_lane as u32; // output elements/lane/cycle
    let queue_cap: u32 = (cfg.queue_bytes_per_lane / 2 / layers.len() as u64).max(64) as u32;
    let dram_elems_per_cycle = (cfg.dram_bytes_per_cycle / 2.0).max(1.0); // 2 B/element

    let mut dram_credit = 0.0f64;
    let mut first_layer_fed: Vec<usize> = vec![0; states[0].lane_elems.len()];
    let mut cycles: u64 = 0;
    let mut retired_macs: u64 = 0;
    let safety = 500_000_000u64;
    // Packed drained-PE mask, reused every cycle: bit `h` set when lane
    // `h`'s backlog is empty. The backend's readiness check tests bits
    // instead of building a fresh `Vec<bool>` per layer per cycle.
    let mut clear_words: Vec<u64> = Vec::new();

    loop {
        cycles += 1;
        assert!(cycles < safety, "micro-simulation runaway");
        let mut any_activity = false;

        // DRAM feeds the first layer's lanes round-robin.
        dram_credit += dram_elems_per_cycle;
        'feed: for lane in 0..states[0].lane_elems.len() {
            while first_layer_fed[lane] < states[0].lane_elems[lane].len() {
                if dram_credit < 1.0 {
                    break 'feed;
                }
                dram_credit -= 1.0;
                first_layer_fed[lane] += 1;
                any_activity = true;
            }
        }

        for li in 0..states.len() {
            // --- Frontend: consume one input element per lane per cycle
            // if the element has arrived and the PE backlog has room.
            let lanes = states[li].lane_elems.len();
            let mut stalled = false;
            for lane in 0..lanes {
                let cursor = states[li].lane_cursor[lane];
                if cursor >= states[li].lane_elems[lane].len() {
                    continue;
                }
                // Element availability: from DRAM for layer 0, from the
                // producer's queue otherwise.
                let available = if li == 0 {
                    cursor < first_layer_fed[lane]
                } else {
                    // Producer row `lane` of the previous layer.
                    states[li - 1]
                        .queue_occupancy
                        .get(lane)
                        .is_some_and(|&q| q > 0)
                };
                if !available {
                    continue;
                }
                // PE backlog cap: the double-buffered context array.
                if states[li].lane_backlog[lane] >= 4 * macs_per_lane {
                    stalled = true;
                    continue;
                }
                let elem = states[li].lane_elems[lane][cursor];
                states[li].lane_cursor[lane] = cursor + 1;
                states[li].lane_backlog[lane] += elem.macs as u64;
                states[li].per_col_remaining[lane][elem.w as usize] -= 1;
                if li > 0 {
                    states[li - 1].queue_occupancy[lane] -= 1;
                }
                any_activity = true;
                advance_wavefront(&mut states[li], lane);
            }
            if stalled {
                result.backpressure_stalls += 1;
            }

            // --- PE arrays retire MACs.
            for lane in 0..lanes {
                let retire = states[li].lane_backlog[lane].min(macs_per_lane);
                states[li].lane_backlog[lane] -= retire;
                retired_macs += retire;
                if retire > 0 {
                    any_activity = true;
                }
            }

            // --- Backend: emit ready output elements in wavefront order.
            clear_words.clear();
            clear_words.resize(lanes.div_ceil(64), 0);
            for (h, &b) in states[li].lane_backlog.iter().enumerate() {
                if b == 0 {
                    clear_words[h / 64] |= 1 << (h % 64);
                }
            }
            let st = &mut states[li];
            for p in 0..st.out_rows {
                let (ref mut col, ref mut emitted) = st.emit_cursor[p];
                let mut budget = mergers;
                while budget > 0 && *col < st.out_cols {
                    // Dependency: output column q of row p needs input
                    // columns through q*stride + S - 1 consumed (and the
                    // contributing lanes' PEs drained) in rows
                    // h = p*stride + r - pad.
                    let need_w = (*col * st.stride + st.s_dim - 1) as Coord;
                    let ready =
                        (0..st.r_dim).all(|r| match (p * st.stride + r).checked_sub(st.pad) {
                            Some(h) if h < st.lane_elems.len() => {
                                st.in_cols_done[h] > need_w
                                    || (st.in_cols_done[h] == st.in_cols_total
                                        && clear_words[h / 64] & (1 << (h % 64)) != 0)
                            }
                            _ => true,
                        });
                    if !ready {
                        break;
                    }
                    let total_here = st.out_elems_per_col[p][*col];
                    if *emitted < total_here {
                        // Downstream queue space; the last layer's queues
                        // drain to the writer below.
                        let room = st.queue_occupancy[p] < queue_cap;
                        if !room {
                            break;
                        }
                        st.queue_occupancy[p] += 1;
                        *emitted += 1;
                        budget -= 1;
                        any_activity = true;
                    } else {
                        *col += 1;
                        *emitted = 0;
                    }
                }
            }

            // The last layer's queue drains to the writer at DRAM rate.
            if li == states.len() - 1 {
                let mut writer_budget = dram_elems_per_cycle as u32;
                for q in states[li].queue_occupancy.iter_mut() {
                    let drain = (*q).min(writer_budget);
                    *q -= drain;
                    writer_budget -= drain;
                    if drain > 0 {
                        any_activity = true;
                    }
                    result.outputs += drain as u64;
                    if writer_budget == 0 {
                        break;
                    }
                }
            }
        }

        // Termination: everything consumed, retired, emitted, drained.
        let done = states.iter().enumerate().all(|(li, s)| {
            s.lane_cursor
                .iter()
                .zip(&s.lane_elems)
                .all(|(&c, e)| c == e.len())
                && s.lane_backlog.iter().all(|&b| b == 0)
                && (0..s.out_rows).all(|p| fully_emitted(s, p))
                && if li + 1 == states.len() {
                    s.queue_occupancy.iter().all(|&q| q == 0)
                } else {
                    true
                }
        });
        if done {
            break;
        }
        assert!(
            any_activity || cycles < 16,
            "micro-simulation deadlock at cycle {cycles}"
        );
    }

    result.cycles = cycles;
    // Spatial-design capacity: every layer owns a block with one PE array
    // per used lane.
    let spatial_macs_per_cycle: u64 = states
        .iter()
        .map(|s| s.lane_elems.len() as u64 * macs_per_lane)
        .sum();
    result.mac_utilization =
        retired_macs as f64 / (cycles as f64 * spatial_macs_per_cycle as f64).max(1.0);
    result
}

/// Advances a lane's delivered-column marker past fully-consumed columns.
fn advance_wavefront(st: &mut LayerState, lane: usize) {
    let mut c = st.in_cols_done[lane];
    while (c as usize) < st.per_col_remaining[lane].len()
        && st.per_col_remaining[lane][c as usize] == 0
        && st.lane_cursor[lane] >= index_of_col(&st.lane_elems[lane], c + 1)
    {
        c += 1;
    }
    st.in_cols_done[lane] = c;
}

fn fully_emitted(s: &LayerState, p: usize) -> bool {
    let (col, em) = s.emit_cursor[p];
    col >= s.out_cols && em == 0
}

fn index_of_col(elems: &[LaneElem], col: Coord) -> usize {
    elems.partition_point(|e| e.w < col)
}

/// Builds the per-lane element streams and exact output counts for one
/// layer by running the functional dataflow.
fn build_state(layer: &MicroLayer) -> LayerState {
    let h_dim = layer.input.shape()[0];
    let w_dim = layer.input.shape()[1];
    let fd = layer.filter.shape().dims();
    let (r_dim, k_dim, s_dim) = (fd[1], fd[2], fd[3]);
    let p_dim = (h_dim + 2 * layer.pad - r_dim) / layer.stride + 1;
    let q_dim = (w_dim + 2 * layer.pad - s_dim) / layer.stride + 1;

    // Per-lane element streams with exact MAC costs. The per-channel MAC
    // cost is probed through a word-level index of the filter's root fiber
    // (one popcount per input nonzero, no per-element bisection).
    let mut lane_elems: Vec<Vec<LaneElem>> = vec![Vec::new(); h_dim];
    let mut per_col_remaining: Vec<Vec<u32>> = vec![vec![0; w_dim]; h_dim];
    let froot = layer.filter.root();
    let findex = froot.index();
    for (h, w_fiber) in layer.input.root().iter_children() {
        for (w, c_fiber) in w_fiber.iter_children() {
            for (c, _) in c_fiber.iter_leaf() {
                let macs = findex.position(c).map_or(0, |i| froot.child(i).nnz_below()) as u32;
                lane_elems[h as usize].push(LaneElem { w, macs });
                per_col_remaining[h as usize][w as usize] += 1;
            }
        }
    }

    // Exact output element counts per (row, column) from the functional
    // execution (linear POU keeps all completed sums visible).
    let exec = execute_conv(
        &layer.input,
        &layer.filter,
        layer.stride,
        layer.pad,
        &Pou::linear(k_dim),
    );
    let mut out_elems_per_col = vec![vec![0u32; q_dim]; p_dim];
    for (pt, _) in exec.output.iter() {
        out_elems_per_col[pt[0] as usize][pt[1] as usize] += 1;
    }

    // Lanes whose columns have no elements are immediately "done" up to
    // the first populated column.
    let in_cols_done = vec![0; h_dim];
    LayerState {
        lane_cursor: vec![0; lane_elems.len()],
        lane_backlog: vec![0; lane_elems.len()],
        emit_cursor: vec![(0, 0); p_dim],
        queue_occupancy: vec![0; p_dim],
        in_cols_done,
        in_cols_total: w_dim as Coord,
        out_rows: p_dim,
        out_cols: q_dim,
        stride: layer.stride,
        pad: layer.pad,
        r_dim,
        s_dim,
        per_col_remaining,
        lane_elems,
        out_elems_per_col,
    }
}

/// Builds a chain of [`MicroLayer`]s where each layer's input is the
/// previous one's functional output.
pub fn build_chain(
    input: Csf,
    filters: &[(Csf, usize, usize)], // (filter, stride, pad)
) -> Vec<MicroLayer> {
    let mut layers = Vec::with_capacity(filters.len());
    let mut current = input;
    for (filter, stride, pad) in filters {
        let k = filter.shape()[2];
        let out = execute_conv(&current, filter, *stride, *pad, &Pou::relu(k)).output;
        layers.push(MicroLayer {
            input: current,
            filter: filter.clone(),
            stride: *stride,
            pad: *pad,
        });
        current = out;
    }
    layers
}

#[cfg(test)]
mod tests {
    use super::*;
    use isos_tensor::gen;

    fn small_cfg() -> IsoscelesConfig {
        IsoscelesConfig {
            lanes: 16,
            macs_per_lane: 16,
            ..Default::default()
        }
    }

    fn chain(n_layers: usize, density: f64, seed: u64) -> Vec<MicroLayer> {
        let input = gen::random_csf(vec![12, 16, 4].into(), density, seed);
        let filters: Vec<(Csf, usize, usize)> = (0..n_layers)
            .map(|i| {
                (
                    gen::random_csf(vec![4, 3, 4, 3].into(), 0.4, seed + 10 + i as u64),
                    1,
                    1,
                )
            })
            .collect();
        build_chain(input, &filters)
    }

    #[test]
    fn single_layer_terminates_and_counts_macs() {
        let layers = chain(1, 0.5, 1);
        let r = simulate_micro(&layers, &small_cfg());
        assert!(r.cycles > 0);
        // Exact MAC count: sum over input nonzeros of nnz(F_c) — within
        // range bounds this overcounts edge-clipped columns slightly, so
        // compare against the frontend's own count loosely.
        assert!(r.macs > 0);
        assert!(r.mac_utilization > 0.0 && r.mac_utilization <= 1.0);
    }

    #[test]
    fn two_layer_pipeline_overlaps_execution() {
        let l2 = chain(2, 0.5, 2);
        let both = simulate_micro(&l2, &small_cfg());
        let first = simulate_micro(&l2[..1], &small_cfg());
        let second = simulate_micro(&l2[1..], &small_cfg());
        // Pipelined execution must beat sequential layer-by-layer.
        assert!(
            both.cycles < first.cycles + second.cycles,
            "pipelined {} vs sequential {}",
            both.cycles,
            first.cycles + second.cycles
        );
    }

    #[test]
    fn denser_input_takes_longer() {
        let sparse = simulate_micro(&chain(2, 0.2, 3), &small_cfg());
        let dense = simulate_micro(&chain(2, 0.9, 3), &small_cfg());
        assert!(dense.cycles > sparse.cycles);
        assert!(dense.macs > sparse.macs);
    }

    #[test]
    fn deterministic() {
        let layers = chain(2, 0.5, 4);
        let a = simulate_micro(&layers, &small_cfg());
        let b = simulate_micro(&layers, &small_cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input_finishes_immediately() {
        let input = Csf::empty(vec![8, 8, 2].into());
        let filter = gen::random_csf(vec![2, 3, 4, 3].into(), 0.5, 5);
        let layers = build_chain(input, &[(filter, 1, 1)]);
        let r = simulate_micro(&layers, &small_cfg());
        assert_eq!(r.macs, 0);
        assert!(r.cycles < 32);
    }

    #[test]
    fn narrow_queues_cause_backpressure() {
        let layers = chain(2, 0.8, 6);
        let mut cfg = small_cfg();
        cfg.queue_bytes_per_lane = 256; // tiny queues
        let tight = simulate_micro(&layers, &cfg);
        let loose = simulate_micro(&layers, &small_cfg());
        assert!(tight.cycles >= loose.cycles);
    }
}
