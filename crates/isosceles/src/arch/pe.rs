//! Coarse-grain processing elements (paper Sec. IV-B, "PE array").
//!
//! A frontend lane's PEs perform vector(weights) × scalar(input) products
//! and accumulate into partial-result registers. Early designs dedicate a
//! PE to each filter column count `S`, which fragments badly: an `S = 5`
//! PE running an `S = 1` layer idles 80% of its MACs. ISOSceles instead
//! uses *coarse-grain* PEs of [`CoarsePe::width`] MACs each (8 in the
//! paper), fed with a packed vector of compressed weights that may span
//! multiple `(r, k)` pairs, so utilization is independent of `S`.
//!
//! This module models one PE cycle-accurately enough to measure that
//! fragmentation (see `fragmentation` tests and the ablation harness), and
//! is the unit the lane-level simulator charges MAC throughput with.

use serde::{Deserialize, Serialize};

/// One weight operand routed to a PE: its filter coordinates and value.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WeightOp {
    /// Filter row.
    pub r: u16,
    /// Output channel.
    pub k: u16,
    /// Filter column (determines the partial-register offset).
    pub s: u16,
    /// Weight value.
    pub value: f32,
}

/// Throughput counters for a PE.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeStats {
    /// Cycles the PE was issued work.
    pub busy_cycles: u64,
    /// Effectual MACs performed.
    pub macs: u64,
    /// MAC slots left idle in busy cycles (fragmentation).
    pub idle_slots: u64,
}

impl PeStats {
    /// Fraction of slots in busy cycles doing effectual work.
    pub fn packing_efficiency(&self) -> f64 {
        let slots = self.macs + self.idle_slots;
        if slots == 0 {
            1.0
        } else {
            self.macs as f64 / slots as f64
        }
    }
}

/// A coarse-grain PE: `width` MAC units sharing one input scalar per
/// cycle, accumulating into `(r, k, s)`-addressed partial registers.
///
/// # Examples
///
/// ```
/// use isosceles::arch::pe::{CoarsePe, WeightOp};
/// let mut pe = CoarsePe::new(8);
/// let weights = [
///     WeightOp { r: 0, k: 0, s: 0, value: 2.0 },
///     WeightOp { r: 0, k: 1, s: 1, value: 3.0 },
/// ];
/// let cycles = pe.issue(5.0, &weights);
/// assert_eq!(cycles, 1); // both ops pack into one 8-wide cycle
/// assert_eq!(pe.partial(0, 0, 0), Some(10.0));
/// assert_eq!(pe.partial(0, 1, 1), Some(15.0));
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CoarsePe {
    width: usize,
    /// Partial-result registers, one sorted `(r, k)` run per filter column
    /// `s`. A real PE holds `S` live columns of registers; storing each
    /// column as a sorted run makes [`CoarsePe::drain_column`] (the S-deep
    /// sliding-window retirement) a buffer swap instead of a tree walk,
    /// and accumulation a binary search in a short contiguous run instead
    /// of a pointer-chasing map lookup.
    columns: Vec<Vec<((u16, u16), f32)>>,
    /// Live register count across all columns (zeros stay live until
    /// drained).
    live: usize,
    stats: PeStats,
}

impl CoarsePe {
    /// Creates a PE with `width` MAC units.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "PE needs at least one MAC");
        Self {
            width,
            columns: Vec::new(),
            live: 0,
            stats: PeStats::default(),
        }
    }

    /// Creates a PE pre-sized for a mapping: `s_extent` filter columns,
    /// each expected to hold about `rk_hint` live `(r, k)` registers.
    /// Behaves identically to [`CoarsePe::new`]; the geometry only
    /// pre-allocates the register file so hot loops never reallocate.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn with_geometry(width: usize, s_extent: usize, rk_hint: usize) -> Self {
        let mut pe = Self::new(width);
        pe.columns = (0..s_extent).map(|_| Vec::with_capacity(rk_hint)).collect();
        pe
    }

    /// MAC units in this PE.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Issues one input scalar against a packed weight vector; returns the
    /// cycles consumed (`ceil(len / width)`; the final cycle's unused
    /// slots count as fragmentation).
    pub fn issue(&mut self, input: f32, weights: &[WeightOp]) -> u64 {
        if weights.is_empty() {
            return 0;
        }
        let cycles = weights.len().div_ceil(self.width) as u64;
        self.stats.busy_cycles += cycles;
        self.stats.macs += weights.len() as u64;
        self.stats.idle_slots += cycles * self.width as u64 - weights.len() as u64;
        for w in weights {
            let s = w.s as usize;
            if s >= self.columns.len() {
                self.columns.resize_with(s + 1, Vec::new);
            }
            let col = &mut self.columns[s];
            match col.binary_search_by_key(&(w.r, w.k), |&(rk, _)| rk) {
                Ok(i) => col[i].1 += input * w.value,
                Err(i) => {
                    col.insert(i, ((w.r, w.k), input * w.value));
                    self.live += 1;
                }
            }
        }
        cycles
    }

    /// Reads a partial register.
    pub fn partial(&self, r: u16, k: u16, s: u16) -> Option<f32> {
        let col = self.columns.get(s as usize)?;
        col.binary_search_by_key(&(r, k), |&(rk, _)| rk)
            .ok()
            .map(|i| col[i].1)
    }

    /// Pops every completed partial for filter column `s` (the register
    /// retired when the input wavefront advances past its window), sorted
    /// by `(r, k)`. Zero-valued partials are dropped, as the hardware only
    /// emits nonzeros.
    pub fn drain_column(&mut self, s: u16) -> Vec<((u16, u16), f32)> {
        let Some(col) = self.columns.get_mut(s as usize) else {
            return Vec::new();
        };
        self.live -= col.len();
        let out = col.iter().copied().filter(|&(_, v)| v != 0.0).collect();
        col.clear();
        out
    }

    /// Number of live partial registers.
    pub fn live_partials(&self) -> usize {
        self.live
    }

    /// Throughput counters.
    pub fn stats(&self) -> PeStats {
        self.stats
    }
}

impl PartialEq for CoarsePe {
    /// Compares logical PE state: width, counters, and live registers.
    /// Column storage that was allocated but drained (or pre-sized via
    /// [`CoarsePe::with_geometry`]) does not affect equality.
    fn eq(&self, other: &Self) -> bool {
        self.width == other.width && self.stats == other.stats && self.live == other.live && {
            let flat = |pe: &Self| {
                pe.columns
                    .iter()
                    .enumerate()
                    .flat_map(|(s, col)| col.iter().map(move |&((r, k), v)| ((r, k, s), v)))
                    .collect::<Vec<_>>()
            };
            flat(self) == flat(other)
        }
    }
}

/// Measures the packing efficiency of a *fixed-S* PE design on a layer
/// with `s_layer` filter columns: a PE hardwired for `s_pe` columns only
/// engages `s_layer` of them (the Sec. IV-B motivating example: S=1 on an
/// S=5 PE leaves 80% idle).
pub fn fixed_s_efficiency(s_pe: usize, s_layer: usize) -> f64 {
    assert!(s_pe > 0 && s_layer > 0, "S must be positive");
    (s_layer.min(s_pe)) as f64 / s_pe as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops(n: usize) -> Vec<WeightOp> {
        (0..n)
            .map(|i| WeightOp {
                r: (i / 3) as u16,
                k: (i % 7) as u16,
                s: (i % 3) as u16,
                value: 1.0,
            })
            .collect()
    }

    #[test]
    fn full_vector_packs_perfectly() {
        let mut pe = CoarsePe::new(8);
        let cycles = pe.issue(1.0, &ops(16));
        assert_eq!(cycles, 2);
        assert_eq!(pe.stats().idle_slots, 0);
        assert_eq!(pe.stats().packing_efficiency(), 1.0);
    }

    #[test]
    fn ragged_vector_fragments_last_cycle() {
        let mut pe = CoarsePe::new(8);
        let cycles = pe.issue(1.0, &ops(9));
        assert_eq!(cycles, 2);
        assert_eq!(pe.stats().idle_slots, 7);
        assert!((pe.stats().packing_efficiency() - 9.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn partials_accumulate_across_issues() {
        let mut pe = CoarsePe::new(4);
        let w = [WeightOp {
            r: 1,
            k: 2,
            s: 0,
            value: 3.0,
        }];
        pe.issue(2.0, &w);
        pe.issue(4.0, &w);
        assert_eq!(pe.partial(1, 2, 0), Some(18.0));
    }

    #[test]
    fn drain_column_pops_only_that_column_sorted() {
        let mut pe = CoarsePe::new(8);
        pe.issue(
            1.0,
            &[
                WeightOp {
                    r: 0,
                    k: 5,
                    s: 0,
                    value: 1.0,
                },
                WeightOp {
                    r: 0,
                    k: 2,
                    s: 0,
                    value: 2.0,
                },
                WeightOp {
                    r: 1,
                    k: 0,
                    s: 1,
                    value: 3.0,
                },
            ],
        );
        let drained = pe.drain_column(0);
        assert_eq!(drained, vec![((0, 2), 2.0), ((0, 5), 1.0)]);
        assert_eq!(pe.live_partials(), 1);
        // Draining again finds nothing.
        assert!(pe.drain_column(0).is_empty());
    }

    #[test]
    fn drain_drops_exact_zeros() {
        let mut pe = CoarsePe::new(4);
        pe.issue(
            1.0,
            &[WeightOp {
                r: 0,
                k: 0,
                s: 0,
                value: 1.0,
            }],
        );
        pe.issue(
            -1.0,
            &[WeightOp {
                r: 0,
                k: 0,
                s: 0,
                value: 1.0,
            }],
        );
        assert!(pe.drain_column(0).is_empty());
    }

    #[test]
    fn empty_issue_is_free() {
        let mut pe = CoarsePe::new(8);
        assert_eq!(pe.issue(1.0, &[]), 0);
        assert_eq!(pe.stats().busy_cycles, 0);
    }

    #[test]
    fn with_geometry_behaves_like_new() {
        let mut a = CoarsePe::new(8);
        let mut b = CoarsePe::with_geometry(8, 3, 8);
        for i in 0..20 {
            let v = ops(i % 9 + 1);
            a.issue(i as f32, &v);
            b.issue(i as f32, &v);
        }
        assert_eq!(a, b);
        assert_eq!(a.live_partials(), b.live_partials());
        assert_eq!(a.drain_column(1), b.drain_column(1));
        assert_eq!(a, b);
        // A fresh pre-sized PE equals a fresh default PE.
        assert_eq!(CoarsePe::with_geometry(4, 5, 16), CoarsePe::new(4));
    }

    #[test]
    fn fixed_s_design_fragments_as_the_paper_says() {
        // "if the PE is designed to handle S = 5, when a layer with S = 1
        // is mapped to the PE, 80% of the MAC units are idle."
        assert!((fixed_s_efficiency(5, 1) - 0.2).abs() < 1e-12);
        assert_eq!(fixed_s_efficiency(5, 5), 1.0);
        assert_eq!(fixed_s_efficiency(3, 5), 1.0);
    }

    #[test]
    fn coarse_grain_beats_fixed_s_on_mixed_layers() {
        // A coarse PE running many S=1 vectors of K weights packs near
        // 100%; a fixed S=5 PE caps at 20%.
        let mut pe = CoarsePe::new(8);
        for i in 0..100u16 {
            let vec: Vec<WeightOp> = (0..8)
                .map(|k| WeightOp {
                    r: 0,
                    k,
                    s: 0,
                    value: i as f32,
                })
                .collect();
            pe.issue(1.0, &vec);
        }
        assert!(pe.stats().packing_efficiency() > 0.99);
        assert!(fixed_s_efficiency(5, 1) < 0.25);
    }
}
