//! The dynamic PE scheduler (paper Sec. IV-B).
//!
//! Sparsity makes per-layer work vary quickly, so a static PE partition
//! would load-imbalance. ISOSceles instead reallocates PEs every
//! `scheduler_interval` (100) cycles, proportionally to each layer's MAC
//! demand measured over the *previous* interval. That one-interval lag is
//! the source of the fragmentation underutilization the paper discusses in
//! Sec. VI-B, and this model keeps it.

use serde::{Deserialize, Serialize};

/// Periodic proportional-share PE allocator.
///
/// # Examples
///
/// ```
/// use isosceles::arch::DynamicScheduler;
/// let mut sched = DynamicScheduler::new(4096.0);
/// // First interval: no history, equal shares.
/// let a = sched.allocate(&[100.0, 300.0]);
/// assert_eq!(a, vec![2048.0, 2048.0]);
/// // Second interval: shares follow the previous demand (1:3).
/// let b = sched.allocate(&[100.0, 300.0]);
/// assert_eq!(b, vec![1024.0, 3072.0]);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DynamicScheduler {
    total_pes: f64,
    prev_demand: Option<Vec<f64>>,
}

impl DynamicScheduler {
    /// Creates a scheduler managing `total_pes` MAC units.
    ///
    /// # Panics
    ///
    /// Panics if `total_pes` is not positive.
    pub fn new(total_pes: f64) -> Self {
        assert!(total_pes > 0.0, "need at least one PE");
        Self {
            total_pes,
            prev_demand: None,
        }
    }

    /// Allocates PEs for the next interval given each layer's current
    /// demand (in MACs), using the previous interval's demand as the
    /// proportional-share key. Layers with zero historic demand receive
    /// zero PEs unless *all* history is zero, in which case shares are
    /// equal.
    pub fn allocate(&mut self, demand: &[f64]) -> Vec<f64> {
        let mut shares = Vec::new();
        self.allocate_into(demand, &mut shares);
        shares
    }

    /// [`allocate`](Self::allocate) writing the shares into `out`
    /// (cleared first) and recycling the history buffer, so the
    /// cycle-level interval loop pays no allocation per call. The share
    /// values are bit-identical to [`allocate`](Self::allocate)'s.
    pub fn allocate_into(&mut self, demand: &[f64], out: &mut Vec<f64>) {
        out.clear();
        let total = match &self.prev_demand {
            Some(prev) if prev.len() == demand.len() => prev.iter().sum::<f64>(),
            _ => 0.0,
        };
        if total > 0.0 {
            let prev = self.prev_demand.as_ref().expect("history checked above");
            if prev.len() == 1
                && isos_sim::dram::exact_recip(self.total_pes).is_some()
                && (self.total_pes * prev[0]).is_finite()
            {
                // Single layer, power-of-two PE count: the share expression
                // is `pes * d / d` with `pes * d` exact (a pure exponent
                // shift that neither rounds nor overflows, per the guard),
                // so the correctly-rounded quotient is exactly `pes` — no
                // division needed.
                out.push(self.total_pes);
            } else {
                // Zero-demand layers (gated, starved, or finished) get a
                // share of exactly `pes * 0.0 / total == +0.0`; branching
                // the division away is bit-identical and the drain/gated
                // phases of a pipelined group are mostly zeros.
                out.extend(prev.iter().map(|&d| {
                    if d == 0.0 {
                        0.0
                    } else {
                        self.total_pes * d / total
                    }
                }));
            }
        } else {
            let n = demand.len().max(1) as f64;
            out.resize(demand.len(), self.total_pes / n);
        }
        match &mut self.prev_demand {
            Some(prev) if prev.len() == demand.len() => prev.copy_from_slice(demand),
            Some(prev) => {
                prev.clear();
                prev.extend_from_slice(demand);
            }
            None => self.prev_demand = Some(demand.to_vec()),
        }
    }

    /// Total PEs under management.
    pub fn total_pes(&self) -> f64 {
        self.total_pes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_interval_splits_equally() {
        let mut s = DynamicScheduler::new(100.0);
        assert_eq!(s.allocate(&[5.0, 5.0, 5.0, 5.0]), vec![25.0; 4]);
    }

    #[test]
    fn allocation_follows_previous_demand() {
        let mut s = DynamicScheduler::new(100.0);
        s.allocate(&[90.0, 10.0]);
        let a = s.allocate(&[50.0, 50.0]);
        assert_eq!(a, vec![90.0, 10.0]);
        // Next interval reflects the 50/50 demand.
        let b = s.allocate(&[0.0, 0.0]);
        assert_eq!(b, vec![50.0, 50.0]);
    }

    #[test]
    fn zero_history_falls_back_to_equal() {
        let mut s = DynamicScheduler::new(60.0);
        s.allocate(&[0.0, 0.0, 0.0]);
        assert_eq!(s.allocate(&[1.0, 2.0, 3.0]), vec![20.0; 3]);
    }

    #[test]
    fn layer_count_change_resets_shares() {
        let mut s = DynamicScheduler::new(100.0);
        s.allocate(&[10.0, 90.0]);
        // Group changed size: equal shares again.
        assert_eq!(s.allocate(&[1.0, 1.0, 1.0, 1.0]), vec![25.0; 4]);
    }

    #[test]
    fn allocations_sum_to_total() {
        let mut s = DynamicScheduler::new(4096.0);
        s.allocate(&[3.0, 1.0, 7.0]);
        let a = s.allocate(&[1.0, 1.0, 1.0]);
        assert!((a.iter().sum::<f64>() - 4096.0).abs() < 1e-9);
    }
}
