//! The unified accelerator-model interface.
//!
//! Every performance model the suite compares — ISOSceles itself plus the
//! baselines in `isos-baselines` — is a config struct implementing
//! [`Accelerator`]. The bench suite engine drives them uniformly through
//! `&dyn Accelerator`, and keys its on-disk result cache by
//! [`Accelerator::cache_key`], a stable content hash of the model's name
//! and configuration.
//!
//! # Examples
//!
//! ```
//! use isosceles::accel::Accelerator;
//! use isosceles::IsoscelesConfig;
//! let net = isos_nn::models::googlenet_inception3a(0.58, 1);
//! let cfg = IsoscelesConfig::default();
//! let metrics = cfg.simulate(&net, 1);
//! assert!(metrics.total.cycles > 0);
//! assert_eq!(cfg.name(), "isosceles");
//! ```

use crate::mapping::ExecMode;
use crate::metrics::NetworkMetrics;
use crate::IsoscelesConfig;
use isos_nn::graph::Network;
use isos_trace::TraceSink;

/// A cycle-level accelerator performance model.
///
/// Implementors are configuration structs; simulating the same network
/// with the same seed on the same configuration must be deterministic,
/// since [`cache_key`](Accelerator::cache_key) (plus workload id and seed)
/// is what the suite engine's result cache is addressed by.
///
/// The `Sync` supertrait lets `&dyn Accelerator` cross scoped-thread
/// boundaries in the parallel suite engine.
pub trait Accelerator: Sync {
    /// Stable, human-readable model name (e.g. `"isosceles"`,
    /// `"sparten"`). Used in reports and as part of the cache key.
    fn name(&self) -> &str;

    /// Stable content hash of this configuration.
    ///
    /// Two configurations with equal field values must return equal keys
    /// across runs, platforms, and processes; any field change must change
    /// the key. Implementors normally delegate to [`stable_key`].
    fn cache_key(&self) -> u64;

    /// Simulates `net` end to end and returns its metrics.
    fn simulate(&self, net: &Network, seed: u64) -> NetworkMetrics;

    /// Simulates `net` while emitting trace events to `sink`.
    ///
    /// With a disabled sink this must return metrics bit-identical to
    /// [`simulate`](Accelerator::simulate) — and instrumented models
    /// keep that guarantee with an *enabled* sink too, since tracing
    /// only observes the simulation. The default implementation ignores
    /// the sink; every model in this workspace overrides it.
    fn simulate_traced(
        &self,
        net: &Network,
        seed: u64,
        sink: &mut dyn TraceSink,
    ) -> NetworkMetrics {
        let _ = sink;
        self.simulate(net, seed)
    }
}

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into an FNV-1a state.
fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(state, |h, &b| (h ^ u64::from(b)).wrapping_mul(FNV_PRIME))
}

/// Stable content hash of an accelerator name plus its serialized
/// configuration.
///
/// The configuration is rendered to canonical JSON (fields in declaration
/// order, shortest-round-trip floats) and FNV-1a hashed together with the
/// name, so the key depends only on values — not on process layout or
/// `Hash` implementations, which Rust does not guarantee stable.
pub fn stable_key<C: serde::Serialize + ?Sized>(name: &str, cfg: &C) -> u64 {
    let state = fnv1a(FNV_OFFSET, name.as_bytes());
    // 0xFF never appears in UTF-8, so it unambiguously separates the name
    // from the JSON payload.
    let state = fnv1a(state, &[0xFF]);
    fnv1a(state, serde::json::to_string(cfg).as_bytes())
}

impl Accelerator for IsoscelesConfig {
    fn name(&self) -> &str {
        "isosceles"
    }

    fn cache_key(&self) -> u64 {
        stable_key(Accelerator::name(self), self)
    }

    fn simulate(&self, net: &Network, seed: u64) -> NetworkMetrics {
        crate::arch::run_network(net, self, ExecMode::Pipelined, seed)
    }

    fn simulate_traced(
        &self,
        net: &Network,
        seed: u64,
        sink: &mut dyn TraceSink,
    ) -> NetworkMetrics {
        crate::arch::run_network_traced(net, self, ExecMode::Pipelined, seed, sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_key_is_stable_across_calls() {
        let cfg = IsoscelesConfig::default();
        assert_eq!(cfg.cache_key(), cfg.cache_key());
        assert_eq!(cfg.cache_key(), IsoscelesConfig::default().cache_key());
    }

    #[test]
    fn cache_key_tracks_config_changes() {
        let base = IsoscelesConfig::default();
        let mut wide = base;
        wide.lanes *= 2;
        assert_ne!(base.cache_key(), wide.cache_key());
        let mut slow = base;
        slow.dram_bytes_per_cycle /= 2.0;
        assert_ne!(base.cache_key(), slow.cache_key());
    }

    #[test]
    fn stable_key_separates_name_from_payload() {
        // Same JSON under different names, and different JSON under the
        // same name, must all produce distinct keys.
        let a = stable_key("isosceles", &42u64);
        let b = stable_key("sparten", &42u64);
        let c = stable_key("isosceles", &43u64);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn trait_object_simulation_matches_direct_call() {
        let net = isos_nn::models::googlenet_inception3a(0.58, 1);
        let cfg = IsoscelesConfig::default();
        let direct = crate::arch::run_network(&net, &cfg, ExecMode::Pipelined, 7);
        let dynamic: &dyn Accelerator = &cfg;
        let via_trait = dynamic.simulate(&net, 7);
        assert_eq!(via_trait.total.cycles, direct.total.cycles);
        assert_eq!(via_trait.groups.len(), direct.groups.len());
    }
}
