//! The pipeline mapper: greedy layer grouping under on-chip resource
//! constraints (paper Sec. V, "Benchmarks"; Table IV).
//!
//! ISOSceles pipelines layers greedily from the start of the network until
//! the filter buffer, context arrays, or queues would overflow. Pooling and
//! FC layers are pipeline boundaries; ResNet is grouped at bottleneck-block
//! granularity (a block's skip connection must stay inside its group).
//! Layers whose activation height exceeds the lane count are tiled on `P`;
//! single layers whose weights exceed the filter buffer are tiled on `K`
//! (Sec. IV-C).

use std::fmt;

use crate::config::IsoscelesConfig;
use isos_nn::graph::{Network, NodeId};
use isos_nn::layer::LayerKind;
use serde::{Deserialize, Serialize};

/// How the mapper schedules the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecMode {
    /// Inter-layer pipelining (full ISOSceles).
    Pipelined,
    /// Layer-by-layer execution with the IS-OS dataflow
    /// (ISOSceles-single, the Fig. 18 ablation).
    SingleLayer,
}

/// One pipeline: a set of layers co-resident on the IS-OS block.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PipelineGroup {
    /// Group name: the paper's convention is the first conv layer's name
    /// (Table IV: `l1.0.conv1`).
    pub name: String,
    /// Member layers, topological.
    pub layers: Vec<NodeId>,
    /// Tiles along the output-row dimension `P` (1 = untiled).
    pub p_tiles: usize,
    /// Tiles along the output-channel dimension `K` (single-layer groups
    /// only; 1 = untiled).
    pub k_tiles: usize,
}

impl PipelineGroup {
    /// Builds a group from an explicit layer set, deriving the name (the
    /// paper's convention: the first conv layer, else the first layer) and
    /// the `P`/`K` tiling the mapper would choose for these members.
    ///
    /// This is the building block design-space explorers use to construct
    /// pipeline partitions other than the greedy mapper's; use
    /// [`Mapping::from_partitions`] to build (and validate) a whole plan.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or contains an out-of-range id.
    pub fn from_layers(net: &Network, cfg: &IsoscelesConfig, layers: Vec<NodeId>) -> Self {
        assert!(!layers.is_empty(), "pipeline group must have layers");
        let first_conv = layers
            .iter()
            .copied()
            .find(|&id| {
                matches!(
                    net.layer(id).kind,
                    LayerKind::Conv { .. } | LayerKind::DwConv { .. }
                )
            })
            .unwrap_or(layers[0]);
        let name = net.layer(first_conv).name.clone();
        let occs: Vec<f64> = (0..net.len()).map(|id| weight_occupancy(net, id)).collect();
        let (p_tiles, k_tiles) = tiling_for(net, cfg, &occs, &layers);
        Self {
            name,
            layers,
            p_tiles,
            k_tiles,
        }
    }

    /// Number of convolutional layers in the group (the paper's "L"
    /// column in Table IV counts convs, not adds).
    pub fn conv_count(&self, net: &Network) -> usize {
        self.layers
            .iter()
            .filter(|&&id| {
                matches!(
                    net.layer(id).kind,
                    LayerKind::Conv { .. } | LayerKind::DwConv { .. }
                )
            })
            .count()
    }

    /// Whether the group actually pipelines multiple layers.
    pub fn is_pipelined(&self) -> bool {
        self.layers.len() > 1
    }
}

/// The full execution plan for a network.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Mapping {
    /// Pipeline groups, in execution order.
    pub groups: Vec<PipelineGroup>,
}

/// Why an explicit partition is not a valid execution plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MappingError {
    /// The partition list was empty while the network has layers.
    Empty,
    /// Partition `group` has no members.
    EmptyGroup {
        /// Index of the offending partition.
        group: usize,
    },
    /// A member id is not a node of the network.
    UnknownLayer {
        /// Index of the offending partition.
        group: usize,
        /// The out-of-range id.
        layer: NodeId,
    },
    /// A layer appears in more than one partition.
    DuplicateLayer(NodeId),
    /// A layer appears in no partition.
    MissingLayer(NodeId),
    /// Flattened execution order is not topological (node ids must be
    /// strictly increasing across the whole plan, since groups run
    /// sequentially and consumers need their producers' outputs).
    OutOfOrder {
        /// Index of the offending partition.
        group: usize,
        /// The layer breaking the order.
        layer: NodeId,
    },
    /// A multi-layer partition contains a layer ISOSceles cannot pipeline
    /// (pooling and FC layers are pipeline boundaries, Sec. V).
    NotPipelineable {
        /// Index of the offending partition.
        group: usize,
        /// The non-pipelineable layer.
        layer: NodeId,
    },
    /// A partition pipelines more layers than the hardware has contexts.
    TooManyContexts {
        /// Index of the offending partition.
        group: usize,
        /// Members in the partition.
        len: usize,
        /// `cfg.max_contexts`.
        max: usize,
    },
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MappingError::Empty => write!(f, "no partitions for a non-empty network"),
            MappingError::EmptyGroup { group } => write!(f, "partition {group} is empty"),
            MappingError::UnknownLayer { group, layer } => {
                write!(f, "partition {group} names unknown layer {layer}")
            }
            MappingError::DuplicateLayer(l) => write!(f, "layer {l} mapped more than once"),
            MappingError::MissingLayer(l) => write!(f, "layer {l} not mapped"),
            MappingError::OutOfOrder { group, layer } => {
                write!(
                    f,
                    "partition {group}: layer {layer} breaks topological order"
                )
            }
            MappingError::NotPipelineable { group, layer } => {
                write!(
                    f,
                    "partition {group} pipelines non-pipelineable layer {layer}"
                )
            }
            MappingError::TooManyContexts { group, len, max } => {
                write!(
                    f,
                    "partition {group} has {len} layers but only {max} contexts exist"
                )
            }
        }
    }
}

impl std::error::Error for MappingError {}

impl Mapping {
    /// Builds a validated execution plan from explicit partitions: each
    /// inner `Vec<NodeId>` becomes one [`PipelineGroup`], in order.
    ///
    /// This is the entry point for design-space exploration over
    /// alternative pipeline groupings (the greedy [`map_network`] is just
    /// one point in that space). Validation enforces what the hardware and
    /// the execution model require — every layer exactly once, strictly
    /// increasing (topological) order, only pipelineable kinds inside
    /// multi-layer groups, and at most `cfg.max_contexts` members — but
    /// deliberately *not* the greedy mapper's buffer-fit heuristics:
    /// oversubscribed partitions are legal to construct, and the cycle
    /// model charges their traffic honestly.
    ///
    /// # Errors
    ///
    /// Returns the first [`MappingError`] found.
    pub fn from_partitions(
        net: &Network,
        cfg: &IsoscelesConfig,
        partitions: &[Vec<NodeId>],
    ) -> Result<Self, MappingError> {
        if partitions.is_empty() && !net.is_empty() {
            return Err(MappingError::Empty);
        }
        let mut seen = vec![false; net.len()];
        let mut prev: Option<NodeId> = None;
        for (gi, part) in partitions.iter().enumerate() {
            if part.is_empty() {
                return Err(MappingError::EmptyGroup { group: gi });
            }
            if part.len() > cfg.max_contexts {
                return Err(MappingError::TooManyContexts {
                    group: gi,
                    len: part.len(),
                    max: cfg.max_contexts,
                });
            }
            for &id in part {
                if id >= net.len() {
                    return Err(MappingError::UnknownLayer {
                        group: gi,
                        layer: id,
                    });
                }
                if seen[id] {
                    return Err(MappingError::DuplicateLayer(id));
                }
                seen[id] = true;
                if prev.is_some_and(|p| id <= p) {
                    return Err(MappingError::OutOfOrder {
                        group: gi,
                        layer: id,
                    });
                }
                prev = Some(id);
                if part.len() > 1 && !net.layer(id).kind.is_pipelineable() {
                    return Err(MappingError::NotPipelineable {
                        group: gi,
                        layer: id,
                    });
                }
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(MappingError::MissingLayer(missing));
        }
        let groups = partitions
            .iter()
            .map(|part| PipelineGroup::from_layers(net, cfg, part.clone()))
            .collect();
        Ok(Self { groups })
    }

    /// The plan's partitions as plain layer-id lists (the inverse of
    /// [`Mapping::from_partitions`]).
    pub fn partitions(&self) -> Vec<Vec<NodeId>> {
        self.groups.iter().map(|g| g.layers.clone()).collect()
    }

    /// Maximum number of layers pipelined together.
    pub fn max_group_len(&self) -> usize {
        self.groups
            .iter()
            .map(|g| g.layers.len())
            .max()
            .unwrap_or(0)
    }

    /// Groups that pipeline at least two layers.
    pub fn pipelined_groups(&self) -> impl Iterator<Item = &PipelineGroup> {
        self.groups.iter().filter(|g| g.is_pipelined())
    }
}

/// A schedulable unit: either one block (with its skip connection) or a
/// single uncovered layer.
#[derive(Clone, Debug)]
struct Unit {
    name: String,
    members: Vec<NodeId>,
    pipelineable: bool,
}

/// Builds the execution plan for `net` under `cfg`.
pub fn map_network(net: &Network, cfg: &IsoscelesConfig, mode: ExecMode) -> Mapping {
    let units = collect_units(net);
    // The greedy grower re-tests overlapping layer sets against the
    // context constraint, and the per-layer accumulator occupancy behind
    // it costs a `powf`; memoizing it per layer keeps the mapping
    // identical while the constraint checks become table lookups.
    let occs: Vec<f64> = (0..net.len()).map(|id| weight_occupancy(net, id)).collect();
    let mut groups: Vec<PipelineGroup> = Vec::new();
    let mut current: Vec<Unit> = Vec::new();
    // Flat view of `current`'s members, maintained incrementally (the
    // grower used to re-flatten the whole prefix for every candidate).
    let mut current_flat: Vec<NodeId> = Vec::new();
    let mut candidate: Vec<NodeId> = Vec::new();

    let flush = |current: &mut Vec<Unit>,
                 current_flat: &mut Vec<NodeId>,
                 groups: &mut Vec<PipelineGroup>| {
        if current.is_empty() {
            return;
        }
        let layers = std::mem::take(current_flat);
        let name = current[0].name.clone();
        let (p_tiles, k_tiles) = tiling_for(net, cfg, &occs, &layers);
        groups.push(PipelineGroup {
            name,
            layers,
            p_tiles,
            k_tiles,
        });
        current.clear();
    };

    for unit in units {
        let single_only = mode == ExecMode::SingleLayer;
        if !unit.pipelineable || single_only {
            flush(&mut current, &mut current_flat, &mut groups);
            push_decomposed(net, cfg, &occs, &unit.members, &mut groups);
            continue;
        }
        // Would appending this unit violate a resource constraint?
        candidate.clear();
        candidate.extend_from_slice(&current_flat);
        candidate.extend_from_slice(&unit.members);
        if !current.is_empty() && !fits(net, cfg, &occs, &candidate) {
            flush(&mut current, &mut current_flat, &mut groups);
        }
        // A unit that doesn't even fit alone runs as single layers
        // (weights tiled on K as needed).
        if !fits(net, cfg, &occs, &unit.members) && unit.members.len() > 1 {
            push_decomposed(net, cfg, &occs, &unit.members, &mut groups);
            continue;
        }
        current_flat.extend_from_slice(&unit.members);
        current.push(unit);
    }
    flush(&mut current, &mut current_flat, &mut groups);
    Mapping { groups }
}

/// Emits layer-by-layer groups for `members`, fusing each `Add` with the
/// conv that feeds it (the paper models skip-connection adds fused into
/// the preceding conv when layers run unpipelined, Sec. V).
fn push_decomposed(
    net: &Network,
    cfg: &IsoscelesConfig,
    occs: &[f64],
    members: &[NodeId],
    groups: &mut Vec<PipelineGroup>,
) {
    for &id in members {
        let is_add = matches!(net.layer(id).kind, LayerKind::Add);
        let feeds_last = groups
            .last()
            .is_some_and(|g| net.nodes()[id].inputs.iter().any(|p| g.layers.contains(p)));
        if is_add && feeds_last {
            let g = groups.last_mut().expect("checked above");
            g.layers.push(id);
            continue;
        }
        let layers = vec![id];
        let (p_tiles, k_tiles) = tiling_for(net, cfg, occs, &layers);
        groups.push(PipelineGroup {
            name: net.layer(id).name.clone(),
            layers,
            p_tiles,
            k_tiles,
        });
    }
}

/// Partitions the network into blocks (from the graph's hints) plus
/// singleton units for uncovered layers, in topological order.
#[allow(clippy::needless_range_loop)] // id doubles as the NodeId
fn collect_units(net: &Network) -> Vec<Unit> {
    let mut covered = vec![false; net.len()];
    let mut units: Vec<(NodeId, Unit)> = Vec::new();
    for block in net.blocks() {
        for &m in &block.members {
            covered[m] = true;
        }
        let pipelineable = block
            .members
            .iter()
            .all(|&m| net.layer(m).kind.is_pipelineable());
        units.push((
            block.members[0],
            Unit {
                name: block_display_name(net, block.members[0], &block.name),
                members: block.members.clone(),
                pipelineable,
            },
        ));
    }
    for id in 0..net.len() {
        if !covered[id] {
            units.push((
                id,
                Unit {
                    name: net.layer(id).name.clone(),
                    members: vec![id],
                    pipelineable: net.layer(id).kind.is_pipelineable(),
                },
            ));
        }
    }
    units.sort_by_key(|&(first, _)| first);
    units.into_iter().map(|(_, u)| u).collect()
}

/// Table IV names pipelines after the first conv layer of the group.
fn block_display_name(net: &Network, first: NodeId, fallback: &str) -> String {
    let name = &net.layer(first).name;
    if name.is_empty() {
        fallback.to_owned()
    } else {
        name.clone()
    }
}

/// Checks the three on-chip constraints for co-residency: filter buffer,
/// per-lane context arrays, and context (layer) count.
fn fits(net: &Network, cfg: &IsoscelesConfig, occs: &[f64], layers: &[NodeId]) -> bool {
    if layers.len() > cfg.max_contexts {
        return false;
    }
    let fb: f64 = layers
        .iter()
        .map(|&id| cfg.filter_buffer_occupancy(net.layer(id).weight_csf_bytes()))
        .sum();
    if fb > cfg.filter_buffer_bytes as f64 {
        return false;
    }
    // Context arrays: assume maximal P tiling is allowed to shrink the
    // requirement; check at the tiling the group would actually use.
    let (p_tiles, _) = tiling_for(net, cfg, occs, layers);
    let ctx: f64 = layers
        .iter()
        .map(|&id| context_bytes_per_lane(net, cfg, occs[id], id, p_tiles))
        .sum();
    ctx <= cfg.context_bytes_per_lane as f64
}

/// Accumulator occupancy of one layer's context array. A slot `(r, k, s)`
/// is live only if any of the C input channels contributes a nonzero
/// product, so occupancy falls with weight/activation sparsity — this is
/// what lets sparser networks pipeline more layers (Sec. VI-A). Depends
/// only on the layer (not the tiling), so [`map_network`] memoizes it.
fn weight_occupancy(net: &Network, id: NodeId) -> f64 {
    let layer = net.layer(id);
    let c = layer.input.c.max(1) as f64;
    let p_hit = (layer.weight_density * layer.in_act_density).clamp(0.0, 1.0);
    (1.0 - (1.0 - p_hit).powf(c)).clamp(0.05, 1.0)
}

/// Per-lane context requirement of one layer (paper Sec. III-A: partial
/// state is ~`K x R x S` accumulators per lane, double-buffered;
/// Sec. IV-C: small layers split `K` across lanes, large layers stack
/// rows per lane). `occupancy` is the layer's [`weight_occupancy`].
fn context_bytes_per_lane(
    net: &Network,
    cfg: &IsoscelesConfig,
    occupancy: f64,
    id: NodeId,
    p_tiles: usize,
) -> f64 {
    let layer = net.layer(id);
    let k = layer.output.c;
    let p = layer.output.h;
    let rows_per_tile = p.div_ceil(p_tiles).max(1);
    let rows_per_lane = rows_per_tile.div_ceil(cfg.lanes).max(1);
    let k_split = if rows_per_tile < cfg.lanes {
        (cfg.lanes / rows_per_tile).max(1)
    } else {
        1
    };
    let k_per_lane = k.div_ceil(k_split).max(1);
    let acc = cfg.accumulator_bytes() as f64;
    if matches!(layer.kind, LayerKind::Add) {
        // Adds run on the merger path; they only stage one output
        // wavefront.
        return (k_per_lane as f64) * acc;
    }
    let (r, s) = layer.kind.kernel();
    // Partial results are stored *compressed* in the context array
    // (Sec. IV-A: T1 is never materialized dense); see
    // [`weight_occupancy`]. 1.5x covers coordinate metadata and staging
    // slack.
    1.5 * occupancy * (k_per_lane * r * s * rows_per_lane) as f64 * acc
}

/// Chooses the `P` and `K` tiling for a group.
fn tiling_for(
    net: &Network,
    cfg: &IsoscelesConfig,
    occs: &[f64],
    layers: &[NodeId],
) -> (usize, usize) {
    // P tiling: required when rows exceed lanes, or to shrink contexts.
    let max_p = layers
        .iter()
        .map(|&id| net.layer(id).output.h)
        .max()
        .unwrap_or(1);
    let mut p_tiles = max_p.div_ceil(cfg.lanes).max(1);
    // For single layers, grow P tiling until the context fits (V90-style
    // mid-network tiling), bounded to avoid infinite loops on impossible
    // configs. Multi-layer groups must fit at their natural tiling — the
    // greedy mapper shrinks the group instead.
    if layers.len() == 1 {
        for _ in 0..8 {
            let ctx: f64 = layers
                .iter()
                .map(|&id| context_bytes_per_lane(net, cfg, occs[id], id, p_tiles))
                .sum();
            if ctx <= cfg.context_bytes_per_lane as f64 {
                break;
            }
            p_tiles *= 2;
        }
    }
    // K tiling: only for single layers whose weights overflow the buffer.
    let k_tiles = if layers.len() == 1 {
        let occ = cfg.filter_buffer_occupancy(net.layer(layers[0]).weight_csf_bytes());
        (occ / cfg.filter_buffer_bytes as f64).ceil().max(1.0) as usize
    } else {
        1
    };
    (p_tiles, k_tiles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use isos_nn::models::{mobilenet_v1, resnet50, vgg16};

    fn cfg() -> IsoscelesConfig {
        IsoscelesConfig::default()
    }

    #[test]
    fn resnet96_pipelines_at_block_granularity() {
        let net = resnet50(0.96, 1);
        let mapping = map_network(&net, &cfg(), ExecMode::Pipelined);
        // The paper: only the first conv and FC are not pipelined in R96;
        // pipelines are 3-6 convs (1-2 blocks).
        let pipelined: Vec<_> = mapping.pipelined_groups().collect();
        assert!(!pipelined.is_empty());
        for g in &pipelined {
            let convs = g.conv_count(&net);
            assert!(
                (3..=9).contains(&convs),
                "group {} has {convs} convs",
                g.name
            );
        }
        // conv1 must be its own group, tiled on P (112 rows > 64 lanes).
        let conv1 = mapping.groups.iter().find(|g| g.name == "conv1").unwrap();
        assert_eq!(conv1.layers.len(), 1);
        assert!(conv1.p_tiles >= 2);
    }

    #[test]
    fn sparser_resnet_pipelines_more_layers() {
        let m96 = map_network(&resnet50(0.96, 1), &cfg(), ExecMode::Pipelined);
        let m99 = map_network(&resnet50(0.99, 1), &cfg(), ExecMode::Pipelined);
        assert!(
            m99.max_group_len() >= m96.max_group_len(),
            "R99 groups {} vs R96 {}",
            m99.max_group_len(),
            m96.max_group_len()
        );
        // R99 should pipeline more than one block somewhere (9+ layers in
        // the paper).
        let convs_99 = m99
            .pipelined_groups()
            .map(|g| g.conv_count(&resnet50(0.99, 1)))
            .max()
            .unwrap();
        assert!(convs_99 >= 6, "R99 max convs {convs_99}");
    }

    #[test]
    fn single_layer_mode_never_pipelines_convs() {
        let net = resnet50(0.96, 1);
        let mapping = map_network(&net, &cfg(), ExecMode::SingleLayer);
        // At most one conv per group (adds fuse into the conv feeding
        // them, as the paper does for unpipelined skip connections).
        for g in &mapping.groups {
            assert!(g.conv_count(&net) <= 1, "group {} pipelines convs", g.name);
            assert!(g.layers.len() <= 2);
        }
        // Every layer appears exactly once.
        let total: usize = mapping.groups.iter().map(|g| g.layers.len()).sum();
        assert_eq!(total, net.len());
    }

    #[test]
    fn every_layer_mapped_exactly_once() {
        for net in [resnet50(0.9, 1), mobilenet_v1(0.75, 1), vgg16(0.68, 1)] {
            let mapping = map_network(&net, &cfg(), ExecMode::Pipelined);
            let mut seen = vec![0u32; net.len()];
            for g in &mapping.groups {
                for &id in &g.layers {
                    seen[id] += 1;
                }
            }
            assert!(
                seen.iter().all(|&c| c == 1),
                "{}: layer mapped {:?}",
                net.name,
                seen
            );
        }
    }

    #[test]
    fn pools_and_fc_are_boundaries() {
        let net = vgg16(0.68, 1);
        let mapping = map_network(&net, &cfg(), ExecMode::Pipelined);
        for g in &mapping.groups {
            if g.layers.len() > 1 {
                for &id in &g.layers {
                    assert!(
                        net.layer(id).kind.is_pipelineable(),
                        "non-pipelineable layer {} inside pipeline",
                        net.layer(id).name
                    );
                }
            }
        }
    }

    #[test]
    fn vgg_first_layers_tiled_on_p() {
        let net = vgg16(0.68, 1);
        let mapping = map_network(&net, &cfg(), ExecMode::Pipelined);
        // features.0 has 224 rows > 64 lanes: must be tiled on P.
        let g = mapping
            .groups
            .iter()
            .find(|g| {
                g.layers
                    .iter()
                    .any(|&id| net.layer(id).name == "features.0")
            })
            .unwrap();
        assert!(g.p_tiles >= 4, "p_tiles {}", g.p_tiles);
    }

    #[test]
    fn vgg_fc_layers_tile_on_k() {
        let net = vgg16(0.68, 1);
        let mapping = map_network(&net, &cfg(), ExecMode::Pipelined);
        // classifier.0 is 25088x4096 at 68% sparsity: ~80 MB of weights,
        // far beyond the 1 MB buffer.
        let g = mapping
            .groups
            .iter()
            .find(|g| net.layer(g.layers[0]).name == "classifier.0")
            .unwrap();
        assert!(g.k_tiles > 1, "k_tiles {}", g.k_tiles);
    }

    #[test]
    fn explicit_partitions_round_trip_the_greedy_mapping() {
        for net in [resnet50(0.96, 1), mobilenet_v1(0.89, 1), vgg16(0.68, 1)] {
            let mapping = map_network(&net, &cfg(), ExecMode::Pipelined);
            let rebuilt = Mapping::from_partitions(&net, &cfg(), &mapping.partitions())
                .expect("greedy mapping is a valid partition");
            assert_eq!(rebuilt, mapping, "{}", net.name);
        }
    }

    #[test]
    fn from_partitions_rejects_bad_plans() {
        let net = resnet50(0.96, 1);
        let c = cfg();
        let good = map_network(&net, &c, ExecMode::Pipelined).partitions();

        assert_eq!(
            Mapping::from_partitions(&net, &c, &[]),
            Err(MappingError::Empty)
        );

        // Repeat the leading conv of a pipelined block inside its own
        // partition: the duplicate is caught before the order check.
        let mut dup = good.clone();
        let gi = good
            .iter()
            .position(|p| p.len() > 1)
            .expect("a pipelined partition");
        let repeated = dup[gi][0];
        dup[gi].insert(1, repeated);
        assert_eq!(
            Mapping::from_partitions(&net, &c, &dup),
            Err(MappingError::DuplicateLayer(repeated))
        );

        let mut missing = good.clone();
        missing.pop();
        assert!(matches!(
            Mapping::from_partitions(&net, &c, &missing),
            Err(MappingError::MissingLayer(_))
        ));

        let mut unordered = good.clone();
        unordered.swap(0, 1);
        assert!(matches!(
            Mapping::from_partitions(&net, &c, &unordered),
            Err(MappingError::OutOfOrder { .. })
        ));

        let mut empty = good.clone();
        empty.push(Vec::new());
        let err = Mapping::from_partitions(&net, &c, &empty).unwrap_err();
        assert!(
            matches!(
                err,
                MappingError::EmptyGroup { .. } | MappingError::MissingLayer(_)
            ),
            "{err}"
        );

        let tight = IsoscelesConfig {
            max_contexts: 1,
            ..c
        };
        assert!(matches!(
            Mapping::from_partitions(&net, &tight, &good),
            Err(MappingError::TooManyContexts { .. })
        ));
    }

    #[test]
    fn from_partitions_rejects_pipelined_pool() {
        let net = vgg16(0.68, 1);
        let c = cfg();
        // Glue everything into one giant partition: some member is a pool
        // or FC layer, which cannot be pipelined.
        let all: Vec<usize> = (0..net.len()).collect();
        let wide = IsoscelesConfig {
            max_contexts: net.len(),
            ..c
        };
        assert!(matches!(
            Mapping::from_partitions(&net, &wide, &[all]),
            Err(MappingError::NotPipelineable { .. })
        ));
    }

    #[test]
    fn group_from_layers_names_first_conv() {
        let net = resnet50(0.96, 1);
        let c = cfg();
        let mapping = map_network(&net, &c, ExecMode::Pipelined);
        let block = mapping
            .groups
            .iter()
            .find(|g| g.layers.len() > 3)
            .expect("a pipelined block");
        let rebuilt = PipelineGroup::from_layers(&net, &c, block.layers.clone());
        assert_eq!(rebuilt, *block);
    }

    #[test]
    fn mobilenet_pipelines_several_blocks() {
        let net = mobilenet_v1(0.89, 1);
        let mapping = map_network(&net, &cfg(), ExecMode::Pipelined);
        // Paper: 3-7 layers pipelined for MobileNet.
        let best = mapping
            .pipelined_groups()
            .map(|g| g.conv_count(&net))
            .max()
            .unwrap_or(0);
        assert!(best >= 3, "max pipelined convs {best}");
    }
}
