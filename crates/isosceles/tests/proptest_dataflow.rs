//! Property-based tests: the IS-OS dataflow is equivalent to the dense
//! golden model over randomized shapes, sparsities, strides, and padding.

use isos_nn::reference;
use isos_tensor::{gen, Csf};
use isosceles::dataflow::{execute_add, execute_conv, execute_dwconv, execute_fc, Pou};
use isosceles::spgemm::spgemm;
use proptest::prelude::*;

/// Random conv problem: (h, w, c, r, s, k, stride, pad, in_density,
/// w_density, seed).
#[allow(clippy::type_complexity)]
fn conv_problem() -> impl Strategy<
    Value = (
        usize,
        usize,
        usize,
        usize,
        usize,
        usize,
        usize,
        usize,
        f64,
        f64,
        u64,
    ),
> {
    (
        4usize..10,
        4usize..12,
        1usize..5,
        1usize..4,
        1usize..4,
        1usize..6,
        1usize..3,
        0usize..2,
        0.05f64..1.0,
        0.05f64..1.0,
        0u64..10_000,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn conv_equals_reference((h, w, c, r, s, k, stride, pad, din, dw, seed) in conv_problem()) {
        prop_assume!(h + 2 * pad >= r && w + 2 * pad >= s);
        let input = gen::random_dense(vec![h, w, c].into(), din, seed);
        let filter = gen::random_dense(vec![c, r, k, s].into(), dw, seed + 1);
        let exec = execute_conv(
            &Csf::from_dense(&input),
            &Csf::from_dense(&filter),
            stride,
            pad,
            &Pou::relu(k),
        );
        let golden = reference::bn_relu(
            &reference::conv2d(&input, &filter, stride, pad),
            &vec![1.0; k],
            &vec![0.0; k],
        );
        prop_assert!(
            exec.output.to_dense().max_abs_diff(&golden) < 1e-3,
            "h{h} w{w} c{c} r{r} s{s} k{k} stride{stride} pad{pad}"
        );
        // Output is concordant by construction.
        let pts: Vec<_> = exec.output.iter().map(|(p, _)| p).collect();
        prop_assert!(pts.windows(2).all(|x| x[0] < x[1]));
    }

    #[test]
    fn dwconv_equals_reference(
        (h, w, c) in (4usize..10, 4usize..10, 1usize..6),
        stride in 1usize..3,
        din in 0.1f64..1.0,
        dwd in 0.1f64..1.0,
        seed in 0u64..10_000,
    ) {
        let input = gen::random_dense(vec![h, w, c].into(), din, seed);
        let filter = gen::random_dense(vec![c, 3, 3].into(), dwd, seed + 1);
        prop_assume!(h + 2 >= 3 && w + 2 >= 3);
        let exec = execute_dwconv(
            &Csf::from_dense(&input),
            &Csf::from_dense(&filter),
            stride,
            1,
            &Pou::relu(c),
        );
        let golden = reference::bn_relu(
            &reference::dwconv2d(&input, &filter, stride, 1),
            &vec![1.0; c],
            &vec![0.0; c],
        );
        prop_assert!(exec.output.to_dense().max_abs_diff(&golden) < 1e-3);
    }

    #[test]
    fn fc_equals_reference(
        n in 1usize..64,
        k in 1usize..32,
        din in 0.05f64..1.0,
        dwd in 0.05f64..1.0,
        seed in 0u64..10_000,
    ) {
        let input = gen::random_dense(vec![1, 1, n].into(), din, seed);
        let weights = gen::random_dense(vec![n, k].into(), dwd, seed + 1);
        let exec = execute_fc(
            &Csf::from_dense(&input),
            &Csf::from_dense(&weights),
            &Pou::linear(k),
        );
        let golden = reference::fully_connected(&input, &weights);
        prop_assert!(exec.output.to_dense().max_abs_diff(&golden) < 1e-3);
    }

    #[test]
    fn add_equals_reference(
        dims in (1usize..6, 1usize..6, 1usize..6),
        da in 0.1f64..1.0,
        db in 0.1f64..1.0,
        seed in 0u64..10_000,
    ) {
        let (h, w, c) = dims;
        let a = gen::random_dense(vec![h, w, c].into(), da, seed);
        let b = gen::random_dense(vec![h, w, c].into(), db, seed + 1);
        let exec = execute_add(&Csf::from_dense(&a), &Csf::from_dense(&b), &Pou::relu(c));
        let golden = reference::bn_relu(&reference::add(&a, &b), &vec![1.0; c], &vec![0.0; c]);
        prop_assert!(exec.output.to_dense().max_abs_diff(&golden) < 1e-4);
    }

    #[test]
    fn spgemm_equals_dense_matmul(
        (m, k, n) in (1usize..12, 1usize..12, 1usize..12),
        da in 0.05f64..0.8,
        db in 0.05f64..0.8,
        seed in 0u64..10_000,
    ) {
        let a = gen::random_dense(vec![m, k].into(), da, seed);
        let b = gen::random_dense(vec![k, n].into(), db, seed + 1);
        let out = spgemm(&Csf::from_dense(&a), &Csf::from_dense(&b));
        let mut golden = isos_tensor::Dense::zeros(vec![m, n].into());
        for i in 0..m {
            for kk in 0..k {
                let av = a.data()[i * k + kk];
                if av == 0.0 { continue; }
                for j in 0..n {
                    golden.data_mut()[i * n + j] += av * b.data()[kk * n + j];
                }
            }
        }
        prop_assert!(out.output.to_dense().max_abs_diff(&golden) < 1e-3);
    }

    #[test]
    fn conv_mac_count_bounded_by_products(
        (h, w, c, r, s, k, stride, pad, din, dw, seed) in conv_problem()
    ) {
        prop_assume!(h + 2 * pad >= r && w + 2 * pad >= s);
        let input = gen::random_csf(vec![h, w, c].into(), din, seed);
        let filter = gen::random_csf(vec![c, r, k, s].into(), dw, seed + 1);
        let exec = execute_conv(&input, &filter, stride, pad, &Pou::relu(k));
        // Every MAC pairs a nonzero input with a nonzero filter weight of
        // the same channel.
        prop_assert!(exec.stats.frontend.macs <= (input.nnz() * filter.nnz()) as u64);
        // And the backend consumes no more partials than the frontend made.
        prop_assert!(
            exec.stats.backend.partials_consumed <= exec.stats.frontend.partials_emitted
        );
    }
}
