//! Property-based tests for the pipeline mapper: every plan — greedy or
//! explicit — covers each layer exactly once, preserves topological
//! order, and agrees with its own summary accessors.

use isos_nn::graph::Network;
use isos_nn::layer::LayerKind;
use isos_nn::models::suite_workload;
use isosceles::mapping::{map_network, ExecMode, Mapping, MappingError};
use isosceles::IsoscelesConfig;
use proptest::prelude::*;

const IDS: [&str; 11] = [
    "R81", "R90", "R95", "R96", "R98", "R99", "V68", "V90", "G58", "M75", "M89",
];

fn suite_net(idx: usize, seed: u64) -> Network {
    suite_workload(IDS[idx % IDS.len()], seed).network
}

fn mode(bit: usize) -> ExecMode {
    if bit == 0 {
        ExecMode::Pipelined
    } else {
        ExecMode::SingleLayer
    }
}

fn is_conv(net: &Network, id: usize) -> bool {
    matches!(
        net.layer(id).kind,
        LayerKind::Conv { .. } | LayerKind::DwConv { .. }
    )
}

/// Tiny deterministic generator for case-local random choices (the
/// vendored proptest has no runtime-length collection strategies).
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        Self(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Independent validity predicate for contiguous partitions of `0..n`:
/// coverage and order hold by construction, so a plan is valid iff every
/// multi-layer part is all-pipelineable and no part exceeds the context
/// count.
fn contiguous_plan_is_valid(net: &Network, cfg: &IsoscelesConfig, parts: &[Vec<usize>]) -> bool {
    parts.iter().all(|p| {
        p.len() <= cfg.max_contexts
            && (p.len() == 1 || p.iter().all(|&id| net.layer(id).kind.is_pipelineable()))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn greedy_mapping_covers_each_layer_exactly_once_in_order(
        idx in 0usize..11,
        m in 0usize..2,
        seed in 0u64..1000,
    ) {
        let net = suite_net(idx, seed);
        let cfg = IsoscelesConfig::default();
        let mapping = map_network(&net, &cfg, mode(m));
        let flat: Vec<usize> = mapping.groups.iter().flat_map(|g| g.layers.clone()).collect();
        prop_assert_eq!(flat.len(), net.len());
        // Strictly increasing ids = each exactly once AND topological.
        prop_assert!(flat.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(*flat.first().unwrap(), 0);
        prop_assert_eq!(*flat.last().unwrap(), net.len() - 1);
    }

    #[test]
    fn mapping_summaries_agree_with_group_contents(
        idx in 0usize..11,
        m in 0usize..2,
        seed in 0u64..1000,
    ) {
        let net = suite_net(idx, seed);
        let cfg = IsoscelesConfig::default();
        let mapping = map_network(&net, &cfg, mode(m));
        let longest = mapping.groups.iter().map(|g| g.layers.len()).max().unwrap_or(0);
        prop_assert_eq!(mapping.max_group_len(), longest);
        prop_assert!(mapping.max_group_len() <= cfg.max_contexts);
        // Per-group conv counts tally the group's own members, and they
        // sum to the network's conv total.
        let mut total_convs = 0;
        for g in &mapping.groups {
            let convs = g.layers.iter().filter(|&&id| is_conv(&net, id)).count();
            prop_assert_eq!(g.conv_count(&net), convs);
            prop_assert!(g.conv_count(&net) <= g.layers.len());
            prop_assert_eq!(g.is_pipelined(), g.layers.len() > 1);
            total_convs += convs;
        }
        let net_convs = (0..net.len()).filter(|&id| is_conv(&net, id)).count();
        prop_assert_eq!(total_convs, net_convs);
        // Pipelined groups iterator matches the same predicate.
        let piped = mapping.pipelined_groups().count();
        prop_assert_eq!(piped, mapping.groups.iter().filter(|g| g.layers.len() > 1).count());
    }

    #[test]
    fn greedy_partitions_round_trip_through_from_partitions(
        idx in 0usize..11,
        m in 0usize..2,
        seed in 0u64..1000,
    ) {
        let net = suite_net(idx, seed);
        let cfg = IsoscelesConfig::default();
        let mapping = map_network(&net, &cfg, mode(m));
        let rebuilt = Mapping::from_partitions(&net, &cfg, &mapping.partitions());
        prop_assert_eq!(rebuilt, Ok(mapping));
    }

    #[test]
    fn random_contiguous_partitions_accepted_iff_valid(
        idx in 0usize..11,
        seed in 0u64..1000,
        cuts in 0u64..u64::MAX,
    ) {
        let net = suite_net(idx, seed);
        let cfg = IsoscelesConfig::default();
        // Random contiguous partition of 0..n: cut after each layer with
        // probability 1/2 (plus a forced final cut).
        let mut rng = XorShift::new(cuts);
        let mut parts: Vec<Vec<usize>> = vec![Vec::new()];
        for id in 0..net.len() {
            parts.last_mut().unwrap().push(id);
            if rng.next().is_multiple_of(2) && id + 1 < net.len() {
                parts.push(Vec::new());
            }
        }
        let valid = contiguous_plan_is_valid(&net, &cfg, &parts);
        match Mapping::from_partitions(&net, &cfg, &parts) {
            Ok(mapping) => {
                prop_assert!(valid, "accepted an invalid plan");
                prop_assert_eq!(mapping.partitions(), parts);
            }
            Err(e) => {
                prop_assert!(!valid, "rejected a valid plan: {e}");
                prop_assert!(matches!(
                    e,
                    MappingError::NotPipelineable { .. } | MappingError::TooManyContexts { .. }
                ));
            }
        }
    }

    #[test]
    fn perturbed_plans_report_the_precise_defect(
        idx in 0usize..11,
        seed in 0u64..1000,
        pick in 0u64..u64::MAX,
    ) {
        let net = suite_net(idx, seed);
        let cfg = IsoscelesConfig::default();
        let good = map_network(&net, &cfg, ExecMode::Pipelined).partitions();
        let mut rng = XorShift::new(pick);

        // Dropping any single layer -> exactly MissingLayer(that layer)
        // (order and uniqueness still hold for the remaining ids).
        let gi = rng.below(good.len());
        let li = rng.below(good[gi].len());
        let mut dropped = good.clone();
        let victim = dropped[gi].remove(li);
        if dropped[gi].is_empty() {
            dropped.remove(gi);
        }
        prop_assert_eq!(
            Mapping::from_partitions(&net, &cfg, &dropped),
            Err(MappingError::MissingLayer(victim))
        );

        // Repeating a layer next to itself -> exactly DuplicateLayer.
        // Restricted to pipelined groups with context room, so the
        // coarser group-level checks (TooManyContexts, NotPipelineable)
        // can't fire first.
        let candidates: Vec<usize> = good
            .iter()
            .enumerate()
            .filter(|(_, p)| p.len() > 1 && p.len() < cfg.max_contexts)
            .map(|(i, _)| i)
            .collect();
        if !candidates.is_empty() {
            let gi = candidates[rng.below(candidates.len())];
            let li = rng.below(good[gi].len());
            let mut duped = good.clone();
            let repeated = duped[gi][li];
            duped[gi].insert(li + 1, repeated);
            prop_assert_eq!(
                Mapping::from_partitions(&net, &cfg, &duped),
                Err(MappingError::DuplicateLayer(repeated))
            );
        }
    }
}
