//! Compatibility test: the deprecated `arch::pipeline::simulate_network`
//! wrapper remains callable at its defining path and agrees exactly with
//! `run_network` / the [`Accelerator`] trait. This is the only remaining
//! call site; internal code uses the trait.

#![allow(deprecated)]

use isosceles::accel::Accelerator;
use isosceles::arch::pipeline::simulate_network;
use isosceles::arch::run_network;
use isosceles::mapping::ExecMode;
use isosceles::IsoscelesConfig;

#[test]
fn deprecated_simulate_network_matches_run_network_and_trait() {
    let net = isos_nn::models::googlenet_inception3a(0.58, 1);
    let cfg = IsoscelesConfig::default();
    let seed = 7;
    let wrapped = simulate_network(&net, &cfg, ExecMode::Pipelined, seed);
    assert_eq!(wrapped, run_network(&net, &cfg, ExecMode::Pipelined, seed));
    assert_eq!(wrapped, cfg.simulate(&net, seed));

    let single = simulate_network(&net, &cfg, ExecMode::SingleLayer, seed);
    assert_eq!(single, run_network(&net, &cfg, ExecMode::SingleLayer, seed));
}
