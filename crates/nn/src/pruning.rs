//! Functional weight pruning on materialized tensors.
//!
//! [`crate::sparsity`] assigns statistical density targets for the
//! performance models; this module prunes *actual* weight tensors for the
//! functional executors (reference model and the IS-OS dataflow), so
//! correctness tests exercise genuinely unstructured sparsity.

use isos_tensor::Dense;

/// Zeroes the smallest-magnitude weights until `target_sparsity` of the
/// elements are zero (unstructured magnitude pruning [Han et al.]).
///
/// Existing zeros count toward the target. If the tensor is already at or
/// above the target sparsity, nothing changes.
///
/// # Panics
///
/// Panics if `target_sparsity` is not in `[0, 1]`.
pub fn magnitude_prune(weights: &mut Dense, target_sparsity: f64) {
    assert!(
        (0.0..=1.0).contains(&target_sparsity),
        "sparsity out of range"
    );
    let total = weights.data().len();
    let target_zeros = (total as f64 * target_sparsity).round() as usize;
    let current_zeros = total - weights.nnz();
    if current_zeros >= target_zeros {
        return;
    }
    let to_prune = target_zeros - current_zeros;
    // Find the magnitude threshold: the to_prune-th smallest nonzero.
    let mut magnitudes: Vec<f32> = weights
        .data()
        .iter()
        .filter(|&&v| v != 0.0)
        .map(|v| v.abs())
        .collect();
    magnitudes.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let threshold = magnitudes[to_prune - 1];
    // Zero values strictly below threshold, then zero ties until the count
    // is exact (ties broken in storage order, like a stable argsort).
    let mut pruned = 0usize;
    for v in weights.data_mut().iter_mut() {
        if *v != 0.0 && v.abs() < threshold {
            *v = 0.0;
            pruned += 1;
        }
    }
    for v in weights.data_mut().iter_mut() {
        if pruned >= to_prune {
            break;
        }
        if *v != 0.0 && v.abs() == threshold {
            *v = 0.0;
            pruned += 1;
        }
    }
    debug_assert_eq!(pruned, to_prune);
}

/// Applies ReLU in place and returns the resulting density.
pub fn relu(acts: &mut Dense) -> f64 {
    for v in acts.data_mut().iter_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
    1.0 - acts.sparsity()
}

#[cfg(test)]
mod tests {
    use super::*;
    use isos_tensor::gen::random_dense;

    #[test]
    fn prune_hits_exact_target() {
        let mut w = random_dense(vec![16, 16].into(), 1.0, 3);
        magnitude_prune(&mut w, 0.9);
        let zeros = 256 - w.nnz();
        assert_eq!(zeros, (256.0_f64 * 0.9).round() as usize);
    }

    #[test]
    fn prune_keeps_largest_magnitudes() {
        let mut w = Dense::from_vec(vec![5].into(), vec![0.1, -0.9, 0.5, -0.05, 0.7]);
        magnitude_prune(&mut w, 0.6);
        assert_eq!(w.data(), &[0.0, -0.9, 0.0, 0.0, 0.7]);
    }

    #[test]
    fn prune_is_idempotent_at_target() {
        let mut w = random_dense(vec![10, 10].into(), 1.0, 9);
        magnitude_prune(&mut w, 0.5);
        let snapshot = w.clone();
        magnitude_prune(&mut w, 0.5);
        assert_eq!(w, snapshot);
    }

    #[test]
    fn prune_counts_existing_zeros() {
        let mut w = random_dense(vec![10, 10].into(), 0.5, 4);
        // Already ~50% sparse; target 0.3 should be a no-op.
        let snapshot = w.clone();
        magnitude_prune(&mut w, 0.3);
        assert_eq!(w, snapshot);
    }

    #[test]
    fn prune_handles_ties() {
        let mut w = Dense::from_vec(vec![4].into(), vec![0.5, 0.5, 0.5, 0.5]);
        magnitude_prune(&mut w, 0.5);
        assert_eq!(w.nnz(), 2);
    }

    #[test]
    fn relu_zeroes_negatives_only() {
        let mut a = Dense::from_vec(vec![4].into(), vec![-1.0, 2.0, -3.0, 0.0]);
        let density = relu(&mut a);
        assert_eq!(a.data(), &[0.0, 2.0, 0.0, 0.0]);
        assert!((density - 0.25).abs() < 1e-9);
    }
}
