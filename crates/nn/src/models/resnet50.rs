//! ResNet-50 [He et al., CVPR 2016] with STR-style pruning.
//!
//! Layer names follow torchvision (`layer1.0.conv2`, `layer3.0.downsample`)
//! so that pipeline listings line up with the paper's Table IV. The paper
//! evaluates six weight sparsities: 81%, 90%, 95%, 96%, 98%, 99% (Sec. V).

use crate::graph::Network;
use crate::layer::{ActShape, Layer, LayerKind};
use crate::sparsity::{apply_activation_profile, apply_weight_profile, WeightProfile};

/// Builds ResNet-50 for 224x224x3 inputs with STR-like pruning to
/// `weight_sparsity` and a seeded activation profile.
///
/// # Panics
///
/// Panics if `weight_sparsity` is not in `[0, 1)`.
pub fn resnet50(weight_sparsity: f64, seed: u64) -> Network {
    let mut net = Network::new(&format!(
        "ResNet-50 ({}% weight sparsity)",
        (weight_sparsity * 100.0).round()
    ));

    let conv1 = net.add(
        Layer::new(
            "conv1",
            LayerKind::Conv {
                r: 7,
                s: 7,
                stride: 2,
                pad: 3,
            },
            ActShape::new(224, 224, 3),
            64,
        ),
        &[],
    );
    let pool = net.add(
        Layer::new(
            "maxpool",
            LayerKind::MaxPool {
                size: 3,
                stride: 2,
                pad: 1,
            },
            net.layer(conv1).output,
            0,
        ),
        &[conv1],
    );

    // Stage definitions: (bottleneck width, output channels, blocks, stride
    // of the first block).
    let stages: [(usize, usize, usize, usize); 4] = [
        (64, 256, 3, 1),
        (128, 512, 4, 2),
        (256, 1024, 6, 2),
        (512, 2048, 3, 2),
    ];

    let mut prev = pool;
    for (stage_idx, &(width, out_c, blocks, first_stride)) in stages.iter().enumerate() {
        for block_idx in 0..blocks {
            let stride = if block_idx == 0 { first_stride } else { 1 };
            let block_name = format!("layer{}.{}", stage_idx + 1, block_idx);
            let in_shape = net.layer(prev).output;
            let mut members = Vec::new();

            let c1 = net.add(
                Layer::new(
                    &format!("{block_name}.conv1"),
                    LayerKind::Conv {
                        r: 1,
                        s: 1,
                        stride: 1,
                        pad: 0,
                    },
                    in_shape,
                    width,
                ),
                &[prev],
            );
            members.push(c1);
            let c2 = net.add(
                Layer::new(
                    &format!("{block_name}.conv2"),
                    LayerKind::Conv {
                        r: 3,
                        s: 3,
                        stride,
                        pad: 1,
                    },
                    net.layer(c1).output,
                    width,
                ),
                &[c1],
            );
            members.push(c2);
            let c3 = net.add(
                Layer::new(
                    &format!("{block_name}.conv3"),
                    LayerKind::Conv {
                        r: 1,
                        s: 1,
                        stride: 1,
                        pad: 0,
                    },
                    net.layer(c2).output,
                    out_c,
                ),
                &[c2],
            );
            members.push(c3);

            // Skip path: identity, or a 1x1 downsample conv when shapes
            // change (first block of every stage).
            let skip = if block_idx == 0 {
                let ds = net.add(
                    Layer::new(
                        &format!("{block_name}.downsample"),
                        LayerKind::Conv {
                            r: 1,
                            s: 1,
                            stride,
                            pad: 0,
                        },
                        in_shape,
                        out_c,
                    ),
                    &[prev],
                );
                members.push(ds);
                ds
            } else {
                prev
            };

            let add = net.add(
                Layer::new(
                    &format!("{block_name}.add"),
                    LayerKind::Add,
                    net.layer(c3).output,
                    0,
                ),
                &[c3, skip],
            );
            members.push(add);
            net.add_block(&block_name, members);
            prev = add;
        }
    }

    let gap = net.add(
        Layer::new(
            "avgpool",
            LayerKind::GlobalAvgPool,
            net.layer(prev).output,
            0,
        ),
        &[prev],
    );
    net.add(
        Layer::new("fc", LayerKind::FullyConnected, net.layer(gap).output, 1000),
        &[gap],
    );

    apply_weight_profile(
        &mut net,
        WeightProfile::StrLike {
            sparsity: weight_sparsity,
        },
    );
    apply_activation_profile(&mut net, seed);
    debug_assert!(net.validate().is_ok());
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_has_right_structure() {
        let net = resnet50(0.96, 1);
        net.validate().expect("valid graph");
        // 1 stem conv + 16 blocks x (3 convs) + 4 downsamples = 53 convs.
        assert_eq!(net.conv_ids().len(), 53);
        // 16 bottleneck blocks registered.
        assert_eq!(net.blocks().len(), 16);
        // conv1 + maxpool + 16 blocks * (3..5 nodes) + gap + fc.
        assert_eq!(net.sinks().len(), 1);
    }

    #[test]
    fn resnet50_dense_macs_match_published_scale() {
        let net = resnet50(0.0, 1);
        // ResNet-50 is ~4.1 GMACs.
        let gmacs = net.total_dense_macs() / 1e9;
        assert!((3.5..4.5).contains(&gmacs), "got {gmacs} GMACs");
        // ~25.5M params total; conv+fc weights ~25M.
        let m = net.total_dense_weights() as f64 / 1e6;
        assert!((23.0..27.0).contains(&m), "got {m}M weights");
    }

    #[test]
    fn resnet50_shapes_match_torchvision() {
        let net = resnet50(0.9, 1);
        // Find layer4.2.conv3: output should be 7x7x2048.
        let l = net
            .nodes()
            .iter()
            .find(|n| n.layer.name == "layer4.2.conv3")
            .unwrap();
        assert_eq!(l.layer.output, ActShape::new(7, 7, 2048));
        // layer1 spatial size is 56x56.
        let l1 = net
            .nodes()
            .iter()
            .find(|n| n.layer.name == "layer1.0.conv2")
            .unwrap();
        assert_eq!(l1.layer.output, ActShape::new(56, 56, 64));
    }

    #[test]
    fn sparsity_target_is_hit_globally() {
        for target in [0.81, 0.96, 0.99] {
            let net = resnet50(target, 1);
            assert!(
                (net.weight_sparsity() - target).abs() < 0.02,
                "target {target}, got {}",
                net.weight_sparsity()
            );
        }
    }

    #[test]
    fn skip_connections_join_correct_shapes() {
        let net = resnet50(0.9, 1);
        for (id, node) in net.nodes().iter().enumerate() {
            if matches!(node.layer.kind, LayerKind::Add) {
                assert_eq!(node.inputs.len(), 2, "add {id} needs two inputs");
            }
        }
    }
}
