//! MobileNetV1 [Howard et al., 2017] with STR-style pruning.
//!
//! Thirteen depth-wise separable blocks; the paper evaluates 75% and 89%
//! weight sparsity and highlights the depth-wise convolutions' low compute
//! intensity (Sec. VI-A: SparTen loses to Fused-Layer here, ISOSceles wins
//! by the largest margin).

use crate::graph::Network;
use crate::layer::{ActShape, Layer, LayerKind};
use crate::sparsity::{apply_activation_profile, apply_weight_profile, WeightProfile};

/// Builds MobileNetV1 (width multiplier 1.0) for 224x224x3 inputs.
///
/// # Panics
///
/// Panics if `weight_sparsity` is not in `[0, 1)`.
pub fn mobilenet_v1(weight_sparsity: f64, seed: u64) -> Network {
    let mut net = Network::new(&format!(
        "MobileNetV1 ({}% weight sparsity)",
        (weight_sparsity * 100.0).round()
    ));

    let mut prev = net.add(
        Layer::new(
            "conv0",
            LayerKind::Conv {
                r: 3,
                s: 3,
                stride: 2,
                pad: 1,
            },
            ActShape::new(224, 224, 3),
            32,
        ),
        &[],
    );

    // (output channels of the point-wise conv, depth-wise stride).
    let blocks: [(usize, usize); 13] = [
        (64, 1),
        (128, 2),
        (128, 1),
        (256, 2),
        (256, 1),
        (512, 2),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (1024, 2),
        (1024, 1),
    ];
    for (i, &(out_c, stride)) in blocks.iter().enumerate() {
        let dw = net.add(
            Layer::new(
                &format!("block{}.dw", i + 1),
                LayerKind::DwConv {
                    r: 3,
                    s: 3,
                    stride,
                    pad: 1,
                },
                net.layer(prev).output,
                0,
            ),
            &[prev],
        );
        let pw = net.add(
            Layer::new(
                &format!("block{}.pw", i + 1),
                LayerKind::Conv {
                    r: 1,
                    s: 1,
                    stride: 1,
                    pad: 0,
                },
                net.layer(dw).output,
                out_c,
            ),
            &[dw],
        );
        net.add_block(&format!("block{}", i + 1), vec![dw, pw]);
        prev = pw;
    }

    let gap = net.add(
        Layer::new(
            "avgpool",
            LayerKind::GlobalAvgPool,
            net.layer(prev).output,
            0,
        ),
        &[prev],
    );
    net.add(
        Layer::new("fc", LayerKind::FullyConnected, net.layer(gap).output, 1000),
        &[gap],
    );

    apply_weight_profile(
        &mut net,
        WeightProfile::StrLike {
            sparsity: weight_sparsity,
        },
    );
    apply_activation_profile(&mut net, seed);
    debug_assert!(net.validate().is_ok());
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mobilenet_structure() {
        let net = mobilenet_v1(0.75, 1);
        net.validate().expect("valid graph");
        // 1 stem + 13 dw + 13 pw = 27 spatial convs.
        assert_eq!(net.conv_ids().len(), 27);
        assert_eq!(net.blocks().len(), 13);
    }

    #[test]
    fn mobilenet_scale_matches_published() {
        let net = mobilenet_v1(0.0, 1);
        let gmacs = net.total_dense_macs() / 1e9;
        // MobileNetV1 is ~0.57 GMACs, ~4.2M params.
        assert!((0.4..0.7).contains(&gmacs), "got {gmacs} GMACs");
        let m = net.total_dense_weights() as f64 / 1e6;
        assert!((3.5..5.0).contains(&m), "got {m}M weights");
    }

    #[test]
    fn final_feature_map_is_7x7x1024() {
        let net = mobilenet_v1(0.89, 1);
        let l = net
            .nodes()
            .iter()
            .find(|n| n.layer.name == "block13.pw")
            .unwrap();
        assert_eq!(l.layer.output, ActShape::new(7, 7, 1024));
    }

    #[test]
    fn depthwise_layers_have_tiny_weights() {
        let net = mobilenet_v1(0.75, 1);
        let dw = net
            .nodes()
            .iter()
            .find(|n| n.layer.name == "block6.dw")
            .unwrap();
        // Depth-wise: C * 9 weights only.
        assert_eq!(dw.layer.dense_weights(), 256 * 9);
        // Its compute intensity (MACs per weight byte) is far below the
        // adjacent point-wise layer's.
        let pw = net
            .nodes()
            .iter()
            .find(|n| n.layer.name == "block6.pw")
            .unwrap();
        assert!(pw.layer.dense_macs() > 10.0 * dw.layer.dense_macs());
    }
}
