//! The model zoo: the paper's four CNN families and its 11-workload suite.

mod googlenet;
mod mobilenet;
mod resnet50;
mod resnet_family;
mod vgg16;

pub use googlenet::googlenet_inception3a;
pub use mobilenet::mobilenet_v1;
pub use resnet50::resnet50;
pub use resnet_family::{resnet, ResNetDepth};
pub use vgg16::vgg16;

use crate::graph::Network;

/// A named workload from the paper's evaluation suite.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Short id used in the figures (`R96`, `M75`, `V68`, `G58`).
    pub id: &'static str,
    /// The network with sparsity profiles applied.
    pub network: Network,
}

/// Builds the paper's full 11-CNN evaluation suite (Sec. V):
/// six ResNet-50 sparsities, two MobileNetV1, two VGG-16, one GoogLeNet.
///
/// `seed` controls the synthetic activation-sparsity profiles.
pub fn paper_suite(seed: u64) -> Vec<Workload> {
    let mut suite = Vec::new();
    for (id, s) in [
        ("R81", 0.81),
        ("R90", 0.90),
        ("R95", 0.95),
        ("R96", 0.96),
        ("R98", 0.98),
        ("R99", 0.99),
    ] {
        suite.push(Workload {
            id,
            network: resnet50(s, seed),
        });
    }
    for (id, s) in [("V68", 0.68), ("V90", 0.90)] {
        suite.push(Workload {
            id,
            network: vgg16(s, seed),
        });
    }
    suite.push(Workload {
        id: "G58",
        network: googlenet_inception3a(0.58, seed),
    });
    for (id, s) in [("M75", 0.75), ("M89", 0.89)] {
        suite.push(Workload {
            id,
            network: mobilenet_v1(s, seed),
        });
    }
    suite
}

/// The 11 suite workload ids, in paper figure order (what
/// [`paper_suite`] returns and [`suite_workload`] accepts).
pub const SUITE_IDS: [&str; 11] = [
    "R81", "R90", "R95", "R96", "R98", "R99", "V68", "V90", "G58", "M75", "M89",
];

/// Builds exactly one suite network by id, without constructing the
/// other ten (the per-request hot path of the streaming engine builds
/// thousands of single networks).
fn build_suite_network(id: &str, seed: u64) -> Option<Network> {
    Some(match id {
        "R81" => resnet50(0.81, seed),
        "R90" => resnet50(0.90, seed),
        "R95" => resnet50(0.95, seed),
        "R96" => resnet50(0.96, seed),
        "R98" => resnet50(0.98, seed),
        "R99" => resnet50(0.99, seed),
        "V68" => vgg16(0.68, seed),
        "V90" => vgg16(0.90, seed),
        "G58" => googlenet_inception3a(0.58, seed),
        "M75" => mobilenet_v1(0.75, seed),
        "M89" => mobilenet_v1(0.89, seed),
        _ => return None,
    })
}

/// Looks up one suite workload by its short id; `None` for ids outside
/// the suite.
pub fn try_suite_workload(id: &str, seed: u64) -> Option<Workload> {
    let id = SUITE_IDS.iter().copied().find(|&s| s == id)?;
    Some(Workload {
        id,
        network: build_suite_network(id, seed)?,
    })
}

/// Looks up one suite workload by its short id.
///
/// # Panics
///
/// Panics if `id` is not one of the 11 suite ids ([`SUITE_IDS`]); the
/// message lists the valid ids. CLI code that wants to recover should
/// use [`try_suite_workload`] instead.
pub fn suite_workload(id: &str, seed: u64) -> Workload {
    try_suite_workload(id, seed).unwrap_or_else(|| {
        panic!(
            "unknown workload id {id:?}: valid suite ids are {}",
            SUITE_IDS.join(", ")
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eleven_workloads_in_paper_order() {
        let suite = paper_suite(1);
        let ids: Vec<&str> = suite.iter().map(|w| w.id).collect();
        assert_eq!(
            ids,
            vec!["R81", "R90", "R95", "R96", "R98", "R99", "V68", "V90", "G58", "M75", "M89"]
        );
        for w in &suite {
            w.network.validate().expect("valid network");
        }
    }

    #[test]
    fn suite_workload_lookup() {
        let w = suite_workload("R96", 1);
        assert!((w.network.weight_sparsity() - 0.96).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_id_panics() {
        suite_workload("X42", 1);
    }

    #[test]
    fn try_lookup_covers_exactly_the_suite_ids() {
        for id in SUITE_IDS {
            let w = try_suite_workload(id, 1).expect(id);
            assert_eq!(w.id, id);
        }
        assert!(try_suite_workload("X42", 1).is_none());
        assert!(try_suite_workload("", 1).is_none());
    }

    #[test]
    fn single_network_builder_matches_paper_suite() {
        for (i, w) in paper_suite(7).into_iter().enumerate() {
            let direct = try_suite_workload(SUITE_IDS[i], 7).expect(SUITE_IDS[i]);
            assert_eq!(direct.id, w.id);
            assert_eq!(direct.network, w.network, "{} diverged", w.id);
        }
    }

    #[test]
    fn panic_message_lists_valid_ids() {
        let err = std::panic::catch_unwind(|| suite_workload("X42", 1))
            .expect_err("must panic on unknown id");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic payload is a String");
        assert!(msg.contains("unknown workload id \"X42\""), "{msg}");
        for id in SUITE_IDS {
            assert!(msg.contains(id), "message misses {id}: {msg}");
        }
    }
}
