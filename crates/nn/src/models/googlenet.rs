//! GoogLeNet Inception-3a block [Szegedy et al., CVPR 2015].
//!
//! The paper evaluates "a subset of representative layers" of GoogLeNet:
//! the Inception 3a block, with branches 2 and 3 (two layers each)
//! pipelined and the single-layer branches 1 and 4 executed separately
//! (Sec. V). The block's four branches run on a 28x28x192 input; we model
//! them as four independent sinks, matching the paper's per-branch
//! execution.

use crate::graph::Network;
use crate::layer::{ActShape, Layer, LayerKind};
use crate::sparsity::{apply_activation_profile, apply_weight_profile, WeightProfile};

/// Builds the GoogLeNet Inception-3a block, magnitude-pruned uniformly to
/// `weight_sparsity` (58% in the paper).
///
/// # Panics
///
/// Panics if `weight_sparsity` is not in `[0, 1)`.
pub fn googlenet_inception3a(weight_sparsity: f64, seed: u64) -> Network {
    let mut net = Network::new(&format!(
        "GoogLeNet 3a ({}% weight sparsity)",
        (weight_sparsity * 100.0).round()
    ));
    let input = ActShape::new(28, 28, 192);

    // Branch 1: 1x1 conv, 64 channels.
    let b1 = net.add(
        Layer::new(
            "3a.branch1.conv",
            LayerKind::Conv {
                r: 1,
                s: 1,
                stride: 1,
                pad: 0,
            },
            input,
            64,
        ),
        &[],
    );
    net.add_block("3a.branch1", vec![b1]);

    // Branch 2: 1x1 reduce to 96, then 3x3 to 128.
    let b2a = net.add(
        Layer::new(
            "3a.branch2.reduce",
            LayerKind::Conv {
                r: 1,
                s: 1,
                stride: 1,
                pad: 0,
            },
            input,
            96,
        ),
        &[],
    );
    let b2b = net.add(
        Layer::new(
            "3a.branch2.conv",
            LayerKind::Conv {
                r: 3,
                s: 3,
                stride: 1,
                pad: 1,
            },
            net.layer(b2a).output,
            128,
        ),
        &[b2a],
    );
    net.add_block("3a.branch2", vec![b2a, b2b]);

    // Branch 3: 1x1 reduce to 16, then 5x5 to 32.
    let b3a = net.add(
        Layer::new(
            "3a.branch3.reduce",
            LayerKind::Conv {
                r: 1,
                s: 1,
                stride: 1,
                pad: 0,
            },
            input,
            16,
        ),
        &[],
    );
    let b3b = net.add(
        Layer::new(
            "3a.branch3.conv",
            LayerKind::Conv {
                r: 5,
                s: 5,
                stride: 1,
                pad: 2,
            },
            net.layer(b3a).output,
            32,
        ),
        &[b3a],
    );
    net.add_block("3a.branch3", vec![b3a, b3b]);

    // Branch 4: 3x3 max pool then 1x1 conv to 32.
    let b4a = net.add(
        Layer::new(
            "3a.branch4.pool",
            LayerKind::MaxPool {
                size: 3,
                stride: 1,
                pad: 1,
            },
            input,
            0,
        ),
        &[],
    );
    let b4b = net.add(
        Layer::new(
            "3a.branch4.conv",
            LayerKind::Conv {
                r: 1,
                s: 1,
                stride: 1,
                pad: 0,
            },
            net.layer(b4a).output,
            32,
        ),
        &[b4a],
    );
    net.add_block("3a.branch4", vec![b4a, b4b]);

    apply_weight_profile(
        &mut net,
        WeightProfile::Uniform {
            sparsity: weight_sparsity,
        },
    );
    apply_activation_profile(&mut net, seed);
    // The 3a block sits mid-network: its input is a post-ReLU activation
    // tensor (~45% sparse), not a dense image. Override the sources, which
    // the generic profile marks dense.
    for id in net.sources() {
        net.layer_mut(id).in_act_density = 0.55;
    }
    debug_assert!(net.validate().is_ok());
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inception3a_structure() {
        let net = googlenet_inception3a(0.58, 1);
        net.validate().expect("valid graph");
        assert_eq!(net.blocks().len(), 4);
        // 6 convs + 1 pool.
        assert_eq!(net.conv_ids().len(), 6);
        assert_eq!(net.len(), 7);
        // Four independent branches -> four sinks.
        assert_eq!(net.sinks().len(), 4);
    }

    #[test]
    fn branch_output_channels_sum_to_256() {
        let net = googlenet_inception3a(0.58, 1);
        let total: usize = net.sinks().iter().map(|&s| net.layer(s).output.c).sum();
        assert_eq!(total, 64 + 128 + 32 + 32);
        for &s in &net.sinks() {
            assert_eq!(net.layer(s).output.h, 28);
            assert_eq!(net.layer(s).output.w, 28);
        }
    }

    #[test]
    fn uniform_sparsity_applied() {
        let net = googlenet_inception3a(0.58, 1);
        assert!((net.weight_sparsity() - 0.58).abs() < 1e-9);
    }
}
