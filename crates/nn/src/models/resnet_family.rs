//! The full ResNet family [He et al., CVPR 2016].
//!
//! The paper evaluates ResNet-50; a library users would adopt also needs
//! its siblings, so this module generalizes the builder: basic blocks
//! (two 3x3 convs) for ResNet-18/34 and bottlenecks (1x1, 3x3, 1x1) for
//! ResNet-50/101/152, with the standard stage widths.

use crate::graph::Network;
use crate::layer::{ActShape, Layer, LayerKind};
use crate::sparsity::{apply_activation_profile, apply_weight_profile, WeightProfile};

/// Supported ResNet depths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResNetDepth {
    /// 18 layers, basic blocks.
    D18,
    /// 34 layers, basic blocks.
    D34,
    /// 50 layers, bottlenecks.
    D50,
    /// 101 layers, bottlenecks.
    D101,
    /// 152 layers, bottlenecks.
    D152,
}

impl ResNetDepth {
    /// Blocks per stage.
    pub fn blocks(&self) -> [usize; 4] {
        match self {
            ResNetDepth::D18 => [2, 2, 2, 2],
            ResNetDepth::D34 => [3, 4, 6, 3],
            ResNetDepth::D50 => [3, 4, 6, 3],
            ResNetDepth::D101 => [3, 4, 23, 3],
            ResNetDepth::D152 => [3, 8, 36, 3],
        }
    }

    /// Whether this depth uses bottleneck blocks.
    pub fn bottleneck(&self) -> bool {
        !matches!(self, ResNetDepth::D18 | ResNetDepth::D34)
    }

    /// The nominal layer count (for names/tests).
    pub fn layers(&self) -> usize {
        match self {
            ResNetDepth::D18 => 18,
            ResNetDepth::D34 => 34,
            ResNetDepth::D50 => 50,
            ResNetDepth::D101 => 101,
            ResNetDepth::D152 => 152,
        }
    }
}

/// Builds any ResNet for 224x224x3 inputs with STR-like pruning.
///
/// # Panics
///
/// Panics if `weight_sparsity` is not in `[0, 1)`.
pub fn resnet(depth: ResNetDepth, weight_sparsity: f64, seed: u64) -> Network {
    let mut net = Network::new(&format!(
        "ResNet-{} ({}% weight sparsity)",
        depth.layers(),
        (weight_sparsity * 100.0).round()
    ));

    let conv1 = net.add(
        Layer::new(
            "conv1",
            LayerKind::Conv {
                r: 7,
                s: 7,
                stride: 2,
                pad: 3,
            },
            ActShape::new(224, 224, 3),
            64,
        ),
        &[],
    );
    let pool = net.add(
        Layer::new(
            "maxpool",
            LayerKind::MaxPool {
                size: 3,
                stride: 2,
                pad: 1,
            },
            net.layer(conv1).output,
            0,
        ),
        &[conv1],
    );

    let widths = [64usize, 128, 256, 512];
    let expansion = if depth.bottleneck() { 4 } else { 1 };
    let mut prev = pool;
    for (stage_idx, (&width, &blocks)) in widths.iter().zip(depth.blocks().iter()).enumerate() {
        let out_c = width * expansion;
        for block_idx in 0..blocks {
            let stride = if block_idx == 0 && stage_idx > 0 {
                2
            } else {
                1
            };
            let block_name = format!("layer{}.{}", stage_idx + 1, block_idx);
            let in_shape = net.layer(prev).output;
            let mut members = Vec::new();

            let main_out = if depth.bottleneck() {
                let c1 = net.add(
                    Layer::new(
                        &format!("{block_name}.conv1"),
                        LayerKind::Conv {
                            r: 1,
                            s: 1,
                            stride: 1,
                            pad: 0,
                        },
                        in_shape,
                        width,
                    ),
                    &[prev],
                );
                let c2 = net.add(
                    Layer::new(
                        &format!("{block_name}.conv2"),
                        LayerKind::Conv {
                            r: 3,
                            s: 3,
                            stride,
                            pad: 1,
                        },
                        net.layer(c1).output,
                        width,
                    ),
                    &[c1],
                );
                let c3 = net.add(
                    Layer::new(
                        &format!("{block_name}.conv3"),
                        LayerKind::Conv {
                            r: 1,
                            s: 1,
                            stride: 1,
                            pad: 0,
                        },
                        net.layer(c2).output,
                        out_c,
                    ),
                    &[c2],
                );
                members.extend([c1, c2, c3]);
                c3
            } else {
                let c1 = net.add(
                    Layer::new(
                        &format!("{block_name}.conv1"),
                        LayerKind::Conv {
                            r: 3,
                            s: 3,
                            stride,
                            pad: 1,
                        },
                        in_shape,
                        width,
                    ),
                    &[prev],
                );
                let c2 = net.add(
                    Layer::new(
                        &format!("{block_name}.conv2"),
                        LayerKind::Conv {
                            r: 3,
                            s: 3,
                            stride: 1,
                            pad: 1,
                        },
                        net.layer(c1).output,
                        out_c,
                    ),
                    &[c1],
                );
                members.extend([c1, c2]);
                c2
            };

            let needs_downsample = stride != 1 || in_shape.c != out_c;
            let skip = if needs_downsample {
                let ds = net.add(
                    Layer::new(
                        &format!("{block_name}.downsample"),
                        LayerKind::Conv {
                            r: 1,
                            s: 1,
                            stride,
                            pad: 0,
                        },
                        in_shape,
                        out_c,
                    ),
                    &[prev],
                );
                members.push(ds);
                ds
            } else {
                prev
            };
            let add = net.add(
                Layer::new(
                    &format!("{block_name}.add"),
                    LayerKind::Add,
                    net.layer(main_out).output,
                    0,
                ),
                &[main_out, skip],
            );
            members.push(add);
            net.add_block(&block_name, members);
            prev = add;
        }
    }

    let gap = net.add(
        Layer::new(
            "avgpool",
            LayerKind::GlobalAvgPool,
            net.layer(prev).output,
            0,
        ),
        &[prev],
    );
    net.add(
        Layer::new("fc", LayerKind::FullyConnected, net.layer(gap).output, 1000),
        &[gap],
    );

    apply_weight_profile(
        &mut net,
        WeightProfile::StrLike {
            sparsity: weight_sparsity,
        },
    );
    apply_activation_profile(&mut net, seed);
    debug_assert!(net.validate().is_ok());
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_depths_build_and_validate() {
        for depth in [
            ResNetDepth::D18,
            ResNetDepth::D34,
            ResNetDepth::D50,
            ResNetDepth::D101,
            ResNetDepth::D152,
        ] {
            let net = resnet(depth, 0.9, 1);
            net.validate().expect("valid");
            assert_eq!(net.sinks().len(), 1, "ResNet-{}", depth.layers());
        }
    }

    #[test]
    fn published_parameter_counts() {
        // (depth, params in millions): torchvision reference values.
        for (depth, expect) in [
            (ResNetDepth::D18, 11.7),
            (ResNetDepth::D34, 21.8),
            (ResNetDepth::D50, 25.5),
            (ResNetDepth::D101, 44.5),
            (ResNetDepth::D152, 60.2),
        ] {
            let net = resnet(depth, 0.0, 1);
            let m = net.total_dense_weights() as f64 / 1e6;
            assert!(
                (m - expect).abs() / expect < 0.05,
                "ResNet-{}: {m}M vs {expect}M",
                depth.layers()
            );
        }
    }

    #[test]
    fn published_mac_counts() {
        for (depth, gmacs) in [
            (ResNetDepth::D18, 1.8),
            (ResNetDepth::D34, 3.7),
            (ResNetDepth::D50, 4.1),
            (ResNetDepth::D101, 7.8),
            (ResNetDepth::D152, 11.5),
        ] {
            let net = resnet(depth, 0.0, 1);
            let g = net.total_dense_macs() / 1e9;
            assert!(
                (g - gmacs).abs() / gmacs < 0.1,
                "ResNet-{}: {g} vs {gmacs} GMACs",
                depth.layers()
            );
        }
    }

    #[test]
    fn basic_blocks_have_two_convs_and_identity_skips() {
        let net = resnet(ResNetDepth::D18, 0.9, 1);
        // layer1.1 has no downsample (identity skip).
        assert!(net
            .nodes()
            .iter()
            .all(|n| n.layer.name != "layer1.1.downsample"));
        let block = net.blocks().iter().find(|b| b.name == "layer1.1").unwrap();
        // conv1, conv2, add.
        assert_eq!(block.members.len(), 3);
    }

    #[test]
    fn matches_dedicated_resnet50_builder() {
        let a = resnet(ResNetDepth::D50, 0.96, 7);
        let b = crate::models::resnet50(0.96, 7);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.total_dense_weights(), b.total_dense_weights());
    }
}
