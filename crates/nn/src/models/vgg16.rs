//! VGG-16 [Simonyan & Zisserman, ICLR 2015] with magnitude pruning.
//!
//! Layer names use torchvision's `vgg16_bn` feature indices (`features.24`
//! etc.), matching the paper's reference to "features.24-40" (Sec. V). The
//! paper evaluates 68% (matching SCNN/SparTen) and an aggressive 90%.

use crate::graph::Network;
use crate::layer::{ActShape, Layer, LayerKind};
use crate::sparsity::{apply_activation_profile, apply_weight_profile, WeightProfile};

/// Builds VGG-16 (with BN) for 224x224x3 inputs, magnitude-pruned
/// uniformly to `weight_sparsity`.
///
/// # Panics
///
/// Panics if `weight_sparsity` is not in `[0, 1)`.
pub fn vgg16(weight_sparsity: f64, seed: u64) -> Network {
    let mut net = Network::new(&format!(
        "VGG-16 ({}% weight sparsity)",
        (weight_sparsity * 100.0).round()
    ));

    // torchvision vgg16_bn feature indices of the conv layers, grouped by
    // pooling stage, with output channel counts.
    let stages: [(&[usize], usize); 5] = [
        (&[0, 3], 64),
        (&[7, 10], 128),
        (&[14, 17, 20], 256),
        (&[24, 27, 30], 512),
        (&[34, 37, 40], 512),
    ];

    let mut prev: Option<usize> = None;
    let mut shape = ActShape::new(224, 224, 3);
    for (stage_idx, &(indices, channels)) in stages.iter().enumerate() {
        for &fi in indices {
            let inputs: Vec<usize> = prev.into_iter().collect();
            let id = net.add(
                Layer::new(
                    &format!("features.{fi}"),
                    LayerKind::Conv {
                        r: 3,
                        s: 3,
                        stride: 1,
                        pad: 1,
                    },
                    shape,
                    channels,
                ),
                &inputs,
            );
            shape = net.layer(id).output;
            prev = Some(id);
        }
        let pool = net.add(
            Layer::new(
                &format!("pool{}", stage_idx + 1),
                LayerKind::MaxPool {
                    size: 2,
                    stride: 2,
                    pad: 0,
                },
                shape,
                0,
            ),
            &[prev.unwrap()],
        );
        shape = net.layer(pool).output;
        prev = Some(pool);
    }

    // Classifier: 25088 -> 4096 -> 4096 -> 1000.
    for (i, out_c) in [4096usize, 4096, 1000].into_iter().enumerate() {
        let id = net.add(
            Layer::new(
                &format!("classifier.{i}"),
                LayerKind::FullyConnected,
                shape,
                out_c,
            ),
            &[prev.unwrap()],
        );
        shape = net.layer(id).output;
        prev = Some(id);
    }

    // Magnitude pruning hits the target on the convs; the enormous,
    // low-magnitude FC layers prune far harder under a global threshold
    // (the classic VGG result: FC reaches 95%+ sparsity when convs are at
    // ~60-70%). Model that as ~5x lower FC density.
    apply_weight_profile(
        &mut net,
        WeightProfile::Uniform {
            sparsity: weight_sparsity,
        },
    );
    for id in 0..net.len() {
        if matches!(net.layer(id).kind, LayerKind::FullyConnected) {
            net.layer_mut(id).weight_density *= 0.2;
        }
    }
    apply_activation_profile(&mut net, seed);
    debug_assert!(net.validate().is_ok());
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_structure() {
        let net = vgg16(0.68, 1);
        net.validate().expect("valid graph");
        assert_eq!(net.conv_ids().len(), 13);
        // 13 convs + 5 pools + 3 FC = 21 layers.
        assert_eq!(net.len(), 21);
    }

    #[test]
    fn vgg16_scale_matches_published() {
        let net = vgg16(0.0, 1);
        // VGG-16: ~15.5 GMACs, ~138M params.
        let gmacs = net.total_dense_macs() / 1e9;
        assert!((14.0..16.5).contains(&gmacs), "got {gmacs} GMACs");
        let m = net.total_dense_weights() as f64 / 1e6;
        assert!((130.0..145.0).contains(&m), "got {m}M weights");
    }

    #[test]
    fn features_24_to_40_are_the_14x14_stage_and_beyond() {
        let net = vgg16(0.9, 1);
        let f24 = net
            .nodes()
            .iter()
            .find(|n| n.layer.name == "features.24")
            .unwrap();
        assert_eq!(f24.layer.input, ActShape::new(28, 28, 256));
        let f40 = net
            .nodes()
            .iter()
            .find(|n| n.layer.name == "features.40")
            .unwrap();
        assert_eq!(f40.layer.output, ActShape::new(14, 14, 512));
    }

    #[test]
    fn fc_dominates_weight_count() {
        let net = vgg16(0.68, 1);
        let fc_weights: usize = net
            .nodes()
            .iter()
            .filter(|n| matches!(n.layer.kind, LayerKind::FullyConnected))
            .map(|n| n.layer.dense_weights())
            .sum();
        assert!(fc_weights as f64 > 0.8 * net.total_dense_weights() as f64);
    }
}
