//! CNN layer descriptors.
//!
//! A [`Layer`] captures everything the accelerator models need to know
//! about one network layer: its kind, shapes, and sparsity targets. The
//! tensor layouts follow the paper's rank orders: input activations
//! `[H, W, C]`, filters `[C, R, K, S]`, output activations `[P, Q, K]`
//! (Fig. 8, Fig. 10).

use serde::{Deserialize, Serialize};

/// Activation tensor dimensions (one image, `N = 1` as in the paper's
/// batch-1 inference).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ActShape {
    /// Height (rows).
    pub h: usize,
    /// Width (columns).
    pub w: usize,
    /// Channels.
    pub c: usize,
}

impl ActShape {
    /// Creates a shape.
    pub fn new(h: usize, w: usize, c: usize) -> Self {
        Self { h, w, c }
    }

    /// Number of elements.
    pub fn volume(&self) -> usize {
        self.h * self.w * self.c
    }
}

/// The operator a layer performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// Standard convolution with `R x S` kernels.
    Conv {
        /// Kernel height.
        r: usize,
        /// Kernel width.
        s: usize,
        /// Stride (same in both dimensions).
        stride: usize,
        /// Zero padding (same on all sides).
        pad: usize,
    },
    /// Depth-wise convolution: one kernel per channel, no cross-channel
    /// accumulation (paper Sec. IV-C).
    DwConv {
        /// Kernel height.
        r: usize,
        /// Kernel width.
        s: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
    },
    /// Fully-connected layer, executed as SpMV (paper Sec. IV-C).
    FullyConnected,
    /// Max pooling (not pipelineable; a pipeline boundary per Sec. V).
    MaxPool {
        /// Window size (square).
        size: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
    },
    /// Global average pooling, treated as a convolution whose kernel
    /// matches the input size (Sec. IV-C).
    GlobalAvgPool,
    /// Element-wise addition of two inputs (ResNet skip connections).
    Add,
}

impl LayerKind {
    /// Kernel extent `(r, s)`; `(1, 1)` for kinds without a spatial kernel.
    pub fn kernel(&self) -> (usize, usize) {
        match *self {
            LayerKind::Conv { r, s, .. } | LayerKind::DwConv { r, s, .. } => (r, s),
            LayerKind::MaxPool { size, .. } => (size, size),
            _ => (1, 1),
        }
    }

    /// Stride; 1 for kinds without one.
    pub fn stride(&self) -> usize {
        match *self {
            LayerKind::Conv { stride, .. }
            | LayerKind::DwConv { stride, .. }
            | LayerKind::MaxPool { stride, .. } => stride,
            _ => 1,
        }
    }

    /// Padding; 0 for kinds without one.
    pub fn pad(&self) -> usize {
        match *self {
            LayerKind::Conv { pad, .. }
            | LayerKind::DwConv { pad, .. }
            | LayerKind::MaxPool { pad, .. } => pad,
            _ => 0,
        }
    }

    /// Whether this kind carries weights.
    pub fn has_weights(&self) -> bool {
        matches!(
            self,
            LayerKind::Conv { .. } | LayerKind::DwConv { .. } | LayerKind::FullyConnected
        )
    }

    /// Whether ISOSceles can include this layer in an inter-layer pipeline
    /// (pooling layers and FC layers are boundaries; Sec. V).
    pub fn is_pipelineable(&self) -> bool {
        matches!(
            self,
            LayerKind::Conv { .. } | LayerKind::DwConv { .. } | LayerKind::Add
        )
    }
}

/// One layer of a CNN, with shapes and sparsity targets.
///
/// Each conv layer is implicitly followed by batch-norm + ReLU (the POU in
/// ISOSceles); `out_act_density` is the post-ReLU nonzero fraction.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    /// Human-readable name, following torchvision naming where applicable
    /// (e.g. `layer1.0.conv2`).
    pub name: String,
    /// The operator.
    pub kind: LayerKind,
    /// Input activation shape.
    pub input: ActShape,
    /// Output activation shape (`h`=P, `w`=Q, `c`=K).
    pub output: ActShape,
    /// Fraction of *nonzero* weights (1.0 = dense). Ignored for weightless
    /// kinds.
    pub weight_density: f64,
    /// Fraction of nonzero input activations.
    pub in_act_density: f64,
    /// Fraction of nonzero output activations (post-ReLU).
    pub out_act_density: f64,
}

impl Layer {
    /// Creates a layer, computing the output shape from the input shape
    /// and kind.
    ///
    /// `out_channels` is `K` for convs/FC; ignored (forced to match input)
    /// for depth-wise, pooling, and add.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit the (padded) input.
    pub fn new(name: &str, kind: LayerKind, input: ActShape, out_channels: usize) -> Self {
        let (r, s) = kind.kernel();
        let stride = kind.stride();
        let pad = kind.pad();
        let output = match kind {
            LayerKind::FullyConnected => ActShape::new(1, 1, out_channels),
            LayerKind::GlobalAvgPool => ActShape::new(1, 1, input.c),
            LayerKind::Add => input,
            _ => {
                let hp = input.h + 2 * pad;
                let wp = input.w + 2 * pad;
                assert!(
                    hp >= r && wp >= s,
                    "kernel {r}x{s} larger than padded input"
                );
                let p = (hp - r) / stride + 1;
                let q = (wp - s) / stride + 1;
                let k = match kind {
                    LayerKind::Conv { .. } => out_channels,
                    _ => input.c,
                };
                ActShape::new(p, q, k)
            }
        };
        Self {
            name: name.to_owned(),
            kind,
            input,
            output,
            weight_density: 1.0,
            in_act_density: 1.0,
            out_act_density: 1.0,
        }
    }

    /// Sets the weight density (builder style).
    pub fn with_weight_density(mut self, density: f64) -> Self {
        assert!((0.0..=1.0).contains(&density), "density out of range");
        self.weight_density = density;
        self
    }

    /// Sets input/output activation densities (builder style).
    pub fn with_act_density(mut self, input: f64, output: f64) -> Self {
        assert!((0.0..=1.0).contains(&input) && (0.0..=1.0).contains(&output));
        self.in_act_density = input;
        self.out_act_density = output;
        self
    }

    /// Number of weight elements when dense.
    pub fn dense_weights(&self) -> usize {
        let (r, s) = self.kind.kernel();
        match self.kind {
            LayerKind::Conv { .. } => self.input.c * r * s * self.output.c,
            LayerKind::DwConv { .. } => self.input.c * r * s,
            LayerKind::FullyConnected => self.input.volume() * self.output.c,
            _ => 0,
        }
    }

    /// Expected number of nonzero weights after pruning.
    pub fn nnz_weights(&self) -> f64 {
        self.dense_weights() as f64 * self.weight_density
    }

    /// Multiply-accumulates for a dense execution of this layer.
    pub fn dense_macs(&self) -> f64 {
        let (r, s) = self.kind.kernel();
        match self.kind {
            LayerKind::Conv { .. } => {
                (self.output.h * self.output.w * self.output.c) as f64
                    * (self.input.c * r * s) as f64
            }
            LayerKind::DwConv { .. } => {
                (self.output.h * self.output.w * self.output.c) as f64 * (r * s) as f64
            }
            LayerKind::FullyConnected => self.dense_weights() as f64,
            LayerKind::GlobalAvgPool => self.input.volume() as f64,
            LayerKind::Add => self.input.volume() as f64,
            LayerKind::MaxPool { .. } => 0.0,
        }
    }

    /// Expected effectual MACs under unstructured sparsity: only nonzero
    /// input × nonzero weight pairs are multiplied (paper Sec. I: work
    /// scales with the *product* of densities).
    pub fn effectual_macs(&self) -> f64 {
        match self.kind {
            LayerKind::Conv { .. } | LayerKind::DwConv { .. } | LayerKind::FullyConnected => {
                self.dense_macs() * self.in_act_density * self.weight_density
            }
            LayerKind::Add | LayerKind::GlobalAvgPool => self.dense_macs() * self.in_act_density,
            LayerKind::MaxPool { .. } => 0.0,
        }
    }

    /// Expected nonzero input activations.
    pub fn nnz_inputs(&self) -> f64 {
        self.input.volume() as f64 * self.in_act_density
    }

    /// Expected nonzero output activations.
    pub fn nnz_outputs(&self) -> f64 {
        self.output.volume() as f64 * self.out_act_density
    }

    /// Compressed (CSF-style) byte footprint of the input activations.
    pub fn in_act_csf_bytes(&self) -> f64 {
        compressed_bytes(self.nnz_inputs(), self.input.volume() as f64)
    }

    /// Compressed byte footprint of the output activations.
    pub fn out_act_csf_bytes(&self) -> f64 {
        compressed_bytes(self.nnz_outputs(), self.output.volume() as f64)
    }

    /// Compressed byte footprint of the weights.
    pub fn weight_csf_bytes(&self) -> f64 {
        compressed_bytes(self.nnz_weights(), self.dense_weights() as f64)
    }

    /// Dense byte footprint of the weights (8-bit values).
    pub fn weight_dense_bytes(&self) -> f64 {
        self.dense_weights() as f64
    }

    /// Dense byte footprint of the input activations (8-bit values).
    pub fn in_act_dense_bytes(&self) -> f64 {
        self.input.volume() as f64
    }

    /// Dense byte footprint of the output activations (8-bit values).
    pub fn out_act_dense_bytes(&self) -> f64 {
        self.output.volume() as f64
    }
}

/// Compressed footprint in bytes of a sparse tensor with `nnz` nonzeros
/// out of `dense` positions: one 8-bit value per nonzero plus rank
/// metadata, encoded as whichever of a position bitmap (`dense/8`) or a
/// coordinate/offset list (`1.5 B` per nonzero, covering all ranks) is
/// smaller — the format-abstraction freedom of Chou et al. that CSF-style
/// designs exploit per tensor.
pub fn compressed_bytes(nnz: f64, dense: f64) -> f64 {
    nnz * 1.0 + (dense / 8.0).min(nnz * 1.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_output_shape() {
        let l = Layer::new(
            "c",
            LayerKind::Conv {
                r: 3,
                s: 3,
                stride: 1,
                pad: 0,
            },
            ActShape::new(8, 10, 4),
            16,
        );
        assert_eq!(l.output, ActShape::new(6, 8, 16));
    }

    #[test]
    fn conv_with_stride_and_pad() {
        // ResNet conv1: 224x224x3, 7x7/2 pad 3 -> 112x112x64.
        let l = Layer::new(
            "conv1",
            LayerKind::Conv {
                r: 7,
                s: 7,
                stride: 2,
                pad: 3,
            },
            ActShape::new(224, 224, 3),
            64,
        );
        assert_eq!(l.output, ActShape::new(112, 112, 64));
    }

    #[test]
    fn dwconv_preserves_channels() {
        let l = Layer::new(
            "dw",
            LayerKind::DwConv {
                r: 3,
                s: 3,
                stride: 1,
                pad: 1,
            },
            ActShape::new(14, 14, 256),
            999, // ignored
        );
        assert_eq!(l.output, ActShape::new(14, 14, 256));
        assert_eq!(l.dense_weights(), 256 * 9);
    }

    #[test]
    fn fc_shapes_and_macs() {
        let l = Layer::new(
            "fc",
            LayerKind::FullyConnected,
            ActShape::new(1, 1, 2048),
            1000,
        );
        assert_eq!(l.output, ActShape::new(1, 1, 1000));
        assert_eq!(l.dense_weights(), 2048 * 1000);
        assert_eq!(l.dense_macs(), 2048.0 * 1000.0);
    }

    #[test]
    fn effectual_macs_scale_with_density_product() {
        let l = Layer::new(
            "c",
            LayerKind::Conv {
                r: 3,
                s: 3,
                stride: 1,
                pad: 1,
            },
            ActShape::new(16, 16, 32),
            32,
        )
        .with_weight_density(0.1)
        .with_act_density(0.5, 0.5);
        assert!((l.effectual_macs() - l.dense_macs() * 0.05).abs() < 1e-6);
    }

    #[test]
    fn maxpool_halves_dims() {
        let l = Layer::new(
            "pool",
            LayerKind::MaxPool {
                size: 2,
                stride: 2,
                pad: 0,
            },
            ActShape::new(112, 112, 64),
            0,
        );
        assert_eq!(l.output, ActShape::new(56, 56, 64));
        assert_eq!(l.dense_weights(), 0);
        assert!(!l.kind.is_pipelineable());
    }

    #[test]
    fn gap_collapses_spatial() {
        let l = Layer::new(
            "gap",
            LayerKind::GlobalAvgPool,
            ActShape::new(7, 7, 2048),
            0,
        );
        assert_eq!(l.output, ActShape::new(1, 1, 2048));
    }

    #[test]
    fn pipelineable_kinds() {
        assert!(LayerKind::Conv {
            r: 1,
            s: 1,
            stride: 1,
            pad: 0
        }
        .is_pipelineable());
        assert!(LayerKind::Add.is_pipelineable());
        assert!(!LayerKind::FullyConnected.is_pipelineable());
        assert!(!LayerKind::GlobalAvgPool.is_pipelineable());
    }
}
