//! CNN model substrate for the ISOSceles reproduction.
//!
//! The paper evaluates sparse CNN inference on ResNet-50, MobileNetV1,
//! VGG-16, and GoogLeNet (Sec. V). This crate provides everything those
//! workloads need:
//!
//! - [`layer`]: layer descriptors in the paper's tensor layouts
//!   (`[H,W,C]` activations, `[C,R,K,S]` filters),
//! - [`graph`]: network DAGs with skip connections and block hints,
//! - [`models`]: the model zoo and the 11-workload evaluation suite,
//! - [`sparsity`]: STR-like and uniform weight profiles, plus Fig.-4-shaped
//!   activation densities,
//! - [`pruning`]: functional magnitude pruning and ReLU on real tensors,
//! - [`mod@reference`]: golden dense executors used to validate the IS-OS
//!   dataflow,
//! - [`work`]: per-column work profiles consumed by the cycle-level models.
//!
//! # Examples
//!
//! ```
//! use isos_nn::models::resnet50;
//! let net = resnet50(0.96, 42);
//! assert!((net.weight_sparsity() - 0.96).abs() < 0.02);
//! assert_eq!(net.conv_ids().len(), 53);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod graph;
pub mod layer;
pub mod models;
pub mod pruning;
pub mod reference;
pub mod sparsity;
pub mod summary;
pub mod work;
