//! Network graphs: layers wired into a DAG.
//!
//! Networks are DAGs rather than chains because of ResNet skip connections
//! and GoogLeNet Inception branches, both of which the paper maps onto
//! ISOSceles's programmable interconnect (Fig. 13). Nodes must be added in
//! topological order (producers before consumers), which every builder in
//! [`crate::models`] naturally satisfies.

use crate::layer::{Layer, LayerKind};
use serde::{Deserialize, Serialize};

/// Index of a node (layer) within a [`Network`].
pub type NodeId = usize;

/// One node of the network DAG.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// The layer at this node.
    pub layer: Layer,
    /// Producer nodes whose outputs this layer consumes. Empty for the
    /// network input.
    pub inputs: Vec<NodeId>,
}

/// A group of nodes the pipeline mapper treats as an atomic candidate
/// (e.g. one ResNet bottleneck block including its skip connection).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Block name (e.g. `layer2.1`).
    pub name: String,
    /// Member nodes, in topological order.
    pub members: Vec<NodeId>,
}

/// A CNN as a DAG of layers plus block-granularity hints.
///
/// # Examples
///
/// ```
/// use isos_nn::graph::Network;
/// use isos_nn::layer::{ActShape, Layer, LayerKind};
/// let mut net = Network::new("tiny");
/// let conv = Layer::new(
///     "conv",
///     LayerKind::Conv { r: 3, s: 3, stride: 1, pad: 1 },
///     ActShape::new(8, 8, 4),
///     8,
/// );
/// let id = net.add(conv, &[]);
/// assert_eq!(net.consumers(id), Vec::<usize>::new());
/// assert_eq!(net.len(), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Network {
    /// Network name (e.g. `ResNet-50 (96% weights pruned)`).
    pub name: String,
    nodes: Vec<Node>,
    blocks: Vec<Block>,
}

impl Network {
    /// Creates an empty network.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            nodes: Vec::new(),
            blocks: Vec::new(),
        }
    }

    /// Adds a layer whose inputs are the outputs of `inputs`, returning its
    /// id. Nodes must be added in topological order.
    ///
    /// # Panics
    ///
    /// Panics if an input id does not exist yet (which would break
    /// topological order).
    pub fn add(&mut self, layer: Layer, inputs: &[NodeId]) -> NodeId {
        let id = self.nodes.len();
        for &i in inputs {
            assert!(i < id, "input {i} of node {id} not yet added");
        }
        self.nodes.push(Node {
            layer,
            inputs: inputs.to_vec(),
        });
        id
    }

    /// Registers a block-granularity hint for the pipeline mapper.
    ///
    /// # Panics
    ///
    /// Panics if a member id does not exist.
    pub fn add_block(&mut self, name: &str, members: Vec<NodeId>) {
        for &m in &members {
            assert!(m < self.nodes.len(), "block member {m} does not exist");
        }
        self.blocks.push(Block {
            name: name.to_owned(),
            members,
        });
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All nodes, in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The layer at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn layer(&self, id: NodeId) -> &Layer {
        &self.nodes[id].layer
    }

    /// Mutable access to the layer at `id` (used by pruning/sparsity
    /// profile passes).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn layer_mut(&mut self, id: NodeId) -> &mut Layer {
        &mut self.nodes[id].layer
    }

    /// The block hints.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Ids of nodes that consume `id`'s output.
    pub fn consumers(&self, id: NodeId) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.inputs.contains(&id))
            .map(|(i, _)| i)
            .collect()
    }

    /// Network input nodes (no producers).
    pub fn sources(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].inputs.is_empty())
            .collect()
    }

    /// Network output nodes (no consumers).
    pub fn sinks(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| self.consumers(i).is_empty())
            .collect()
    }

    /// Total dense MACs across all layers.
    pub fn total_dense_macs(&self) -> f64 {
        self.nodes.iter().map(|n| n.layer.dense_macs()).sum()
    }

    /// Total expected effectual MACs across all layers.
    pub fn total_effectual_macs(&self) -> f64 {
        self.nodes.iter().map(|n| n.layer.effectual_macs()).sum()
    }

    /// Total dense weight count.
    pub fn total_dense_weights(&self) -> usize {
        self.nodes.iter().map(|n| n.layer.dense_weights()).sum()
    }

    /// Total expected nonzero weights.
    pub fn total_nnz_weights(&self) -> f64 {
        self.nodes.iter().map(|n| n.layer.nnz_weights()).sum()
    }

    /// Overall weight sparsity (fraction of zero weights).
    pub fn weight_sparsity(&self) -> f64 {
        let dense = self.total_dense_weights() as f64;
        if dense == 0.0 {
            0.0
        } else {
            1.0 - self.total_nnz_weights() / dense
        }
    }

    /// Ids of convolutional (weighted, spatial) layers, in order.
    pub fn conv_ids(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| {
                matches!(
                    self.nodes[i].layer.kind,
                    LayerKind::Conv { .. } | LayerKind::DwConv { .. }
                )
            })
            .collect()
    }

    /// Validates shape compatibility along every edge.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatched edge found.
    pub fn validate(&self) -> Result<(), String> {
        for (id, node) in self.nodes.iter().enumerate() {
            for &src in &node.inputs {
                let produced = self.nodes[src].layer.output;
                let expected = node.layer.input;
                if produced != expected {
                    return Err(format!(
                        "edge {src} -> {id} ({} -> {}): produced {produced:?} != consumed {expected:?}",
                        self.nodes[src].layer.name, node.layer.name
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::ActShape;

    fn conv(name: &str, input: ActShape, k: usize) -> Layer {
        Layer::new(
            name,
            LayerKind::Conv {
                r: 3,
                s: 3,
                stride: 1,
                pad: 1,
            },
            input,
            k,
        )
    }

    #[test]
    fn chain_has_linear_consumers() {
        let mut net = Network::new("chain");
        let a = net.add(conv("a", ActShape::new(8, 8, 4), 8), &[]);
        let b = net.add(conv("b", ActShape::new(8, 8, 8), 8), &[a]);
        let c = net.add(conv("c", ActShape::new(8, 8, 8), 8), &[b]);
        assert_eq!(net.consumers(a), vec![b]);
        assert_eq!(net.sources(), vec![a]);
        assert_eq!(net.sinks(), vec![c]);
        assert!(net.validate().is_ok());
    }

    #[test]
    fn skip_connection_fans_out() {
        let mut net = Network::new("skip");
        let a = net.add(conv("a", ActShape::new(8, 8, 8), 8), &[]);
        let b = net.add(conv("b", ActShape::new(8, 8, 8), 8), &[a]);
        let add = net.add(
            Layer::new("add", LayerKind::Add, ActShape::new(8, 8, 8), 0),
            &[a, b],
        );
        assert_eq!(net.consumers(a), vec![b, add]);
        assert!(net.validate().is_ok());
    }

    #[test]
    fn validate_catches_shape_mismatch() {
        let mut net = Network::new("bad");
        let a = net.add(conv("a", ActShape::new(8, 8, 4), 8), &[]);
        // Consumer expects 16 channels but producer makes 8.
        net.add(conv("b", ActShape::new(8, 8, 16), 8), &[a]);
        assert!(net.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "not yet added")]
    fn forward_reference_panics() {
        let mut net = Network::new("fwd");
        net.add(conv("a", ActShape::new(8, 8, 4), 8), &[3]);
    }

    #[test]
    fn totals_aggregate_layers() {
        let mut net = Network::new("t");
        let a = net.add(
            conv("a", ActShape::new(8, 8, 4), 8).with_weight_density(0.5),
            &[],
        );
        let _ = net.add(
            conv("b", ActShape::new(8, 8, 8), 8).with_weight_density(0.25),
            &[a],
        );
        assert_eq!(net.total_dense_weights(), 4 * 9 * 8 + 8 * 9 * 8);
        let nnz = 0.5 * (4 * 9 * 8) as f64 + 0.25 * (8 * 9 * 8) as f64;
        assert!((net.total_nnz_weights() - nnz).abs() < 1e-9);
        assert_eq!(net.conv_ids().len(), 2);
    }
}
