//! Sparsity profiles: assigning weight and activation densities to layers.
//!
//! The paper's workloads (Sec. V) come from trained checkpoints: STR
//! pruning for ResNet-50/MobileNetV1 and magnitude pruning for
//! VGG-16/GoogLeNet, with activation sparsity induced by ReLU on ImageNet
//! inputs (Fig. 4: 20-80% sparse, weights ~90% sparse). This module
//! substitutes seeded statistical profiles with the same shape (DESIGN.md
//! §4): per-layer activation densities in the Fig. 4 band, trending sparser
//! with depth, and per-layer weight densities that either match a uniform
//! target or vary with layer size like STR.

use crate::graph::Network;
use crate::layer::LayerKind;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How weights are pruned across layers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WeightProfile {
    /// Every weighted layer pruned to the same sparsity.
    Uniform {
        /// Fraction of weights that are zero.
        sparsity: f64,
    },
    /// STR-like non-uniform pruning: larger layers are pruned harder,
    /// calibrated so the *network-wide* sparsity matches `sparsity`.
    StrLike {
        /// Network-wide fraction of weights that are zero.
        sparsity: f64,
    },
}

/// Assigns per-layer weight densities according to `profile`.
///
/// # Panics
///
/// Panics if the target sparsity is not in `[0, 1)`.
pub fn apply_weight_profile(net: &mut Network, profile: WeightProfile) {
    let (target, nonuniform) = match profile {
        WeightProfile::Uniform { sparsity } => (sparsity, false),
        WeightProfile::StrLike { sparsity } => (sparsity, true),
    };
    assert!((0.0..1.0).contains(&target), "sparsity must be in [0, 1)");
    let ids: Vec<usize> = (0..net.len())
        .filter(|&i| net.layer(i).kind.has_weights())
        .collect();
    if ids.is_empty() {
        return;
    }
    if !nonuniform {
        for &i in &ids {
            net.layer_mut(i).weight_density = 1.0 - target;
        }
        return;
    }
    // STR-like: density_l ∝ (median_size / size_l)^alpha, rescaled so the
    // weighted mean density hits the target, then clamped.
    const ALPHA: f64 = 0.25;
    let sizes: Vec<f64> = ids
        .iter()
        .map(|&i| net.layer(i).dense_weights() as f64)
        .collect();
    let total: f64 = sizes.iter().sum();
    let mut sorted = sizes.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = sorted[sorted.len() / 2].max(1.0);
    let raw: Vec<f64> = sizes
        .iter()
        .map(|&s| (median / s.max(1.0)).powf(ALPHA))
        .collect();
    let raw_weighted: f64 = raw.iter().zip(&sizes).map(|(r, s)| r * s).sum();
    let scale = (1.0 - target) * total / raw_weighted;
    // STR keeps small layers denser than large ones, but never leaves a
    // layer near-dense: cap at 2.5x the global density so MAC-heavy early
    // layers (tiny weights, huge activations) still prune meaningfully.
    let cap = (2.5 * (1.0 - target)).min(1.0);
    for (&i, r) in ids.iter().zip(&raw) {
        net.layer_mut(i).weight_density = (r * scale).clamp(0.005, cap);
    }
}

/// Assigns activation densities through the network.
///
/// The network input is dense (an image). Each weighted layer's post-ReLU
/// output density is drawn from the Fig. 4 band `[0.2, 0.8]`, trending
/// sparser with depth; pooling and add layers derive their densities from
/// their inputs. Each layer's input density is its producer's output
/// density.
pub fn apply_activation_profile(net: &mut Network, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x0001_505C_E1E5);
    let n = net.len().max(1) as f64;
    for id in 0..net.len() {
        // Input density = producer's output density (max over producers for
        // multi-input nodes; densities are then combined per-kind below).
        let in_density = {
            let inputs = net.nodes()[id].inputs.clone();
            if inputs.is_empty() {
                1.0
            } else {
                inputs
                    .iter()
                    .map(|&p| net.layer(p).out_act_density)
                    .fold(0.0, f64::max)
            }
        };
        let depth_frac = id as f64 / n;
        let layer = net.layer_mut(id);
        layer.in_act_density = in_density;
        layer.out_act_density = match layer.kind {
            LayerKind::Conv { .. } | LayerKind::DwConv { .. } => {
                // Post-BN+ReLU density: denser early, sparser deep, with
                // per-layer noise (Fig. 4 scatter).
                let base = 0.65 - 0.35 * depth_frac;
                (base + rng.gen_range(-0.10f64..0.10)).clamp(0.2, 0.8)
            }
            LayerKind::MaxPool { .. } => {
                // Output nonzero iff any window element is nonzero; zeros
                // cluster spatially in real activations, so pooling
                // densifies but far less than independence would predict.
                (in_density * 1.6).clamp(0.2, 0.95)
            }
            LayerKind::GlobalAvgPool => 1.0,
            LayerKind::Add => {
                // Union of two branches, then ReLU trims a little.
                let d2 = in_density; // branches have similar densities
                ((in_density + d2 - in_density * d2) * 0.9).clamp(0.2, 1.0)
            }
            LayerKind::FullyConnected => {
                // Final FC emits dense logits; hidden FCs are ReLU'd.
                0.95
            }
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{ActShape, Layer};

    fn chain(n: usize) -> Network {
        let mut net = Network::new("chain");
        let mut prev: Option<usize> = None;
        for i in 0..n {
            let l = Layer::new(
                &format!("c{i}"),
                LayerKind::Conv {
                    r: 3,
                    s: 3,
                    stride: 1,
                    pad: 1,
                },
                ActShape::new(16, 16, 8),
                8,
            );
            let inputs: Vec<usize> = prev.into_iter().collect();
            prev = Some(net.add(l, &inputs));
        }
        net
    }

    #[test]
    fn uniform_profile_sets_every_layer() {
        let mut net = chain(5);
        apply_weight_profile(&mut net, WeightProfile::Uniform { sparsity: 0.9 });
        for node in net.nodes() {
            assert!((node.layer.weight_density - 0.1).abs() < 1e-12);
        }
        assert!((net.weight_sparsity() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn str_like_hits_global_target() {
        let mut net = Network::new("mix");
        // One small and one large layer.
        let a = net.add(
            Layer::new(
                "small",
                LayerKind::Conv {
                    r: 1,
                    s: 1,
                    stride: 1,
                    pad: 0,
                },
                ActShape::new(16, 16, 8),
                8,
            ),
            &[],
        );
        net.add(
            Layer::new(
                "large",
                LayerKind::Conv {
                    r: 3,
                    s: 3,
                    stride: 1,
                    pad: 1,
                },
                ActShape::new(16, 16, 8),
                512,
            ),
            &[a],
        );
        apply_weight_profile(&mut net, WeightProfile::StrLike { sparsity: 0.95 });
        assert!(
            (net.weight_sparsity() - 0.95).abs() < 0.01,
            "global {}",
            net.weight_sparsity()
        );
        // Larger layer must be sparser.
        assert!(net.layer(1).weight_density < net.layer(0).weight_density);
    }

    #[test]
    fn activation_profile_is_in_fig4_band_and_flows() {
        let mut net = chain(10);
        apply_activation_profile(&mut net, 42);
        assert_eq!(net.layer(0).in_act_density, 1.0, "image input is dense");
        for id in 1..net.len() {
            let prev_out = net.layer(id - 1).out_act_density;
            assert_eq!(net.layer(id).in_act_density, prev_out);
            let d = net.layer(id).out_act_density;
            assert!((0.2..=0.8).contains(&d), "density {d} outside Fig. 4 band");
        }
    }

    #[test]
    fn activation_profile_is_deterministic() {
        let mut a = chain(6);
        let mut b = chain(6);
        apply_activation_profile(&mut a, 7);
        apply_activation_profile(&mut b, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn deeper_layers_trend_sparser() {
        let mut net = chain(30);
        apply_activation_profile(&mut net, 1);
        let early: f64 = (0..5).map(|i| net.layer(i).out_act_density).sum::<f64>() / 5.0;
        let late: f64 = (25..30).map(|i| net.layer(i).out_act_density).sum::<f64>() / 5.0;
        assert!(
            early > late,
            "early {early} should be denser than late {late}"
        );
    }
}
