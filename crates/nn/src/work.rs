//! Per-column work statistics for the performance models.
//!
//! The cycle-level models advance layer execution in units of output
//! activation *columns* — exactly the wavefront granularity of the IS-OS
//! dataflow (paper Fig. 6). Sparsity makes the work per column vary ("large
//! and fast variations of work", Sec. III-B); [`layer_work`] materializes a
//! seeded per-column work profile so that the dynamic scheduler model sees
//! realistic imbalance without materializing full tensors for
//! ImageNet-scale networks.

use crate::layer::{Layer, LayerKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Work and footprint profile of one layer, at column granularity.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LayerWork {
    /// Layer name.
    pub name: String,
    /// Input columns (`W`).
    pub in_cols: usize,
    /// Output columns (`Q`).
    pub out_cols: usize,
    /// Input rows (`H`).
    pub in_rows: usize,
    /// Output rows (`P`).
    pub out_rows: usize,
    /// Horizontal stride.
    pub stride: usize,
    /// Horizontal kernel extent (`S`): the wavefront lag between input and
    /// output columns.
    pub s_kernel: usize,
    /// Effectual MACs needed to produce each output column.
    pub macs_per_col: Vec<f64>,
    /// Compressed input bytes per input column.
    pub in_bytes_per_col: Vec<f64>,
    /// Compressed output bytes per output column.
    pub out_bytes_per_col: Vec<f64>,
    /// Compressed weight footprint (CSF), bytes.
    pub weight_csf_bytes: f64,
    /// Dense weight footprint, bytes.
    pub weight_dense_bytes: f64,
    /// Whether the layer has weights at all.
    pub has_weights: bool,
}

impl LayerWork {
    /// Total effectual MACs.
    pub fn total_macs(&self) -> f64 {
        self.macs_per_col.iter().sum()
    }

    /// Total compressed input activation bytes.
    pub fn in_csf_bytes(&self) -> f64 {
        self.in_bytes_per_col.iter().sum()
    }

    /// Total compressed output activation bytes.
    pub fn out_csf_bytes(&self) -> f64 {
        self.out_bytes_per_col.iter().sum()
    }

    /// The input columns `[lo, hi)` needed before output column `q` can be
    /// produced (the wavefront dependency: output lags input by `S`,
    /// scaled by stride).
    pub fn input_cols_for_output(&self, q: usize) -> usize {
        ((q * self.stride + self.s_kernel).min(self.in_cols)).max(1)
    }
}

/// Builds the work profile of a layer.
///
/// `seed` controls the per-column wobble only; totals are exact in
/// expectation (they match [`Layer::effectual_macs`] and the CSF byte
/// estimates on [`Layer`]).
pub fn layer_work(layer: &Layer, seed: u64) -> LayerWork {
    let mut rng = SmallRng::seed_from_u64(seed ^ WORK_SEED);
    let (q, w) = match layer.kind {
        LayerKind::FullyConnected | LayerKind::GlobalAvgPool => (1, 1),
        _ => (layer.output.w, layer.input.w),
    };
    let total_macs = layer.effectual_macs();
    let macs_per_col = wobbled_split(total_macs, q, &mut rng);
    let in_bytes_per_col = wobbled_split(layer.in_act_csf_bytes(), w, &mut rng);
    let out_bytes_per_col = wobbled_split(layer.out_act_csf_bytes(), q, &mut rng);
    let (_, s) = layer.kind.kernel();
    LayerWork {
        name: layer.name.clone(),
        in_cols: w,
        out_cols: q,
        in_rows: layer.input.h,
        out_rows: layer.output.h,
        stride: layer.kind.stride(),
        s_kernel: s,
        macs_per_col,
        in_bytes_per_col,
        out_bytes_per_col,
        weight_csf_bytes: layer.weight_csf_bytes(),
        weight_dense_bytes: layer.weight_dense_bytes(),
        has_weights: layer.kind.has_weights(),
    }
}

/// Splits `total` across `n` columns with ±30% per-column wobble, exactly
/// preserving the total.
fn wobbled_split(total: f64, n: usize, rng: &mut SmallRng) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    // One buffer end to end: draw the factors, sum them, scale in place.
    // The per-column values are exactly the `total * f / sum` of a
    // separate factor pass (same draws, same sum, same expression).
    let mut cols: Vec<f64> = (0..n).map(|_| rng.gen_range(0.7..1.3)).collect();
    let sum: f64 = cols.iter().sum();
    for f in cols.iter_mut() {
        *f = total * *f / sum;
    }
    cols
}

/// Salt so layer-work RNG streams differ from other seeded generators.
const WORK_SEED: u64 = 0x1505_CE1E5;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::ActShape;

    fn conv_layer() -> Layer {
        Layer::new(
            "c",
            LayerKind::Conv {
                r: 3,
                s: 3,
                stride: 1,
                pad: 1,
            },
            ActShape::new(16, 20, 8),
            8,
        )
        .with_weight_density(0.2)
        .with_act_density(0.5, 0.4)
    }

    #[test]
    fn totals_match_layer_expectations() {
        let l = conv_layer();
        let w = layer_work(&l, 1);
        assert!((w.total_macs() - l.effectual_macs()).abs() / l.effectual_macs() < 1e-9);
        assert!((w.in_csf_bytes() - l.in_act_csf_bytes()).abs() < 1e-6);
        assert!((w.out_csf_bytes() - l.out_act_csf_bytes()).abs() < 1e-6);
    }

    #[test]
    fn per_column_work_varies_but_is_positive() {
        let w = layer_work(&conv_layer(), 5);
        assert_eq!(w.macs_per_col.len(), 20);
        let min = w.macs_per_col.iter().cloned().fold(f64::MAX, f64::min);
        let max = w.macs_per_col.iter().cloned().fold(0.0, f64::max);
        assert!(min > 0.0);
        assert!(max / min > 1.05, "expected visible imbalance");
    }

    #[test]
    fn wavefront_dependency_lags_by_s() {
        let w = layer_work(&conv_layer(), 1);
        assert_eq!(w.input_cols_for_output(0), 3);
        assert_eq!(w.input_cols_for_output(5), 8);
        // Clamped at the input width.
        assert_eq!(w.input_cols_for_output(19), 20);
    }

    #[test]
    fn strided_layer_consumes_faster() {
        let l = Layer::new(
            "s2",
            LayerKind::Conv {
                r: 3,
                s: 3,
                stride: 2,
                pad: 1,
            },
            ActShape::new(16, 20, 8),
            8,
        );
        let w = layer_work(&l, 1);
        assert_eq!(w.out_cols, 10);
        assert_eq!(w.input_cols_for_output(4), 11);
    }

    #[test]
    fn fc_collapses_to_single_column() {
        let l = Layer::new(
            "fc",
            LayerKind::FullyConnected,
            ActShape::new(1, 1, 512),
            100,
        );
        let w = layer_work(&l, 1);
        assert_eq!(w.out_cols, 1);
        assert_eq!(w.macs_per_col.len(), 1);
        assert!((w.total_macs() - l.effectual_macs()).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let l = conv_layer();
        assert_eq!(layer_work(&l, 9), layer_work(&l, 9));
        assert_ne!(layer_work(&l, 9), layer_work(&l, 10));
    }
}
