//! Golden reference executors (dense, direct-loop implementations).
//!
//! These are the trusted oracles against which the sparse IS-OS dataflow is
//! validated bit-for-bit (up to float accumulation order). Tensor layouts
//! follow the paper: input activations `[H, W, C]`, filters `[C, R, K, S]`,
//! output activations `[P, Q, K]`.

use isos_tensor::{Dense, Point};

/// Direct 2-D convolution.
///
/// `input` is `[H, W, C]`; `filter` is `[C, R, K, S]`; the result is
/// `[P, Q, K]` with `P = (H + 2*pad - R)/stride + 1` and likewise for `Q`.
/// Zero padding is implicit (out-of-range inputs contribute nothing).
///
/// # Panics
///
/// Panics if the channel counts disagree or the kernel does not fit.
pub fn conv2d(input: &Dense, filter: &Dense, stride: usize, pad: usize) -> Dense {
    let (h, w, c) = dims3(input);
    let fd = filter.shape().dims();
    assert_eq!(fd.len(), 4, "filter must be [C,R,K,S]");
    let (fc, r, k, s) = (fd[0], fd[1], fd[2], fd[3]);
    assert_eq!(fc, c, "input channels {c} != filter channels {fc}");
    assert!(
        h + 2 * pad >= r && w + 2 * pad >= s,
        "kernel larger than input"
    );
    let p_dim = (h + 2 * pad - r) / stride + 1;
    let q_dim = (w + 2 * pad - s) / stride + 1;
    let mut out = Dense::zeros(vec![p_dim, q_dim, k].into());
    for p in 0..p_dim {
        for q in 0..q_dim {
            for ko in 0..k {
                let mut acc = 0.0f32;
                for ci in 0..c {
                    for ri in 0..r {
                        let hi = (p * stride + ri).checked_sub(pad);
                        let Some(hi) = hi.filter(|&v| v < h) else {
                            continue;
                        };
                        for si in 0..s {
                            let wi = (q * stride + si).checked_sub(pad);
                            let Some(wi) = wi.filter(|&v| v < w) else {
                                continue;
                            };
                            let iv = input[&pt3(hi, wi, ci)];
                            if iv == 0.0 {
                                continue;
                            }
                            let fv = filter[&pt4(ci, ri, ko, si)];
                            acc += iv * fv;
                        }
                    }
                }
                out[&pt3(p, q, ko)] = acc;
            }
        }
    }
    out
}

/// Depth-wise 2-D convolution: channel `c` of the input convolves only
/// with kernel `c`.
///
/// `input` is `[H, W, C]`; `filter` is `[C, R, S]`; the result is
/// `[P, Q, C]`.
///
/// # Panics
///
/// Panics if channel counts disagree or the kernel does not fit.
pub fn dwconv2d(input: &Dense, filter: &Dense, stride: usize, pad: usize) -> Dense {
    let (h, w, c) = dims3(input);
    let fd = filter.shape().dims();
    assert_eq!(fd.len(), 3, "filter must be [C,R,S]");
    let (fc, r, s) = (fd[0], fd[1], fd[2]);
    assert_eq!(fc, c, "input channels {c} != filter channels {fc}");
    let p_dim = (h + 2 * pad - r) / stride + 1;
    let q_dim = (w + 2 * pad - s) / stride + 1;
    let mut out = Dense::zeros(vec![p_dim, q_dim, c].into());
    for p in 0..p_dim {
        for q in 0..q_dim {
            for ci in 0..c {
                let mut acc = 0.0f32;
                for ri in 0..r {
                    let Some(hi) = (p * stride + ri).checked_sub(pad).filter(|&v| v < h) else {
                        continue;
                    };
                    for si in 0..s {
                        let Some(wi) = (q * stride + si).checked_sub(pad).filter(|&v| v < w) else {
                            continue;
                        };
                        acc += input[&pt3(hi, wi, ci)]
                            * filter[&Point::from_slice(&[ci as u32, ri as u32, si as u32])];
                    }
                }
                out[&pt3(p, q, ci)] = acc;
            }
        }
    }
    out
}

/// Fully-connected layer as a matrix-vector product.
///
/// `input` is any shape (flattened); `weights` is `[N, K]` where `N` is the
/// flattened input size. The result is `[1, 1, K]` to stay in activation
/// layout.
///
/// # Panics
///
/// Panics if sizes disagree.
pub fn fully_connected(input: &Dense, weights: &Dense) -> Dense {
    let n = input.shape().volume();
    let wd = weights.shape().dims();
    assert_eq!(wd.len(), 2, "weights must be [N,K]");
    assert_eq!(wd[0], n, "input size {n} != weight rows {}", wd[0]);
    let k = wd[1];
    let mut out = Dense::zeros(vec![1, 1, k].into());
    for (i, &x) in input.data().iter().enumerate() {
        if x == 0.0 {
            continue;
        }
        for ko in 0..k {
            out.data_mut()[ko] += x * weights.data()[i * k + ko];
        }
    }
    out
}

/// Max pooling over `size x size` windows.
///
/// `input` is `[H, W, C]`; result is `[P, Q, C]`.
pub fn max_pool(input: &Dense, size: usize, stride: usize, pad: usize) -> Dense {
    let (h, w, c) = dims3(input);
    let p_dim = (h + 2 * pad - size) / stride + 1;
    let q_dim = (w + 2 * pad - size) / stride + 1;
    let mut out = Dense::zeros(vec![p_dim, q_dim, c].into());
    for p in 0..p_dim {
        for q in 0..q_dim {
            for ci in 0..c {
                let mut best = f32::NEG_INFINITY;
                for ri in 0..size {
                    let Some(hi) = (p * stride + ri).checked_sub(pad).filter(|&v| v < h) else {
                        best = best.max(0.0);
                        continue;
                    };
                    for si in 0..size {
                        let Some(wi) = (q * stride + si).checked_sub(pad).filter(|&v| v < w) else {
                            best = best.max(0.0);
                            continue;
                        };
                        best = best.max(input[&pt3(hi, wi, ci)]);
                    }
                }
                out[&pt3(p, q, ci)] = best;
            }
        }
    }
    out
}

/// Global average pooling: `[H, W, C]` to `[1, 1, C]`.
pub fn global_avg_pool(input: &Dense) -> Dense {
    let (h, w, c) = dims3(input);
    let mut out = Dense::zeros(vec![1, 1, c].into());
    for hi in 0..h {
        for wi in 0..w {
            for ci in 0..c {
                out.data_mut()[ci] += input[&pt3(hi, wi, ci)];
            }
        }
    }
    let scale = 1.0 / (h * w) as f32;
    for v in out.data_mut() {
        *v *= scale;
    }
    out
}

/// Element-wise addition (skip-connection join).
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn add(a: &Dense, b: &Dense) -> Dense {
    assert_eq!(a.shape(), b.shape(), "add shape mismatch");
    let data = a.data().iter().zip(b.data()).map(|(x, y)| x + y).collect();
    Dense::from_vec(a.shape().clone(), data)
}

/// Batch-norm (per-channel scale and bias on the innermost rank) followed
/// by ReLU — the POU of an ISOSceles backend lane.
///
/// `acts` is `[.., C]`; `scale`/`bias` have length `C`.
///
/// # Panics
///
/// Panics if `scale`/`bias` length differs from the innermost extent.
pub fn bn_relu(acts: &Dense, scale: &[f32], bias: &[f32]) -> Dense {
    let dims = acts.shape().dims();
    let c = *dims.last().unwrap();
    assert_eq!(scale.len(), c, "scale length mismatch");
    assert_eq!(bias.len(), c, "bias length mismatch");
    let data = acts
        .data()
        .iter()
        .enumerate()
        .map(|(i, &v)| (v * scale[i % c] + bias[i % c]).max(0.0))
        .collect();
    Dense::from_vec(acts.shape().clone(), data)
}

fn dims3(t: &Dense) -> (usize, usize, usize) {
    let d = t.shape().dims();
    assert_eq!(d.len(), 3, "activation tensor must be [H,W,C]");
    (d[0], d[1], d[2])
}

fn pt3(a: usize, b: usize, c: usize) -> Point {
    Point::from_slice(&[a as u32, b as u32, c as u32])
}

fn pt4(a: usize, b: usize, c: usize, d: usize) -> Point {
    Point::from_slice(&[a as u32, b as u32, c as u32, d as u32])
}

#[cfg(test)]
mod tests {
    use super::*;
    use isos_tensor::gen::random_dense;

    #[test]
    fn conv_identity_kernel_passes_through() {
        // 1x1 kernel, one channel, weight 1: output == input.
        let input = random_dense(vec![4, 5, 1].into(), 1.0, 1);
        let filter = Dense::from_vec(vec![1, 1, 1, 1].into(), vec![1.0]);
        let out = conv2d(&input, &filter, 1, 0);
        assert_eq!(out.shape().dims(), &[4, 5, 1]);
        assert!(out.max_abs_diff(&input) < 1e-6);
    }

    #[test]
    fn conv_known_values() {
        // 2x2 input, 2x2 kernel of ones: single output = sum of inputs.
        let input = Dense::from_vec(vec![2, 2, 1].into(), vec![1.0, 2.0, 3.0, 4.0]);
        let filter = Dense::from_vec(vec![1, 2, 1, 2].into(), vec![1.0; 4]);
        let out = conv2d(&input, &filter, 1, 0);
        assert_eq!(out.shape().dims(), &[1, 1, 1]);
        assert_eq!(out.data()[0], 10.0);
    }

    #[test]
    fn conv_padding_grows_output() {
        let input = random_dense(vec![4, 4, 2].into(), 1.0, 2);
        let filter = random_dense(vec![2, 3, 3, 3].into(), 1.0, 3);
        let out = conv2d(&input, &filter, 1, 1);
        assert_eq!(out.shape().dims(), &[4, 4, 3]);
    }

    #[test]
    fn conv_stride_two() {
        let input = random_dense(vec![8, 8, 1].into(), 1.0, 4);
        let filter = random_dense(vec![1, 2, 1, 2].into(), 1.0, 5);
        let out = conv2d(&input, &filter, 2, 0);
        assert_eq!(out.shape().dims(), &[4, 4, 1]);
        // Spot-check one output against a hand computation.
        let expect = input[&pt3(2, 2, 0)] * filter[&pt4(0, 0, 0, 0)]
            + input[&pt3(2, 3, 0)] * filter[&pt4(0, 0, 0, 1)]
            + input[&pt3(3, 2, 0)] * filter[&pt4(0, 1, 0, 0)]
            + input[&pt3(3, 3, 0)] * filter[&pt4(0, 1, 0, 1)];
        assert!((out[&pt3(1, 1, 0)] - expect).abs() < 1e-6);
    }

    #[test]
    fn dwconv_channels_do_not_mix() {
        let mut input = Dense::zeros(vec![3, 3, 2].into());
        input[&pt3(1, 1, 0)] = 1.0; // only channel 0 active
        let mut filter = Dense::zeros(vec![2, 3, 3].into());
        // Channel 1's kernel is all ones; channel 0's is zero.
        for r in 0..3 {
            for s in 0..3 {
                filter[&Point::from_slice(&[1, r, s])] = 1.0;
            }
        }
        let out = dwconv2d(&input, &filter, 1, 1);
        // Channel 0 kernel is zero, channel 1 input is zero: all-zero out.
        assert_eq!(out.nnz(), 0);
    }

    #[test]
    fn dwconv_matches_grouped_conv() {
        // Depth-wise == full conv with block-diagonal filter.
        let input = random_dense(vec![5, 5, 3].into(), 0.8, 6);
        let dw = random_dense(vec![3, 3, 3].into(), 1.0, 7);
        let mut full = Dense::zeros(vec![3, 3, 3, 3].into());
        for c in 0..3u32 {
            for r in 0..3u32 {
                for s in 0..3u32 {
                    full[&Point::from_slice(&[c, r, c, s])] = dw[&Point::from_slice(&[c, r, s])];
                }
            }
        }
        let a = dwconv2d(&input, &dw, 1, 1);
        let b = conv2d(&input, &full, 1, 1);
        assert!(a.max_abs_diff(&b) < 1e-5);
    }

    #[test]
    fn fc_matches_manual_matvec() {
        let input = Dense::from_vec(vec![1, 1, 3].into(), vec![1.0, 2.0, 3.0]);
        let weights = Dense::from_vec(vec![3, 2].into(), vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let out = fully_connected(&input, &weights);
        assert_eq!(out.data(), &[1.0 + 3.0, 2.0 + 3.0]);
    }

    #[test]
    fn max_pool_takes_window_max() {
        let input = Dense::from_vec(vec![2, 2, 1].into(), vec![1.0, -5.0, 3.0, 2.0]);
        let out = max_pool(&input, 2, 2, 0);
        assert_eq!(out.data(), &[3.0]);
    }

    #[test]
    fn max_pool_pad_treats_border_as_zero() {
        let input = Dense::from_vec(vec![1, 1, 1].into(), vec![-2.0]);
        let out = max_pool(&input, 3, 1, 1);
        // Window is mostly padding (0) vs -2: max is 0.
        assert_eq!(out.data(), &[0.0]);
    }

    #[test]
    fn gap_averages() {
        let input = Dense::from_vec(vec![2, 2, 1].into(), vec![1.0, 2.0, 3.0, 6.0]);
        assert_eq!(global_avg_pool(&input).data(), &[3.0]);
    }

    #[test]
    fn bn_relu_scales_biases_clamps() {
        let acts = Dense::from_vec(vec![1, 1, 2].into(), vec![2.0, -1.0]);
        let out = bn_relu(&acts, &[2.0, 3.0], &[1.0, 1.0]);
        assert_eq!(out.data(), &[5.0, 0.0]);
    }

    #[test]
    fn add_sums_elementwise() {
        let a = Dense::from_vec(vec![2].into(), vec![1.0, 2.0]);
        let b = Dense::from_vec(vec![2].into(), vec![10.0, 20.0]);
        assert_eq!(add(&a, &b).data(), &[11.0, 22.0]);
    }
}
