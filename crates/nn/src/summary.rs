//! Per-layer network summaries: the numbers an accelerator architect reads
//! first (shapes, MACs, footprints, arithmetic intensity), renderable as a
//! text table.

use crate::graph::Network;
use serde::{Deserialize, Serialize};

/// One layer's summary row.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LayerSummary {
    /// Layer name.
    pub name: String,
    /// Output shape as `PxQxK`.
    pub out_shape: String,
    /// Dense MACs.
    pub dense_macs: f64,
    /// Expected effectual MACs.
    pub effectual_macs: f64,
    /// Compressed weight bytes.
    pub weight_bytes: f64,
    /// Compressed input + output activation bytes.
    pub act_bytes: f64,
    /// Ops (2 per MAC) per compulsory byte — the arithmetic intensity the
    /// paper's intro argues collapses under sparsity.
    pub intensity: f64,
}

/// Whole-network summary.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkSummary {
    /// Network name.
    pub name: String,
    /// Per-layer rows, topological.
    pub layers: Vec<LayerSummary>,
}

impl NetworkSummary {
    /// Builds the summary of `net` (sparse/compressed accounting).
    pub fn of(net: &Network) -> Self {
        let layers = net
            .nodes()
            .iter()
            .map(|n| {
                let l = &n.layer;
                let weight_bytes = l.weight_csf_bytes();
                let act_bytes = l.in_act_csf_bytes() + l.out_act_csf_bytes();
                let total_bytes = (weight_bytes + act_bytes).max(1.0);
                LayerSummary {
                    name: l.name.clone(),
                    out_shape: format!("{}x{}x{}", l.output.h, l.output.w, l.output.c),
                    dense_macs: l.dense_macs(),
                    effectual_macs: l.effectual_macs(),
                    weight_bytes,
                    act_bytes,
                    intensity: 2.0 * l.effectual_macs() / total_bytes,
                }
            })
            .collect();
        Self {
            name: net.name.clone(),
            layers,
        }
    }

    /// Network-wide arithmetic intensity (ops per compulsory byte).
    pub fn intensity(&self) -> f64 {
        let macs: f64 = self.layers.iter().map(|l| l.effectual_macs).sum();
        let bytes: f64 = self
            .layers
            .iter()
            .map(|l| l.weight_bytes + l.act_bytes)
            .sum();
        2.0 * macs / bytes.max(1.0)
    }

    /// The `n` layers with the most effectual work.
    pub fn hottest(&self, n: usize) -> Vec<&LayerSummary> {
        let mut refs: Vec<&LayerSummary> = self.layers.iter().collect();
        refs.sort_by(|a, b| b.effectual_macs.partial_cmp(&a.effectual_macs).unwrap());
        refs.truncate(n);
        refs
    }

    /// Renders a fixed-width text table.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "{:<24} {:>12} {:>10} {:>10} {:>9} {:>9} {:>8}\n",
            "layer", "out", "MMACs", "eff MMACs", "w KB", "act KB", "ops/B"
        );
        for l in &self.layers {
            out.push_str(&format!(
                "{:<24} {:>12} {:>10.1} {:>10.1} {:>9.1} {:>9.1} {:>8.1}\n",
                l.name,
                l.out_shape,
                l.dense_macs / 1e6,
                l.effectual_macs / 1e6,
                l.weight_bytes / 1e3,
                l.act_bytes / 1e3,
                l.intensity
            ));
        }
        out.push_str(&format!(
            "network arithmetic intensity: {:.1} ops/byte\n",
            self.intensity()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{mobilenet_v1, resnet50};

    #[test]
    fn summary_covers_every_layer() {
        let net = resnet50(0.96, 1);
        let s = NetworkSummary::of(&net);
        assert_eq!(s.layers.len(), net.len());
        assert!(s.intensity() > 0.0);
    }

    #[test]
    fn sparsity_collapses_intensity() {
        // The paper's intro: sparsification slashes ops/byte.
        let dense = NetworkSummary::of(&resnet50(0.0, 1)).intensity();
        let sparse = NetworkSummary::of(&resnet50(0.90, 1)).intensity();
        assert!(
            dense > 3.0 * sparse,
            "dense {dense:.1} vs sparse {sparse:.1} ops/byte"
        );
    }

    #[test]
    fn hottest_returns_heaviest_layers_sorted() {
        let s = NetworkSummary::of(&mobilenet_v1(0.75, 1));
        let hot = s.hottest(5);
        assert_eq!(hot.len(), 5);
        assert!(hot
            .windows(2)
            .all(|w| w[0].effectual_macs >= w[1].effectual_macs));
    }

    #[test]
    fn table_renders_one_line_per_layer() {
        let net = mobilenet_v1(0.75, 1);
        let table = NetworkSummary::of(&net).to_table();
        assert_eq!(table.lines().count(), net.len() + 2);
        assert!(table.contains("block13.pw"));
    }
}
