//! Property-based tests for the CNN substrate: shape arithmetic, sparsity
//! profiles, pruning, and work-profile conservation.

use isos_nn::graph::Network;
use isos_nn::layer::{ActShape, Layer, LayerKind};
use isos_nn::pruning::magnitude_prune;
use isos_nn::sparsity::{apply_activation_profile, apply_weight_profile, WeightProfile};
use isos_nn::work::layer_work;
use isos_tensor::gen::random_dense;
use proptest::prelude::*;

fn random_chain(dims: (usize, usize, usize), kinds: Vec<u8>) -> Network {
    let (h, w, c) = dims;
    let mut net = Network::new("prop-chain");
    let mut prev: Option<usize> = None;
    let mut shape = ActShape::new(h.max(4), w.max(4), c.max(1));
    for (i, kind) in kinds.into_iter().enumerate() {
        let layer_kind = match kind % 4 {
            0 => LayerKind::Conv {
                r: 3,
                s: 3,
                stride: 1,
                pad: 1,
            },
            1 => LayerKind::Conv {
                r: 1,
                s: 1,
                stride: 1,
                pad: 0,
            },
            2 => LayerKind::DwConv {
                r: 3,
                s: 3,
                stride: 1,
                pad: 1,
            },
            _ => LayerKind::MaxPool {
                size: 2,
                stride: 2,
                pad: 0,
            },
        };
        if matches!(layer_kind, LayerKind::MaxPool { .. }) && (shape.h < 2 || shape.w < 2) {
            continue;
        }
        let layer = Layer::new(&format!("l{i}"), layer_kind, shape, 8);
        shape = layer.output;
        let inputs: Vec<usize> = prev.into_iter().collect();
        prev = Some(net.add(layer, &inputs));
    }
    net
}

proptest! {
    #[test]
    fn conv_shape_arithmetic_matches_reference_executor(
        h in 3usize..12,
        w in 3usize..12,
        c in 1usize..4,
        k in 1usize..6,
        r in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
    ) {
        prop_assume!(h + 2 * pad >= r && w + 2 * pad >= r);
        let layer = Layer::new(
            "c",
            LayerKind::Conv { r, s: r, stride, pad },
            ActShape::new(h, w, c),
            k,
        );
        // The descriptor's output shape must equal the executor's.
        let input = random_dense(vec![h, w, c].into(), 1.0, 1);
        let filter = random_dense(vec![c, r, k, r].into(), 1.0, 2);
        let out = isos_nn::reference::conv2d(&input, &filter, stride, pad);
        prop_assert_eq!(
            out.shape().dims(),
            &[layer.output.h, layer.output.w, layer.output.c]
        );
    }

    #[test]
    fn chains_always_validate(
        dims in (4usize..16, 4usize..16, 1usize..8),
        kinds in prop::collection::vec(0u8..4, 1..8),
    ) {
        let net = random_chain(dims, kinds);
        prop_assert!(net.validate().is_ok(), "{:?}", net.validate());
    }

    #[test]
    fn uniform_profile_hits_any_target(
        dims in (8usize..16, 8usize..16, 2usize..6),
        kinds in prop::collection::vec(0u8..3, 2..6),
        sparsity in 0.0f64..0.99,
    ) {
        let mut net = random_chain(dims, kinds);
        prop_assume!(net.total_dense_weights() > 0);
        apply_weight_profile(&mut net, WeightProfile::Uniform { sparsity });
        prop_assert!((net.weight_sparsity() - sparsity).abs() < 1e-9);
    }

    #[test]
    fn str_profile_is_close_to_target_and_bounded(
        sparsity in 0.5f64..0.995,
        seed in 0u64..100,
    ) {
        let mut net = isos_nn::models::resnet50(0.0, seed);
        apply_weight_profile(&mut net, WeightProfile::StrLike { sparsity });
        // Global target within 3 points even with per-layer caps.
        prop_assert!((net.weight_sparsity() - sparsity).abs() < 0.03);
        for node in net.nodes() {
            if node.layer.kind.has_weights() {
                prop_assert!((0.005..=1.0).contains(&node.layer.weight_density));
            }
        }
    }

    #[test]
    fn activation_profile_flows_and_stays_in_band(
        dims in (8usize..16, 8usize..16, 2usize..6),
        kinds in prop::collection::vec(0u8..3, 2..8),
        seed in 0u64..1000,
    ) {
        let mut net = random_chain(dims, kinds);
        apply_activation_profile(&mut net, seed);
        for id in 0..net.len() {
            let l = net.layer(id);
            prop_assert!((0.0..=1.0).contains(&l.in_act_density));
            prop_assert!((0.0..=1.0).contains(&l.out_act_density));
            for &p in &net.nodes()[id].inputs {
                prop_assert!(net.layer(p).out_act_density >= l.in_act_density - 1e-9
                    || net.nodes()[id].inputs.len() > 1);
            }
        }
    }

    #[test]
    fn work_profile_conserves_totals(
        h in 4usize..20,
        w in 4usize..20,
        c in 1usize..8,
        k in 1usize..8,
        dw in 0.05f64..1.0,
        da in 0.05f64..1.0,
        seed in 0u64..1000,
    ) {
        let layer = Layer::new(
            "c",
            LayerKind::Conv { r: 3, s: 3, stride: 1, pad: 1 },
            ActShape::new(h, w, c),
            k,
        )
        .with_weight_density(dw)
        .with_act_density(da, da);
        let work = layer_work(&layer, seed);
        let expect = layer.effectual_macs();
        prop_assert!((work.total_macs() - expect).abs() <= 1e-6 * expect.max(1.0));
        prop_assert!(work.macs_per_col.iter().all(|&m| m >= 0.0));
        prop_assert_eq!(work.macs_per_col.len(), layer.output.w);
        // Wavefront dependency is monotone and bounded.
        let mut last = 0;
        for q in 0..work.out_cols {
            let need = work.input_cols_for_output(q);
            prop_assert!(need >= last && need <= work.in_cols);
            last = need;
        }
    }

    #[test]
    fn magnitude_prune_reaches_any_target(
        n in 1usize..200,
        target in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let mut t = random_dense(vec![n].into(), 1.0, seed);
        magnitude_prune(&mut t, target);
        let zeros = n - t.nnz();
        let expect = (n as f64 * target).round() as usize;
        prop_assert!(zeros >= expect, "zeros {zeros} < target {expect}");
    }
}
