//! Sparse tensor substrate for the ISOSceles reproduction.
//!
//! ISOSceles (HPCA 2023) stores every tensor — input/output activations,
//! filters, and partial results — in compressed form and is co-designed so
//! that all traversals are *concordant* (sequential in the storage order).
//! This crate provides the data structures that design rests on:
//!
//! - [`Csf`]: Compressed Sparse Fiber tensors with fibertree navigation
//!   ([`Fiber`]) and concordant iteration,
//! - [`Dense`]: the uncompressed counterpart for golden models,
//! - [`merge`]: hardware-style k-way mergers (comparator tree and pipelined
//!   min-heap) plus the merge-reduce pattern of the OS backend,
//! - [`bitmask`]: SparTen-style bitmask vectors for the baseline model,
//! - [`gen`]: seeded random sparse tensor generation.
//!
//! # Examples
//!
//! ```
//! use isos_tensor::{gen, Csf};
//! let t = gen::random_csf(vec![8, 8, 16].into(), 0.1, 42);
//! assert!(t.sparsity() > 0.5);
//! // Concordant traversal yields strictly increasing points.
//! let pts: Vec<_> = t.iter().map(|(p, _)| p).collect();
//! assert!(pts.windows(2).all(|w| w[0] < w[1]));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod coord;
mod csf;
mod dense;

pub mod bitmask;
pub mod gen;
pub mod merge;
pub mod wavefront;

pub use coord::{Coord, Point, Shape, MAX_RANKS};
pub use csf::{Csf, CsfRank, Fiber, FiberIndex, Iter};
pub use dense::Dense;
