//! Wavefront views of activation tensors (paper Sec. III, Fig. 6/7).
//!
//! A *wavefront* is the unit the IS-OS dataflow produces and consumes: one
//! column of one activation plane, traversed channel-innermost. In the
//! sparse case wavefronts become *wavy lines* (Sec. III-B): each lane sits
//! at the earliest unprocessed nonzero of its row, so different rows run
//! at slightly different columns with synchronization dictated only by
//! data dependences. This module provides both views over a CSF
//! `[H, W, C]` tensor:
//!
//! - [`wavefronts`]: the per-column element stream of one row, in exactly
//!   the order a frontend lane consumes it;
//! - [`WavyLine`]: the cross-row frontier, advanced row by row, as the
//!   hardware's decoupled lanes would.

use crate::{Coord, Csf};

/// One element of a wavefront: `(column, channel, value)`.
pub type WavefrontElem = (Coord, Coord, f32);

/// Iterates row `h`'s nonzeros in wavefront (column-then-channel) order.
///
/// This is the concordant traversal of the `[W, C]` sub-fibertree — the
/// exact consumption order of an IS frontend lane.
///
/// # Panics
///
/// Panics if `acts` is not rank 3.
pub fn wavefronts(acts: &Csf, h: Coord) -> impl Iterator<Item = WavefrontElem> + '_ {
    assert_eq!(acts.ndim(), 3, "activations must be [H,W,C]");
    let cols: Vec<(Coord, Vec<(Coord, f32)>)> = acts
        .root()
        .find(h)
        .map(|row| {
            row.iter_children()
                .map(|(w, f)| (w, f.iter_leaf().collect()))
                .collect()
        })
        .unwrap_or_default();
    cols.into_iter()
        .flat_map(|(w, leaf)| leaf.into_iter().map(move |(c, v)| (w, c, v)))
}

/// The sparse execution frontier: per row, the index of the next
/// unprocessed nonzero, with the *wavy line* being each row's current
/// column.
///
/// # Examples
///
/// ```
/// use isos_tensor::{gen, wavefront::WavyLine};
/// let t = gen::random_csf(vec![4, 8, 2].into(), 0.4, 1);
/// let mut line = WavyLine::new(&t);
/// let mut consumed = 0;
/// while let Some((_h, _elem)) = line.consume_earliest() {
///     consumed += 1;
/// }
/// assert_eq!(consumed, t.nnz());
/// ```
#[derive(Debug)]
pub struct WavyLine {
    rows: Vec<Vec<WavefrontElem>>,
    cursor: Vec<usize>,
    /// Cached current column per row; meaningful only where the `active`
    /// bit is set. Maintained incrementally on every consume so frontier
    /// queries never re-deref the row streams.
    front: Vec<Coord>,
    /// Packed bitmask of unfinished rows: bit `h` of `active[h / 64]` is
    /// set while row `h` still has elements. Frontier scans walk set bits
    /// via `trailing_zeros`, skipping exhausted rows a word at a time.
    active: Vec<u64>,
}

impl WavyLine {
    /// Builds the frontier at the start of a `[H, W, C]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if `acts` is not rank 3.
    pub fn new(acts: &Csf) -> Self {
        assert_eq!(acts.ndim(), 3, "activations must be [H,W,C]");
        let h_dim = acts.shape()[0];
        let rows = (0..h_dim as Coord)
            .map(|h| wavefronts(acts, h).collect::<Vec<_>>())
            .collect::<Vec<_>>();
        let mut front = vec![0; rows.len()];
        let mut active = vec![0u64; rows.len().div_ceil(64)];
        for (h, row) in rows.iter().enumerate() {
            if let Some(&(w, _, _)) = row.first() {
                front[h] = w;
                active[h / 64] |= 1 << (h % 64);
            }
        }
        Self {
            cursor: vec![0; rows.len()],
            rows,
            front,
            active,
        }
    }

    /// The current column of each row's frontier (`None` once a row is
    /// exhausted) — the paper's wavy line, made inspectable.
    pub fn frontier(&self) -> Vec<Option<Coord>> {
        (0..self.rows.len())
            .map(|h| self.is_active(h).then(|| self.front[h]))
            .collect()
    }

    /// Consumes one element from row `h`, if any remain.
    pub fn consume_row(&mut self, h: usize) -> Option<WavefrontElem> {
        let elem = *self.rows.get(h)?.get(self.cursor[h])?;
        self.cursor[h] += 1;
        match self.rows[h].get(self.cursor[h]) {
            Some(&(w, _, _)) => self.front[h] = w,
            None => self.active[h / 64] &= !(1 << (h % 64)),
        }
        Some(elem)
    }

    /// Consumes the globally earliest element (lowest column, ties broken
    /// by row) — the most synchronized schedule possible.
    pub fn consume_earliest(&mut self) -> Option<(usize, WavefrontElem)> {
        let mut best: Option<(Coord, usize)> = None;
        for (wi, &word) in self.active.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let h = wi * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let w = self.front[h];
                if best.is_none_or(|(bw, bh)| (w, h) < (bw, bh)) {
                    best = Some((w, h));
                }
            }
        }
        let h = best?.1;
        self.consume_row(h).map(|e| (h, e))
    }

    /// How far apart the fastest and slowest unfinished rows are, in
    /// columns — the "waviness" that queues must absorb.
    pub fn skew(&self) -> Coord {
        let mut lo_hi: Option<(Coord, Coord)> = None;
        for (wi, &word) in self.active.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let h = wi * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let w = self.front[h];
                lo_hi = Some(match lo_hi {
                    None => (w, w),
                    Some((lo, hi)) => (lo.min(w), hi.max(w)),
                });
            }
        }
        lo_hi.map_or(0, |(lo, hi)| hi - lo)
    }

    /// Elements not yet consumed.
    pub fn remaining(&self) -> usize {
        self.rows
            .iter()
            .zip(&self.cursor)
            .map(|(row, &c)| row.len() - c)
            .sum()
    }

    fn is_active(&self, h: usize) -> bool {
        self.active[h / 64] & (1 << (h % 64)) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, Point};

    fn tensor() -> Csf {
        Csf::from_entries(
            vec![3, 5, 2].into(),
            vec![
                (Point::from_slice(&[0, 0, 1]), 1.0),
                (Point::from_slice(&[0, 4, 0]), 2.0),
                (Point::from_slice(&[1, 2, 0]), 3.0),
                (Point::from_slice(&[1, 2, 1]), 4.0),
                (Point::from_slice(&[2, 3, 1]), 5.0),
            ],
        )
    }

    #[test]
    fn wavefront_order_is_column_then_channel() {
        let t = tensor();
        let row1: Vec<WavefrontElem> = wavefronts(&t, 1).collect();
        assert_eq!(row1, vec![(2, 0, 3.0), (2, 1, 4.0)]);
        let row0: Vec<WavefrontElem> = wavefronts(&t, 0).collect();
        assert_eq!(row0[0], (0, 1, 1.0));
        assert_eq!(row0[1], (4, 0, 2.0));
    }

    #[test]
    fn frontier_starts_at_first_nonzeros() {
        let line = WavyLine::new(&tensor());
        assert_eq!(line.frontier(), vec![Some(0), Some(2), Some(3)]);
        assert_eq!(line.skew(), 3);
    }

    #[test]
    fn consume_earliest_is_globally_sorted_by_column() {
        let mut line = WavyLine::new(&tensor());
        let mut cols = Vec::new();
        while let Some((_, (w, _, _))) = line.consume_earliest() {
            cols.push(w);
        }
        assert_eq!(cols, vec![0, 2, 2, 3, 4]);
        assert_eq!(line.remaining(), 0);
        assert_eq!(line.skew(), 0);
    }

    #[test]
    fn rows_advance_independently() {
        let mut line = WavyLine::new(&tensor());
        // Drain row 0 completely while others sit still: skew grows.
        assert!(line.consume_row(0).is_some());
        assert!(line.consume_row(0).is_some());
        assert!(line.consume_row(0).is_none());
        assert_eq!(line.frontier()[0], None);
        assert_eq!(line.remaining(), 3);
    }

    #[test]
    fn dense_tensor_has_zero_initial_skew() {
        let t = gen::random_csf(vec![4, 6, 3].into(), 1.0, 2);
        let line = WavyLine::new(&t);
        assert_eq!(line.skew(), 0);
        assert_eq!(line.remaining(), t.nnz());
    }

    #[test]
    fn wavefronts_cover_whole_tensor() {
        let t = gen::random_csf(vec![5, 7, 3].into(), 0.5, 3);
        let total: usize = (0..5).map(|h| wavefronts(&t, h).count()).sum();
        assert_eq!(total, t.nnz());
    }
}
