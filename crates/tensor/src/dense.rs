//! Dense (uncompressed) tensors.
//!
//! [`Dense`] is the row-major uncompressed counterpart of [`crate::Csf`].
//! The golden-model executors in `isos-nn` compute on dense tensors, and the
//! conversion tests in [`crate::convert`] check that CSF round-trips through
//! dense form losslessly.

use crate::{Coord, Point, Shape};
use serde::{Deserialize, Serialize};

/// A dense row-major tensor of `f32` values.
///
/// # Examples
///
/// ```
/// use isos_tensor::{Dense, Point};
/// let mut t = Dense::zeros(vec![2, 3].into());
/// t[&Point::from_slice(&[1, 2])] = 4.0;
/// assert_eq!(t[&Point::from_slice(&[1, 2])], 4.0);
/// assert_eq!(t.nnz(), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    shape: Shape,
    data: Vec<f32>,
}

impl Dense {
    /// Creates an all-zero tensor of the given shape.
    pub fn zeros(shape: Shape) -> Self {
        let volume = shape.volume();
        Self {
            shape,
            data: vec![0.0; volume],
        }
    }

    /// Creates a tensor from a shape and row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != shape.volume()`.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), shape.volume(), "data length != shape volume");
        Self { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The raw row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the raw row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// The value at `point`, or `None` if out of range.
    pub fn get(&self, point: &Point) -> Option<f32> {
        if self.shape.contains(point) {
            Some(self.data[self.shape.linear_index(point)])
        } else {
            None
        }
    }

    /// Number of nonzero elements.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0.0).count()
    }

    /// Fraction of elements that are zero, in `[0, 1]`.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.nnz() as f64 / self.data.len() as f64
    }

    /// Iterates over the nonzero elements in row-major (concordant) order.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (Point, f32)> + '_ {
        let dims: Vec<usize> = self.shape.dims().to_vec();
        self.data.iter().enumerate().filter_map(move |(i, &v)| {
            if v == 0.0 {
                return None;
            }
            let mut rem = i;
            let mut coords = [0 as Coord; crate::MAX_RANKS];
            for (r, &d) in dims.iter().enumerate().rev() {
                coords[r] = (rem % d) as Coord;
                rem /= d;
            }
            Some((Point::from_slice(&coords[..dims.len()]), v))
        })
    }

    /// Returns a copy with ranks permuted so that output rank `i` is input
    /// rank `perm[i]` (a generalized transpose).
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..self.ndim()`.
    pub fn permuted(&self, perm: &[usize]) -> Dense {
        let out_shape = self.shape.permuted(perm);
        let mut out = Dense::zeros(out_shape);
        for (point, value) in self.iter_nonzero() {
            let p = point.permuted(perm);
            let idx = out.shape.linear_index(&p);
            out.data[idx] = value;
        }
        out
    }

    /// Element-wise maximum absolute difference against `other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Dense) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl std::ops::Index<&Point> for Dense {
    type Output = f32;

    fn index(&self, point: &Point) -> &f32 {
        &self.data[self.shape.linear_index(point)]
    }
}

impl std::ops::IndexMut<&Point> for Dense {
    fn index_mut(&mut self, point: &Point) -> &mut f32 {
        let idx = self.shape.linear_index(point);
        &mut self.data[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(c: &[Coord]) -> Point {
        Point::from_slice(c)
    }

    #[test]
    fn zeros_has_no_nonzeros() {
        let t = Dense::zeros(vec![3, 3].into());
        assert_eq!(t.nnz(), 0);
        assert_eq!(t.sparsity(), 1.0);
    }

    #[test]
    fn iter_nonzero_is_row_major_ordered() {
        let mut t = Dense::zeros(vec![2, 3].into());
        t[&p(&[1, 0])] = 1.0;
        t[&p(&[0, 2])] = 2.0;
        t[&p(&[1, 2])] = 3.0;
        let points: Vec<Point> = t.iter_nonzero().map(|(pt, _)| pt).collect();
        assert_eq!(points, vec![p(&[0, 2]), p(&[1, 0]), p(&[1, 2])]);
        let mut sorted = points.clone();
        sorted.sort();
        assert_eq!(points, sorted);
    }

    #[test]
    fn permuted_transposes_2d() {
        let t = Dense::from_vec(vec![2, 3].into(), vec![1., 2., 3., 4., 5., 6.]);
        let tt = t.permuted(&[1, 0]);
        assert_eq!(tt.shape().dims(), &[3, 2]);
        assert_eq!(tt[&p(&[2, 1])], t[&p(&[1, 2])]);
        assert_eq!(tt[&p(&[0, 0])], 1.0);
        assert_eq!(tt[&p(&[0, 1])], 4.0);
    }

    #[test]
    fn permuted_roundtrip_identity() {
        let mut t = Dense::zeros(vec![2, 3, 4].into());
        t[&p(&[1, 2, 3])] = 9.0;
        t[&p(&[0, 1, 0])] = -1.0;
        let round = t.permuted(&[2, 0, 1]).permuted(&[1, 2, 0]);
        assert_eq!(round, t);
    }

    #[test]
    fn get_out_of_range_is_none() {
        let t = Dense::zeros(vec![2, 2].into());
        assert_eq!(t.get(&p(&[2, 0])), None);
        assert_eq!(t.get(&p(&[1, 1])), Some(0.0));
    }
}
