//! Compressed Sparse Fiber (CSF) tensors.
//!
//! CSF is the concrete sparse format used by every data structure in
//! ISOSceles (paper Sec. II-B, Fig. 5). It generalizes CSR/CSC to arbitrary
//! rank: each rank stores a coordinate array plus segment offsets
//! delimiting, for each parent node, the range of its children in the next
//! rank's arrays. Only nonzero values are stored.
//!
//! CSF can be traversed efficiently only in rank order (a *concordant*
//! traversal); random access requires a per-rank binary search (a
//! *discordant* access). [`Fiber::find`] counts as discordant and is what a
//! hardware design must avoid on its hot path — the IS-OS dataflow is
//! constructed so that every traversal of activations, filters, and partial
//! results is concordant.

use crate::{Coord, Dense, Point, Shape};
use serde::{Deserialize, Serialize};

/// One rank of a CSF tensor.
///
/// `segs` has one entry per parent node plus one: the children of parent
/// `i` (a *fiber*) occupy `coords[segs[i]..segs[i+1]]`. For rank 0 the
/// single parent is the tensor root, so `segs == [0, n0]`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CsfRank {
    segs: Vec<u32>,
    coords: Vec<Coord>,
}

impl CsfRank {
    /// Segment offsets (one per parent node, plus a terminator).
    pub fn segs(&self) -> &[u32] {
        &self.segs
    }

    /// Coordinates of every node at this rank, fiber by fiber.
    pub fn coords(&self) -> &[Coord] {
        &self.coords
    }
}

/// A Compressed Sparse Fiber tensor of `f32` values.
///
/// Construct with [`Csf::from_entries`] (sorted or unsorted nonzeros) or
/// [`Csf::from_dense`]. Traverse with [`Csf::iter`] (concordant) or navigate
/// the fibertree with [`Csf::root`].
///
/// # Examples
///
/// ```
/// use isos_tensor::{Csf, Point};
/// let t = Csf::from_entries(
///     vec![2, 4].into(),
///     vec![
///         (Point::from_slice(&[0, 1]), 2.0),
///         (Point::from_slice(&[1, 3]), 5.0),
///     ],
/// );
/// assert_eq!(t.nnz(), 2);
/// let elems: Vec<_> = t.iter().collect();
/// assert_eq!(elems[1], (Point::from_slice(&[1, 3]), 5.0));
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Csf {
    shape: Shape,
    ranks: Vec<CsfRank>,
    vals: Vec<f32>,
}

impl Csf {
    /// Builds a CSF tensor from nonzero entries.
    ///
    /// Entries may be in any order; they are sorted concordantly. Duplicate
    /// points are accumulated (summed), matching how partial results merge.
    /// Entries whose value is exactly zero are dropped.
    ///
    /// # Panics
    ///
    /// Panics if any point is outside `shape` or has the wrong rank count.
    pub fn from_entries(shape: Shape, mut entries: Vec<(Point, f32)>) -> Self {
        for (p, _) in &entries {
            assert!(shape.contains(p), "entry {p} outside shape {shape:?}");
        }
        entries.sort_unstable_by_key(|(p, _)| *p);
        // Accumulate duplicates, drop zeros.
        let mut dedup: Vec<(Point, f32)> = Vec::with_capacity(entries.len());
        for (p, v) in entries {
            match dedup.last_mut() {
                Some((lp, lv)) if *lp == p => *lv += v,
                _ => dedup.push((p, v)),
            }
        }
        dedup.retain(|(_, v)| *v != 0.0);
        Self::from_sorted_unique(shape, dedup)
    }

    /// Builds a CSF tensor from entries that are already sorted and unique.
    ///
    /// This is the fast path used by streaming producers (e.g. the OS
    /// backend, which emits outputs in concordant order by construction).
    ///
    /// # Panics
    ///
    /// Panics if entries are not strictly increasing, contain zeros, or lie
    /// outside `shape`.
    #[allow(clippy::needless_range_loop)] // parallel arrays indexed by rank
    pub fn from_sorted_unique(shape: Shape, entries: Vec<(Point, f32)>) -> Self {
        let ndim = shape.ndim();
        // The innermost rank holds exactly one coordinate per entry; outer
        // ranks hold at most that many. Pre-sizing keeps the streaming
        // producers (backend, executors) from reallocating mid-build.
        let mut ranks: Vec<CsfRank> = (0..ndim)
            .map(|_| CsfRank {
                segs: vec![0],
                coords: Vec::with_capacity(entries.len()),
            })
            .collect();
        let mut vals = Vec::with_capacity(entries.len());
        let mut prev: Option<Point> = None;
        for (p, v) in entries {
            assert!(shape.contains(&p), "entry {p} outside shape {shape:?}");
            assert!(v != 0.0, "zero value at {p}");
            if let Some(q) = prev {
                assert!(q < p, "entries not strictly increasing at {p}");
            }
            // Find the first rank where this point diverges from the last.
            let first = prev.is_none();
            let diverge = match prev {
                None => 0,
                Some(q) => (0..ndim).find(|&d| q[d] != p[d]).expect("duplicate point"),
            };
            for d in diverge..ndim {
                ranks[d].coords.push(p[d]);
            }
            // Each new node at rank d-1 opens a fresh fiber at rank d; its
            // start is the child coordinate just pushed. The very first
            // entry's fibers all start at 0, already covered by the initial
            // segment array.
            if !first {
                for d in (diverge + 1)..ndim {
                    let start = ranks[d].coords.len() as u32 - 1;
                    ranks[d].segs.push(start);
                }
            }
            vals.push(v);
            prev = Some(p);
        }
        // Terminate segment arrays: rank d needs (#nodes at rank d-1) + 1
        // entries. An empty tensor leaves inner ranks with zero parents, in
        // which case the initial `[0]` already suffices.
        let mut parents = 1usize;
        for d in 0..ndim {
            let end = ranks[d].coords.len() as u32;
            if ranks[d].segs.len() < parents + 1 {
                ranks[d].segs.push(end);
            }
            parents = ranks[d].coords.len();
        }
        debug_assert!(Self::check_invariants(&shape, &ranks, &vals).is_ok());
        Self { shape, ranks, vals }
    }

    /// Builds a CSF tensor holding the nonzeros of a dense tensor.
    pub fn from_dense(dense: &Dense) -> Self {
        Self::from_sorted_unique(dense.shape().clone(), dense.iter_nonzero().collect())
    }

    /// Expands to a dense tensor.
    pub fn to_dense(&self) -> Dense {
        let mut out = Dense::zeros(self.shape.clone());
        for (p, v) in self.iter() {
            out[&p] = v;
        }
        out
    }

    /// An empty tensor of the given shape.
    pub fn empty(shape: Shape) -> Self {
        Self::from_sorted_unique(shape, Vec::new())
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of ranks.
    pub fn ndim(&self) -> usize {
        self.shape.ndim()
    }

    /// Number of stored (nonzero) values.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Fraction of elements that are nonzero, in `[0, 1]`.
    pub fn density(&self) -> f64 {
        self.nnz() as f64 / self.shape.volume() as f64
    }

    /// Fraction of elements that are zero, in `[0, 1]`.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.density()
    }

    /// The per-rank arrays (outermost first).
    pub fn ranks(&self) -> &[CsfRank] {
        &self.ranks
    }

    /// The stored values, aligned with the innermost rank's coordinates.
    pub fn values(&self) -> &[f32] {
        &self.vals
    }

    /// Footprint of this tensor in the paper's CSF encoding, in bytes.
    ///
    /// Each node at every rank stores a `(coordinate, offset)` tuple
    /// (Fig. 5); leaf nodes store `(coordinate, value)`. `coord_bytes` and
    /// `value_bytes` parameterize the precision (ISOSceles uses 8-bit
    /// values; coordinates and offsets are sized to the rank).
    pub fn compressed_bytes(&self, coord_bytes: usize, value_bytes: usize) -> u64 {
        let mut bytes = 0u64;
        let ndim = self.ndim();
        for (d, rank) in self.ranks.iter().enumerate() {
            let per_node = if d + 1 == ndim {
                coord_bytes + value_bytes
            } else {
                coord_bytes * 2 // coordinate + offset into the next rank
            };
            bytes += (rank.coords.len() * per_node) as u64;
        }
        bytes
    }

    /// The root fiber: the single fiber at rank 0.
    pub fn root(&self) -> Fiber<'_> {
        Fiber {
            csf: self,
            rank: 0,
            start: 0,
            end: self.ranks[0].coords.len(),
        }
    }

    /// Concordant traversal of all nonzeros, in lexicographic point order.
    pub fn iter(&self) -> Iter<'_> {
        Iter::new(self)
    }

    /// Returns a copy with ranks permuted (a sparse transpose).
    ///
    /// The result is re-sorted into the new rank order — the software
    /// equivalent of the merger-based transposes in the OS backend.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..self.ndim()`.
    pub fn permuted(&self, perm: &[usize]) -> Csf {
        let shape = self.shape.permuted(perm);
        let entries = self.iter().map(|(p, v)| (p.permuted(perm), v)).collect();
        Csf::from_entries(shape, entries)
    }

    fn check_invariants(shape: &Shape, ranks: &[CsfRank], vals: &[f32]) -> Result<(), String> {
        if ranks.len() != shape.ndim() {
            return Err("rank count mismatch".into());
        }
        let mut parents = 1usize;
        for (d, rank) in ranks.iter().enumerate() {
            if rank.segs.len() != parents + 1 {
                return Err(format!(
                    "rank {d}: segs len {} != parents+1 {}",
                    rank.segs.len(),
                    parents + 1
                ));
            }
            if rank.segs[0] != 0 || *rank.segs.last().unwrap() as usize != rank.coords.len() {
                return Err(format!("rank {d}: bad segment bounds"));
            }
            if rank.segs.windows(2).any(|w| w[0] > w[1]) {
                return Err(format!("rank {d}: non-monotonic segments"));
            }
            // Coordinates strictly increase within each fiber.
            for w in rank.segs.windows(2) {
                let fiber = &rank.coords[w[0] as usize..w[1] as usize];
                if fiber.windows(2).any(|c| c[0] >= c[1]) {
                    return Err(format!("rank {d}: unsorted fiber"));
                }
                if fiber.iter().any(|&c| c as usize >= shape[d]) {
                    return Err(format!("rank {d}: coordinate out of range"));
                }
            }
            parents = rank.coords.len();
        }
        if vals.len() != parents {
            return Err("values misaligned with leaf rank".into());
        }
        Ok(())
    }
}

/// A fiber: the set of sibling nodes under one parent at a given rank.
///
/// Leaf-rank fibers carry values ([`Fiber::iter_leaf`]); interior fibers
/// carry child fibers ([`Fiber::iter_children`]).
#[derive(Clone, Copy, Debug)]
pub struct Fiber<'a> {
    csf: &'a Csf,
    rank: usize,
    start: usize,
    end: usize,
}

impl<'a> Fiber<'a> {
    /// The rank this fiber lives at (0 = outermost).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of nodes in this fiber.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the fiber has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this fiber is at the innermost rank (its nodes carry values).
    pub fn is_leaf(&self) -> bool {
        self.rank + 1 == self.csf.ndim()
    }

    /// The coordinates of the nodes in this fiber.
    pub fn coords(&self) -> &'a [Coord] {
        &self.csf.ranks[self.rank].coords[self.start..self.end]
    }

    /// Iterates `(coordinate, child fiber)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if this is a leaf fiber; use [`Fiber::iter_leaf`] instead.
    pub fn iter_children(&self) -> impl Iterator<Item = (Coord, Fiber<'a>)> + 'a {
        assert!(!self.is_leaf(), "leaf fiber has no children");
        let csf = self.csf;
        let rank = self.rank;
        (self.start..self.end).map(move |i| {
            let coord = csf.ranks[rank].coords[i];
            let child = &csf.ranks[rank + 1];
            (
                coord,
                Fiber {
                    csf,
                    rank: rank + 1,
                    start: child.segs[i] as usize,
                    end: child.segs[i + 1] as usize,
                },
            )
        })
    }

    /// Iterates `(coordinate, value)` pairs of a leaf fiber.
    ///
    /// # Panics
    ///
    /// Panics if this is not a leaf fiber.
    pub fn iter_leaf(&self) -> impl Iterator<Item = (Coord, f32)> + 'a {
        assert!(self.is_leaf(), "interior fiber has no values");
        let csf = self.csf;
        let rank = self.rank;
        (self.start..self.end).map(move |i| (csf.ranks[rank].coords[i], csf.vals[i]))
    }

    /// Looks up the child fiber at `coord` by binary search.
    ///
    /// This is a *discordant* access (paper Sec. II-B): hardware pays a
    /// bisection, so callers on modeled hot paths should count it. Software
    /// callers that probe the same fiber many times should build a
    /// [`FiberIndex`] once and use [`Fiber::child`] instead.
    ///
    /// # Panics
    ///
    /// Panics if this is a leaf fiber.
    pub fn find(&self, coord: Coord) -> Option<Fiber<'a>> {
        assert!(!self.is_leaf(), "use find_value on leaf fibers");
        let coords = self.coords();
        let i = coords.binary_search(&coord).ok()? + self.start;
        let child = &self.csf.ranks[self.rank + 1];
        Some(Fiber {
            csf: self.csf,
            rank: self.rank + 1,
            start: child.segs[i] as usize,
            end: child.segs[i + 1] as usize,
        })
    }

    /// The child fiber under the node at position `i` within this fiber.
    ///
    /// Positions come from [`FiberIndex::position`] (or any enumeration of
    /// [`Fiber::coords`]); the returned fiber is identical to what
    /// [`Fiber::find`] would return for the coordinate at that position.
    ///
    /// # Panics
    ///
    /// Panics if this is a leaf fiber or `i >= self.len()`.
    pub fn child(&self, i: usize) -> Fiber<'a> {
        assert!(!self.is_leaf(), "leaf fiber has no children");
        assert!(i < self.len(), "child position {i} out of range");
        let child = &self.csf.ranks[self.rank + 1];
        Fiber {
            csf: self.csf,
            rank: self.rank + 1,
            start: child.segs[self.start + i] as usize,
            end: child.segs[self.start + i + 1] as usize,
        }
    }

    /// Builds a word-level index of this fiber's coordinate set.
    ///
    /// The index packs coordinate presence into `u64` words and stores a
    /// per-word popcount prefix, so repeated membership/position probes
    /// cost O(1) each instead of a binary search — the software analogue
    /// of a bitmask + prefix-sum lookup circuit. Building costs one pass
    /// over the fiber; use it wherever a hot loop calls [`Fiber::find`] on
    /// the same fiber per element (row fetches in SpGEMM, filter lookups
    /// per input nonzero, FC weight-row probes).
    pub fn index(&self) -> FiberIndex {
        let coords = self.coords();
        let extent = coords.last().map_or(0, |&c| c as usize + 1);
        let mut words = vec![0u64; extent.div_ceil(64)];
        for &c in coords {
            words[c as usize / 64] |= 1 << (c % 64);
        }
        let mut ranks = Vec::with_capacity(words.len());
        let mut rank = 0u32;
        for &w in &words {
            ranks.push(rank);
            rank += w.count_ones();
        }
        FiberIndex { words, ranks }
    }

    /// Looks up a value in a leaf fiber by binary search (discordant).
    ///
    /// # Panics
    ///
    /// Panics if this is not a leaf fiber.
    pub fn find_value(&self, coord: Coord) -> Option<f32> {
        assert!(self.is_leaf(), "use find on interior fibers");
        let coords = self.coords();
        let i = coords.binary_search(&coord).ok()? + self.start;
        Some(self.csf.vals[i])
    }

    /// Total number of leaf values beneath this fiber.
    pub fn nnz_below(&self) -> usize {
        if self.is_leaf() {
            return self.len();
        }
        // Spans are contiguous, so the subtree is delimited by the first
        // child's start and the last child's end at the leaf rank.
        let mut start = self.start;
        let mut end = self.end;
        for d in self.rank + 1..self.csf.ndim() {
            let segs = &self.csf.ranks[d].segs;
            start = segs[start] as usize;
            end = segs[end] as usize;
        }
        end - start
    }
}

/// A word-level coordinate-set index over one fiber (see [`Fiber::index`]).
///
/// Stores the fiber's coordinates as packed `u64` presence words plus a
/// per-word popcount prefix (`ranks[w]` = set bits in `words[..w]`), so a
/// coordinate's position within the fiber is one bit test, one mask, and
/// one `count_ones` — no per-coordinate scan, no bisection.
///
/// # Examples
///
/// ```
/// use isos_tensor::{Csf, Point};
/// let t = Csf::from_entries(
///     vec![8, 4].into(),
///     vec![
///         (Point::from_slice(&[2, 1]), 1.0),
///         (Point::from_slice(&[5, 0]), 2.0),
///     ],
/// );
/// let root = t.root();
/// let idx = root.index();
/// assert_eq!(idx.position(5), Some(1));
/// assert_eq!(idx.position(3), None);
/// assert_eq!(root.child(1).coords(), &[0]);
/// ```
#[derive(Clone, Debug)]
pub struct FiberIndex {
    words: Vec<u64>,
    ranks: Vec<u32>,
}

impl FiberIndex {
    /// The position of `coord` within the indexed fiber, or `None` if the
    /// fiber has no node there. Feed the position to [`Fiber::child`].
    pub fn position(&self, coord: Coord) -> Option<usize> {
        let w = coord as usize / 64;
        let word = *self.words.get(w)?;
        let bit = 1u64 << (coord % 64);
        if word & bit == 0 {
            return None;
        }
        Some(self.ranks[w] as usize + (word & (bit - 1)).count_ones() as usize)
    }

    /// Whether the indexed fiber has a node at `coord`.
    pub fn contains(&self, coord: Coord) -> bool {
        self.words
            .get(coord as usize / 64)
            .is_some_and(|w| w & (1 << (coord % 64)) != 0)
    }
}

/// Concordant iterator over a CSF tensor's nonzeros.
///
/// Produced by [`Csf::iter`]; yields `(Point, f32)` in strictly increasing
/// point order.
#[derive(Clone, Debug)]
pub struct Iter<'a> {
    csf: &'a Csf,
    /// Per-rank cursor into the rank's coords array; `pos[d]` is the next
    /// node to visit at rank d. `None` once exhausted.
    pos: usize,
    stack: Vec<(usize, usize)>, // (index at rank d, fiber end at rank d)
}

impl<'a> Iter<'a> {
    fn new(csf: &'a Csf) -> Self {
        Self {
            csf,
            pos: 0,
            stack: Vec::new(),
        }
    }
}

impl Iterator for Iter<'_> {
    type Item = (Point, f32);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.csf.vals.len() {
            return None;
        }
        let i = self.pos;
        self.pos += 1;
        // Reconstruct the full point for leaf index i by walking parents.
        // Parent of leaf node i at rank d is found via segs upper bound.
        // To keep iteration O(1) amortized we maintain a stack of current
        // fiber positions; rebuild lazily when a fiber is exhausted.
        let ndim = self.csf.ndim();
        if self.stack.is_empty() {
            // Initialize: descend to the leaf containing index 0.
            let mut idx = vec![0usize; ndim];
            let mut node = 0usize;
            for d in 0..ndim {
                if d == 0 {
                    idx[0] = 0;
                    node = 0;
                } else {
                    node = self.csf.ranks[d].segs[node] as usize;
                    idx[d] = node;
                }
            }
            self.stack = idx.iter().map(|&j| (j, 0)).collect();
            // ends computed below on demand
            for d in 0..ndim {
                let parent = if d == 0 { 0 } else { self.stack[d - 1].0 };
                self.stack[d].1 = self.csf.ranks[d].segs[parent + 1] as usize;
            }
        } else {
            // Advance leaf; on overflow, advance parents.
            let mut d = ndim - 1;
            loop {
                self.stack[d].0 += 1;
                if self.stack[d].0 < self.stack[d].1 {
                    break;
                }
                debug_assert!(d > 0, "iterator overran tensor");
                d -= 1;
            }
            // Re-descend to the first child under the advanced node.
            for dd in d + 1..ndim {
                let parent = self.stack[dd - 1].0;
                self.stack[dd].0 = self.csf.ranks[dd].segs[parent] as usize;
                self.stack[dd].1 = self.csf.ranks[dd].segs[parent + 1] as usize;
            }
        }
        let mut point = Point::from_slice(&[]);
        for d in 0..ndim {
            point = point.pushed(self.csf.ranks[d].coords[self.stack[d].0]);
        }
        debug_assert_eq!(self.stack[ndim - 1].0, i);
        Some((point, self.csf.vals[i]))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.csf.vals.len() - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(c: &[Coord]) -> Point {
        Point::from_slice(c)
    }

    fn sample_3d() -> Csf {
        // The sparse filter from paper Fig. 5, flattened to 3 ranks [C,R,K]
        // for brevity: F[1,2,4], F[1,2,7], F[1,4,0], F[3,0,2].
        Csf::from_entries(
            vec![4, 5, 8].into(),
            vec![
                (p(&[3, 0, 2]), 4.0),
                (p(&[1, 2, 4]), 1.0),
                (p(&[1, 4, 0]), 3.0),
                (p(&[1, 2, 7]), 2.0),
            ],
        )
    }

    #[test]
    fn from_entries_sorts_and_builds_segments() {
        let t = sample_3d();
        assert_eq!(t.nnz(), 4);
        assert_eq!(t.ranks()[0].coords(), &[1, 3]);
        assert_eq!(t.ranks()[1].coords(), &[2, 4, 0]);
        assert_eq!(t.ranks()[1].segs(), &[0, 2, 3]);
        assert_eq!(t.ranks()[2].coords(), &[4, 7, 0, 2]);
        assert_eq!(t.ranks()[2].segs(), &[0, 2, 3, 4]);
        assert_eq!(t.values(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn iter_is_concordant() {
        let t = sample_3d();
        let pts: Vec<Point> = t.iter().map(|(pt, _)| pt).collect();
        assert_eq!(
            pts,
            vec![p(&[1, 2, 4]), p(&[1, 2, 7]), p(&[1, 4, 0]), p(&[3, 0, 2])]
        );
    }

    #[test]
    fn duplicates_accumulate() {
        let t = Csf::from_entries(
            vec![2, 2].into(),
            vec![(p(&[0, 1]), 1.0), (p(&[0, 1]), 2.5)],
        );
        assert_eq!(t.nnz(), 1);
        assert_eq!(t.values(), &[3.5]);
    }

    #[test]
    fn zeros_are_dropped() {
        let t = Csf::from_entries(
            vec![2, 2].into(),
            vec![
                (p(&[0, 0]), 0.0),
                (p(&[1, 1]), 1.0),
                (p(&[0, 1]), 2.0),
                (p(&[0, 1]), -2.0),
            ],
        );
        assert_eq!(t.nnz(), 1);
        assert_eq!(t.iter().next().unwrap().0, p(&[1, 1]));
    }

    #[test]
    fn fiber_navigation_matches_paper_example() {
        let t = sample_3d();
        let root = t.root();
        assert_eq!(root.coords(), &[1, 3]);
        let f1 = root.find(1).expect("channel 1 present");
        assert_eq!(f1.coords(), &[2, 4]);
        assert!(root.find(2).is_none(), "channel 2 is empty");
        let f12 = f1.find(2).unwrap();
        assert!(f12.is_leaf());
        assert_eq!(f12.find_value(7), Some(2.0));
        assert_eq!(f12.find_value(5), None);
        assert_eq!(f1.nnz_below(), 3);
        assert_eq!(root.find(3).unwrap().nnz_below(), 1);
    }

    #[test]
    fn dense_roundtrip() {
        let t = sample_3d();
        let d = t.to_dense();
        let t2 = Csf::from_dense(&d);
        assert_eq!(t, t2);
        assert_eq!(d.nnz(), 4);
    }

    #[test]
    fn permuted_transposes() {
        let t = sample_3d();
        let tt = t.permuted(&[2, 0, 1]);
        assert_eq!(tt.shape().dims(), &[8, 4, 5]);
        assert_eq!(tt.to_dense().get(&p(&[4, 1, 2])), Some(1.0));
        // Double permute restores.
        assert_eq!(tt.permuted(&[1, 2, 0]), t);
    }

    #[test]
    fn compressed_bytes_counts_tuples() {
        let t = sample_3d();
        // Ranks hold 2 + 3 + 4 nodes; interior nodes cost 2*coord_bytes,
        // leaves cost coord_bytes + value_bytes.
        let bytes = t.compressed_bytes(2, 1);
        assert_eq!(bytes, (2 + 3) as u64 * 4 + 4 * 3);
    }

    #[test]
    fn empty_tensor_iterates_nothing() {
        let t = Csf::empty(vec![3, 3].into());
        assert_eq!(t.nnz(), 0);
        assert_eq!(t.iter().count(), 0);
        assert!(t.root().is_empty());
    }

    #[test]
    fn single_rank_tensor() {
        let t = Csf::from_entries(vec![10].into(), vec![(p(&[7]), 1.0), (p(&[2]), 2.0)]);
        assert!(t.root().is_leaf());
        assert_eq!(t.root().find_value(7), Some(1.0));
        let elems: Vec<_> = t.iter().collect();
        assert_eq!(elems, vec![(p(&[2]), 2.0), (p(&[7]), 1.0)]);
    }

    #[test]
    #[should_panic(expected = "outside shape")]
    fn out_of_shape_entry_panics() {
        let _ = Csf::from_entries(vec![2, 2].into(), vec![(p(&[2, 0]), 1.0)]);
    }

    #[test]
    fn fiber_index_agrees_with_find() {
        let t = sample_3d();
        let root = t.root();
        let idx = root.index();
        for c in 0..8u32 {
            match idx.position(c) {
                Some(i) => {
                    let via_index = root.child(i);
                    let via_find = root.find(c).expect("index says present");
                    assert_eq!(via_index.coords(), via_find.coords(), "coord {c}");
                    assert!(idx.contains(c));
                }
                None => {
                    assert!(root.find(c).is_none(), "coord {c}");
                    assert!(!idx.contains(c));
                }
            }
        }
    }

    #[test]
    fn fiber_index_spans_word_boundaries() {
        let t = Csf::from_entries(
            vec![200, 2].into(),
            vec![
                (p(&[0, 0]), 1.0),
                (p(&[63, 1]), 2.0),
                (p(&[64, 0]), 3.0),
                (p(&[130, 1]), 4.0),
            ],
        );
        let root = t.root();
        let idx = root.index();
        assert_eq!(idx.position(0), Some(0));
        assert_eq!(idx.position(63), Some(1));
        assert_eq!(idx.position(64), Some(2));
        assert_eq!(idx.position(130), Some(3));
        assert_eq!(idx.position(131), None);
        assert_eq!(idx.position(199), None, "past last coord is absent");
        assert_eq!(root.child(3).iter_leaf().next(), Some((1, 4.0)));
    }

    #[test]
    fn empty_fiber_index_has_no_positions() {
        let t = Csf::empty(vec![4, 4].into());
        let idx = t.root().index();
        assert_eq!(idx.position(0), None);
        assert!(!idx.contains(3));
    }
}
