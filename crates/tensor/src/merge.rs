//! Hardware-style streaming mergers.
//!
//! The OS backend of ISOSceles transposes and serializes sparse partial
//! results with k-way mergers (paper Sec. IV-A): low-radix *R-mergers*
//! implemented as combinational comparator trees, and radix-256 *K-mergers*
//! implemented as pipelined min-heaps. Both consume `k` streams sorted by
//! key and emit one sorted stream at one element per cycle.
//!
//! This module implements both as iterator adapters with cost accounting
//! ([`MergerStats`]), so the architecture model can charge cycles and the
//! functional dataflow can reuse the exact same structures.
//!
//! Both mergers share one software engine: a *loser tree* (the private
//! `LoserTree`). Where a naive tournament replays the whole bracket (O(k) per
//! element), a loser tree stores, at each internal node, the contender that
//! *lost* there; the overall winner sits at the root. Emitting the winner
//! then only requires replaying its root-to-leaf path against the stored
//! losers — `ceil(log2(k))` comparisons — which matches the comparator
//! cost the hardware model already charges per element. On top of that the
//! tree caches the *challenger* (the best loser on the winner's path):
//! while one input feeds a sorted run that keeps beating the challenger,
//! consecutive emissions skip the replay altogether (*batched leaf
//! replay*). The emitted order and the charged [`MergerStats`] are
//! identical either way; only the software cost per element drops.

use std::cmp::Ordering;

/// Cost counters for a merger.
///
/// `cycles` models the throughput-1 output port: one element emitted per
/// cycle. `comparisons` counts comparator activations (energy proxy).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergerStats {
    /// Elements emitted (equals cycles for a throughput-1 merger).
    pub emitted: u64,
    /// Key comparisons performed.
    pub comparisons: u64,
}

/// Comparator levels charged per emission for a radix-`k` merger:
/// `ceil(log2(max(k, 2)))`.
///
/// This is the depth of the comparator tree the hardware pays per emitted
/// element, so a merger that emits `e` elements always charges exactly
/// `e * comparator_levels(k)` comparisons — regardless of how the software
/// engine shortcuts the replay. Exported so analytic rewrites (e.g. the
/// scratch-accumulator SpGEMM and backend paths) can charge the identical
/// cost without instantiating a merger.
pub fn comparator_levels(radix: usize) -> u32 {
    (radix.max(2) as u32).next_power_of_two().trailing_zeros()
}

/// The shared k-way merge engine: a loser tree over `width` virtual leaves
/// (`width` = radix rounded up to a power of two, min 2).
///
/// Layout: leaf `l` occupies tree position `width + l`; internal node `n`
/// (for `1 <= n < width`) stores the leaf index that lost the match at that
/// node, and `nodes[0]` holds the overall winner. Exhausted (or padding)
/// leaves hold `None`, which compares greater than every real element, so
/// they sink to the losers and never win while data remains. Ties break
/// toward the lower leaf index, making the merge stable.
#[derive(Debug)]
struct LoserTree<K, I>
where
    I: Iterator<Item = (K, f32)>,
{
    inputs: Vec<I>,
    /// One head per virtual leaf; leaves `>= inputs.len()` are permanent
    /// `None` padding and are never refilled.
    heads: Vec<Option<(K, f32)>>,
    /// `nodes[0]` = winning leaf; `nodes[1..width]` = loser leaf per node.
    nodes: Vec<u32>,
    width: usize,
    /// The runner-up: the best (under [`LoserTree::less`]) loser on the
    /// current winner's root-to-leaf path. Because each loser on that path
    /// is the best element of the opposite subtree at its node, their
    /// minimum is the best non-winner overall. While the winner's refilled
    /// head still beats this challenger, consecutive pops come from the
    /// same leaf and skip the path replay entirely — *batched leaf
    /// replay*, which makes long sorted runs from one input cost O(1) per
    /// element instead of O(log k).
    challenger: u32,
}

impl<K, I> LoserTree<K, I>
where
    K: Ord + Copy,
    I: Iterator<Item = (K, f32)>,
{
    fn new(mut inputs: Vec<I>) -> Self {
        assert!(!inputs.is_empty(), "merger needs at least one input");
        let width = inputs.len().next_power_of_two().max(2);
        let mut heads: Vec<Option<(K, f32)>> = inputs.iter_mut().map(Iterator::next).collect();
        heads.resize_with(width, || None);
        let mut tree = Self {
            inputs,
            heads,
            nodes: vec![0; width],
            width,
            challenger: 0,
        };
        tree.build();
        tree.recompute_challenger();
        tree
    }

    /// `heads[a] < heads[b]` under the merge order: keys ascending, `None`
    /// as +infinity, ties toward the lower leaf index (stability).
    fn less(&self, a: usize, b: usize) -> bool {
        match (&self.heads[a], &self.heads[b]) {
            (Some((ka, _)), Some((kb, _))) => match ka.cmp(kb) {
                Ordering::Less => true,
                Ordering::Greater => false,
                Ordering::Equal => a < b,
            },
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => a < b,
        }
    }

    /// Plays every match bottom-up, recording losers; O(k).
    fn build(&mut self) {
        let width = self.width;
        // winners[n] = winning leaf of the subtree rooted at tree position n.
        let mut winners = vec![0u32; 2 * width];
        for (l, w) in winners[width..].iter_mut().enumerate() {
            *w = l as u32;
        }
        for n in (1..width).rev() {
            let a = winners[2 * n];
            let b = winners[2 * n + 1];
            let (win, lose) = if self.less(a as usize, b as usize) {
                (a, b)
            } else {
                (b, a)
            };
            winners[n] = win;
            self.nodes[n] = lose;
        }
        self.nodes[0] = winners[1];
    }

    /// Recomputes the challenger by scanning the losers on the current
    /// winner's root-to-leaf path; O(log k).
    fn recompute_challenger(&mut self) {
        let w = self.nodes[0] as usize;
        let mut best: Option<usize> = None;
        let mut n = (self.width + w) >> 1;
        while n >= 1 {
            let l = self.nodes[n] as usize;
            best = Some(match best {
                Some(b) if self.less(b, l) => b,
                _ => l,
            });
            n >>= 1;
        }
        // width >= 2, so the path visits at least the root match.
        self.challenger = best.expect("winner path has at least one match") as u32;
    }

    /// Emits the current winner, refills its leaf, and restores the
    /// winner. When the refilled head still beats the cached challenger —
    /// the common case while one input holds a sorted run — the tree is
    /// untouched and the pop is O(1); otherwise the winner's path is
    /// replayed in O(log k).
    fn pop(&mut self) -> Option<(K, f32)> {
        let w = self.nodes[0] as usize;
        let item = self.heads[w].take()?;
        if w < self.inputs.len() {
            self.heads[w] = self.inputs[w].next();
        }
        // `less` is a strict total order, so beating the best non-winner
        // means beating every non-winner: the winner and the path losers
        // (hence the challenger) are all unchanged.
        if self.less(w, self.challenger as usize) {
            return Some(item);
        }
        let mut cur = w as u32;
        let mut n = (self.width + w) >> 1;
        while n >= 1 {
            let loser = self.nodes[n];
            if self.less(loser as usize, cur as usize) {
                self.nodes[n] = cur;
                cur = loser;
            }
            n >>= 1;
        }
        self.nodes[0] = cur;
        self.recompute_challenger();
        Some(item)
    }

    fn radix(&self) -> usize {
        self.inputs.len()
    }
}

/// A k-way merger built as a tournament (comparator) tree.
///
/// Models the low-radix R-mergers: the tree is combinational, so each
/// emitted element costs `ceil(log2(k))` comparisons and one cycle.
/// Ties between inputs break toward the lower input index, making the merge
/// stable. Internally backed by a loser tree, so the software cost per
/// element matches the charged comparator cost (O(log k), not O(k)).
///
/// # Examples
///
/// ```
/// use isos_tensor::merge::TournamentMerger;
/// let a = vec![(1u32, 1.0f32), (4, 4.0)];
/// let b = vec![(2u32, 2.0f32), (3, 3.0)];
/// let merged: Vec<_> =
///     TournamentMerger::new(vec![a.into_iter(), b.into_iter()]).collect();
/// assert_eq!(merged, vec![(1, 1.0), (2, 2.0), (3, 3.0), (4, 4.0)]);
/// ```
#[derive(Debug)]
pub struct TournamentMerger<K, I>
where
    I: Iterator<Item = (K, f32)>,
{
    tree: LoserTree<K, I>,
    stats: MergerStats,
    levels: u32,
}

impl<K, I> TournamentMerger<K, I>
where
    K: Ord + Copy,
    I: Iterator<Item = (K, f32)>,
{
    /// Creates a merger over `inputs`, each of which must be sorted by key.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn new(inputs: Vec<I>) -> Self {
        let levels = comparator_levels(inputs.len());
        Self {
            tree: LoserTree::new(inputs),
            stats: MergerStats::default(),
            levels,
        }
    }

    /// The merger's cost counters so far.
    pub fn stats(&self) -> MergerStats {
        self.stats
    }

    /// The radix (number of input streams).
    pub fn radix(&self) -> usize {
        self.tree.radix()
    }
}

impl<K, I> Iterator for TournamentMerger<K, I>
where
    K: Ord + Copy,
    I: Iterator<Item = (K, f32)>,
{
    type Item = (K, f32);

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.tree.pop()?;
        self.stats.comparisons += self.levels as u64;
        self.stats.emitted += 1;
        Some(item)
    }
}

/// A k-way merger built as a pipelined min-heap.
///
/// Models the radix-256 K-mergers [Bhagwan & Lin]: each emitted element
/// costs one cycle (the heap is pipelined) and `ceil(log2(k))` comparisons
/// along the sift path. The software implementation shares the loser-tree
/// engine with [`TournamentMerger`] — a loser tree is exactly a k-way merge
/// heap with a fixed leaf per input, and it avoids the push/pop churn of a
/// binary heap — while the emitted order and the cost accounting are
/// unchanged.
///
/// # Examples
///
/// ```
/// use isos_tensor::merge::HeapMerger;
/// let streams: Vec<Vec<(u32, f32)>> =
///     (0..8).map(|i| vec![(i, i as f32), (i + 8, 0.0)]).collect();
/// let merged: Vec<u32> = HeapMerger::new(
///     streams.into_iter().map(Vec::into_iter).collect::<Vec<_>>(),
/// )
/// .map(|(k, _)| k)
/// .collect();
/// assert_eq!(merged, (0..16).collect::<Vec<u32>>());
/// ```
#[derive(Debug)]
pub struct HeapMerger<K, I>
where
    I: Iterator<Item = (K, f32)>,
{
    tree: LoserTree<K, I>,
    stats: MergerStats,
    levels: u32,
}

impl<K, I> HeapMerger<K, I>
where
    K: Ord + Copy,
    I: Iterator<Item = (K, f32)>,
{
    /// Creates a merger over `inputs`, each of which must be sorted by key.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn new(inputs: Vec<I>) -> Self {
        let levels = comparator_levels(inputs.len());
        Self {
            tree: LoserTree::new(inputs),
            stats: MergerStats::default(),
            levels,
        }
    }

    /// The merger's cost counters so far.
    pub fn stats(&self) -> MergerStats {
        self.stats
    }

    /// The radix (number of input streams).
    pub fn radix(&self) -> usize {
        self.tree.radix()
    }
}

impl<K, I> Iterator for HeapMerger<K, I>
where
    K: Ord + Copy,
    I: Iterator<Item = (K, f32)>,
{
    type Item = (K, f32);

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.tree.pop()?;
        self.stats.emitted += 1;
        self.stats.comparisons += self.levels as u64;
        Some(item)
    }
}

/// Sums consecutive items with equal keys in a sorted stream.
///
/// This is the *reducer* that follows the R-merger in each backend lane: it
/// completes the convolution by accumulating partial results that share an
/// output coordinate.
///
/// # Examples
///
/// ```
/// use isos_tensor::merge::reduce_sorted;
/// let s = vec![(2u32, 1.0f32), (2, 2.0), (5, 4.0)];
/// let r: Vec<_> = reduce_sorted(s.into_iter()).collect();
/// assert_eq!(r, vec![(2, 3.0), (5, 4.0)]);
/// ```
pub fn reduce_sorted<K, I>(input: I) -> ReduceSorted<K, I>
where
    K: Ord + Copy,
    I: Iterator<Item = (K, f32)>,
{
    ReduceSorted {
        input,
        pending: None,
    }
}

/// Iterator returned by [`reduce_sorted`].
#[derive(Debug)]
pub struct ReduceSorted<K, I>
where
    I: Iterator<Item = (K, f32)>,
{
    input: I,
    pending: Option<(K, f32)>,
}

impl<K, I> ReduceSorted<K, I>
where
    I: Iterator<Item = (K, f32)>,
{
    /// Consumes the reducer and returns the underlying stream (e.g. to
    /// read a merger's [`MergerStats`] after draining).
    pub fn into_inner(self) -> I {
        self.input
    }
}

impl<K, I> Iterator for ReduceSorted<K, I>
where
    K: Ord + Copy,
    I: Iterator<Item = (K, f32)>,
{
    type Item = (K, f32);

    fn next(&mut self) -> Option<Self::Item> {
        let (key, mut acc) = self.pending.take().or_else(|| self.input.next())?;
        loop {
            match self.input.next() {
                Some((k, v)) if k == key => acc += v,
                Some((k, v)) => {
                    debug_assert!(k > key, "reduce_sorted input not sorted");
                    self.pending = Some((k, v));
                    return Some((key, acc));
                }
                None => return Some((key, acc)),
            }
        }
    }
}

/// Merges and reduces in one pass: the R-merger + reducer pair of a backend
/// lane.
pub fn merge_reduce<K, I>(inputs: Vec<I>) -> ReduceSorted<K, TournamentMerger<K, I>>
where
    K: Ord + Copy,
    I: Iterator<Item = (K, f32)>,
{
    reduce_sorted(TournamentMerger::new(inputs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn streams() -> Vec<std::vec::IntoIter<(u32, f32)>> {
        vec![
            vec![(0u32, 1.0f32), (3, 3.0), (9, 9.0)].into_iter(),
            vec![(1, 1.5), (3, 0.5)].into_iter(),
            vec![].into_iter(),
            vec![(2, 2.0)].into_iter(),
        ]
    }

    #[test]
    fn tournament_merges_sorted() {
        let out: Vec<u32> = TournamentMerger::new(streams()).map(|(k, _)| k).collect();
        assert_eq!(out, vec![0, 1, 2, 3, 3, 9]);
    }

    #[test]
    fn heap_merges_sorted() {
        let out: Vec<u32> = HeapMerger::new(streams()).map(|(k, _)| k).collect();
        assert_eq!(out, vec![0, 1, 2, 3, 3, 9]);
    }

    #[test]
    fn mergers_agree() {
        let a: Vec<_> = TournamentMerger::new(streams()).collect();
        let b: Vec<_> = HeapMerger::new(streams()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn tournament_stats_count_emissions_and_comparisons() {
        let mut m = TournamentMerger::new(streams());
        assert_eq!(m.radix(), 4);
        while m.next().is_some() {}
        let stats = m.stats();
        assert_eq!(stats.emitted, 6);
        // radix 4 -> 2 comparator levels per emission.
        assert_eq!(stats.comparisons, 12);
    }

    #[test]
    fn heap_radix_256_emits_everything() {
        let streams: Vec<Vec<(u32, f32)>> = (0..256u32)
            .map(|i| (0..4).map(|j| (j * 256 + i, 1.0f32)).collect())
            .collect();
        let mut m = HeapMerger::new(streams.into_iter().map(Vec::into_iter).collect::<Vec<_>>());
        assert_eq!(m.radix(), 256);
        let out: Vec<u32> = m.by_ref().map(|(k, _)| k).collect();
        assert_eq!(out.len(), 1024);
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(m.stats().emitted, 1024);
    }

    #[test]
    fn reduce_sums_equal_keys() {
        let out: Vec<_> = merge_reduce(streams()).collect();
        assert_eq!(out, vec![(0, 1.0), (1, 1.5), (2, 2.0), (3, 3.5), (9, 9.0)]);
    }

    #[test]
    fn reduce_of_empty_is_empty() {
        let empty: Vec<(u32, f32)> = Vec::new();
        assert_eq!(reduce_sorted(empty.into_iter()).count(), 0);
    }

    #[test]
    fn merge_with_point_keys() {
        use crate::Point;
        let a = vec![(Point::from_slice(&[0, 2]), 1.0f32)];
        let b = vec![(Point::from_slice(&[0, 1]), 2.0f32)];
        let out: Vec<_> = TournamentMerger::new(vec![a.into_iter(), b.into_iter()]).collect();
        assert_eq!(out[0].0, Point::from_slice(&[0, 1]));
        assert_eq!(out[1].0, Point::from_slice(&[0, 2]));
    }

    #[test]
    fn single_input_merger_is_identity() {
        let s = vec![(1u32, 1.0f32), (2, 2.0)];
        let out: Vec<_> = TournamentMerger::new(vec![s.clone().into_iter()]).collect();
        assert_eq!(out, s);
    }

    #[test]
    fn non_power_of_two_radix_merges_stably() {
        // Radix 3 pads to width 4; values tag the source stream so tie
        // order (lower input index first) is observable.
        let a = vec![(1u32, 10.0f32), (5, 10.0)];
        let b = vec![(1u32, 20.0f32), (2, 20.0)];
        let c = vec![(1u32, 30.0f32), (5, 30.0)];
        let mk = || {
            vec![
                a.clone().into_iter(),
                b.clone().into_iter(),
                c.clone().into_iter(),
            ]
        };
        let expect = vec![
            (1, 10.0),
            (1, 20.0),
            (1, 30.0),
            (2, 20.0),
            (5, 10.0),
            (5, 30.0),
        ];
        let t: Vec<_> = TournamentMerger::new(mk()).collect();
        let h: Vec<_> = HeapMerger::new(mk()).collect();
        assert_eq!(t, expect);
        assert_eq!(h, expect);
    }

    #[test]
    fn all_empty_inputs_emit_nothing() {
        let streams: Vec<std::vec::IntoIter<(u32, f32)>> =
            (0..5).map(|_| Vec::new().into_iter()).collect();
        let mut m = TournamentMerger::new(streams);
        assert_eq!(m.next(), None);
        assert_eq!(m.stats().emitted, 0);
        assert_eq!(m.stats().comparisons, 0);
    }
}
