//! Coordinates, points, and shapes for sparse and dense tensors.
//!
//! A tensor element is addressed by a [`Point`]: one [`Coord`] per rank, in
//! rank order. Rank order is significant throughout this crate — CSF tensors
//! ([`crate::Csf`]) can only be traversed concordantly, i.e. in the
//! lexicographic order of their points.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A coordinate along a single tensor rank.
///
/// 32 bits comfortably covers every dimension in the CNNs the ISOSceles
/// paper evaluates (the largest rank is an FC layer's 4096-wide channel
/// dimension).
pub type Coord = u32;

/// Maximum number of ranks supported by [`Point`] without allocation.
///
/// The deepest tensor in the IS-OS dataflow is the 4-D filter `[C, R, K, S]`
/// and the 4-D partial-result tensor `[H, R, K, Q]`; 6 leaves headroom for
/// batched variants.
pub const MAX_RANKS: usize = 6;

/// A fixed-capacity point: one coordinate per rank.
///
/// Points order lexicographically in rank order, which is exactly the
/// concordant traversal order of a CSF tensor with the same rank order.
///
/// # Examples
///
/// ```
/// use isos_tensor::Point;
/// let a = Point::from_slice(&[0, 3, 1]);
/// let b = Point::from_slice(&[0, 3, 2]);
/// assert!(a < b);
/// assert_eq!(a[1], 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Point {
    len: u8,
    coords: [Coord; MAX_RANKS],
}

impl Point {
    /// Creates a point from a slice of coordinates, one per rank.
    ///
    /// # Panics
    ///
    /// Panics if `coords.len() > MAX_RANKS`.
    pub fn from_slice(coords: &[Coord]) -> Self {
        assert!(
            coords.len() <= MAX_RANKS,
            "point has {} ranks, max is {MAX_RANKS}",
            coords.len()
        );
        let mut buf = [0; MAX_RANKS];
        buf[..coords.len()].copy_from_slice(coords);
        Self {
            len: coords.len() as u8,
            coords: buf,
        }
    }

    /// Number of ranks.
    pub fn ndim(&self) -> usize {
        self.len as usize
    }

    /// The coordinates as a slice, outermost rank first.
    pub fn as_slice(&self) -> &[Coord] {
        &self.coords[..self.len as usize]
    }

    /// Returns a new point with `coord` appended as a new innermost rank.
    ///
    /// # Panics
    ///
    /// Panics if the point already has [`MAX_RANKS`] ranks.
    pub fn pushed(&self, coord: Coord) -> Self {
        assert!((self.len as usize) < MAX_RANKS, "point is full");
        let mut out = *self;
        out.coords[out.len as usize] = coord;
        out.len += 1;
        out
    }

    /// Returns a new point with ranks permuted so that output rank `i` is
    /// input rank `perm[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `perm.len() != self.ndim()` or `perm` contains an index out
    /// of range.
    pub fn permuted(&self, perm: &[usize]) -> Self {
        assert_eq!(perm.len(), self.ndim(), "permutation rank mismatch");
        let mut out = [0; MAX_RANKS];
        for (i, &p) in perm.iter().enumerate() {
            out[i] = self.coords[p];
        }
        Self {
            len: self.len,
            coords: out,
        }
    }
}

impl std::ops::Index<usize> for Point {
    type Output = Coord;

    fn index(&self, rank: usize) -> &Coord {
        &self.as_slice()[rank]
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point{:?}", self.as_slice())
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_slice())
    }
}

impl From<&[Coord]> for Point {
    fn from(coords: &[Coord]) -> Self {
        Self::from_slice(coords)
    }
}

/// The extent of each rank of a tensor, outermost first.
///
/// # Examples
///
/// ```
/// use isos_tensor::Shape;
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.volume(), 24);
/// assert_eq!(s[1], 3);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from per-rank extents.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero or if there are more than [`MAX_RANKS`]
    /// ranks.
    pub fn new(dims: Vec<usize>) -> Self {
        assert!(
            !dims.is_empty() && dims.len() <= MAX_RANKS,
            "bad rank count"
        );
        assert!(dims.iter().all(|&d| d > 0), "zero-extent rank");
        Self(dims)
    }

    /// Number of ranks.
    pub fn ndim(&self) -> usize {
        self.0.len()
    }

    /// Extents as a slice, outermost rank first.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Total number of elements in the dense tensor of this shape.
    pub fn volume(&self) -> usize {
        self.0.iter().product()
    }

    /// Whether `point` addresses an element inside this shape.
    pub fn contains(&self, point: &Point) -> bool {
        point.ndim() == self.ndim()
            && point
                .as_slice()
                .iter()
                .zip(&self.0)
                .all(|(&c, &d)| (c as usize) < d)
    }

    /// The linear (row-major) offset of `point` in a dense tensor of this
    /// shape.
    ///
    /// # Panics
    ///
    /// Panics if `point` is out of range.
    pub fn linear_index(&self, point: &Point) -> usize {
        assert!(self.contains(point), "{point} out of shape {self:?}");
        let mut idx = 0;
        for (&c, &d) in point.as_slice().iter().zip(&self.0) {
            idx = idx * d + c as usize;
        }
        idx
    }

    /// Returns the shape with ranks permuted so that output rank `i` is
    /// input rank `perm[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..self.ndim()`.
    pub fn permuted(&self, perm: &[usize]) -> Self {
        assert_eq!(perm.len(), self.ndim(), "permutation rank mismatch");
        let mut seen = [false; MAX_RANKS];
        for &p in perm {
            assert!(p < self.ndim() && !seen[p], "invalid permutation");
            seen[p] = true;
        }
        Shape::new(perm.iter().map(|&p| self.0[p]).collect())
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl std::ops::Index<usize> for Shape {
    type Output = usize;

    fn index(&self, rank: usize) -> &usize {
        &self.0[rank]
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_ordering_is_lexicographic() {
        let a = Point::from_slice(&[1, 2, 3]);
        let b = Point::from_slice(&[1, 2, 4]);
        let c = Point::from_slice(&[1, 3, 0]);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn point_pushed_appends_innermost() {
        let p = Point::from_slice(&[5]).pushed(7).pushed(1);
        assert_eq!(p.as_slice(), &[5, 7, 1]);
    }

    #[test]
    fn point_permuted_reorders_ranks() {
        let p = Point::from_slice(&[10, 20, 30, 40]);
        // [H, R, K, Q] -> [K, Q, H, R] (the IS-OS tmp1 transpose).
        let t = p.permuted(&[2, 3, 0, 1]);
        assert_eq!(t.as_slice(), &[30, 40, 10, 20]);
    }

    #[test]
    #[should_panic(expected = "point is full")]
    fn point_pushed_past_capacity_panics() {
        let mut p = Point::from_slice(&[0; MAX_RANKS]);
        p = p.pushed(1);
        let _ = p;
    }

    #[test]
    fn shape_linear_index_row_major() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.linear_index(&Point::from_slice(&[0, 0, 0])), 0);
        assert_eq!(s.linear_index(&Point::from_slice(&[0, 0, 3])), 3);
        assert_eq!(s.linear_index(&Point::from_slice(&[0, 1, 0])), 4);
        assert_eq!(s.linear_index(&Point::from_slice(&[1, 2, 3])), 23);
    }

    #[test]
    fn shape_contains_rejects_out_of_range() {
        let s = Shape::new(vec![2, 2]);
        assert!(s.contains(&Point::from_slice(&[1, 1])));
        assert!(!s.contains(&Point::from_slice(&[2, 0])));
        assert!(!s.contains(&Point::from_slice(&[0])));
    }

    #[test]
    fn shape_permuted_roundtrip() {
        let s = Shape::new(vec![2, 3, 4, 5]);
        let perm = [2, 3, 0, 1];
        let t = s.permuted(&perm);
        assert_eq!(t.dims(), &[4, 5, 2, 3]);
        // Applying the inverse permutation restores the original.
        let inv = [2, 3, 0, 1];
        assert_eq!(t.permuted(&inv), s);
    }

    #[test]
    #[should_panic(expected = "zero-extent rank")]
    fn shape_rejects_zero_extent() {
        let _ = Shape::new(vec![2, 0]);
    }
}
