//! Bitmask sparse vectors (the SparTen representation).
//!
//! SparTen represents sparse weight and activation vectors as a dense
//! bitmask plus packed nonzero values, and computes sparse dot products by
//! ANDing bitmasks and prefix-summing to locate operand pairs (paper
//! Sec. II-B). The SparTen baseline model uses this module both functionally
//! and to count intersection work.

use serde::{Deserialize, Serialize};

/// A sparse vector stored as bitmask + packed values.
///
/// # Examples
///
/// ```
/// use isos_tensor::bitmask::BitmaskVec;
/// let v = BitmaskVec::from_dense(&[0.0, 2.0, 0.0, 3.0]);
/// assert_eq!(v.nnz(), 2);
/// assert_eq!(v.get(3), Some(3.0));
/// assert_eq!(v.get(0), None);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BitmaskVec {
    len: usize,
    bits: Vec<u64>,
    vals: Vec<f32>,
}

impl BitmaskVec {
    /// Builds from a dense slice, keeping only nonzeros.
    pub fn from_dense(dense: &[f32]) -> Self {
        let mut bits = vec![0u64; dense.len().div_ceil(64)];
        let mut vals = Vec::new();
        for (i, &v) in dense.iter().enumerate() {
            if v != 0.0 {
                bits[i / 64] |= 1 << (i % 64);
                vals.push(v);
            }
        }
        Self {
            len: dense.len(),
            bits,
            vals,
        }
    }

    /// Builds from `(index, value)` pairs (any order, unique indices).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or duplicated.
    pub fn from_pairs(len: usize, pairs: &[(usize, f32)]) -> Self {
        let mut dense = vec![0.0; len];
        for &(i, v) in pairs {
            assert!(i < len, "index {i} out of range {len}");
            assert_eq!(dense[i], 0.0, "duplicate index {i}");
            dense[i] = v;
        }
        Self::from_dense(&dense)
    }

    /// Logical length (dense extent).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of nonzero values stored.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The value at `index`, or `None` if zero/absent.
    pub fn get(&self, index: usize) -> Option<f32> {
        if index >= self.len || self.bits[index / 64] & (1 << (index % 64)) == 0 {
            return None;
        }
        Some(self.vals[self.rank_of(index)])
    }

    /// Footprint in bytes: one mask bit per logical element plus
    /// `value_bytes` per nonzero (SparTen's storage model).
    pub fn compressed_bytes(&self, value_bytes: usize) -> u64 {
        (self.len as u64).div_ceil(8) + (self.nnz() * value_bytes) as u64
    }

    /// Sparse dot product via bitmask intersection.
    ///
    /// Returns `(dot, effectual_pairs)`: the result and the number of
    /// multiply-accumulates actually performed (mask AND population count),
    /// which is the work metric of a SparTen PE.
    ///
    /// Operand pairs are located word-by-word with running rank counters:
    /// each operand's value index is its popcount prefix within the current
    /// word plus the rank carried in from earlier words, so every pair
    /// costs O(1) instead of re-scanning the mask prefix per coordinate.
    /// This mirrors the prefix-sum circuit in the SparTen PE, and the
    /// products accumulate in the same index order as a per-coordinate
    /// scan, so the result is bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &BitmaskVec) -> (f32, u64) {
        assert_eq!(self.len, other.len, "length mismatch");
        let mut dot = 0.0;
        let mut pairs = 0u64;
        let mut rank_a = 0usize;
        let mut rank_b = 0usize;
        for (&a, &b) in self.bits.iter().zip(&other.bits) {
            let mut common = a & b;
            pairs += common.count_ones() as u64;
            while common != 0 {
                let below = (1u64 << common.trailing_zeros()) - 1;
                let ia = rank_a + (a & below).count_ones() as usize;
                let ib = rank_b + (b & below).count_ones() as usize;
                dot += self.vals[ia] * other.vals[ib];
                common &= common - 1;
            }
            rank_a += a.count_ones() as usize;
            rank_b += b.count_ones() as usize;
        }
        (dot, pairs)
    }

    /// Number of effectual pairs with `other` without computing values
    /// (used for fast work estimation).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn intersection_count(&self, other: &BitmaskVec) -> u64 {
        assert_eq!(self.len, other.len, "length mismatch");
        self.bits
            .iter()
            .zip(&other.bits)
            .map(|(&a, &b)| (a & b).count_ones() as u64)
            .sum()
    }

    /// Iterates `(index, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f32)> + '_ {
        let mut word = 0usize;
        let mut current = self.bits.first().copied().unwrap_or(0);
        let mut vi = 0usize;
        std::iter::from_fn(move || loop {
            if current != 0 {
                let bit = current.trailing_zeros() as usize;
                current &= current - 1;
                let v = self.vals[vi];
                vi += 1;
                return Some((word * 64 + bit, v));
            }
            word += 1;
            if word >= self.bits.len() {
                return None;
            }
            current = self.bits[word];
        })
    }

    /// Number of set bits strictly below `index` (prefix-sum; the hardware
    /// uses a popcount-based prefix circuit for the same job).
    fn rank_of(&self, index: usize) -> usize {
        let word = index / 64;
        let mut rank = 0usize;
        for &w in &self.bits[..word] {
            rank += w.count_ones() as usize;
        }
        let mask = (1u64 << (index % 64)) - 1;
        rank + (self.bits[word] & mask).count_ones() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_dense_roundtrips_through_get() {
        let dense = [0.0, 1.0, 0.0, 0.0, 4.0, 5.0];
        let v = BitmaskVec::from_dense(&dense);
        for (i, &d) in dense.iter().enumerate() {
            assert_eq!(v.get(i), (d != 0.0).then_some(d), "index {i}");
        }
    }

    #[test]
    fn dot_counts_effectual_pairs_only() {
        let a = BitmaskVec::from_dense(&[1.0, 2.0, 0.0, 4.0]);
        let b = BitmaskVec::from_dense(&[0.0, 3.0, 5.0, 2.0]);
        let (dot, pairs) = a.dot(&b);
        assert_eq!(dot, 2.0 * 3.0 + 4.0 * 2.0);
        assert_eq!(pairs, 2);
        assert_eq!(a.intersection_count(&b), 2);
    }

    #[test]
    fn dot_across_word_boundaries() {
        let mut x = vec![0.0; 130];
        let mut y = vec![0.0; 130];
        x[0] = 1.0;
        x[64] = 2.0;
        x[129] = 3.0;
        y[64] = 4.0;
        y[129] = 5.0;
        let (dot, pairs) = BitmaskVec::from_dense(&x).dot(&BitmaskVec::from_dense(&y));
        assert_eq!(dot, 8.0 + 15.0);
        assert_eq!(pairs, 2);
    }

    #[test]
    fn iter_yields_in_index_order() {
        let v = BitmaskVec::from_pairs(200, &[(150, 1.5), (3, 0.3), (64, 6.4)]);
        let got: Vec<_> = v.iter().collect();
        assert_eq!(got, vec![(3, 0.3), (64, 6.4), (150, 1.5)]);
    }

    #[test]
    fn compressed_bytes_mask_plus_values() {
        let v = BitmaskVec::from_pairs(128, &[(0, 1.0), (100, 2.0)]);
        assert_eq!(v.compressed_bytes(1), 16 + 2);
    }

    #[test]
    fn empty_vector() {
        let v = BitmaskVec::from_dense(&[]);
        assert!(v.is_empty());
        assert_eq!(v.nnz(), 0);
        assert_eq!(v.iter().count(), 0);
    }
}
