//! Seeded random sparse tensor generation.
//!
//! The paper evaluates on pruned checkpoints and ImageNet activations; this
//! reproduction substitutes seeded unstructured-random tensors with matched
//! sparsity (see DESIGN.md §4). Unstructured pruning produces exactly this
//! kind of pattern, which is the case the hardware targets.

use crate::{Coord, Csf, Dense, Shape};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates a dense tensor whose elements are nonzero with probability
/// `density`, with values drawn uniformly from `(-1, 1)` excluding zero.
///
/// # Panics
///
/// Panics if `density` is not in `[0, 1]`.
pub fn random_dense(shape: Shape, density: f64, seed: u64) -> Dense {
    assert!((0.0..=1.0).contains(&density), "density out of [0,1]");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Dense::zeros(shape);
    for v in out.data_mut() {
        if rng.gen_bool(density) {
            // Draw until nonzero so density is exact in expectation.
            let mut x = 0.0f32;
            while x == 0.0 {
                x = rng.gen_range(-1.0f32..1.0);
            }
            *v = x;
        }
    }
    out
}

/// Generates a CSF tensor with `density` nonzeros (see [`random_dense`]).
pub fn random_csf(shape: Shape, density: f64, seed: u64) -> Csf {
    Csf::from_dense(&random_dense(shape, density, seed))
}

/// Generates a random sparse tensor with an *exact* nonzero count,
/// mimicking magnitude pruning to a precise target sparsity.
///
/// # Panics
///
/// Panics if `nnz > shape.volume()`.
pub fn random_csf_exact_nnz(shape: Shape, nnz: usize, seed: u64) -> Csf {
    let volume = shape.volume();
    assert!(nnz <= volume, "nnz {nnz} exceeds volume {volume}");
    let mut rng = SmallRng::seed_from_u64(seed);
    // Reservoir-free approach: sample linear indices without replacement
    // via a partial Fisher-Yates over a sparse map (volume can be large).
    let mut chosen = std::collections::HashSet::with_capacity(nnz);
    while chosen.len() < nnz {
        chosen.insert(rng.gen_range(0..volume));
    }
    let dims: Vec<usize> = shape.dims().to_vec();
    let entries = chosen
        .into_iter()
        .map(|lin| {
            let mut rem = lin;
            let mut coords = [0 as Coord; crate::MAX_RANKS];
            for (r, &d) in dims.iter().enumerate().rev() {
                coords[r] = (rem % d) as Coord;
                rem /= d;
            }
            let mut x = 0.0f32;
            while x == 0.0 {
                x = rng.gen_range(-1.0f32..1.0);
            }
            (crate::Point::from_slice(&coords[..dims.len()]), x)
        })
        .collect();
    Csf::from_entries(shape, entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_dense_hits_density() {
        let t = random_dense(vec![64, 64].into(), 0.25, 42);
        let d = 1.0 - t.sparsity();
        assert!((d - 0.25).abs() < 0.05, "density {d} far from 0.25");
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = random_csf(vec![16, 16].into(), 0.3, 7);
        let b = random_csf(vec![16, 16].into(), 0.3, 7);
        let c = random_csf(vec![16, 16].into(), 0.3, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn exact_nnz_is_exact() {
        let t = random_csf_exact_nnz(vec![10, 10, 10].into(), 137, 3);
        assert_eq!(t.nnz(), 137);
    }

    #[test]
    fn density_zero_and_one() {
        assert_eq!(random_csf(vec![8, 8].into(), 0.0, 1).nnz(), 0);
        assert_eq!(random_csf(vec![8, 8].into(), 1.0, 1).nnz(), 64);
    }
}
