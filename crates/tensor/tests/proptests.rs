//! Property-based tests for the sparse tensor substrate.

use isos_tensor::merge::{reduce_sorted, HeapMerger, TournamentMerger};
use isos_tensor::wavefront::{wavefronts, WavefrontElem, WavyLine};
use isos_tensor::{bitmask::BitmaskVec, Csf, Dense, Point, Shape};
use proptest::prelude::*;

/// A random small shape with 1..=4 ranks.
fn shape_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..8, 1..=4)
}

/// Random entries within a shape (indices may repeat; values may be zero).
fn entries_strategy(dims: Vec<usize>) -> impl Strategy<Value = Vec<(Vec<u32>, f32)>> {
    let coord = dims
        .iter()
        .map(|&d| (0u32..d as u32).boxed())
        .collect::<Vec<_>>();
    prop::collection::vec((coord, -4.0f32..4.0), 0..64)
}

proptest! {
    #[test]
    fn csf_roundtrips_through_dense(dims in shape_strategy()) {
        let shape = Shape::new(dims.clone());
        let runner = dims.iter().map(|&d| d as u64).product::<u64>();
        // Deterministic pseudo-dense content from the shape itself.
        let data: Vec<f32> = (0..runner)
            .map(|i| if i % 3 == 0 { (i % 7) as f32 - 3.0 } else { 0.0 })
            .collect();
        let dense = Dense::from_vec(shape, data);
        let csf = Csf::from_dense(&dense);
        prop_assert_eq!(csf.to_dense(), dense);
    }

    #[test]
    fn csf_iter_is_strictly_increasing_and_matches_nnz(
        dims in shape_strategy().prop_flat_map(|d| (Just(d.clone()), entries_strategy(d)))
    ) {
        let (dims, raw) = dims;
        let shape = Shape::new(dims);
        let entries: Vec<(Point, f32)> = raw
            .into_iter()
            .map(|(c, v)| (Point::from_slice(&c), v))
            .collect();
        let csf = Csf::from_entries(shape, entries);
        let pts: Vec<Point> = csf.iter().map(|(p, _)| p).collect();
        prop_assert_eq!(pts.len(), csf.nnz());
        prop_assert!(pts.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(csf.values().iter().filter(|&&v| v == 0.0).count(), 0);
    }

    #[test]
    fn csf_from_entries_accumulates_like_dense(
        dims in shape_strategy().prop_flat_map(|d| (Just(d.clone()), entries_strategy(d)))
    ) {
        let (dims, raw) = dims;
        let shape = Shape::new(dims);
        let mut dense = Dense::zeros(shape.clone());
        for (c, v) in &raw {
            dense[&Point::from_slice(c)] += *v;
        }
        let entries: Vec<(Point, f32)> = raw
            .into_iter()
            .map(|(c, v)| (Point::from_slice(&c), v))
            .collect();
        let csf = Csf::from_entries(shape, entries);
        // Accumulation order differs, so allow float tolerance.
        prop_assert!(csf.to_dense().max_abs_diff(&dense) < 1e-4);
    }

    #[test]
    fn csf_permute_roundtrip(
        dims in prop::collection::vec(1usize..6, 3..=3),
        seed in 0u64..1000,
    ) {
        let shape = Shape::new(dims);
        let csf = isos_tensor::gen::random_csf(shape, 0.3, seed);
        let perm = [2usize, 0, 1];
        let inv = [1usize, 2, 0];
        prop_assert_eq!(csf.permuted(&perm).permuted(&inv), csf);
    }

    #[test]
    fn mergers_equal_global_sort(
        streams in prop::collection::vec(
            prop::collection::vec((0u32..64, -2.0f32..2.0), 0..20),
            1..6
        )
    ) {
        let sorted: Vec<Vec<(u32, f32)>> = streams
            .into_iter()
            .map(|mut s| {
                s.sort_by_key(|&(k, _)| k);
                s
            })
            .collect();
        let mut expected: Vec<u32> = sorted.iter().flatten().map(|&(k, _)| k).collect();
        expected.sort_unstable();

        let t: Vec<u32> = TournamentMerger::new(
            sorted.iter().map(|s| s.clone().into_iter()).collect::<Vec<_>>(),
        )
        .map(|(k, _)| k)
        .collect();
        let h: Vec<u32> = HeapMerger::new(
            sorted.iter().map(|s| s.clone().into_iter()).collect::<Vec<_>>(),
        )
        .map(|(k, _)| k)
        .collect();
        prop_assert_eq!(&t, &expected);
        prop_assert_eq!(&h, &expected);
    }

    #[test]
    fn reduce_preserves_sum_and_dedups(
        mut items in prop::collection::vec((0u32..16, -2.0f32..2.0), 0..64)
    ) {
        items.sort_by_key(|&(k, _)| k);
        let total: f32 = items.iter().map(|&(_, v)| v).sum();
        let reduced: Vec<(u32, f32)> = reduce_sorted(items.into_iter()).collect();
        let rtotal: f32 = reduced.iter().map(|&(_, v)| v).sum();
        prop_assert!((total - rtotal).abs() < 1e-3);
        prop_assert!(reduced.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn bitmask_dot_matches_dense_dot(
        a in prop::collection::vec(prop::option::weighted(0.3, -2.0f32..2.0), 0..200),
        b_seed in 0u64..100,
    ) {
        let a: Vec<f32> = a.into_iter().map(|o| o.unwrap_or(0.0)).collect();
        let b: Vec<f32> = a
            .iter()
            .enumerate()
            .map(|(i, _)| if (i as u64 + b_seed).is_multiple_of(3) { 1.5 } else { 0.0 })
            .collect();
        let dense_dot: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let (sparse_dot, pairs) = BitmaskVec::from_dense(&a).dot(&BitmaskVec::from_dense(&b));
        prop_assert!((dense_dot - sparse_dot).abs() < 1e-4);
        let true_pairs = a.iter().zip(&b).filter(|(x, y)| **x != 0.0 && **y != 0.0).count();
        prop_assert_eq!(pairs as usize, true_pairs);
    }

    /// The packed-word [`isos_tensor::FiberIndex`] must agree with the
    /// scalar oracle: `position(c)` is `Some` exactly when a child with
    /// coordinate `c` exists, and the returned position is the number of
    /// children with smaller coordinates (the rank a binary search over
    /// the coordinate array would return).
    #[test]
    fn fiber_index_matches_scalar_rank_oracle(
        seed in 0u64..200,
        dim in 1usize..200,
    ) {
        let csf = isos_tensor::gen::random_csf(vec![dim, 3].into(), 0.3, seed);
        let root = csf.root();
        let index = root.index();
        let coords: Vec<u32> = root.iter_children().map(|(c, _)| c).collect();
        for c in 0..(dim as u32 + 70) {
            let oracle = coords.iter().position(|&x| x == c);
            prop_assert_eq!(index.position(c), oracle);
            prop_assert_eq!(index.contains(c), oracle.is_some());
            if let Some(pos) = oracle {
                prop_assert_eq!(
                    root.child(pos).nnz_below(),
                    root.find(c).unwrap().nnz_below()
                );
            }
        }
    }

    /// The bitmask-scanning [`WavyLine`] must behave exactly like a naive
    /// per-row cursor model under an arbitrary interleaving of frontier
    /// queries, per-row consumes, and globally-earliest consumes.
    #[test]
    fn wavy_line_matches_naive_cursor_oracle(
        seed in 0u64..100,
        ops in prop::collection::vec((0u8..3, 0usize..8), 0..120),
    ) {
        let t = isos_tensor::gen::random_csf(vec![7, 9, 2].into(), 0.35, seed);
        let mut line = WavyLine::new(&t);
        let mut rows: Vec<Vec<WavefrontElem>> =
            (0..7).map(|h| wavefronts(&t, h).collect()).collect();
        let front = |rows: &[Vec<WavefrontElem>]| -> Vec<Option<u32>> {
            rows.iter().map(|r| r.first().map(|&(w, _, _)| w)).collect()
        };
        for (op, h) in ops {
            let oracle_front = front(&rows);
            prop_assert_eq!(line.frontier(), oracle_front.clone());
            let live: Vec<u32> = oracle_front.iter().flatten().copied().collect();
            let oracle_skew = live.iter().max().map_or(0, |hi| hi - live.iter().min().unwrap());
            prop_assert_eq!(line.skew(), oracle_skew);
            match op {
                0 => {
                    // `h` may be out of range: consume_row tolerates it.
                    let oracle = rows
                        .get_mut(h)
                        .filter(|r| !r.is_empty())
                        .map(|r| r.remove(0));
                    prop_assert_eq!(line.consume_row(h), oracle);
                }
                1 => {
                    // Earliest = lowest (column, row) among row heads.
                    let oracle = oracle_front
                        .iter()
                        .enumerate()
                        .filter_map(|(h, w)| w.map(|w| (w, h)))
                        .min()
                        .map(|(_, h)| (h, rows[h].remove(0)));
                    prop_assert_eq!(line.consume_earliest(), oracle);
                }
                _ => {
                    let oracle: usize = rows.iter().map(Vec::len).sum();
                    prop_assert_eq!(line.remaining(), oracle);
                }
            }
        }
    }

    #[test]
    fn fiber_nnz_below_sums_to_total(seed in 0u64..200) {
        let csf = isos_tensor::gen::random_csf(vec![6, 6, 6].into(), 0.2, seed);
        if csf.ndim() > 1 {
            let total: usize = csf
                .root()
                .iter_children()
                .map(|(_, f)| f.nnz_below())
                .sum();
            prop_assert_eq!(total, csf.nnz());
        }
    }
}
