//! Equivalence suite for the loser-tree mergers.
//!
//! The mergers were rewritten from an O(k) linear scan (tournament) and a
//! `BinaryHeap` (K-merger) to a shared loser tree. Their observable
//! semantics must be unchanged, and this suite pins them against two
//! independent oracles on random sorted streams:
//!
//! 1. [`LinearScanMerger`] — a verbatim copy of the pre-rewrite linear
//!    scan, including its `MergerStats` accounting;
//! 2. a sort-then-[`reduce_sorted`] oracle — flatten every stream, stable
//!    sort by `(key, input index)`, which is the specified merge order.
//!
//! Values are tagged with `(input index, position)` so the checks cover
//! not just keys but *stability on ties*: equal keys must be emitted in
//! input-index order.

use isos_tensor::merge::{reduce_sorted, HeapMerger, MergerStats, TournamentMerger};
use proptest::prelude::*;

/// The pre-rewrite `TournamentMerger`: O(k) scan for the minimum head,
/// ties to the lowest input index, `ceil(log2(max(k,2)))` comparisons
/// charged per emission.
struct LinearScanMerger {
    inputs: Vec<std::vec::IntoIter<(u32, f32)>>,
    heads: Vec<Option<(u32, f32)>>,
    stats: MergerStats,
    levels: u32,
}

impl LinearScanMerger {
    fn new(inputs: Vec<Vec<(u32, f32)>>) -> Self {
        assert!(!inputs.is_empty());
        let mut inputs: Vec<_> = inputs.into_iter().map(Vec::into_iter).collect();
        let heads = inputs.iter_mut().map(Iterator::next).collect::<Vec<_>>();
        let levels = (inputs.len().max(2) as u32)
            .next_power_of_two()
            .trailing_zeros();
        Self {
            inputs,
            heads,
            stats: MergerStats::default(),
            levels,
        }
    }
}

impl Iterator for LinearScanMerger {
    type Item = (u32, f32);

    fn next(&mut self) -> Option<Self::Item> {
        let mut winner: Option<usize> = None;
        for (i, head) in self.heads.iter().enumerate() {
            if let Some((k, _)) = head {
                match winner {
                    None => winner = Some(i),
                    Some(w) => {
                        let (wk, _) = self.heads[w].as_ref().unwrap();
                        if k < wk {
                            winner = Some(i);
                        }
                    }
                }
            }
        }
        let w = winner?;
        self.stats.comparisons += self.levels as u64;
        self.stats.emitted += 1;
        let item = self.heads[w].take().unwrap();
        self.heads[w] = self.inputs[w].next();
        Some(item)
    }
}

/// Random sorted streams whose values encode `(input index, position)`,
/// making every element distinguishable (stability is observable).
fn tagged_streams() -> impl Strategy<Value = Vec<Vec<(u32, f32)>>> {
    prop::collection::vec(prop::collection::vec(0u32..24, 0..24), 1..9).prop_map(|keysets| {
        keysets
            .into_iter()
            .enumerate()
            .map(|(i, mut keys)| {
                keys.sort_unstable();
                keys.iter()
                    .enumerate()
                    .map(|(j, &k)| (k, (i * 1000 + j) as f32))
                    .collect()
            })
            .collect()
    })
}

/// The specified merge order: all elements, stable-sorted by
/// `(key, input index)`. Per-stream order is preserved because the sort is
/// stable and streams are individually sorted.
fn sorted_oracle(streams: &[Vec<(u32, f32)>]) -> Vec<(u32, f32)> {
    let mut all: Vec<(u32, usize, f32)> = streams
        .iter()
        .enumerate()
        .flat_map(|(i, s)| s.iter().map(move |&(k, v)| (k, i, v)))
        .collect();
    all.sort_by_key(|&(k, i, _)| (k, i));
    all.into_iter().map(|(k, _, v)| (k, v)).collect()
}

/// `(output, stats)` for the tournament, heap, and linear-scan mergers.
type AllRuns = (
    Vec<(u32, f32)>,
    Vec<(u32, f32)>,
    Vec<(u32, f32)>,
    MergerStats,
    MergerStats,
    MergerStats,
);

fn run_all(streams: &[Vec<(u32, f32)>]) -> AllRuns {
    let mk = || {
        streams
            .iter()
            .map(|s| s.clone().into_iter())
            .collect::<Vec<_>>()
    };
    let mut t = TournamentMerger::new(mk());
    let t_out: Vec<_> = t.by_ref().collect();
    let mut h = HeapMerger::new(mk());
    let h_out: Vec<_> = h.by_ref().collect();
    let mut l = LinearScanMerger::new(streams.to_vec());
    let l_out: Vec<_> = l.by_ref().collect();
    (t_out, h_out, l_out, t.stats(), h.stats(), l.stats)
}

proptest! {
    /// Loser tree == old linear scan == stable-sort oracle, element for
    /// element (keys and source-tagged values), with identical stats.
    #[test]
    fn mergers_match_linear_scan_and_sorted_oracle(streams in tagged_streams()) {
        let (t_out, h_out, l_out, t_stats, h_stats, l_stats) = run_all(&streams);
        let oracle = sorted_oracle(&streams);
        prop_assert_eq!(&t_out, &oracle);
        prop_assert_eq!(&h_out, &oracle);
        prop_assert_eq!(&l_out, &oracle);
        prop_assert_eq!(t_stats, l_stats);
        prop_assert_eq!(h_stats, l_stats);
        let total: u64 = streams.iter().map(|s| s.len() as u64).sum();
        prop_assert_eq!(t_stats.emitted, total);
        let levels = (streams.len().max(2) as u64).next_power_of_two().trailing_zeros() as u64;
        prop_assert_eq!(t_stats.comparisons, total * levels);
    }

    /// Merging then reducing equals reducing the sorted oracle: the
    /// R-merger + reducer lane is order-insensitive only if the merge
    /// order is exactly the specified one.
    #[test]
    fn merge_reduce_matches_reduce_of_sorted_oracle(streams in tagged_streams()) {
        let merged = isos_tensor::merge::merge_reduce(
            streams.iter().map(|s| s.clone().into_iter()).collect::<Vec<_>>(),
        );
        let got: Vec<(u32, f32)> = merged.collect();
        let want: Vec<(u32, f32)> =
            reduce_sorted(sorted_oracle(&streams).into_iter()).collect();
        // Same accumulation order -> bit-identical sums.
        prop_assert_eq!(got, want);
    }

    /// Radix 1 is the identity and charges one comparator level per
    /// element (the hardware still routes through one comparator stage).
    #[test]
    fn radix_one_is_identity(mut keys in prop::collection::vec(0u32..64, 0..32)) {
        keys.sort_unstable();
        let s: Vec<(u32, f32)> = keys.iter().enumerate().map(|(j, &k)| (k, j as f32)).collect();
        let (t_out, h_out, l_out, t_stats, h_stats, l_stats) = run_all(std::slice::from_ref(&s));
        prop_assert_eq!(&t_out, &s);
        prop_assert_eq!(&h_out, &s);
        prop_assert_eq!(&l_out, &s);
        prop_assert_eq!(t_stats, l_stats);
        prop_assert_eq!(h_stats, l_stats);
        prop_assert_eq!(t_stats.emitted, s.len() as u64);
        prop_assert_eq!(t_stats.comparisons, s.len() as u64);
    }

    /// Any mix of empty streams — including all-empty — merges correctly.
    #[test]
    fn empty_streams_are_harmless(n in 1usize..9, mask in 0u32..256) {
        let streams: Vec<Vec<(u32, f32)>> = (0..n)
            .map(|i| {
                if mask & (1 << i) != 0 {
                    Vec::new()
                } else {
                    (0..4u32).map(|k| (k, (i * 10 + k as usize) as f32)).collect()
                }
            })
            .collect();
        let (t_out, h_out, l_out, t_stats, _, l_stats) = run_all(&streams);
        let oracle = sorted_oracle(&streams);
        prop_assert_eq!(&t_out, &oracle);
        prop_assert_eq!(&h_out, &oracle);
        prop_assert_eq!(&l_out, &oracle);
        prop_assert_eq!(t_stats, l_stats);
        if streams.iter().all(Vec::is_empty) {
            prop_assert_eq!(t_stats, MergerStats::default());
        }
    }
}
