//! Result types shared by every accelerator model in the workspace.
//!
//! The paper's evaluation is fundamentally per-layer (Fig. 12-16 all
//! report layer-by-layer numbers), so the result types live here in the
//! substrate crate rather than in any one accelerator model:
//!
//! - [`RunMetrics`]: cycles, traffic split, utilizations, and energy
//!   activity for one simulated unit (a pipeline group or a layer);
//! - [`NetworkMetrics`]: whole-network totals plus per-pipeline-group
//!   *and* per-layer breakdowns, with the invariant that the breakdowns
//!   sum back to the totals;
//! - [`apportion_cycles`]: exact-sum integer apportionment used to split
//!   a group's cycles over its member layers.
//!
//! `isosceles::metrics` re-exports these for backward compatibility, but
//! downstream crates (`isos-baselines`, `isosceles-bench`,
//! `isos-explore`) name them from here so that depending on a *result*
//! does not require depending on the ISOSceles *model*.

use crate::energy::Activity;
use crate::stats::Utilization;
use serde::{Deserialize, Serialize};

/// Metrics from simulating one pipeline group, one layer, or one whole
/// network.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Execution cycles.
    pub cycles: u64,
    /// Off-chip weight traffic in bytes (Fig. 14c split).
    pub weight_traffic: f64,
    /// Off-chip activation traffic in bytes (input + output + halo).
    pub act_traffic: f64,
    /// MAC array utilization (Fig. 16).
    pub mac_util: Utilization,
    /// Memory bandwidth utilization (Fig. 15).
    pub bw_util: Utilization,
    /// Activity for the energy model (Fig. 17).
    pub activity: Activity,
    /// Effectual MACs performed.
    pub effectual_macs: f64,
}

impl RunMetrics {
    /// Total off-chip traffic in bytes.
    pub fn total_traffic(&self) -> f64 {
        self.weight_traffic + self.act_traffic
    }

    /// Speedup of `self` relative to `other` (higher = `self` faster).
    ///
    /// # Panics
    ///
    /// Panics if `self.cycles` is zero.
    pub fn speedup_over(&self, other: &RunMetrics) -> f64 {
        assert!(self.cycles > 0, "zero-cycle run");
        other.cycles as f64 / self.cycles as f64
    }

    /// Accumulates another run executed sequentially after this one.
    pub fn accumulate(&mut self, other: &RunMetrics) {
        self.cycles += other.cycles;
        self.weight_traffic += other.weight_traffic;
        self.act_traffic += other.act_traffic;
        self.mac_util.merge(&other.mac_util);
        self.bw_util.merge(&other.bw_util);
        self.activity.merge(&other.activity);
        self.effectual_macs += other.effectual_macs;
    }

    /// Records the compute-side energy activity: `macs` effectual MACs,
    /// each reading one byte from the shared filter buffer and
    /// `local_bytes_per_mac` bytes of lane-local SRAM (context arrays).
    ///
    /// The DRAM side of [`Activity`] is filled by
    /// [`MemHarness::finish`](crate::harness::MemHarness::finish).
    pub fn charge_compute_activity(&mut self, macs: f64, local_bytes_per_mac: f64) {
        self.activity.shared_sram_bytes = macs;
        self.activity.local_sram_bytes = macs * local_bytes_per_mac;
        self.activity.macs = macs;
    }
}

/// Per-group and per-layer breakdown of a network run.
///
/// `groups` carries one entry per pipeline group in execution order
/// (Fig. 18 reports these); `layers` carries one entry per simulated
/// layer, also in execution order (Fig. 12-16 report these). Both
/// breakdowns satisfy the conservation invariant: accumulating their
/// entries reproduces `total` (exactly for `cycles`, to floating-point
/// accumulation order for the byte and MAC counts).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct NetworkMetrics {
    /// Whole-network totals.
    pub total: RunMetrics,
    /// Per-pipeline-group results, in execution order.
    pub groups: Vec<(String, RunMetrics)>,
    /// Per-layer results, in execution order.
    pub layers: Vec<(String, RunMetrics)>,
}

impl NetworkMetrics {
    /// Appends one pipeline group with its per-layer breakdown,
    /// accumulating the group into `total`.
    ///
    /// An empty `layers` means the group *is* a single layer (the common
    /// case for layer-by-layer accelerators): the group metrics are then
    /// recorded under `name` in the layer breakdown too.
    pub fn push_group(
        &mut self,
        name: String,
        group: RunMetrics,
        layers: Vec<(String, RunMetrics)>,
    ) {
        self.total.accumulate(&group);
        if layers.is_empty() {
            self.layers.push((name.clone(), group));
        } else {
            self.layers.extend(layers);
        }
        self.groups.push((name, group));
    }

    /// Accumulates the per-group breakdown back into one [`RunMetrics`]
    /// (for conservation checks against `total`).
    pub fn group_sum(&self) -> RunMetrics {
        let mut sum = RunMetrics::default();
        for (_, m) in &self.groups {
            sum.accumulate(m);
        }
        sum
    }

    /// Accumulates the per-layer breakdown back into one [`RunMetrics`]
    /// (for conservation checks against `total`).
    pub fn layer_sum(&self) -> RunMetrics {
        let mut sum = RunMetrics::default();
        for (_, m) in &self.layers {
            sum.accumulate(m);
        }
        sum
    }
}

/// One inference request's journey through a stream run.
///
/// Cycle counts are on the modeled accelerator clock. The span satisfies
/// `arrival <= start <= completion` and
/// `completion - start == formation-free service`, i.e. `service` is the
/// cycles the accelerator actually spent on this request (reduced below
/// the single-inference cycle count for batch followers whose weight
/// fetch was amortized away).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RequestSpan {
    /// Position in the generated request stream (0-based).
    pub index: u64,
    /// Cycle at which the request entered the queue.
    pub arrival: u64,
    /// Cycle at which the accelerator started this request.
    pub start: u64,
    /// Cycle at which the request completed.
    pub completion: u64,
    /// Cycles of accelerator service time (`completion - start`).
    pub service: u64,
    /// Index of the batch this request was dispatched in (0-based).
    pub batch: u64,
    /// Whether this request led its batch (leaders pay the weight
    /// traffic; followers reuse the leader's resident weights).
    pub leader: bool,
    /// Queue-wait cycles spent while the server was forming a batch.
    pub formation_wait: u64,
    /// Queue-wait cycles spent while the server was busy with earlier
    /// work.
    pub busy_wait: u64,
    /// Per-request traffic/energy/utilization totals (after batch
    /// amortization).
    pub metrics: RunMetrics,
}

impl RequestSpan {
    /// End-to-end latency in cycles (`completion - arrival`).
    pub fn latency(&self) -> u64 {
        self.completion - self.arrival
    }

    /// Cycles spent queued before service began (`start - arrival`).
    pub fn queue_wait(&self) -> u64 {
        self.start - self.arrival
    }
}

/// Queue-depth statistics over a stream run.
///
/// Depth counts requests that have arrived but not yet entered service
/// (batch followers queue behind their leader); `mean_depth` is
/// time-weighted over the makespan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct QueueStats {
    /// Largest instantaneous queue depth observed.
    pub max_depth: u64,
    /// Time-weighted mean queue depth over the makespan.
    pub mean_depth: f64,
}

/// Metrics from streaming a sequence of inference requests through one
/// accelerator.
///
/// `total` plays the same role as [`NetworkMetrics::total`]: its traffic,
/// utilization, and energy activity are the sums over all request spans
/// (so the existing conservation and energy machinery applies
/// unchanged), but its `cycles` field is the stream **makespan** — the
/// cycle at which the last request completed — not the sum of per-request
/// cycles. The server-time identity
/// `busy_cycles + idle_cycles + formation_cycles == total.cycles`
/// holds exactly, as does `service_sum() == busy_cycles`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamMetrics {
    /// Summed request metrics, with `cycles` = stream makespan.
    pub total: RunMetrics,
    /// Cycles the accelerator spent servicing requests.
    pub busy_cycles: u64,
    /// Cycles the accelerator sat idle with an empty queue.
    pub idle_cycles: u64,
    /// Cycles the accelerator deliberately waited to form a fuller
    /// batch while requests were queued.
    pub formation_cycles: u64,
    /// Number of batches dispatched.
    pub batches: u64,
    /// Queue-depth statistics.
    pub queue: QueueStats,
    /// Per-request spans, in arrival order.
    pub requests: Vec<RequestSpan>,
}

impl StreamMetrics {
    /// Per-request end-to-end latencies, ascending.
    pub fn latencies_sorted(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.requests.iter().map(RequestSpan::latency).collect();
        v.sort_unstable();
        v
    }

    /// Nearest-rank latency percentile in cycles (`p` in `(0, 100]`).
    ///
    /// Returns 0 for an empty stream.
    pub fn latency_percentile(&self, p: f64) -> u64 {
        let sorted = self.latencies_sorted();
        if sorted.is_empty() {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.max(1) - 1]
    }

    /// Median (p50) latency in cycles.
    pub fn p50(&self) -> u64 {
        self.latency_percentile(50.0)
    }

    /// 95th-percentile latency in cycles.
    pub fn p95(&self) -> u64 {
        self.latency_percentile(95.0)
    }

    /// 99th-percentile tail latency in cycles.
    pub fn p99(&self) -> u64 {
        self.latency_percentile(99.0)
    }

    /// Throughput in images per cycle (requests / makespan).
    pub fn throughput_imgs_per_cycle(&self) -> f64 {
        if self.total.cycles == 0 {
            return 0.0;
        }
        self.requests.len() as f64 / self.total.cycles as f64
    }

    /// Throughput in images per second at a `clock_ghz` GHz clock.
    pub fn throughput_imgs_per_sec(&self, clock_ghz: f64) -> f64 {
        self.throughput_imgs_per_cycle() * clock_ghz * 1e9
    }

    /// Sum of per-request service cycles (for conservation checks
    /// against `busy_cycles`).
    pub fn service_sum(&self) -> u64 {
        self.requests.iter().map(|r| r.service).sum()
    }
}

/// Splits `total` cycles over weights with an exact sum (largest-
/// remainder apportionment).
///
/// Used to attribute a pipeline group's cycles to its member layers in
/// proportion to the work each executed; the returned counts always sum
/// to exactly `total`. Non-finite or negative weights count as zero; if
/// every weight is zero the split is uniform.
pub fn apportion_cycles(total: u64, weights: &[f64]) -> Vec<u64> {
    if weights.is_empty() {
        return Vec::new();
    }
    let sanitized: Vec<f64> = weights
        .iter()
        .map(|&w| if w.is_finite() && w > 0.0 { w } else { 0.0 })
        .collect();
    let wsum: f64 = sanitized.iter().sum();
    let shares: Vec<f64> = if wsum > 0.0 {
        sanitized
            .iter()
            .map(|w| total as f64 * (w / wsum))
            .collect()
    } else {
        vec![total as f64 / weights.len() as f64; weights.len()]
    };
    let mut out: Vec<u64> = shares.iter().map(|s| s.floor() as u64).collect();
    let assigned: u64 = out.iter().sum();
    // Hand the remaining cycles to the largest fractional remainders
    // (ties broken by index, so the result is deterministic).
    let mut order: Vec<usize> = (0..out.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = shares[a] - shares[a].floor();
        let fb = shares[b] - shares[b].floor();
        fb.total_cmp(&fa).then(a.cmp(&b))
    });
    let mut left = total.saturating_sub(assigned);
    for &i in order.iter().cycle() {
        if left == 0 {
            break;
        }
        out[i] += 1;
        left -= 1;
    }
    debug_assert_eq!(out.iter().sum::<u64>(), total);
    out
}

/// Splits `total` over `weights` proportionally, never exceeding the
/// per-entry `caps` (water-filling).
///
/// Overflow from capped entries is redistributed among the uncapped ones
/// by weight until everything is placed or every positive-weight entry is
/// saturated; any residual then spills into the remaining cap headroom of
/// zero-weight entries. Used to attribute a group's busy time (a shared
/// resource bounded per layer by that layer's cycles) to its member
/// layers: a plain proportional split followed by clamping would
/// silently drop the clamped mass and break the layers-sum-to-totals
/// invariant. Only `total > caps.iter().sum()` leaves mass unplaced (and
/// every entry comes back saturated).
///
/// # Panics
///
/// Panics if `weights` and `caps` differ in length.
pub fn apportion_capped(total: f64, weights: &[f64], caps: &[f64]) -> Vec<f64> {
    assert_eq!(weights.len(), caps.len(), "weights/caps length mismatch");
    let mut out = vec![0.0f64; weights.len()];
    if total <= 0.0 {
        return out;
    }
    let sanitized: Vec<f64> = weights
        .iter()
        .map(|&w| if w.is_finite() && w > 0.0 { w } else { 0.0 })
        .collect();
    let mut left = total;
    // Each pass either places everything or saturates at least one entry,
    // so this terminates in at most `len` passes.
    loop {
        let active: Vec<usize> = (0..out.len())
            .filter(|&i| sanitized[i] > 0.0 && out[i] < caps[i])
            .collect();
        let wsum: f64 = active.iter().map(|&i| sanitized[i]).sum();
        if left <= total * 1e-12 || active.is_empty() || wsum <= 0.0 {
            break;
        }
        let mut overflow = 0.0;
        for &i in &active {
            let share = left * sanitized[i] / wsum;
            let take = share.min(caps[i] - out[i]);
            out[i] += take;
            overflow += share - take;
        }
        left = overflow;
    }
    // Every positive-weight entry is saturated (or there were none):
    // spill the rest into whatever cap headroom remains, pro rata.
    if left > total * 1e-12 {
        let headroom: Vec<f64> = out
            .iter()
            .zip(caps)
            .map(|(&o, &c)| (c - o).max(0.0))
            .collect();
        let room: f64 = headroom.iter().sum();
        if room > 0.0 {
            let spill = left.min(room);
            for (o, h) in out.iter_mut().zip(&headroom) {
                *o += spill * h / room;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_sums_components() {
        let mut a = RunMetrics {
            cycles: 100,
            weight_traffic: 10.0,
            act_traffic: 20.0,
            effectual_macs: 1000.0,
            ..Default::default()
        };
        let b = RunMetrics {
            cycles: 50,
            weight_traffic: 5.0,
            act_traffic: 5.0,
            effectual_macs: 500.0,
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.cycles, 150);
        assert_eq!(a.total_traffic(), 40.0);
        assert_eq!(a.effectual_macs, 1500.0);
    }

    #[test]
    fn speedup_is_cycle_ratio() {
        let fast = RunMetrics {
            cycles: 100,
            ..Default::default()
        };
        let slow = RunMetrics {
            cycles: 400,
            ..Default::default()
        };
        assert_eq!(fast.speedup_over(&slow), 4.0);
    }

    #[test]
    fn charge_compute_activity_mirrors_macs() {
        let mut m = RunMetrics::default();
        m.charge_compute_activity(1000.0, 4.0);
        assert_eq!(m.activity.shared_sram_bytes, 1000.0);
        assert_eq!(m.activity.local_sram_bytes, 4000.0);
        assert_eq!(m.activity.macs, 1000.0);
    }

    #[test]
    fn push_group_defaults_layers_to_the_group() {
        let g = RunMetrics {
            cycles: 10,
            ..Default::default()
        };
        let mut n = NetworkMetrics::default();
        n.push_group("conv1".into(), g, Vec::new());
        assert_eq!(n.groups.len(), 1);
        assert_eq!(n.layers.len(), 1);
        assert_eq!(n.layers[0].0, "conv1");
        assert_eq!(n.total.cycles, 10);
    }

    #[test]
    fn push_group_keeps_explicit_layer_breakdown() {
        let l1 = RunMetrics {
            cycles: 6,
            ..Default::default()
        };
        let l2 = RunMetrics {
            cycles: 4,
            ..Default::default()
        };
        let mut g = RunMetrics::default();
        g.accumulate(&l1);
        g.accumulate(&l2);
        let mut n = NetworkMetrics::default();
        n.push_group("g0".into(), g, vec![("a".into(), l1), ("b".into(), l2)]);
        assert_eq!(n.groups.len(), 1);
        assert_eq!(n.layers.len(), 2);
        assert_eq!(n.layer_sum().cycles, n.total.cycles);
        assert_eq!(n.group_sum().cycles, n.total.cycles);
    }

    fn span(index: u64, arrival: u64, start: u64, service: u64) -> RequestSpan {
        RequestSpan {
            index,
            arrival,
            start,
            completion: start + service,
            service,
            metrics: RunMetrics {
                cycles: service,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn stream_percentiles_use_nearest_rank() {
        let mut s = StreamMetrics::default();
        for i in 0..100 {
            // Latencies 1..=100.
            s.requests.push(span(i, 0, i + 1 - i, 0));
            s.requests[i as usize].completion = i + 1;
        }
        assert_eq!(s.p50(), 50);
        assert_eq!(s.p95(), 95);
        assert_eq!(s.p99(), 99);
        assert_eq!(s.latency_percentile(100.0), 100);
        assert_eq!(s.latency_percentile(0.0), 1);
    }

    #[test]
    fn stream_percentiles_on_empty_stream_are_zero() {
        let s = StreamMetrics::default();
        assert_eq!(s.p99(), 0);
        assert_eq!(s.throughput_imgs_per_cycle(), 0.0);
    }

    #[test]
    fn stream_throughput_is_requests_over_makespan() {
        let mut s = StreamMetrics {
            busy_cycles: 150,
            idle_cycles: 50,
            ..Default::default()
        };
        s.requests.push(span(0, 0, 0, 100));
        s.requests.push(span(1, 150, 150, 50));
        s.total.cycles = 200;
        assert_eq!(s.throughput_imgs_per_cycle(), 0.01);
        assert_eq!(s.throughput_imgs_per_sec(1.0), 1e7);
        assert_eq!(s.service_sum(), s.busy_cycles);
        assert_eq!(
            s.busy_cycles + s.idle_cycles + s.formation_cycles,
            s.total.cycles
        );
    }

    #[test]
    fn request_span_latency_accounting() {
        let r = RequestSpan {
            arrival: 10,
            start: 25,
            completion: 40,
            service: 15,
            formation_wait: 5,
            busy_wait: 10,
            ..Default::default()
        };
        assert_eq!(r.latency(), 30);
        assert_eq!(r.queue_wait(), 15);
        assert_eq!(r.formation_wait + r.busy_wait, r.queue_wait());
    }

    #[test]
    fn apportion_is_exact_and_proportional() {
        let split = apportion_cycles(100, &[3.0, 1.0]);
        assert_eq!(split, vec![75, 25]);
        let uneven = apportion_cycles(10, &[1.0, 1.0, 1.0]);
        assert_eq!(uneven.iter().sum::<u64>(), 10);
        assert!(uneven.iter().all(|&c| (3..=4).contains(&c)));
    }

    #[test]
    fn apportion_handles_degenerate_weights() {
        assert_eq!(apportion_cycles(7, &[]), Vec::<u64>::new());
        let zeros = apportion_cycles(7, &[0.0, 0.0]);
        assert_eq!(zeros.iter().sum::<u64>(), 7);
        let nan = apportion_cycles(9, &[f64::NAN, 1.0, -3.0]);
        assert_eq!(nan.iter().sum::<u64>(), 9);
        assert_eq!(nan[1], 9);
    }

    #[test]
    fn apportion_zero_total_is_zeroes() {
        assert_eq!(apportion_cycles(0, &[5.0, 1.0]), vec![0, 0]);
    }

    #[test]
    fn apportion_capped_is_proportional_when_uncapped() {
        let out = apportion_capped(100.0, &[3.0, 1.0], &[1e9, 1e9]);
        assert!((out[0] - 75.0).abs() < 1e-9);
        assert!((out[1] - 25.0).abs() < 1e-9);
    }

    #[test]
    fn apportion_capped_redistributes_overflow() {
        // Entry 0 wants 75 but is capped at 10; its overflow spills to
        // entry 1 so the sum is preserved.
        let out = apportion_capped(100.0, &[3.0, 1.0], &[10.0, 1e9]);
        assert_eq!(out[0], 10.0);
        assert!((out.iter().sum::<f64>() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn apportion_capped_saturates_when_total_exceeds_caps() {
        let out = apportion_capped(100.0, &[1.0, 1.0], &[30.0, 40.0]);
        assert_eq!(out, vec![30.0, 40.0]);
    }

    #[test]
    fn apportion_capped_spills_into_zero_weight_headroom() {
        // The weighted entry saturates at 4; the remaining 6 spill into
        // the zero-weight entry's headroom instead of being dropped.
        let out = apportion_capped(10.0, &[1.0, 0.0], &[4.0, 20.0]);
        assert_eq!(out[0], 4.0);
        assert!((out[1] - 6.0).abs() < 1e-9);
        // No weights at all: everything is spill.
        let even = apportion_capped(10.0, &[0.0, 0.0], &[5.0, 5.0]);
        assert_eq!(even, vec![5.0, 5.0]);
    }

    #[test]
    fn apportion_capped_handles_degenerate_inputs() {
        assert_eq!(apportion_capped(0.0, &[1.0], &[5.0]), vec![0.0]);
        let nan = apportion_capped(10.0, &[f64::NAN, 1.0], &[100.0, 100.0]);
        assert_eq!(nan[0], 0.0);
        assert!((nan[1] - 10.0).abs() < 1e-9);
    }
}
