//! On-chip SRAM buffer models.
//!
//! ISOSceles's on-chip storage (Table I): a 1 MB shared filter buffer
//! (wide-word, heavily banked along input channels, with request
//! coalescing), 8 KB context arrays per lane, and 8 KB of queues per lane.
//! The model tracks capacity, access counts (for energy), and bank
//! conflicts under the coalescing scheme of Sec. IV-A.

use serde::{Deserialize, Serialize};

/// Access counters for an SRAM buffer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SramStats {
    /// Word reads served.
    pub reads: u64,
    /// Word writes served.
    pub writes: u64,
    /// Accesses that conflicted on a bank and stalled a cycle.
    pub bank_conflicts: u64,
    /// Accesses saved by coalescing identical requests.
    pub coalesced: u64,
}

impl SramStats {
    /// Total accesses (reads + writes).
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }
}

/// A banked SRAM buffer.
///
/// # Examples
///
/// ```
/// use isos_sim::sram::Sram;
/// let mut fb = Sram::new("filter-buffer", 1 << 20, 64, 32);
/// assert!(fb.fits(900_000));
/// fb.read_words(4);
/// assert_eq!(fb.stats().reads, 4);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Sram {
    name: String,
    capacity_bytes: u64,
    word_bytes: u32,
    banks: u32,
    stats: SramStats,
}

impl Sram {
    /// Creates a buffer with `capacity_bytes` split into `banks` banks of
    /// `word_bytes`-wide words.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(name: &str, capacity_bytes: u64, word_bytes: u32, banks: u32) -> Self {
        assert!(
            capacity_bytes > 0 && word_bytes > 0 && banks > 0,
            "zero SRAM parameter"
        );
        Self {
            name: name.to_owned(),
            capacity_bytes,
            word_bytes,
            banks,
            stats: SramStats::default(),
        }
    }

    /// The buffer's name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Word width in bytes.
    pub fn word_bytes(&self) -> u32 {
        self.word_bytes
    }

    /// Whether `bytes` fits in the buffer.
    pub fn fits(&self, bytes: u64) -> bool {
        bytes <= self.capacity_bytes
    }

    /// Records `words` word reads.
    pub fn read_words(&mut self, words: u64) {
        self.stats.reads += words;
    }

    /// Records `words` word writes.
    pub fn write_words(&mut self, words: u64) {
        self.stats.writes += words;
    }

    /// Records a read of `bytes`, rounded up to whole words.
    pub fn read_bytes(&mut self, bytes: u64) {
        self.stats.reads += bytes.div_ceil(self.word_bytes as u64);
    }

    /// Records a write of `bytes`, rounded up to whole words.
    pub fn write_bytes(&mut self, bytes: u64) {
        self.stats.writes += bytes.div_ceil(self.word_bytes as u64);
    }

    /// Serves one interval's worth of concurrent lane requests to banked
    /// storage with coalescing (paper Sec. IV-A).
    ///
    /// `requests` holds one target bank id per requesting lane. Requests to
    /// the same bank for the same word coalesce into one access (the
    /// "multiple lanes request weights for the same input channel" case);
    /// distinct requests that collide on a bank serialize and are counted
    /// as conflicts. Returns the number of SRAM cycles consumed.
    pub fn serve_banked(&mut self, requests: &[(u32, u64)]) -> u64 {
        use std::collections::HashMap;
        // bank -> set of distinct words requested
        let mut per_bank: HashMap<u32, Vec<u64>> = HashMap::new();
        let mut coalesced = 0u64;
        for &(bank, word) in requests {
            let words = per_bank.entry(bank % self.banks).or_default();
            if words.contains(&word) {
                coalesced += 1;
            } else {
                words.push(word);
            }
        }
        let mut cycles = 0u64;
        let mut conflicts = 0u64;
        for words in per_bank.values() {
            let n = words.len() as u64;
            self.stats.reads += n;
            cycles = cycles.max(n);
            conflicts += n.saturating_sub(1);
        }
        self.stats.bank_conflicts += conflicts;
        self.stats.coalesced += coalesced;
        cycles
    }

    /// Access counters.
    pub fn stats(&self) -> SramStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_checks_capacity() {
        let s = Sram::new("ctx", 8 * 1024, 8, 1);
        assert!(s.fits(8 * 1024));
        assert!(!s.fits(8 * 1024 + 1));
    }

    #[test]
    fn byte_accesses_round_up_to_words() {
        let mut s = Sram::new("fb", 1024, 64, 4);
        s.read_bytes(65);
        assert_eq!(s.stats().reads, 2);
        s.write_bytes(64);
        assert_eq!(s.stats().writes, 1);
    }

    #[test]
    fn coalescing_merges_identical_requests() {
        let mut s = Sram::new("fb", 1024, 64, 8);
        // Three lanes ask for the same (bank 2, word 5): one access.
        let cycles = s.serve_banked(&[(2, 5), (2, 5), (2, 5)]);
        assert_eq!(cycles, 1);
        assert_eq!(s.stats().reads, 1);
        assert_eq!(s.stats().coalesced, 2);
        assert_eq!(s.stats().bank_conflicts, 0);
    }

    #[test]
    fn bank_conflicts_serialize() {
        let mut s = Sram::new("fb", 1024, 64, 8);
        // Two distinct words on bank 1, one on bank 3.
        let cycles = s.serve_banked(&[(1, 10), (1, 11), (3, 7)]);
        assert_eq!(cycles, 2);
        assert_eq!(s.stats().bank_conflicts, 1);
    }

    #[test]
    fn banks_wrap_modulo() {
        let mut s = Sram::new("fb", 1024, 64, 4);
        // Banks 0 and 4 alias (4 % 4 == 0) with distinct words: conflict.
        let cycles = s.serve_banked(&[(0, 1), (4, 2)]);
        assert_eq!(cycles, 2);
    }
}
