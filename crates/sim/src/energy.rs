//! Energy model (paper Fig. 17).
//!
//! The paper reports energy per end-to-end inference from a 14/12 nm
//! commercial flow, broken into DRAM / SRAM / compute / other. We substitute
//! an analytic per-operation model with standard technology constants
//! (DESIGN.md §4): what the figure demonstrates — DRAM energy dominates and
//! grows relative to the rest as networks get sparser — depends on the
//! *ratios* of these constants, which are well-established.

use serde::{Deserialize, Serialize};

/// Per-operation energy constants, in picojoules.
///
/// Defaults approximate a 14/12 nm logic process with an HBM2 interface.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// DRAM transfer energy per byte (HBM2 ≈ 3.9 pJ/bit).
    pub dram_pj_per_byte: f64,
    /// Large shared SRAM (filter buffer) energy per byte accessed.
    pub shared_sram_pj_per_byte: f64,
    /// Small lane-local SRAM (context arrays, queues) energy per byte.
    pub local_sram_pj_per_byte: f64,
    /// One 8-bit multiply-accumulate.
    pub mac_pj: f64,
    /// Fraction of dynamic energy added for everything else (NoC, control,
    /// mergers, clocking).
    pub other_fraction: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self {
            dram_pj_per_byte: 31.2,
            // Wide-word arrays amortize decode/sense energy across 64-byte
            // accesses, so the per-byte cost is well below a narrow SRAM's.
            shared_sram_pj_per_byte: 0.45,
            local_sram_pj_per_byte: 0.20,
            mac_pj: 0.25,
            other_fraction: 0.10,
        }
    }
}

/// Accumulated activity to be converted into energy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Activity {
    /// Bytes moved over DRAM (both directions).
    pub dram_bytes: f64,
    /// Bytes accessed in the shared filter buffer.
    pub shared_sram_bytes: f64,
    /// Bytes accessed in lane-local SRAM (contexts, queues).
    pub local_sram_bytes: f64,
    /// Effectual multiply-accumulates performed.
    pub macs: f64,
}

impl Activity {
    /// Sums two activity records.
    pub fn merge(&mut self, other: &Activity) {
        self.dram_bytes += other.dram_bytes;
        self.shared_sram_bytes += other.shared_sram_bytes;
        self.local_sram_bytes += other.local_sram_bytes;
        self.macs += other.macs;
    }
}

/// Energy per inference broken down by component, in millijoules.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Off-chip DRAM transfer energy.
    pub dram_mj: f64,
    /// On-chip SRAM access energy (filter buffer + contexts + queues).
    pub sram_mj: f64,
    /// MAC array energy.
    pub compute_mj: f64,
    /// Everything else (NoC, mergers, control).
    pub other_mj: f64,
}

impl EnergyBreakdown {
    /// Total energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.dram_mj + self.sram_mj + self.compute_mj + self.other_mj
    }

    /// DRAM fraction of the total.
    pub fn dram_fraction(&self) -> f64 {
        if self.total_mj() == 0.0 {
            0.0
        } else {
            self.dram_mj / self.total_mj()
        }
    }
}

/// Converts accumulated [`Activity`] into an [`EnergyBreakdown`].
pub fn energy_of(activity: &Activity, params: &EnergyParams) -> EnergyBreakdown {
    const PJ_TO_MJ: f64 = 1e-9;
    let dram = activity.dram_bytes * params.dram_pj_per_byte;
    let sram = activity.shared_sram_bytes * params.shared_sram_pj_per_byte
        + activity.local_sram_bytes * params.local_sram_pj_per_byte;
    let compute = activity.macs * params.mac_pj;
    let other = (sram + compute) * params.other_fraction;
    EnergyBreakdown {
        dram_mj: dram * PJ_TO_MJ,
        sram_mj: sram * PJ_TO_MJ,
        compute_mj: compute * PJ_TO_MJ,
        other_mj: other * PJ_TO_MJ,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_scales_linearly_with_activity() {
        let params = EnergyParams::default();
        let a = Activity {
            dram_bytes: 1e6,
            shared_sram_bytes: 1e6,
            local_sram_bytes: 1e6,
            macs: 1e6,
        };
        let mut b = a;
        b.merge(&a);
        let ea = energy_of(&a, &params);
        let eb = energy_of(&b, &params);
        assert!((eb.total_mj() - 2.0 * ea.total_mj()).abs() < 1e-12);
    }

    #[test]
    fn dram_dominates_traffic_heavy_inference() {
        // ~10 MB traffic, ~100 M MACs: the sparse-CNN operating point.
        let a = Activity {
            dram_bytes: 10e6,
            shared_sram_bytes: 50e6,
            local_sram_bytes: 20e6,
            macs: 100e6,
        };
        let e = energy_of(&a, &EnergyParams::default());
        assert!(
            e.dram_fraction() > 0.5,
            "dram fraction {}",
            e.dram_fraction()
        );
        // Per-image energy should land in the paper's 0.2-1.9 mJ band.
        assert!(
            e.total_mj() > 0.2 && e.total_mj() < 1.9,
            "total {}",
            e.total_mj()
        );
    }

    #[test]
    fn zero_activity_is_zero_energy() {
        let e = energy_of(&Activity::default(), &EnergyParams::default());
        assert_eq!(e.total_mj(), 0.0);
        assert_eq!(e.dram_fraction(), 0.0);
    }
}
