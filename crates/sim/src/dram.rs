//! Off-chip memory (HBM) bandwidth model.
//!
//! ISOSceles and both baselines attach to a 128 GB/s HBM interface (paper
//! Table I/III). At 1 GHz that is 128 bytes per cycle. The model is
//! bandwidth-oriented: per scheduling interval, requesters post read/write
//! demand in bytes and the DRAM grants up to its capacity, proportionally
//! when oversubscribed. Latency is assumed hidden by the decoupling queues
//! (paper Sec. IV-A, "fetchers ... are decoupled from the main execution
//! pipeline using queues"), which matches the paper's memory-bound /
//! compute-bound analysis.

use crate::stats::Utilization;
use serde::{Deserialize, Serialize};

/// Traffic totals accumulated by a [`Dram`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DramTraffic {
    /// Bytes read from DRAM.
    pub read_bytes: f64,
    /// Bytes written to DRAM.
    pub write_bytes: f64,
}

impl DramTraffic {
    /// Total bytes moved in either direction.
    pub fn total(&self) -> f64 {
        self.read_bytes + self.write_bytes
    }
}

/// A bandwidth-modeled DRAM interface.
///
/// # Examples
///
/// ```
/// use isos_sim::dram::Dram;
/// let mut dram = Dram::new(128.0); // 128 B/cycle = 128 GB/s at 1 GHz
/// // One 100-cycle interval with 6400 B demanded reads, 12800 B capacity:
/// let granted = dram.grant(6400.0, 0.0, 100);
/// assert_eq!(granted.0, 6400.0);
/// assert!((dram.utilization().ratio() - 0.5).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Dram {
    bytes_per_cycle: f64,
    traffic: DramTraffic,
    utilization: Utilization,
    /// Cached [`exact_recip`] of the bandwidth. Deterministic in
    /// `bytes_per_cycle`, so serializing it round-trips exactly.
    inv_bytes_per_cycle: Option<f64>,
}

impl Dram {
    /// Creates a DRAM with the given peak bandwidth in bytes per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is not positive.
    pub fn new(bytes_per_cycle: f64) -> Self {
        assert!(bytes_per_cycle > 0.0, "bandwidth must be positive");
        Self {
            bytes_per_cycle,
            traffic: DramTraffic::default(),
            utilization: Utilization::new(),
            inv_bytes_per_cycle: exact_recip(bytes_per_cycle),
        }
    }

    /// Peak bandwidth in bytes per cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.bytes_per_cycle
    }

    /// Maximum bytes transferable in `cycles`.
    pub fn capacity(&self, cycles: u64) -> f64 {
        self.bytes_per_cycle * cycles as f64
    }

    /// Posts `read`/`write` byte demand for one interval of `cycles` and
    /// returns `(granted_read, granted_write)`.
    ///
    /// When demand exceeds capacity, reads and writes are scaled down
    /// proportionally (fair arbitration across directions).
    pub fn grant(&mut self, read: f64, write: f64, cycles: u64) -> (f64, f64) {
        let capacity = self.capacity(cycles);
        let demand = read + write;
        let scale = if demand > capacity && demand > 0.0 {
            capacity / demand
        } else {
            1.0
        };
        let gr = read * scale;
        let gw = write * scale;
        self.traffic.read_bytes += gr;
        self.traffic.write_bytes += gw;
        let moved = gr + gw;
        let busy = match self.inv_bytes_per_cycle {
            Some(inv) => moved * inv,
            None => moved / self.bytes_per_cycle,
        }
        .min(cycles as f64);
        self.utilization.add(busy, cycles);
        (gr, gw)
    }

    /// Records elapsed cycles with no transfers (keeps utilization honest
    /// during compute-bound phases).
    pub fn idle(&mut self, cycles: u64) {
        self.utilization.add(0.0, cycles);
    }

    /// Total traffic so far.
    pub fn traffic(&self) -> DramTraffic {
        self.traffic
    }

    /// Bandwidth utilization so far (paper Fig. 15).
    pub fn utilization(&self) -> Utilization {
        self.utilization
    }
}

/// Splits `capacity` among `demands` proportionally, never granting more
/// than demanded.
///
/// This is the arbitration the pipeline model uses when several layers or
/// engines compete for the same interface in one interval.
pub fn arbitrate(demands: &[f64], capacity: f64) -> Vec<f64> {
    let mut out = demands.to_vec();
    throttle(&mut out, capacity);
    out
}

/// In-place [`arbitrate`]: scales `demands` down to `capacity`
/// proportionally, leaving them untouched when they already fit.
///
/// The cycle-level interval loops call this on reused buffers so
/// arbitration costs no allocation per interval; the grant values are
/// bit-identical to [`arbitrate`]'s.
pub fn throttle(demands: &mut [f64], capacity: f64) {
    let total: f64 = demands.iter().sum();
    throttle_with_total(demands, total, capacity);
}

/// The exact reciprocal of `x`, when one exists: `Some(1.0 / x)` iff `x`
/// is a positive power of two (normal, zero mantissa).
///
/// Dividing by such an `x` and multiplying by its reciprocal are the same
/// correctly-rounded scaling of the exponent, so `y / x == y * recip`
/// **bitwise** for every `y` (subnormal and infinite results included).
/// The cycle-level loops divide by config constants (peak bandwidth, PE
/// count) millions of times per simulation; when the constant is a power
/// of two — as in the paper's Table I configuration — the hot loops hoist
/// the reciprocal and replace each ~15-cycle division with a multiply
/// without perturbing a single bit of the metrics.
pub fn exact_recip(x: f64) -> Option<f64> {
    const MANTISSA_MASK: u64 = (1u64 << 52) - 1;
    if x > 0.0 && x.is_normal() && x.to_bits() & MANTISSA_MASK == 0 {
        Some(1.0 / x)
    } else {
        None
    }
}

/// [`throttle`] with the demand total precomputed by the caller.
///
/// `total` must equal `demands.iter().sum()` (same left-to-right
/// accumulation). The memory harness already sums demand while posting
/// it, so arbitration need not walk the slice a second time.
pub fn throttle_with_total(demands: &mut [f64], total: f64, capacity: f64) {
    if total <= capacity || total == 0.0 {
        return;
    }
    let scale = capacity / total;
    for d in demands.iter_mut() {
        *d *= scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_under_capacity_is_full() {
        let mut d = Dram::new(128.0);
        let (r, w) = d.grant(1000.0, 500.0, 100);
        assert_eq!((r, w), (1000.0, 500.0));
        assert_eq!(d.traffic().total(), 1500.0);
    }

    #[test]
    fn grant_over_capacity_scales_proportionally() {
        let mut d = Dram::new(10.0);
        // Capacity 1000; demand 3000 read + 1000 write.
        let (r, w) = d.grant(3000.0, 1000.0, 100);
        assert!((r - 750.0).abs() < 1e-9);
        assert!((w - 250.0).abs() < 1e-9);
        assert_eq!(d.utilization().ratio(), 1.0);
    }

    #[test]
    fn utilization_tracks_idle_intervals() {
        let mut d = Dram::new(10.0);
        d.grant(500.0, 0.0, 100);
        d.idle(100);
        assert!((d.utilization().ratio() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn arbitrate_fair_share() {
        let grants = arbitrate(&[300.0, 100.0], 200.0);
        assert!((grants[0] - 150.0).abs() < 1e-9);
        assert!((grants[1] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn arbitrate_no_demand() {
        assert_eq!(arbitrate(&[0.0, 0.0], 100.0), vec![0.0, 0.0]);
    }

    #[test]
    fn arbitrate_never_overgrants() {
        let grants = arbitrate(&[10.0, 20.0], 1000.0);
        assert_eq!(grants, vec![10.0, 20.0]);
    }

    #[test]
    fn exact_recip_only_for_powers_of_two() {
        assert_eq!(exact_recip(128.0), Some(1.0 / 128.0));
        assert_eq!(exact_recip(4096.0), Some(1.0 / 4096.0));
        assert_eq!(exact_recip(0.25), Some(4.0));
        for x in [100.0, 3.0, 0.0, -2.0, f64::NAN, f64::INFINITY, 1e-320] {
            assert_eq!(exact_recip(x), None, "{x}");
        }
        // The whole point: multiplying by the reciprocal is bit-identical
        // to dividing, for every dividend.
        let inv = exact_recip(128.0).unwrap();
        for y in [0.0f64, 1.0, 3.7, 1e-300, 5e-324, 1e300, 12_345.678_9] {
            assert_eq!((y / 128.0).to_bits(), (y * inv).to_bits(), "{y}");
        }
    }

    #[test]
    fn throttle_matches_arbitrate_bit_for_bit() {
        for capacity in [0.0, 50.0, 200.0, 1e9] {
            for demands in [
                vec![],
                vec![0.0, 0.0],
                vec![300.0, 100.0],
                vec![0.1, 0.2, 0.7],
            ] {
                let mut in_place = demands.clone();
                throttle(&mut in_place, capacity);
                assert_eq!(in_place, arbitrate(&demands, capacity));
            }
        }
    }
}
