//! Run-level (intra-simulation) worker-thread configuration.
//!
//! Two distinct pools exist in this workspace and they compose:
//!
//! - the **engine-level** pool (`SuiteEngine` in the bench crate) runs
//!   whole `(workload, accelerator)` jobs concurrently;
//! - the **run-level** pool (configured here) parallelizes *inside* one
//!   simulation — independent pipeline groups of a single network fan
//!   out over `run_threads()` workers with a fixed-order merge, so the
//!   resulting [`NetworkMetrics`](crate::metrics::NetworkMetrics) are
//!   bit-identical at any thread count.
//!
//! The run-level count resolves, in priority order:
//!
//! 1. an explicit [`set_run_threads`] call (used by binaries that own a
//!    `--threads` flag, and by determinism tests that must exercise an
//!    exact worker count — this value is honored verbatim);
//! 2. the `ISOS_THREADS` environment variable, clamped to the machine's
//!    available parallelism (extra workers past the core count cannot
//!    speed a run up, but they do cost spawn overhead);
//! 3. the default of 1 (sequential).
//!
//! Keeping the knob out of the accelerator config structs is deliberate:
//! thread count must never reach a cache key or a serialized config,
//! because it does not change results — only wall-clock.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Explicit override; 0 means "not set".
static EXPLICIT: AtomicUsize = AtomicUsize::new(0);

/// Lazily resolved environment default.
static ENV_DEFAULT: OnceLock<usize> = OnceLock::new();

/// Available hardware parallelism, falling back to 1 when undetectable.
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn env_default() -> usize {
    *ENV_DEFAULT.get_or_init(|| {
        std::env::var("ISOS_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .map(|n| n.min(available_cores()))
            .unwrap_or(1)
    })
}

/// The worker count the run-level pool uses for the next simulation.
pub fn run_threads() -> usize {
    match EXPLICIT.load(Ordering::Relaxed) {
        0 => env_default(),
        n => n,
    }
}

/// Sets the run-level worker count explicitly (process-wide), bypassing
/// both `ISOS_THREADS` and the core-count clamp. `0` clears the override
/// back to the environment default.
pub fn set_run_threads(n: usize) {
    EXPLICIT.store(n, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_override_wins_and_clears() {
        // Serialized through one test to avoid racing the global knob.
        set_run_threads(7);
        assert_eq!(run_threads(), 7);
        set_run_threads(0);
        let base = run_threads();
        assert!(base >= 1);
        // The env default is clamped to real cores; the explicit path
        // is not (determinism tests rely on exact counts).
        assert!(env_default() <= available_cores().max(1));
    }
}
