//! Generic statistics primitives shared by all accelerator models.

use serde::{Deserialize, Serialize};

/// A busy/total utilization tracker.
///
/// Accumulates fractional busy cycles against elapsed cycles; the ratio is
/// the utilization reported in paper Figs. 15 and 16.
///
/// # Examples
///
/// ```
/// use isos_sim::stats::Utilization;
/// let mut u = Utilization::new();
/// u.add(50.0, 100);
/// u.add(25.0, 100);
/// assert!((u.ratio() - 0.375).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Utilization {
    busy: f64,
    total: u64,
}

impl Utilization {
    /// A fresh tracker with no elapsed time.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `busy` busy cycles out of `elapsed` elapsed cycles.
    ///
    /// # Panics
    ///
    /// Panics (debug only) if `busy` exceeds `elapsed`.
    pub fn add(&mut self, busy: f64, elapsed: u64) {
        debug_assert!(
            busy <= elapsed as f64 + 1e-6,
            "busy {busy} > elapsed {elapsed}"
        );
        self.busy += busy;
        self.total += elapsed;
    }

    /// Busy cycles accumulated.
    pub fn busy(&self) -> f64 {
        self.busy
    }

    /// Total cycles elapsed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Busy fraction in `[0, 1]`; zero if no time has elapsed.
    pub fn ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            (self.busy / self.total as f64).min(1.0)
        }
    }

    /// Merges another tracker into this one (e.g. across pipeline phases).
    pub fn merge(&mut self, other: &Utilization) {
        self.busy += other.busy;
        self.total += other.total;
    }
}

/// A weighted-average accumulator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct WeightedMean {
    sum: f64,
    weight: f64,
}

impl WeightedMean {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `value` with `weight`.
    pub fn add(&mut self, value: f64, weight: f64) {
        self.sum += value * weight;
        self.weight += weight;
    }

    /// The weighted mean, or zero if nothing was added.
    pub fn mean(&self) -> f64 {
        if self.weight == 0.0 {
            0.0
        } else {
            self.sum / self.weight
        }
    }
}

/// Geometric mean of a sequence of positive values.
///
/// Used for the paper's gmean speedup summaries. Returns zero for an empty
/// slice.
///
/// # Panics
///
/// Panics if any value is not strictly positive.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_caps_at_one() {
        let mut u = Utilization::new();
        u.add(100.0, 100);
        assert_eq!(u.ratio(), 1.0);
    }

    #[test]
    fn utilization_empty_is_zero() {
        assert_eq!(Utilization::new().ratio(), 0.0);
    }

    #[test]
    fn utilization_merge_combines() {
        let mut a = Utilization::new();
        a.add(10.0, 100);
        let mut b = Utilization::new();
        b.add(90.0, 100);
        a.merge(&b);
        assert!((a.ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn weighted_mean_weighs() {
        let mut m = WeightedMean::new();
        m.add(1.0, 1.0);
        m.add(4.0, 3.0);
        assert!((m.mean() - 3.25).abs() < 1e-9);
    }

    #[test]
    fn gmean_of_identical_is_value() {
        assert!((geometric_mean(&[4.3, 4.3, 4.3]) - 4.3).abs() < 1e-9);
    }

    #[test]
    fn gmean_matches_hand_computation() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gmean_rejects_zero() {
        geometric_mean(&[1.0, 0.0]);
    }
}
