//! Memory-system and accounting substrate for the ISOSceles reproduction.
//!
//! Every accelerator model in this workspace (ISOSceles itself and the
//! SparTen / Fused-Layer baselines) is built on the same substrate so that
//! comparisons are apples-to-apples:
//!
//! - [`dram`]: a bandwidth-modeled 128 GB/s HBM interface with proportional
//!   arbitration and utilization tracking (paper Fig. 15),
//! - [`harness`]: the shared interval-simulation memory harness (post
//!   demand → grant → throttle → accumulate) every accelerator runs on,
//! - [`metrics`]: the result types ([`metrics::RunMetrics`],
//!   [`metrics::NetworkMetrics`]) with per-group and per-layer breakdowns,
//! - [`sram`]: banked on-chip buffers with coalescing and conflict
//!   accounting (the shared filter buffer of Sec. IV-A),
//! - [`queue`]: bounded decoupling FIFOs with occupancy statistics,
//! - [`stats`]: utilization and summary statistics (gmean speedups),
//! - [`threads`]: the run-level worker-pool knob (`ISOS_THREADS`) behind
//!   deterministic intra-run parallelism,
//! - [`energy`]: the per-operation energy model behind Fig. 17,
//! - [`area`]: the analytic area model reproducing Table II.
//!
//! # Examples
//!
//! ```
//! use isos_sim::dram::Dram;
//! use isos_sim::stats::geometric_mean;
//! let mut hbm = Dram::new(128.0);
//! hbm.grant(1_000_000.0, 0.0, 10_000);
//! assert!(hbm.utilization().ratio() > 0.7);
//! assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod area;
pub mod dram;
pub mod energy;
pub mod harness;
pub mod metrics;
pub mod queue;
pub mod sram;
pub mod stats;
pub mod threads;

pub use harness::{MemClient, MemHarness};
pub use metrics::{NetworkMetrics, RequestSpan, RunMetrics, StreamMetrics};
