//! Area model (paper Table II).
//!
//! The paper synthesizes ISOSceles's RTL in 45 nm (FreePDK) at 1 GHz and
//! reports the per-component breakdown of Table II. We reproduce that table
//! with an analytic model anchored to the paper's own numbers, with each
//! component scaled by its architectural parameter so the ablation benches
//! can sweep lane count, MACs per lane, and buffer sizes.

use serde::{Deserialize, Serialize};

/// Per-component area constants at 45 nm, in mm², anchored to Table II.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AreaParams {
    /// One 8-bit MAC unit with its accumulator (Table II: 64 MACs =
    /// 0.069 mm²).
    pub mac_mm2: f64,
    /// One radix-256 throughput-1 merger (Table II: 16 mergers =
    /// 0.060 mm²).
    pub merger_mm2: f64,
    /// Lane-local SRAM per KB (Table II: 16 KB of context + queues =
    /// 0.121 mm²).
    pub lane_sram_mm2_per_kb: f64,
    /// One per-lane fetcher FSM.
    pub fetcher_mm2: f64,
    /// One per-lane crossbar port.
    pub crossbar_mm2: f64,
    /// Per-lane miscellaneous (POU, control).
    pub others_mm2: f64,
    /// Shared filter buffer per KB (Table II: 1 MB = 7.5 mm²).
    pub shared_sram_mm2_per_kb: f64,
    /// Linear scaling factor from 45 nm to 16 nm (paper: 26.0 → 4.7 mm²).
    pub scale_to_16nm: f64,
}

impl Default for AreaParams {
    fn default() -> Self {
        Self {
            mac_mm2: 0.069 / 64.0,
            merger_mm2: 0.060 / 16.0,
            lane_sram_mm2_per_kb: 0.121 / 16.0,
            fetcher_mm2: 0.010,
            crossbar_mm2: 0.021,
            others_mm2: 0.007,
            shared_sram_mm2_per_kb: 7.5 / 1024.0,
            scale_to_16nm: 4.7 / 26.0,
        }
    }
}

/// Architectural knobs that determine area.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AreaConfig {
    /// Number of frontend/backend lane pairs.
    pub lanes: u32,
    /// MAC units per lane.
    pub macs_per_lane: u32,
    /// Mergers per lane.
    pub mergers_per_lane: u32,
    /// Lane-local SRAM (context arrays + queues) per lane, in KB.
    pub lane_sram_kb: u32,
    /// Shared filter buffer size, in KB.
    pub filter_buffer_kb: u32,
}

impl AreaConfig {
    /// The paper's ISOSceles configuration (Tables I and II).
    pub fn isosceles_default() -> Self {
        Self {
            lanes: 64,
            macs_per_lane: 64,
            mergers_per_lane: 16,
            lane_sram_kb: 16,
            filter_buffer_kb: 1024,
        }
    }
}

/// Area broken down per component, in mm² at 45 nm.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AreaBreakdown {
    /// MAC units, all lanes.
    pub macs_mm2: f64,
    /// Mergers, all lanes.
    pub mergers_mm2: f64,
    /// Lane-local SRAM, all lanes.
    pub lane_buffers_mm2: f64,
    /// Fetchers, all lanes.
    pub fetchers_mm2: f64,
    /// Crossbar ports, all lanes.
    pub crossbar_mm2: f64,
    /// Per-lane miscellaneous, all lanes.
    pub others_mm2: f64,
    /// Shared filter buffer.
    pub filter_buffer_mm2: f64,
}

impl AreaBreakdown {
    /// Area of a single lane (Table II right column).
    pub fn per_lane_mm2(&self, lanes: u32) -> f64 {
        (self.macs_mm2
            + self.mergers_mm2
            + self.lane_buffers_mm2
            + self.fetchers_mm2
            + self.crossbar_mm2
            + self.others_mm2)
            / lanes as f64
    }

    /// All lanes, excluding the shared filter buffer.
    pub fn lanes_mm2(&self) -> f64 {
        self.macs_mm2
            + self.mergers_mm2
            + self.lane_buffers_mm2
            + self.fetchers_mm2
            + self.crossbar_mm2
            + self.others_mm2
    }

    /// Total accelerator area at 45 nm.
    pub fn total_mm2(&self) -> f64 {
        self.lanes_mm2() + self.filter_buffer_mm2
    }
}

/// Computes the area breakdown for a configuration.
pub fn area_of(config: &AreaConfig, params: &AreaParams) -> AreaBreakdown {
    let lanes = config.lanes as f64;
    AreaBreakdown {
        macs_mm2: lanes * config.macs_per_lane as f64 * params.mac_mm2,
        mergers_mm2: lanes * config.mergers_per_lane as f64 * params.merger_mm2,
        lane_buffers_mm2: lanes * config.lane_sram_kb as f64 * params.lane_sram_mm2_per_kb,
        fetchers_mm2: lanes * params.fetcher_mm2,
        crossbar_mm2: lanes * params.crossbar_mm2,
        others_mm2: lanes * params.others_mm2,
        filter_buffer_mm2: config.filter_buffer_kb as f64 * params.shared_sram_mm2_per_kb,
    }
}

/// Rough area of a SparTen-class accelerator with the same MAC count but
/// 5 MB of on-chip buffers (Table III), for the "less area" comparison.
pub fn sparten_area_mm2(params: &AreaParams) -> f64 {
    let macs = 4096.0 * params.mac_mm2;
    let buffers = 5.0 * 1024.0 * params.shared_sram_mm2_per_kb;
    // Prefix-sum/intersection logic in SparTen PEs is charged like the
    // merger+crossbar budget of an ISOSceles lane.
    let logic = 64.0 * (params.merger_mm2 * 16.0 + params.crossbar_mm2 + params.others_mm2);
    macs + buffers + logic
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_reproduces_table2() {
        let a = area_of(&AreaConfig::isosceles_default(), &AreaParams::default());
        // Table II: lanes 18.4, filter buffer 7.5, total 26.0 mm².
        assert!(
            (a.lanes_mm2() - 18.4).abs() < 0.1,
            "lanes {}",
            a.lanes_mm2()
        );
        assert!((a.filter_buffer_mm2 - 7.5).abs() < 0.01);
        assert!(
            (a.total_mm2() - 26.0).abs() < 0.2,
            "total {}",
            a.total_mm2()
        );
        // Per-lane 0.288 mm².
        assert!((a.per_lane_mm2(64) - 0.288).abs() < 0.01);
    }

    #[test]
    fn scaled_to_16nm_matches_paper() {
        let p = AreaParams::default();
        let a = area_of(&AreaConfig::isosceles_default(), &p);
        let scaled = a.total_mm2() * p.scale_to_16nm;
        assert!((scaled - 4.7).abs() < 0.1, "16nm area {scaled}");
    }

    #[test]
    fn sparten_uses_more_area() {
        let p = AreaParams::default();
        let isos = area_of(&AreaConfig::isosceles_default(), &p).total_mm2();
        assert!(sparten_area_mm2(&p) > isos, "SparTen should be larger");
    }

    #[test]
    fn area_scales_with_lanes() {
        let p = AreaParams::default();
        let mut cfg = AreaConfig::isosceles_default();
        let base = area_of(&cfg, &p);
        cfg.lanes = 128;
        let big = area_of(&cfg, &p);
        assert!((big.lanes_mm2() - 2.0 * base.lanes_mm2()).abs() < 1e-9);
        assert_eq!(big.filter_buffer_mm2, base.filter_buffer_mm2);
    }
}
