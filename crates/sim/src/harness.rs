//! The shared interval-simulation memory harness.
//!
//! Every accelerator model in this workspace advances in scheduling
//! intervals against the same DRAM interface, and every one of them used
//! to hand-roll the same sequence: post per-requester read demand and
//! pooled write demand, [`Dram::grant`] the interval's bandwidth,
//! throttle the requesters proportionally with
//! [`arbitrate`](crate::dram::arbitrate), and
//! accumulate the granted bytes into traffic/utilization/energy
//! accounting. [`MemHarness`] owns that sequence once:
//!
//! - the cycle-level ISOSceles pipeline calls [`MemHarness::step`] every
//!   scheduler interval with one [`MemClient`] per weight stream and
//!   external activation stream plus the per-sink writeback queue;
//! - the analytic SparTen and Fused-Layer models call
//!   [`MemHarness::transfer`] once per layer/group with the closed-form
//!   byte totals and the layer's modeled cycle count.
//!
//! Either way, [`MemHarness::finish`] folds the accumulated traffic
//! split, bandwidth utilization, and DRAM energy activity into a
//! [`RunMetrics`], so the accounting tail is identical across models.
//!
//! # Examples
//!
//! ```
//! use isos_sim::harness::{MemClient, MemHarness};
//! use isos_sim::metrics::RunMetrics;
//! let mut mem = MemHarness::new(128.0);
//! // One 100-cycle interval: a weight stream and an activation stream
//! // oversubscribe the 12.8 kB capacity and are throttled 2:1.
//! let g = mem.step(
//!     &[MemClient::weight(10_000.0), MemClient::activation(5_000.0)],
//!     &[0.0],
//!     100,
//! );
//! assert!((g.reads[0] / g.reads[1] - 2.0).abs() < 1e-9);
//! let mut m = RunMetrics { cycles: 100, ..Default::default() };
//! mem.finish(&mut m);
//! assert_eq!(m.total_traffic(), 12_800.0);
//! assert_eq!(m.bw_util.ratio(), 1.0);
//! ```

use crate::dram::{throttle_with_total, Dram, DramTraffic};
use crate::metrics::RunMetrics;
use crate::stats::Utilization;
use isos_trace::{emit_dram, DramClass, TraceSink, UnitId};

/// Accounting class of a memory client's granted reads (the Fig. 14c
/// weight/activation traffic split).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrafficClass {
    /// Compressed filter data.
    Weight,
    /// Input activations (outputs are always written as activations).
    Activation,
}

/// One read-side requester on the memory interface for one interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemClient {
    /// Class the granted bytes are accounted under.
    pub class: TrafficClass,
    /// Bytes the client wants to read this interval. Demand beyond the
    /// interval's DRAM capacity is clamped before arbitration.
    pub read: f64,
    /// Trace unit the client's stream serves; [`UnitId::NONE`] (the
    /// constructor default) when the caller does not trace.
    pub unit: UnitId,
}

impl MemClient {
    /// A weight-stream client.
    pub fn weight(read: f64) -> Self {
        Self {
            class: TrafficClass::Weight,
            read,
            unit: UnitId::NONE,
        }
    }

    /// An activation-stream client.
    pub fn activation(read: f64) -> Self {
        Self {
            class: TrafficClass::Activation,
            read,
            unit: UnitId::NONE,
        }
    }

    /// Tags the client's granted bytes with a trace unit.
    pub fn for_unit(mut self, unit: UnitId) -> Self {
        self.unit = unit;
        self
    }
}

/// Byte totals granted so far, split by class and direction.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TrafficTotals {
    /// Weight bytes read.
    pub weight_read: f64,
    /// Activation bytes read.
    pub act_read: f64,
    /// Activation bytes written back.
    pub act_write: f64,
}

impl TrafficTotals {
    /// Total bytes moved in either direction.
    pub fn total(&self) -> f64 {
        self.weight_read + self.act_read + self.act_write
    }
}

/// Grants returned by one [`MemHarness::step`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Grants {
    /// Granted read bytes, in client order.
    pub reads: Vec<f64>,
    /// Granted write bytes, in writer order.
    pub writes: Vec<f64>,
    /// Total granted read bytes this interval.
    pub granted_read: f64,
    /// Total granted write bytes this interval.
    pub granted_write: f64,
}

impl Grants {
    /// Whether any bytes moved this interval (the pipeline's liveness
    /// check counts a granted transfer as forward progress).
    pub fn moved(&self) -> bool {
        self.granted_read > 1e-6 || self.granted_write > 1e-6
    }
}

/// The shared post-demand → grant → throttle → accumulate harness. See
/// the [module docs](self).
#[derive(Clone, Debug, PartialEq)]
pub struct MemHarness {
    dram: Dram,
    traffic: TrafficTotals,
}

impl MemHarness {
    /// Creates a harness over a DRAM with the given peak bandwidth in
    /// bytes per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is not positive.
    pub fn new(bytes_per_cycle: f64) -> Self {
        Self {
            dram: Dram::new(bytes_per_cycle),
            traffic: TrafficTotals::default(),
        }
    }

    /// Maximum bytes transferable in `cycles`.
    pub fn capacity(&self, cycles: u64) -> f64 {
        self.dram.capacity(cycles)
    }

    /// The underlying DRAM model (read-only).
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// One scheduling interval: posts every client's read demand (each
    /// clamped to the interval capacity) plus the pooled write demand,
    /// grants DRAM bandwidth for `cycles`, splits the granted reads and
    /// writes proportionally, and accumulates the grants into the
    /// harness's per-class traffic totals.
    pub fn step(&mut self, clients: &[MemClient], writes: &[f64], cycles: u64) -> Grants {
        let mut out = Grants::default();
        self.step_into(clients, writes, cycles, &mut out);
        out
    }

    /// [`step`](Self::step) writing the grants into `out`, whose buffers
    /// are recycled across calls. The cycle-level interval loops hold one
    /// [`Grants`] for a whole group simulation so the per-interval memory
    /// path never allocates; the granted values are bit-identical to
    /// [`step`](Self::step)'s.
    pub fn step_into(
        &mut self,
        clients: &[MemClient],
        writes: &[f64],
        cycles: u64,
        out: &mut Grants,
    ) {
        let capacity = self.dram.capacity(cycles);
        out.reads.clear();
        // Posting and summing in one pass keeps the accumulation order of
        // the separate `iter().sum()` it replaces (left to right).
        let mut total_read = 0.0;
        out.reads.extend(clients.iter().map(|c| {
            let d = c.read.min(capacity);
            total_read += d;
            d
        }));
        let write_demand: f64 = writes.iter().sum();
        let (granted_read, granted_write) =
            self.dram
                .grant(total_read, write_demand.min(capacity), cycles);
        throttle_with_total(&mut out.reads, total_read, granted_read);
        for (client, granted) in clients.iter().zip(&out.reads) {
            match client.class {
                TrafficClass::Weight => self.traffic.weight_read += granted,
                TrafficClass::Activation => self.traffic.act_read += granted,
            }
        }
        out.writes.clear();
        out.writes.extend_from_slice(writes);
        throttle_with_total(&mut out.writes, write_demand, granted_write);
        for granted in &out.writes {
            self.traffic.act_write += granted;
        }
        out.granted_read = granted_read;
        out.granted_write = granted_write;
    }

    /// [`step`](Self::step) for callers that hold their read demand
    /// already split by traffic class, granted **in place**: on return
    /// each slice element is the granted bytes for that requester, and
    /// the result is `(granted_read, granted_write)` totals.
    ///
    /// The grants and traffic accumulation are bit-identical to a
    /// [`step_into`](Self::step_into) call posting one weight client per
    /// `weight_reads` element followed by one activation client per
    /// `act_reads` element: clamping, the demand sum, and the per-class
    /// accumulation all walk weights first then activations, left to
    /// right, and both class slices are throttled by the same
    /// total-demand scale. Untraced cycle-level loops use this to skip
    /// building [`MemClient`]s and a [`Grants`] every interval.
    pub fn step_classed(
        &mut self,
        weight_reads: &mut [f64],
        act_reads: &mut [f64],
        writes: &mut [f64],
        cycles: u64,
    ) -> (f64, f64) {
        let capacity = self.dram.capacity(cycles);
        let mut total_read = 0.0;
        for d in weight_reads.iter_mut() {
            *d = d.min(capacity);
            total_read += *d;
        }
        for d in act_reads.iter_mut() {
            *d = d.min(capacity);
            total_read += *d;
        }
        let write_demand: f64 = writes.iter().sum();
        let (granted_read, granted_write) =
            self.dram
                .grant(total_read, write_demand.min(capacity), cycles);
        // Both read classes share one demand total and one grant, hence
        // one scale: computing the division once and applying it to both
        // slices is element-for-element what two `throttle_with_total`
        // calls would do.
        if !(total_read <= granted_read || total_read == 0.0) {
            let scale = granted_read / total_read;
            for d in weight_reads.iter_mut() {
                *d *= scale;
            }
            for d in act_reads.iter_mut() {
                *d *= scale;
            }
        }
        for granted in weight_reads.iter() {
            self.traffic.weight_read += granted;
        }
        for granted in act_reads.iter() {
            self.traffic.act_read += granted;
        }
        throttle_with_total(writes, write_demand, granted_write);
        for granted in writes.iter() {
            self.traffic.act_write += granted;
        }
        (granted_read, granted_write)
    }

    /// [`step`](Self::step) plus trace emission: after granting, posts
    /// one [DRAM event](isos_trace::TraceEvent::Dram) per client (and per
    /// writer) to `sink`, carrying the raw posted demand against the
    /// arbitrated grant. `write_units` tags the writeback queues, in
    /// writer order (shorter slices leave the tail untagged). The grant
    /// math is `step`'s, untouched — a disabled sink skips emission
    /// entirely.
    pub fn step_traced(
        &mut self,
        clients: &[MemClient],
        writes: &[f64],
        write_units: &[UnitId],
        cycles: u64,
        t: u64,
        sink: &mut dyn TraceSink,
    ) -> Grants {
        let mut out = Grants::default();
        self.step_traced_into(clients, writes, write_units, cycles, t, sink, &mut out);
        out
    }

    /// [`step_traced`](Self::step_traced) writing the grants into `out`
    /// (see [`step_into`](Self::step_into) for the buffer-recycling
    /// contract).
    #[allow(clippy::too_many_arguments)]
    pub fn step_traced_into(
        &mut self,
        clients: &[MemClient],
        writes: &[f64],
        write_units: &[UnitId],
        cycles: u64,
        t: u64,
        sink: &mut dyn TraceSink,
        out: &mut Grants,
    ) {
        self.step_into(clients, writes, cycles, out);
        let grants = out;
        if sink.enabled() {
            for (client, &granted) in clients.iter().zip(&grants.reads) {
                let class = match client.class {
                    TrafficClass::Weight => DramClass::WeightRead,
                    TrafficClass::Activation => DramClass::ActivationRead,
                };
                emit_dram(sink, client.unit, t, cycles, class, client.read, granted);
            }
            for (i, (&demand, &granted)) in writes.iter().zip(&grants.writes).enumerate() {
                let unit = write_units.get(i).copied().unwrap_or(UnitId::NONE);
                emit_dram(
                    sink,
                    unit,
                    t,
                    cycles,
                    DramClass::ActivationWrite,
                    demand,
                    granted,
                );
            }
        }
    }

    /// Closed-form convenience for the analytic models: one weight
    /// stream, one activation stream, and one writeback, granted over
    /// `cycles` cycles.
    ///
    /// Callers size `cycles` at or above the memory time of the posted
    /// bytes, so the grant is complete and the traffic totals equal the
    /// posted demand exactly.
    pub fn transfer(
        &mut self,
        weight_read: f64,
        act_read: f64,
        act_write: f64,
        cycles: u64,
    ) -> Grants {
        self.step(
            &[
                MemClient::weight(weight_read),
                MemClient::activation(act_read),
            ],
            &[act_write],
            cycles,
        )
    }

    /// [`transfer`](Self::transfer) plus trace emission, attributing all
    /// three streams to `unit` at start cycle `t`.
    #[allow(clippy::too_many_arguments)]
    pub fn transfer_traced(
        &mut self,
        weight_read: f64,
        act_read: f64,
        act_write: f64,
        cycles: u64,
        t: u64,
        unit: UnitId,
        sink: &mut dyn TraceSink,
    ) -> Grants {
        self.step_traced(
            &[
                MemClient::weight(weight_read).for_unit(unit),
                MemClient::activation(act_read).for_unit(unit),
            ],
            &[act_write],
            &[unit],
            cycles,
            t,
            sink,
        )
    }

    /// Byte totals granted so far, split by class and direction.
    pub fn traffic(&self) -> TrafficTotals {
        self.traffic
    }

    /// Raw directional traffic recorded by the DRAM model.
    pub fn dram_traffic(&self) -> DramTraffic {
        self.dram.traffic()
    }

    /// Bandwidth utilization so far (paper Fig. 15).
    pub fn utilization(&self) -> Utilization {
        self.dram.utilization()
    }

    /// Folds the accumulated memory-side accounting into `m`: the
    /// weight/activation traffic split, the bandwidth utilization, and
    /// the DRAM byte activity for the energy model.
    ///
    /// Compute-side activity is recorded separately via
    /// [`RunMetrics::charge_compute_activity`].
    pub fn finish(&self, m: &mut RunMetrics) {
        m.bw_util = self.dram.utilization();
        m.weight_traffic = self.traffic.weight_read;
        m.act_traffic = self.traffic.act_read + self.traffic.act_write;
        m.activity.dram_bytes = m.total_traffic();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_grants_everything_under_capacity() {
        let mut mem = MemHarness::new(128.0);
        let g = mem.step(
            &[MemClient::weight(1000.0), MemClient::activation(500.0)],
            &[200.0, 0.0],
            100,
        );
        assert_eq!(g.reads, vec![1000.0, 500.0]);
        assert_eq!(g.writes, vec![200.0, 0.0]);
        assert!(g.moved());
        let t = mem.traffic();
        assert_eq!(t.weight_read, 1000.0);
        assert_eq!(t.act_read, 500.0);
        assert_eq!(t.act_write, 200.0);
        assert_eq!(t.total(), 1700.0);
    }

    #[test]
    fn oversubscription_throttles_proportionally() {
        let mut mem = MemHarness::new(10.0);
        // Capacity 1000; read demand 1500, write demand 500 (each
        // individual demand stays under the per-client capacity clamp).
        let g = mem.step(
            &[MemClient::weight(900.0), MemClient::activation(600.0)],
            &[500.0],
            100,
        );
        assert!((g.granted_read - 750.0).abs() < 1e-9);
        assert!((g.granted_write - 250.0).abs() < 1e-9);
        // Read split preserves the 900:600 ratio.
        assert!((g.reads[0] / g.reads[1] - 1.5).abs() < 1e-9);
        assert_eq!(mem.utilization().ratio(), 1.0);
    }

    #[test]
    fn per_client_demand_is_clamped_to_capacity() {
        let mut mem = MemHarness::new(1.0);
        // One client asks for far more than the 10-byte interval.
        let g = mem.step(&[MemClient::weight(1e9)], &[], 10);
        assert_eq!(g.granted_read, 10.0);
        assert!(!mem.step(&[MemClient::weight(0.0)], &[], 10).moved());
    }

    #[test]
    fn finish_folds_the_accounting_tail() {
        let mut mem = MemHarness::new(128.0);
        mem.transfer(600.0, 300.0, 100.0, 100);
        let mut m = RunMetrics {
            cycles: 100,
            ..Default::default()
        };
        mem.finish(&mut m);
        assert_eq!(m.weight_traffic, 600.0);
        assert_eq!(m.act_traffic, 400.0);
        assert_eq!(m.activity.dram_bytes, 1000.0);
        assert!((m.bw_util.ratio() - 1000.0 / 12800.0).abs() < 1e-12);
    }

    #[test]
    fn traced_step_matches_untraced_and_records_grants() {
        use isos_trace::{EventBuffer, NullSink, TraceEvent, UnitKind};
        let clients = [
            MemClient::weight(900.0).for_unit(UnitId(0)),
            MemClient::activation(600.0).for_unit(UnitId(1)),
        ];
        let mut plain = MemHarness::new(10.0);
        let gp = plain.step(&clients, &[500.0], 100);

        let mut nulled = MemHarness::new(10.0);
        let gn = nulled.step_traced(&clients, &[500.0], &[UnitId(1)], 100, 0, &mut NullSink);
        assert_eq!(gp, gn);
        assert_eq!(plain.traffic(), nulled.traffic());

        let mut traced = MemHarness::new(10.0);
        let mut buf = EventBuffer::new();
        buf.unit("a", UnitKind::Layer);
        buf.unit("b", UnitKind::Layer);
        let gt = traced.step_traced(&clients, &[500.0], &[UnitId(1)], 100, 700, &mut buf);
        assert_eq!(gp, gt);
        // One event per client plus the writer, demand vs. grant intact.
        assert_eq!(buf.len(), 3);
        match buf.events()[0] {
            TraceEvent::Dram {
                unit,
                t,
                class,
                demand,
                granted,
                ..
            } => {
                assert_eq!(unit, UnitId(0));
                assert_eq!(t, 700);
                assert_eq!(class, DramClass::WeightRead);
                assert_eq!(demand, 900.0);
                assert_eq!(granted, gp.reads[0]);
            }
            _ => panic!("expected DRAM event"),
        }
        let totals = buf.dram_totals();
        assert_eq!(totals.granted(DramClass::WeightRead), gp.reads[0]);
        assert_eq!(totals.granted(DramClass::ActivationRead), gp.reads[1]);
        assert_eq!(totals.granted(DramClass::ActivationWrite), gp.writes[0]);
    }

    #[test]
    fn transfer_matches_manual_step() {
        let mut a = MemHarness::new(64.0);
        let mut b = MemHarness::new(64.0);
        let ga = a.transfer(500.0, 250.0, 125.0, 50);
        let gb = b.step(
            &[MemClient::weight(500.0), MemClient::activation(250.0)],
            &[125.0],
            50,
        );
        assert_eq!(ga, gb);
        assert_eq!(a.traffic(), b.traffic());
    }
}
