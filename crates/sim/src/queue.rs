//! Bounded decoupling queues.
//!
//! Every producer/consumer pair in ISOSceles is decoupled by a FIFO queue
//! to tolerate load imbalance and memory latency (paper Sec. IV-A). The
//! functional dataflow uses [`BoundedQueue`] directly; the performance
//! model uses its occupancy statistics to size the 8 KB queue budget per
//! lane.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Occupancy and flow statistics for a queue.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueStats {
    /// Elements enqueued.
    pub pushes: u64,
    /// Elements dequeued.
    pub pops: u64,
    /// Highest occupancy observed.
    pub max_occupancy: usize,
    /// Push attempts rejected because the queue was full.
    pub full_rejections: u64,
}

/// A bounded FIFO with occupancy accounting.
///
/// # Examples
///
/// ```
/// use isos_sim::queue::BoundedQueue;
/// let mut q = BoundedQueue::new(2);
/// assert!(q.try_push(1).is_ok());
/// assert!(q.try_push(2).is_ok());
/// assert!(q.try_push(3).is_err()); // full: backpressure
/// assert_eq!(q.pop(), Some(1));
/// assert_eq!(q.stats().max_occupancy, 2);
/// ```
#[derive(Clone, Debug)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    stats: QueueStats,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            items: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            stats: QueueStats::default(),
        }
    }

    /// Maximum number of elements.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the queue is full (pushes would be rejected).
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Remaining free slots.
    pub fn free(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// Attempts to enqueue `item`; returns it back on a full queue
    /// (modeling backpressure).
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` if the queue is full.
    pub fn try_push(&mut self, item: T) -> Result<(), T> {
        if self.is_full() {
            self.stats.full_rejections += 1;
            return Err(item);
        }
        self.items.push_back(item);
        self.stats.pushes += 1;
        self.stats.max_occupancy = self.stats.max_occupancy.max(self.items.len());
        Ok(())
    }

    /// Dequeues the oldest element, if any.
    pub fn pop(&mut self) -> Option<T> {
        let item = self.items.pop_front();
        if item.is_some() {
            self.stats.pops += 1;
        }
        item
    }

    /// Peeks at the oldest element without removing it.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Flow statistics.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Drains all elements in FIFO order.
    pub fn drain_all(&mut self) -> impl Iterator<Item = T> + '_ {
        self.stats.pops += self.items.len() as u64;
        self.items.drain(..)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        let out: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn backpressure_counts_rejections() {
        let mut q = BoundedQueue::new(1);
        q.try_push('a').unwrap();
        assert_eq!(q.try_push('b'), Err('b'));
        assert_eq!(q.try_push('c'), Err('c'));
        assert_eq!(q.stats().full_rejections, 2);
        assert!(q.is_full());
        q.pop();
        assert!(q.try_push('b').is_ok());
    }

    #[test]
    fn stats_track_flow_and_peak() {
        let mut q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.pop();
        q.try_push(3).unwrap();
        let s = q.stats();
        assert_eq!(s.pushes, 3);
        assert_eq!(s.pops, 1);
        assert_eq!(s.max_occupancy, 2);
    }

    #[test]
    fn drain_all_empties_queue() {
        let mut q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.drain_all().collect::<Vec<_>>(), vec![1, 2]);
        assert!(q.is_empty());
        assert_eq!(q.stats().pops, 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = BoundedQueue::<u8>::new(0);
    }
}
