//! Property-based tests for the memory-system substrate.

use isos_sim::dram::{arbitrate, Dram};
use isos_sim::energy::{energy_of, Activity, EnergyParams};
use isos_sim::queue::BoundedQueue;
use isos_sim::stats::{geometric_mean, Utilization};
use proptest::prelude::*;

proptest! {
    #[test]
    fn arbitrate_never_exceeds_capacity_or_demand(
        demands in prop::collection::vec(0.0f64..1e6, 1..10),
        capacity in 0.0f64..1e6,
    ) {
        let grants = arbitrate(&demands, capacity);
        prop_assert_eq!(grants.len(), demands.len());
        let total: f64 = grants.iter().sum();
        prop_assert!(total <= capacity.max(demands.iter().sum()) + 1e-6);
        prop_assert!(total <= demands.iter().sum::<f64>() + 1e-6);
        for (g, d) in grants.iter().zip(&demands) {
            prop_assert!(*g >= 0.0 && *g <= d + 1e-9);
        }
    }

    #[test]
    fn arbitrate_preserves_proportions_when_oversubscribed(
        a in 1.0f64..1e5,
        b in 1.0f64..1e5,
        capacity in 1.0f64..100.0,
    ) {
        prop_assume!(a + b > capacity);
        let grants = arbitrate(&[a, b], capacity);
        prop_assert!((grants[0] / grants[1] - a / b).abs() < 1e-6 * (a / b));
    }

    #[test]
    fn dram_traffic_equals_sum_of_grants(
        transfers in prop::collection::vec((0.0f64..1e5, 0.0f64..1e5, 1u64..1000), 1..50),
    ) {
        let mut dram = Dram::new(128.0);
        let mut total = 0.0;
        for (r, w, cycles) in transfers {
            let (gr, gw) = dram.grant(r, w, cycles);
            total += gr + gw;
            // Grants never exceed interval capacity.
            prop_assert!(gr + gw <= 128.0 * cycles as f64 + 1e-6);
        }
        prop_assert!((dram.traffic().total() - total).abs() < 1e-6);
        let u = dram.utilization().ratio();
        prop_assert!((0.0..=1.0).contains(&u));
    }

    #[test]
    fn grant_oversubscription_scales_reads_and_writes_proportionally(
        read in 0.0f64..1e7,
        write in 0.0f64..1e7,
        bytes_per_cycle in 1.0f64..512.0,
        cycles in 1u64..10_000,
    ) {
        let mut dram = Dram::new(bytes_per_cycle);
        let capacity = bytes_per_cycle * cycles as f64;
        let (gr, gw) = dram.grant(read, write, cycles);

        // Never grant more than demanded, never more than the interval
        // capacity in total.
        prop_assert!(gr >= 0.0 && gr <= read + 1e-6);
        prop_assert!(gw >= 0.0 && gw <= write + 1e-6);
        prop_assert!(gr + gw <= capacity + 1e-6);

        let demand = read + write;
        if demand <= capacity {
            // Undersubscribed: grants are exact (scale factor is 1.0).
            prop_assert_eq!(gr, read);
            prop_assert_eq!(gw, write);
        } else if read > 0.0 && write > 0.0 {
            // Oversubscribed: the read/write split is preserved.
            let ratio = read / write;
            prop_assert!((gr / gw - ratio).abs() < 1e-6 * ratio.max(1.0));
            // And the channel is saturated.
            prop_assert!((gr + gw - capacity).abs() < 1e-6 * capacity);
        }

        let u = dram.utilization().ratio();
        prop_assert!((0.0..=1.0).contains(&u));
    }

    #[test]
    fn queue_conserves_elements(ops in prop::collection::vec(prop::option::of(0u32..100), 0..200)) {
        let mut q = BoundedQueue::new(16);
        let mut pushed = 0u64;
        let mut popped = 0u64;
        for op in ops {
            match op {
                Some(v) => {
                    if q.try_push(v).is_ok() {
                        pushed += 1;
                    }
                }
                None => {
                    if q.pop().is_some() {
                        popped += 1;
                    }
                }
            }
            prop_assert!(q.len() <= q.capacity());
        }
        prop_assert_eq!(pushed - popped, q.len() as u64);
        prop_assert_eq!(q.stats().pushes, pushed);
        prop_assert_eq!(q.stats().pops, popped);
    }

    #[test]
    fn utilization_is_mean_of_parts(
        parts in prop::collection::vec((0.0f64..100.0, 100u64..1000), 1..20),
    ) {
        let mut u = Utilization::new();
        let mut busy = 0.0;
        let mut total = 0u64;
        for (b, t) in parts {
            let b = b.min(t as f64);
            u.add(b, t);
            busy += b;
            total += t;
        }
        prop_assert!((u.ratio() - (busy / total as f64).min(1.0)).abs() < 1e-9);
    }

    #[test]
    fn gmean_between_min_and_max(values in prop::collection::vec(0.01f64..100.0, 1..20)) {
        let g = geometric_mean(&values);
        let min = values.iter().cloned().fold(f64::MAX, f64::min);
        let max = values.iter().cloned().fold(0.0, f64::max);
        prop_assert!(g >= min - 1e-9 && g <= max + 1e-9);
    }

    #[test]
    fn energy_is_monotone_in_activity(
        base in (0.0f64..1e9, 0.0f64..1e9, 0.0f64..1e9, 0.0f64..1e9),
        extra in 1.0f64..1e6,
    ) {
        let params = EnergyParams::default();
        let a = Activity {
            dram_bytes: base.0,
            shared_sram_bytes: base.1,
            local_sram_bytes: base.2,
            macs: base.3,
        };
        let mut b = a;
        b.dram_bytes += extra;
        prop_assert!(energy_of(&b, &params).total_mj() > energy_of(&a, &params).total_mj());
        prop_assert!(energy_of(&a, &params).dram_fraction() <= 1.0);
    }
}
