//! Golden pins for the analytic area and energy models.
//!
//! The in-crate unit tests check the models against the paper's coarse
//! numbers (Table II totals, Fig. 17 bands); these tests pin the exact
//! per-component values the default parameters produce, so any parameter
//! or formula change shows up as an explicit diff against this file
//! rather than a silent drift inside a tolerance band.

use isos_sim::area::{area_of, AreaConfig, AreaParams};
use isos_sim::energy::{energy_of, Activity, EnergyParams};

fn close(actual: f64, expected: f64, what: &str) {
    assert!(
        (actual - expected).abs() < 1e-9,
        "{what}: got {actual}, pinned {expected}"
    );
}

#[test]
fn table2_breakdown_is_pinned_per_component() {
    let a = area_of(&AreaConfig::isosceles_default(), &AreaParams::default());
    // Table II, 45 nm: 64 lanes × (64 MACs, 16 mergers, 16 KB SRAM,
    // fetcher, crossbar port, misc) + 1 MB shared filter buffer.
    close(a.macs_mm2, 64.0 * 0.069, "macs");
    close(a.mergers_mm2, 64.0 * 0.060, "mergers");
    close(a.lane_buffers_mm2, 64.0 * 0.121, "lane buffers");
    close(a.fetchers_mm2, 64.0 * 0.010, "fetchers");
    close(a.crossbar_mm2, 64.0 * 0.021, "crossbar");
    close(a.others_mm2, 64.0 * 0.007, "others");
    close(a.filter_buffer_mm2, 7.5, "filter buffer");
    close(a.lanes_mm2(), 18.432, "all lanes");
    close(a.per_lane_mm2(64), 0.288, "per lane");
    close(a.total_mm2(), 25.932, "total");
}

#[test]
fn area_16nm_scale_factor_is_pinned() {
    let p = AreaParams::default();
    close(p.scale_to_16nm, 4.7 / 26.0, "16nm scale factor");
    let a = area_of(&AreaConfig::isosceles_default(), &p);
    close(
        a.total_mm2() * p.scale_to_16nm,
        25.932 * 4.7 / 26.0,
        "16nm total",
    );
}

#[test]
fn energy_breakdown_is_pinned_for_unit_activity() {
    // One of everything: 1 B DRAM, 1 B shared SRAM, 1 B local SRAM, 1 MAC.
    let a = Activity {
        dram_bytes: 1.0,
        shared_sram_bytes: 1.0,
        local_sram_bytes: 1.0,
        macs: 1.0,
    };
    let e = energy_of(&a, &EnergyParams::default());
    const PJ: f64 = 1e-9; // pJ -> mJ
    close(e.dram_mj, 31.2 * PJ, "dram");
    close(e.sram_mj, (0.45 + 0.20) * PJ, "sram");
    close(e.compute_mj, 0.25 * PJ, "compute");
    // "Other" is 10% of on-chip dynamic energy (SRAM + compute), not DRAM.
    close(e.other_mj, 0.10 * (0.65 + 0.25) * PJ, "other");
    close(e.total_mj(), (31.2 + 0.65 + 0.25 + 0.09) * PJ, "total");
}

#[test]
fn energy_of_realistic_inference_is_pinned() {
    // ResNet-50-scale sparse inference: 12 MB DRAM, 40/25 MB SRAM, 180 M MACs.
    let a = Activity {
        dram_bytes: 12e6,
        shared_sram_bytes: 40e6,
        local_sram_bytes: 25e6,
        macs: 180e6,
    };
    let e = energy_of(&a, &EnergyParams::default());
    close(e.dram_mj, 0.3744, "dram mJ");
    close(e.sram_mj, 0.023, "sram mJ");
    close(e.compute_mj, 0.045, "compute mJ");
    close(e.other_mj, 0.0068, "other mJ");
    close(e.total_mj(), 0.4492, "total mJ");
}

#[test]
fn activity_merge_is_commutative_and_associative() {
    let x = Activity {
        dram_bytes: 1.5,
        shared_sram_bytes: 2.25,
        local_sram_bytes: 0.5,
        macs: 10.0,
    };
    let y = Activity {
        dram_bytes: 4.0,
        shared_sram_bytes: 0.75,
        local_sram_bytes: 8.5,
        macs: 3.0,
    };
    let z = Activity {
        dram_bytes: 0.25,
        shared_sram_bytes: 16.0,
        local_sram_bytes: 1.0,
        macs: 7.5,
    };

    // Commutativity: x+y == y+x.
    let mut xy = x;
    xy.merge(&y);
    let mut yx = y;
    yx.merge(&x);
    assert_eq!(xy, yx);

    // Associativity: (x+y)+z == x+(y+z). The fields above are exactly
    // representable in binary, so equality is exact.
    let mut xy_z = xy;
    xy_z.merge(&z);
    let mut yz = y;
    yz.merge(&z);
    let mut x_yz = x;
    x_yz.merge(&yz);
    assert_eq!(xy_z, x_yz);

    // Identity: merging the default is a no-op.
    let mut xi = x;
    xi.merge(&Activity::default());
    assert_eq!(xi, x);
}
