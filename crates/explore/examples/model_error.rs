//! Prints the analytical model's per-workload cycle error against the
//! cycle-level simulator at the default configuration — the calibration
//! view behind the constants in `explore::model` and the 25% gate in
//! `tests/validation.rs`.
//!
//! ```text
//! cargo run --release -p isos-explore --example model_error
//! ```

use isos_explore::model::estimate_network;
use isos_nn::models::paper_suite;
use isosceles::accel::Accelerator;
use isosceles::IsoscelesConfig;

fn main() {
    let cfg = IsoscelesConfig::default();
    let seed = 20230225;
    println!(
        "{:<4} {:>12} {:>12} {:>8}",
        "net", "sim cycles", "est cycles", "error"
    );
    for w in paper_suite(seed) {
        let sim = cfg.simulate(&w.network, seed).total.cycles as f64;
        let est = estimate_network(&w.network, &cfg).cycles;
        println!(
            "{:<4} {:>12.0} {:>12.0} {:>7.1}%",
            w.id,
            sim,
            est,
            (est - sim).abs() / sim * 100.0
        );
    }
}
