//! End-to-end search tests: Pareto frontier on ResNet-50 through the
//! parallel cached engine, and cache reuse across repeated searches.

use isos_explore::search::{search, SearchOptions};
use isos_explore::space::DesignSpace;
use isos_nn::models::suite_workload;
use isosceles_bench::engine::{EngineOptions, SuiteEngine};
use std::path::PathBuf;
use std::time::Instant;

const SEED: u64 = 20230225;

/// Quiet engine with a per-test scratch cache dir (tests must not write
/// into the repo's `results/`).
fn scratch_engine(tag: &str) -> (SuiteEngine, PathBuf) {
    let dir = std::env::temp_dir().join(format!("isos-dse-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let engine = SuiteEngine::new(EngineOptions {
        threads: 2,
        use_cache: true,
        cache_dir: dir.clone(),
        quiet: true,
        ..EngineOptions::default()
    });
    (engine, dir)
}

#[test]
fn resnet50_search_finds_three_nondominated_points_quickly() {
    let (engine, dir) = scratch_engine("r96");
    let workload = suite_workload("R96", SEED);
    let started = Instant::now();
    let result = search(
        &engine,
        &workload,
        &DesignSpace::default(),
        &SearchOptions::default(),
        SEED,
    );
    assert!(
        started.elapsed().as_secs() < 60,
        "search took {:?}",
        started.elapsed()
    );
    assert_eq!(result.workload, "R96");
    assert_eq!(result.screened, 240);
    assert!(
        result.frontier.len() >= 3,
        "only {} non-dominated points: {:?}",
        result.frontier.len(),
        result
            .evaluated
            .iter()
            .map(|e| (&e.label, e.cycles, e.area_mm2, e.energy_mj))
            .collect::<Vec<_>>()
    );
    // Simulated points are sorted and the anchor is present with speedup 1.
    assert!(result
        .evaluated
        .windows(2)
        .all(|w| w[0].cycles <= w[1].cycles));
    let anchor = result
        .evaluated
        .iter()
        .find(|e| e.config == isosceles::IsoscelesConfig::default())
        .expect("paper default simulated");
    assert!((anchor.speedup_vs_default - 1.0).abs() < 1e-12);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn repeated_search_is_served_from_the_cache() {
    let (engine, dir) = scratch_engine("cache");
    let workload = suite_workload("G58", SEED);
    let space = DesignSpace::smoke();
    let opts = SearchOptions {
        top_k: 3,
        budget_mm2: None,
    };

    let first = search(&engine, &workload, &space, &opts, SEED);
    assert_eq!(first.cache.hits, 0);
    assert!(first.cache.misses > 0);

    // Same search again on the same engine: every job is memoized.
    let second = search(&engine, &workload, &space, &opts, SEED);
    assert_eq!(second.cache.misses, 0);
    assert_eq!(second.cache.hits, first.cache.misses);
    assert_eq!(second.evaluated, first.evaluated);
    assert_eq!(second.frontier, first.frontier);

    // Lifetime counters accumulate across both searches.
    let lifetime = engine.lifetime_cache();
    assert_eq!(lifetime.misses, first.cache.misses);
    assert_eq!(lifetime.hits, second.cache.hits);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn area_budget_bounds_every_simulated_point() {
    let (engine, dir) = scratch_engine("budget");
    let workload = suite_workload("G58", SEED);
    // 20 mm² excludes the two 64-lane smoke points (25.932 mm²), so the
    // paper default re-enters only as the explicitly labeled anchor.
    let budget = 20.0;
    let result = search(
        &engine,
        &workload,
        &DesignSpace::smoke(),
        &SearchOptions {
            top_k: 4,
            budget_mm2: Some(budget),
        },
        SEED,
    );
    assert_eq!(result.over_budget, 2);
    let anchor = result
        .evaluated
        .iter()
        .find(|e| e.label == "paper-default")
        .expect("anchor re-added past the budget");
    assert!(anchor.area_mm2 > budget);
    for e in &result.evaluated {
        if e.label != "paper-default" {
            assert!(e.area_mm2 <= budget, "{} at {} mm2", e.label, e.area_mm2);
        }
    }
    let _ = std::fs::remove_dir_all(dir);
}
