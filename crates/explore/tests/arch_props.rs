//! Property-based tests for the declarative description schema: any
//! valid description survives a serde round-trip through both wire
//! formats (JSON and TOML) unchanged, and malformed descriptions are
//! rejected with messages that name the offending field.

use isos_explore::arch::{reference, ArchDesc};
use proptest::prelude::*;

/// A valid description: one of the four references with its tunable
/// knobs perturbed across their legal ranges. The structural skeleton
/// (level/store layout, loop nest) stays fixed so every generated value
/// passes `validate()` and the round-trip can go through the same
/// entry point real config files use.
fn arb_desc() -> impl Strategy<Value = ArchDesc> {
    (
        0usize..4,
        1u32..=1_000_000,
        1usize..=512,
        1usize..=256,
        // Efficiency in (0, 1]: draw an open-ended fraction and clamp
        // away from zero.
        1u32..=1_000_000,
        2usize..=512,
        1usize..=32,
        1.0f64..1024.0,
        1u64..=(1 << 24),
        1usize..=128,
        1.0f64..4.0,
    )
        .prop_map(
            |(
                which,
                name_tag,
                lanes,
                macs,
                eff_millionths,
                radix,
                contexts,
                dram,
                bytes,
                banks,
                overhead,
            )| {
                let mut desc = reference::all().swap_remove(which);
                desc.name = format!("arch-{name_tag}");
                desc.compute.lanes = lanes;
                desc.compute.macs_per_lane = macs;
                desc.compute.efficiency = f64::from(eff_millionths) / 1e6;
                desc.compute.merger_radix = radix;
                desc.compute.contexts = contexts;
                desc.memory.dram_bytes_per_cycle = dram;
                desc.levels[0].bytes = bytes;
                desc.levels[0].banks = banks;
                desc.levels[0].alloc_overhead = overhead;
                desc
            },
        )
}

proptest! {
    #[test]
    fn json_round_trip_preserves_every_description(desc in arb_desc()) {
        prop_assert_eq!(desc.validate(), Ok(()));
        let json = serde::json::to_string(&desc);
        let back: ArchDesc = serde::json::from_str(&json)
            .map_err(|e| TestCaseError::fail(format!("reparse: {e}")))?;
        prop_assert_eq!(back, desc);
    }

    #[test]
    fn toml_round_trip_preserves_every_description(desc in arb_desc()) {
        let toml = desc.to_toml();
        // The same entry point `load_path` uses for .toml files,
        // including validation.
        let back = ArchDesc::from_config_str(&toml)
            .map_err(|e| TestCaseError::fail(format!("reparse: {e}\n{toml}")))?;
        prop_assert_eq!(back, desc);
    }

    #[test]
    fn toml_and_json_parses_agree(desc in arb_desc()) {
        let from_toml = ArchDesc::from_config_str(&desc.to_toml()).unwrap();
        let from_json = ArchDesc::from_config_str(&serde::json::to_string(&desc)).unwrap();
        prop_assert_eq!(from_toml, from_json);
    }
}

/// Mutates the shipped TOML text itself, so the rejection path is the
/// one a user editing a config file actually hits.
fn parse_mutated(replace: &str, with: &str) -> String {
    let toml = reference::sparten().to_toml();
    assert!(toml.contains(replace), "fixture drifted: {replace}\n{toml}");
    ArchDesc::from_config_str(&toml.replace(replace, with))
        .expect_err("mutated description should be rejected")
        .to_string()
}

#[test]
fn rejects_zero_size_buffer_level_naming_the_level() {
    let msg = parse_mutated("bytes = 1048576", "bytes = 0");
    assert!(msg.contains("filter-buffer"), "{msg}");
    assert!(msg.contains("zero size"), "{msg}");
}

#[test]
fn rejects_dataflow_rank_mismatch_naming_the_dimension() {
    let msg = parse_mutated(r#""K/64", "P""#, r#""K/64", "K""#);
    assert!(msg.contains("rank mismatch"), "{msg}");
    assert!(msg.contains("`K`"), "{msg}");

    let msg = parse_mutated(r#""K/64", "P""#, r#""K/64", "Z""#);
    assert!(msg.contains("rank mismatch"), "{msg}");
    assert!(msg.contains("`Z`"), "{msg}");
}

#[test]
fn rejects_unknown_sparsity_feature_listing_the_choices() {
    let msg = parse_mutated(r#"format = "bitmask""#, r#"format = "blocked""#);
    assert!(msg.contains("unknown sparsity format `blocked`"), "{msg}");
    assert!(msg.contains("expected dense, bitmask, or csf"), "{msg}");

    let msg = parse_mutated(r#"gating = "gospa""#, r#"gating = "magic""#);
    assert!(msg.contains("unknown gating feature `magic`"), "{msg}");
}

#[test]
fn rejects_unknown_fields_naming_the_field() {
    let msg = parse_mutated("lanes = 64", "lames = 64");
    assert!(msg.contains("unknown field `lames`"), "{msg}");
}
