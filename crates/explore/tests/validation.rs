//! Acceptance gate: the analytical model tracks the cycle-level model
//! within 25% total cycles on at least 9 of the 11 suite workloads at the
//! paper's default configuration.
//!
//! (Measured at calibration time: all 11 within 14%; the 9-of-11 bound
//! leaves headroom for future re-tuning of the cycle-level model.)

use isos_explore::model::estimate_network;
use isos_nn::models::paper_suite;
use isosceles::accel::Accelerator;
use isosceles::IsoscelesConfig;

const SEED: u64 = 20230225;

#[test]
fn analytical_cycles_within_25_percent_on_9_of_11_workloads() {
    let cfg = IsoscelesConfig::default();
    let mut report: Vec<String> = Vec::new();
    let mut within = 0;
    for w in paper_suite(SEED) {
        let sim = cfg.simulate(&w.network, SEED).total.cycles as f64;
        let est = estimate_network(&w.network, &cfg);
        let err = (est.cycles - sim).abs() / sim;
        if err <= 0.25 {
            within += 1;
        }
        report.push(format!(
            "{}: sim {sim:.0} est {:.0} err {:.1}%",
            w.id,
            est.cycles,
            err * 100.0
        ));
    }
    assert!(
        within >= 9,
        "only {within}/11 workloads within 25%:\n{}",
        report.join("\n")
    );
}

#[test]
fn analytical_traffic_tracks_simulated_traffic() {
    // DRAM traffic is modeled from the same CSF byte counts the simulator
    // streams, so it should agree tightly (the simulator adds only
    // stochastic wobble and prefetch rounding).
    let cfg = IsoscelesConfig::default();
    for id in ["R96", "G58", "M75"] {
        let w = isos_nn::models::suite_workload(id, SEED);
        let sim = cfg.simulate(&w.network, SEED);
        let est = estimate_network(&w.network, &cfg);
        let err = (est.dram_bytes - sim.total.total_traffic()).abs() / sim.total.total_traffic();
        assert!(err < 0.05, "{id}: traffic err {:.1}%", err * 100.0);
    }
}

#[test]
fn estimates_are_deterministic() {
    let cfg = IsoscelesConfig::default();
    let net = isos_nn::models::suite_workload("V90", SEED).network;
    let a = estimate_network(&net, &cfg);
    let b = estimate_network(&net, &cfg);
    assert_eq!(a, b);
}
