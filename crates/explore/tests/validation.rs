//! Acceptance gate: the analytical model tracks the cycle-level model
//! within 25% total cycles on at least 9 of the 11 suite workloads at the
//! paper's default configuration.
//!
//! (Measured at calibration time: all 11 within 14%; the 9-of-11 bound
//! leaves headroom for future re-tuning of the cycle-level model.)

use isos_explore::model::estimate_network;
use isos_nn::models::paper_suite;
use isosceles::accel::Accelerator;
use isosceles::IsoscelesConfig;

const SEED: u64 = 20230225;

#[test]
fn analytical_cycles_within_25_percent_on_9_of_11_workloads() {
    let cfg = IsoscelesConfig::default();
    let mut report: Vec<String> = Vec::new();
    let mut within = 0;
    for w in paper_suite(SEED) {
        let sim = cfg.simulate(&w.network, SEED).total.cycles as f64;
        let est = estimate_network(&w.network, &cfg);
        let err = (est.cycles - sim).abs() / sim;
        if err <= 0.25 {
            within += 1;
        }
        report.push(format!(
            "{}: sim {sim:.0} est {:.0} err {:.1}%",
            w.id,
            est.cycles,
            err * 100.0
        ));
    }
    assert!(
        within >= 9,
        "only {within}/11 workloads within 25%:\n{}",
        report.join("\n")
    );
}

#[test]
fn analytical_traffic_tracks_simulated_traffic() {
    // DRAM traffic is modeled from the same CSF byte counts the simulator
    // streams, so it should agree tightly (the simulator adds only
    // stochastic wobble and prefetch rounding).
    let cfg = IsoscelesConfig::default();
    for id in ["R96", "G58", "M75"] {
        let w = isos_nn::models::suite_workload(id, SEED);
        let sim = cfg.simulate(&w.network, SEED);
        let est = estimate_network(&w.network, &cfg);
        let err = (est.dram_bytes - sim.total.total_traffic()).abs() / sim.total.total_traffic();
        assert!(err < 0.05, "{id}: traffic err {:.1}%", err * 100.0);
    }
}

#[test]
fn per_layer_estimates_track_simulated_layer_breakdown() {
    // The shared metrics layer reports per-layer results from the
    // simulator; the analytical model mirrors them layer by layer. Weight
    // bytes are modeled from the same CSF counts the simulator streams,
    // so they must agree tightly per layer; MACs agree up to the
    // simulator's stochastic work wobble.
    let cfg = IsoscelesConfig::default();
    for id in ["R96", "G58"] {
        let w = isos_nn::models::suite_workload(id, SEED);
        let sim = cfg.simulate(&w.network, SEED);
        let est = estimate_network(&w.network, &cfg);
        let est_layers: Vec<_> = est.layers().collect();
        assert_eq!(
            sim.layers.len(),
            est_layers.len(),
            "{id}: layer count mismatch"
        );
        for ((sim_name, sim_m), est_l) in sim.layers.iter().zip(&est_layers) {
            assert_eq!(sim_name, &est_l.name, "{id}: layer order mismatch");
            let werr =
                (est_l.weight_bytes - sim_m.weight_traffic).abs() / sim_m.weight_traffic.max(1.0);
            assert!(werr < 1e-6, "{id}/{sim_name}: weight err {:.2e}", werr);
            if est_l.macs > 0.0 {
                let merr = (est_l.macs - sim_m.effectual_macs).abs() / est_l.macs;
                assert!(
                    merr < 0.05,
                    "{id}/{sim_name}: macs err {:.1}%",
                    merr * 100.0
                );
            }
        }
    }
}

#[test]
fn estimates_are_deterministic() {
    let cfg = IsoscelesConfig::default();
    let net = isos_nn::models::suite_workload("V90", SEED).network;
    let a = estimate_network(&net, &cfg);
    let b = estimate_network(&net, &cfg);
    assert_eq!(a, b);
}
