//! Golden lock on the declarative-description interpreter.
//!
//! The lowered analytical estimates of the four reference descriptions
//! are pinned as exact `f64` constants at the paper seed, alongside the
//! 16 cycle-level goldens in `crates/bench/tests/golden_metrics.rs`.
//! A change to the schema defaults, the lowering rules, or the
//! analytical model that moves any of these values must regenerate the
//! table (print the same fields) and update it in the same commit.

use isos_explore::arch::{reference, ArchAccel};

const SEED: u64 = 20230225;

/// (workload, description, estimated cycles, estimated DRAM bytes)
/// captured at `SEED` from the interpreter's analytical path.
#[allow(clippy::excessive_precision)]
const GOLDEN: &[(&str, &str, f64, f64)] = &[
    ("R96", "isosceles", 88256.36578916082, 9163955.55969263),
    ("V68", "isosceles", 957258.8522113009, 41416258.07479587),
    ("G58", "isosceles", 12684.672149278991, 943361.7295373301),
    ("M75", "isosceles", 45232.94911944284, 2433429.095313909),
    (
        "R96",
        "isosceles-single",
        230224.9471163762,
        26562227.18794044,
    ),
    (
        "V68",
        "isosceles-single",
        971991.3525209314,
        48702216.01909095,
    ),
    (
        "G58",
        "isosceles-single",
        15041.738601094497,
        1054537.7825951567,
    ),
    (
        "M75",
        "isosceles-single",
        80795.0428447359,
        8316792.019097494,
    ),
    ("R96", "sparten", 483095.0, 60548362.22472269),
    ("V68", "sparten", 2122523.0, 62404822.471524395),
    ("G58", "sparten", 22717.0, 1205114.9217041375),
    ("M75", "sparten", 137432.0, 16246915.345665257),
    ("R96", "fused-layer", 1383101.0, 30504832.0),
    ("V68", "fused-layer", 5130893.0, 156797370.0),
    ("G58", "fused-layer", 44216.0, 896760.0),
    ("M75", "fused-layer", 285727.0, 4942040.0),
];

#[test]
fn lowered_estimates_are_bit_identical_to_the_golden_table() {
    let accels: Vec<(String, ArchAccel)> = reference::all()
        .into_iter()
        .map(|desc| (desc.name.clone(), ArchAccel::new(desc).unwrap()))
        .collect();
    let mut checked = 0;
    for &(id, name, cycles, dram_bytes) in GOLDEN {
        let accel = &accels
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("unknown description {name}"))
            .1;
        let net = isos_nn::models::suite_workload(id, SEED).network;
        let est = accel.estimate(&net);
        assert_eq!(est.cycles, cycles, "{id}/{name}: cycles");
        assert_eq!(est.dram_bytes, dram_bytes, "{id}/{name}: dram bytes");
        checked += 1;
    }
    assert_eq!(checked, 16, "4 workloads x 4 descriptions");
}
