//! Acceptance gate for declarative architecture descriptions: the
//! shipped reference descriptions under `configs/arch/` must reproduce
//! the hand-written models they describe.
//!
//! Three claims, in increasing strictness:
//!
//! 1. each shipped `.toml` parses to exactly the in-crate reference
//!    constructor (the files are data, not prose — drift is a bug);
//! 2. each description's analytical estimate tracks the hand-written
//!    cycle-level model within 14% total cycles on **all 11** suite
//!    workloads, and is *exact* for the closed-form baselines
//!    (SparTen, Fused-Layer), whose estimates are derived from the
//!    same formulas;
//! 3. where lowering is 1:1 (all three references), the description's
//!    `Accelerator` adapter simulates **bit-identically** to the
//!    hand-written configuration it lowers to.

use isos_baselines::{FusedLayerConfig, SpartenConfig};
use isos_explore::arch::{load_path, reference, ArchAccel, Lowered};
use isosceles::accel::Accelerator;
use isosceles::{ExecMode, IsoscelesConfig};
use std::path::Path;

const SEED: u64 = 20230225;

/// The shipped description files and the constructors they must match.
fn shipped() -> Vec<(&'static str, isos_explore::ArchDesc)> {
    vec![
        ("isosceles-single.toml", reference::isosceles_single()),
        ("sparten.toml", reference::sparten()),
        ("fused-layer.toml", reference::fused_layer()),
    ]
}

fn config_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../configs/arch")
}

#[test]
fn shipped_descriptions_parse_to_the_reference_constructors() {
    for (file, expected) in shipped() {
        let path = config_dir().join(file);
        let desc = load_path(&path).unwrap_or_else(|e| panic!("{file}: {e}"));
        assert_eq!(desc, expected, "{file} drifted from its constructor");
    }
}

#[test]
fn shipped_descriptions_lower_to_the_hand_written_configs() {
    for (file, desc) in shipped() {
        let accel = ArchAccel::new(desc).unwrap_or_else(|e| panic!("{file}: {e}"));
        match accel.lowered() {
            Lowered::IsOs { cfg, mode } => {
                assert_eq!(cfg, &IsoscelesConfig::default(), "{file}: config");
                assert_eq!(mode, &ExecMode::SingleLayer, "{file}: mode");
            }
            Lowered::OutputStationary(cfg) => {
                assert_eq!(cfg, &SpartenConfig::default(), "{file}: config");
            }
            Lowered::FusedTile(cfg) => {
                assert_eq!(cfg, &FusedLayerConfig::default(), "{file}: config");
            }
        }
    }
}

#[test]
fn described_estimates_within_14_percent_of_hand_written_models_on_all_11() {
    let mut report: Vec<String> = Vec::new();
    let mut failures = 0;
    for (file, desc) in shipped() {
        // Closed-form baselines must be reproduced exactly: their
        // estimates are the same formulas the hand-written model runs.
        let exact = !matches!(desc.dataflow.style, isos_explore::arch::DataflowStyle::IsOs);
        let accel = ArchAccel::new(desc).unwrap();
        for w in isos_nn::models::paper_suite(SEED) {
            let sim = accel.simulate(&w.network, SEED).total.cycles as f64;
            let est = accel.estimate(&w.network).cycles;
            let err = (est - sim).abs() / sim;
            let bound = if exact { 1e-9 } else { 0.14 };
            if err > bound {
                failures += 1;
            }
            report.push(format!(
                "{}/{}: sim {sim:.0} est {est:.0} err {:.2}%{}",
                file,
                w.id,
                err * 100.0,
                if exact { " (exact required)" } else { "" }
            ));
        }
    }
    assert_eq!(failures, 0, "description drift:\n{}", report.join("\n"));
}

#[test]
fn described_simulation_is_bit_identical_where_lowering_is_1_to_1() {
    // The adapter must add nothing on top of the hand-written model it
    // lowers to: full NetworkMetrics equality, not a tolerance.
    for id in ["R96", "G58", "M75"] {
        let net = isos_nn::models::suite_workload(id, SEED).network;

        let single = ArchAccel::new(reference::isosceles_single()).unwrap();
        let hand = isos_baselines::IsoscelesSingleConfig::default().simulate(&net, SEED);
        assert_eq!(single.simulate(&net, SEED), hand, "{id}: isosceles-single");

        let sparten = ArchAccel::new(reference::sparten()).unwrap();
        let hand = SpartenConfig::default().simulate(&net, SEED);
        assert_eq!(sparten.simulate(&net, SEED), hand, "{id}: sparten");

        let fused = ArchAccel::new(reference::fused_layer()).unwrap();
        let hand = FusedLayerConfig::default().simulate(&net, SEED);
        assert_eq!(fused.simulate(&net, SEED), hand, "{id}: fused-layer");
    }
}

#[test]
fn described_pipelined_isosceles_matches_the_flagship_model() {
    // The full pipelined ISOSceles description lowers onto the same
    // cycle-level engine as the flagship `isosceles` model.
    let net = isos_nn::models::suite_workload("G58", SEED).network;
    let accel = ArchAccel::new(reference::isosceles()).unwrap();
    let hand = IsoscelesConfig::default().simulate(&net, SEED);
    assert_eq!(accel.simulate(&net, SEED), hand);
}
