//! Exporting search results: JSON for tooling, markdown + CSV tables for
//! humans, via the bench crate's [`CsvTable`]. Config-sweep results
//! ([`SearchResult`]) and described-architecture results
//! ([`ArchSearchResult`]) get parallel exporters.

use crate::search::{ArchSearchResult, SearchResult, StreamSearchResult};
use isosceles_bench::report::CsvTable;
use std::path::{Path, PathBuf};

/// Builds the per-point results table (one row per simulated point,
/// frontier membership marked).
pub fn result_table(result: &SearchResult) -> CsvTable {
    let mut t = CsvTable::new(&[
        "label",
        "cycles",
        "speedup_vs_default",
        "area_mm2",
        "energy_mj",
        "est_cycles",
        "model_error",
        "pareto",
    ]);
    for (i, e) in result.evaluated.iter().enumerate() {
        t.push_row(vec![
            e.label.clone(),
            e.cycles.to_string(),
            format!("{:.3}", e.speedup_vs_default),
            format!("{:.3}", e.area_mm2),
            format!("{:.4}", e.energy_mj),
            format!("{:.0}", e.est_cycles),
            format!("{:.1}%", e.model_error() * 100.0),
            if result.frontier.contains(&i) {
                "*"
            } else {
                ""
            }
            .to_string(),
        ]);
    }
    t
}

/// Renders the full markdown report: summary paragraph plus the table.
pub fn to_markdown(result: &SearchResult) -> String {
    format!(
        "# Design-space exploration: {}\n\n\
         Screened {} points analytically ({} over the area budget), \
         simulated {} cycle-level; {} on the (cycles, mm\u{b2}, mJ) Pareto \
         frontier. Simulation batch: {:.0} ms, cache {}.\n\n{}",
        result.workload,
        result.screened,
        result.over_budget,
        result.evaluated.len(),
        result.frontier.len(),
        result.sim_wall_millis,
        result.cache,
        result_table(result).to_markdown()
    )
}

/// Writes `dse-<workload>.{json,csv,md}` under `dir`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_all(result: &SearchResult, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let stem = format!("dse-{}", result.workload);
    let json = dir.join(format!("{stem}.json"));
    std::fs::write(&json, serde::json::to_string(result))?;
    let csv = result_table(result).write(dir, &stem)?;
    let md = dir.join(format!("{stem}.md"));
    std::fs::write(&md, to_markdown(result))?;
    Ok(vec![json, csv, md])
}

/// Builds the per-scenario table of a streaming search (one row per
/// `(point, batch)` pair, frontier membership marked).
pub fn stream_result_table(result: &StreamSearchResult) -> CsvTable {
    let mut t = CsvTable::new(&[
        "label",
        "batch",
        "cycles",
        "imgs_per_sec",
        "p50_cycles",
        "p95_cycles",
        "p99_cycles",
        "area_mm2",
        "energy_mj",
        "pareto",
    ]);
    for (i, e) in result.evaluated.iter().enumerate() {
        t.push_row(vec![
            e.label.clone(),
            e.batch.to_string(),
            e.cycles.to_string(),
            format!("{:.1}", e.throughput_imgs_per_sec),
            e.p50_cycles.to_string(),
            e.p95_cycles.to_string(),
            e.p99_cycles.to_string(),
            format!("{:.3}", e.area_mm2),
            format!("{:.4}", e.energy_mj),
            if result.frontier.contains(&i) {
                "*"
            } else {
                ""
            }
            .to_string(),
        ]);
    }
    t
}

/// Renders the streaming-search markdown report.
pub fn stream_to_markdown(result: &StreamSearchResult) -> String {
    format!(
        "# Streaming design-space exploration: {}\n\n\
         Screened {} points analytically ({} over the area budget), then \
         streamed {} requests per scenario across batch sizes {:?}; {} \
         scenarios simulated, {} on the (p99, cycles/img, mm\u{b2}) Pareto \
         frontier.\n\n{}",
        result.workload,
        result.screened,
        result.over_budget,
        result.requests,
        result.batches,
        result.evaluated.len(),
        result.frontier.len(),
        stream_result_table(result).to_markdown()
    )
}

/// Writes `dse-stream-<workload>.{json,csv,md}` under `dir`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_all_stream(result: &StreamSearchResult, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let stem = format!("dse-stream-{}", result.workload);
    let json = dir.join(format!("{stem}.json"));
    std::fs::write(&json, serde::json::to_string(result))?;
    let csv = stream_result_table(result).write(dir, &stem)?;
    let md = dir.join(format!("{stem}.md"));
    std::fs::write(&md, stream_to_markdown(result))?;
    Ok(vec![json, csv, md])
}

/// Builds the per-point table of a described-architecture search (one
/// row per simulated description, dataflow family and frontier
/// membership marked).
pub fn arch_result_table(result: &ArchSearchResult) -> CsvTable {
    let mut t = CsvTable::new(&[
        "label",
        "dataflow",
        "cycles",
        "speedup_vs_default",
        "area_mm2",
        "energy_mj",
        "est_cycles",
        "model_error",
        "pareto",
    ]);
    for (i, e) in result.evaluated.iter().enumerate() {
        t.push_row(vec![
            e.label.clone(),
            e.desc.dataflow.style.label().to_string(),
            e.cycles.to_string(),
            format!("{:.3}", e.speedup_vs_default),
            format!("{:.3}", e.area_mm2),
            format!("{:.4}", e.energy_mj),
            format!("{:.0}", e.est_cycles),
            format!("{:.1}%", e.model_error() * 100.0),
            if result.frontier.contains(&i) {
                "*"
            } else {
                ""
            }
            .to_string(),
        ]);
    }
    t
}

/// Renders the described-architecture markdown report.
pub fn arch_to_markdown(result: &ArchSearchResult) -> String {
    format!(
        "# Architecture-space exploration: {}\n\n\
         Screened {} described points analytically ({} over the area \
         budget), simulated {} through the engine; {} on the (cycles, \
         mm\u{b2}, mJ) Pareto frontier. Simulation batch: {:.0} ms, \
         cache {}.\n\n{}",
        result.workload,
        result.screened,
        result.over_budget,
        result.evaluated.len(),
        result.frontier.len(),
        result.sim_wall_millis,
        result.cache,
        arch_result_table(result).to_markdown()
    )
}

/// Writes `dse-arch-<workload>.{json,csv,md}` under `dir`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_all_arch(result: &ArchSearchResult, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let stem = format!("dse-arch-{}", result.workload);
    let json = dir.join(format!("{stem}.json"));
    std::fs::write(&json, serde::json::to_string(result))?;
    let csv = arch_result_table(result).write(dir, &stem)?;
    let md = dir.join(format!("{stem}.md"));
    std::fs::write(&md, arch_to_markdown(result))?;
    Ok(vec![json, csv, md])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::EvaluatedPoint;
    use isosceles::IsoscelesConfig;
    use isosceles_bench::engine::CacheStats;

    fn tiny_result() -> SearchResult {
        let mk = |label: &str, cycles: u64, area: f64| EvaluatedPoint {
            label: label.into(),
            config: IsoscelesConfig::default(),
            cycles,
            est_cycles: cycles as f64 * 1.1,
            area_mm2: area,
            energy_mj: 0.5,
            speedup_vs_default: 100.0 / cycles as f64,
        };
        SearchResult {
            workload: "G58".into(),
            screened: 4,
            over_budget: 1,
            evaluated: vec![mk("fast", 100, 30.0), mk("small", 200, 10.0)],
            frontier: vec![0, 1],
            cache: CacheStats { hits: 1, misses: 1 },
            sim_wall_millis: 12.0,
        }
    }

    #[test]
    fn table_marks_frontier_rows() {
        let t = result_table(&tiny_result());
        let csv = t.to_csv();
        assert!(csv.starts_with("label,cycles,"));
        assert!(csv.contains("fast,100,1.000,30.000,0.5000,110,10.0%,*"));
    }

    #[test]
    fn markdown_summarizes_counts() {
        let md = to_markdown(&tiny_result());
        assert!(md.contains("Screened 4 points"));
        assert!(md.contains("1 over the area budget"));
        assert!(md.contains("| label |"));
        assert!(md.contains("1 hits / 1 misses"));
    }

    fn tiny_arch_result() -> ArchSearchResult {
        let mk = |label: &str, cycles: u64, area: f64| crate::search::ArchEvaluatedPoint {
            label: label.into(),
            desc: crate::arch::reference::sparten(),
            cycles,
            est_cycles: cycles as f64,
            area_mm2: area,
            energy_mj: 0.4,
            speedup_vs_default: 100.0 / cycles as f64,
        };
        ArchSearchResult {
            workload: "G58".into(),
            screened: 12,
            over_budget: 2,
            evaluated: vec![mk("os-fast", 100, 20.0), mk("os-small", 150, 12.0)],
            frontier: vec![0, 1],
            cache: CacheStats { hits: 2, misses: 0 },
            sim_wall_millis: 3.0,
        }
    }

    #[test]
    fn arch_table_includes_dataflow_family() {
        let t = arch_result_table(&tiny_arch_result());
        let csv = t.to_csv();
        assert!(csv.starts_with("label,dataflow,cycles,"));
        assert!(csv.contains("os-fast,output-stationary,100,"));
    }

    #[test]
    fn arch_markdown_and_files_round_trip() {
        let md = arch_to_markdown(&tiny_arch_result());
        assert!(md.contains("Screened 12 described points"));
        let dir = std::env::temp_dir().join(format!("isos-dse-arch-report-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let paths = write_all_arch(&tiny_arch_result(), &dir).unwrap();
        assert_eq!(paths.len(), 3);
        let text = std::fs::read_to_string(&paths[0]).unwrap();
        let back: ArchSearchResult = serde::json::from_str(&text).unwrap();
        assert_eq!(back, tiny_arch_result());
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn tiny_stream_result() -> StreamSearchResult {
        let mk =
            |label: &str, batch: u64, cycles: u64, p99: u64| crate::search::StreamEvaluatedPoint {
                label: label.into(),
                config: IsoscelesConfig::default(),
                batch,
                cycles,
                p50_cycles: p99 / 2,
                p95_cycles: p99 - 10,
                p99_cycles: p99,
                throughput_imgs_per_sec: 8.0 * 1e9 / cycles as f64,
                area_mm2: 20.0,
                energy_mj: 0.6,
            };
        StreamSearchResult {
            workload: "G58".into(),
            requests: 8,
            batches: vec![1, 2],
            screened: 4,
            over_budget: 0,
            evaluated: vec![mk("fast", 1, 900, 120), mk("fast", 2, 800, 200)],
            frontier: vec![0, 1],
        }
    }

    #[test]
    fn stream_table_and_markdown_cover_the_batch_axis() {
        let t = stream_result_table(&tiny_stream_result());
        let csv = t.to_csv();
        assert!(csv.starts_with("label,batch,cycles,imgs_per_sec,"));
        assert!(csv.contains("fast,1,900,"));
        assert!(csv.contains("fast,2,800,"));
        let md = stream_to_markdown(&tiny_stream_result());
        assert!(md.contains("streamed 8 requests"));
        assert!(md.contains("batch sizes [1, 2]"));
        assert!(md.contains("p99"));
    }

    #[test]
    fn stream_files_round_trip() {
        let dir =
            std::env::temp_dir().join(format!("isos-dse-stream-report-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let paths = write_all_stream(&tiny_stream_result(), &dir).unwrap();
        assert_eq!(paths.len(), 3);
        let text = std::fs::read_to_string(&paths[0]).unwrap();
        let back: StreamSearchResult = serde::json::from_str(&text).unwrap();
        assert_eq!(back, tiny_stream_result());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_all_emits_three_files() {
        let dir = std::env::temp_dir().join(format!("isos-dse-report-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let paths = write_all(&tiny_result(), &dir).unwrap();
        assert_eq!(paths.len(), 3);
        for p in &paths {
            assert!(p.exists(), "{p:?} missing");
        }
        // JSON round-trips.
        let text = std::fs::read_to_string(&paths[0]).unwrap();
        let back: SearchResult = serde::json::from_str(&text).unwrap();
        assert_eq!(back, tiny_result());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
