//! The analytical cost model: closed-form estimates of cycles, DRAM
//! traffic, energy, and area for any [`IsoscelesConfig`] and workload,
//! with no simulation.
//!
//! The model mirrors the structure of the cycle-level simulator
//! (`isosceles::arch::pipeline`) at group granularity. For each pipeline
//! group it accounts:
//!
//! - **Weight time** `T_w`: all member layers' compressed weights stream
//!   from DRAM before their compute can start, so the group pays
//!   `weight_bytes / bw` up front (weight streams saturate the DRAM
//!   interface while any are pending).
//! - **Steady state**: once weights land, compute
//!   (`macs / (total_macs × pe_efficiency)`) overlaps activation traffic
//!   (`act_bytes / bw`); the slower of the two governs. Total memory time
//!   (`(weights + activations) / bw`) is a floor on the whole group.
//! - **Fill/drain**: the wavefront must propagate through the group and
//!   the proportional scheduler follows demand with a one-interval lag,
//!   so each group pays a per-layer start-up of a few
//!   [`scheduler_interval`](IsoscelesConfig::scheduler_interval)s.
//!
//! Activation traffic reproduces the simulator's stream accounting:
//! inputs crossing the group boundary are charged once per external
//! producer at `k_tiles × (1 + halo)` (K-tile re-reads, P-tile halos),
//! outputs crossing the boundary are written back once.
//!
//! Area reuses `isos-sim`'s Table II constants, with the merger cost
//! scaled linearly in radix from the paper's radix-256 anchor. Energy
//! converts the same activity mirror the simulator reports (DRAM bytes,
//! one filter-buffer byte per MAC, a 2-byte read-modify-write per MAC in
//! the context arrays) through `isos-sim`'s per-operation constants.
//!
//! Accuracy against the cycle-level model is asserted by
//! `tests/validation.rs`: within 25% total cycles on at least 9 of the 11
//! suite workloads at the default configuration (measured error is a few
//! percent on most; see DESIGN.md).

use isos_nn::graph::Network;
use isos_sim::area::{area_of, AreaConfig, AreaParams};
use isos_sim::energy::{energy_of, Activity, EnergyBreakdown, EnergyParams};
use isosceles::mapping::{map_network, ExecMode, Mapping, PipelineGroup};
use isosceles::IsoscelesConfig;
use serde::{Deserialize, Serialize};

/// Analytical estimate for one layer of a pipeline group.
///
/// Mirrors the simulator's per-layer breakdown
/// (`NetworkMetrics::layers`): weights and boundary-crossing activations
/// are attributed to the layer that streams them, and the group's cycles
/// are split in proportion to each layer's effectual MACs.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LayerEstimate {
    /// Layer name (matches the simulated breakdown's key).
    pub name: String,
    /// Estimated cycles attributed to this layer.
    pub cycles: f64,
    /// Off-chip weight traffic in bytes (exact: weights stream once).
    pub weight_bytes: f64,
    /// Off-chip activation traffic crossing the group boundary at this
    /// layer (its external inputs plus its group-leaving outputs).
    pub act_bytes: f64,
    /// Effectual MACs.
    pub macs: f64,
}

impl LayerEstimate {
    /// Total off-chip traffic in bytes.
    pub fn total_bytes(&self) -> f64 {
        self.weight_bytes + self.act_bytes
    }
}

/// Analytical estimate for one pipeline group.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct GroupEstimate {
    /// Group name (the first conv layer, as in Table IV).
    pub name: String,
    /// Estimated execution cycles.
    pub cycles: f64,
    /// Off-chip weight traffic in bytes (exact: weights stream once).
    pub weight_bytes: f64,
    /// Off-chip activation traffic in bytes (inputs + outputs + halos).
    pub act_bytes: f64,
    /// Effectual MACs (exact: the dataflow executes all of them).
    pub macs: f64,
    /// Per-member-layer estimates, in group order; their components sum
    /// back to the group totals.
    pub layers: Vec<LayerEstimate>,
}

impl GroupEstimate {
    /// Total off-chip traffic in bytes.
    pub fn total_bytes(&self) -> f64 {
        self.weight_bytes + self.act_bytes
    }
}

/// Analytical estimate for a whole network under one mapping.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct NetworkEstimate {
    /// Per-group estimates, in execution order.
    pub groups: Vec<GroupEstimate>,
    /// Total estimated cycles.
    pub cycles: f64,
    /// Total off-chip traffic in bytes.
    pub dram_bytes: f64,
    /// Total effectual MACs.
    pub macs: f64,
}

impl NetworkEstimate {
    /// Activity mirror matching what the simulator reports: DRAM traffic,
    /// one shared-SRAM (filter buffer) byte per MAC, and a read-modify-
    /// write of a 2-byte partial in lane-local SRAM per MAC.
    pub fn activity(&self, cfg: &IsoscelesConfig) -> Activity {
        Activity {
            dram_bytes: self.dram_bytes,
            shared_sram_bytes: self.macs,
            local_sram_bytes: self.macs * 2.0 * cfg.accumulator_bytes() as f64,
            macs: self.macs,
        }
    }

    /// Estimated energy per inference.
    pub fn energy(&self, cfg: &IsoscelesConfig, params: &EnergyParams) -> EnergyBreakdown {
        energy_of(&self.activity(cfg), params)
    }

    /// Estimated energy per inference in millijoules, default constants.
    pub fn energy_mj(&self, cfg: &IsoscelesConfig) -> f64 {
        self.energy(cfg, &EnergyParams::default()).total_mj()
    }

    /// Flattened per-layer estimates across all groups, in execution
    /// order (the analytical mirror of `NetworkMetrics::layers`).
    pub fn layers(&self) -> impl Iterator<Item = &LayerEstimate> {
        self.groups.iter().flat_map(|g| g.layers.iter())
    }
}

/// Estimates one pipeline group analytically.
pub fn estimate_group(
    net: &Network,
    cfg: &IsoscelesConfig,
    group: &PipelineGroup,
) -> GroupEstimate {
    let bw = cfg.dram_bytes_per_cycle.max(1e-9);
    let peak = (cfg.total_macs() as f64 * cfg.pe_efficiency).max(1e-9);
    let interval = cfg.scheduler_interval as f64;

    let mut weight_bytes = 0.0;
    let mut macs = 0.0;
    let mut in_bytes = 0.0;
    let mut out_bytes = 0.0;
    let mut seen_ext: Vec<usize> = Vec::new();
    let mut layer_ests: Vec<LayerEstimate> = Vec::with_capacity(group.layers.len());

    for &id in &group.layers {
        let layer = net.layer(id);
        let layer_weight = layer.weight_csf_bytes();
        let layer_macs = layer.effectual_macs();
        weight_bytes += layer_weight;
        macs += layer_macs;

        // External input streams, deduplicated per producer exactly as the
        // simulator's `ext_index` does (network inputs get a synthetic key
        // so two root layers don't share a stream).
        let (r_kernel, _) = layer.kind.kernel();
        let halo_frac = if group.p_tiles > 1 && layer.input.h > 0 {
            ((group.p_tiles - 1) * r_kernel.saturating_sub(1)) as f64 / layer.input.h as f64
        } else {
            0.0
        };
        let scale = group.k_tiles as f64 * (1.0 + halo_frac);
        let inputs = &net.nodes()[id].inputs;
        let mut layer_act = 0.0;
        if inputs.is_empty() && !seen_ext.contains(&(id + 1_000_000)) {
            seen_ext.push(id + 1_000_000);
            layer_act += layer.in_act_csf_bytes() * scale;
        }
        for &p in inputs {
            if !group.layers.contains(&p) && !seen_ext.contains(&p) {
                seen_ext.push(p);
                layer_act += layer.in_act_csf_bytes() * scale;
            }
        }
        in_bytes += layer_act;

        // Outputs leaving the group write back to DRAM.
        let consumers = net.consumers(id);
        if consumers.is_empty() || consumers.iter().any(|c| !group.layers.contains(c)) {
            let leaving = layer.out_act_csf_bytes();
            out_bytes += leaving;
            layer_act += leaving;
        }
        layer_ests.push(LayerEstimate {
            name: layer.name.clone(),
            cycles: 0.0,
            weight_bytes: layer_weight,
            act_bytes: layer_act,
            macs: layer_macs,
        });
    }

    let act_bytes = in_bytes + out_bytes;
    let t_weights = weight_bytes / bw;
    let t_compute = macs / peak;
    let t_act = act_bytes / bw;
    let t_mem_total = (weight_bytes + act_bytes) / bw;

    // Weights serialize ahead of compute; then compute overlaps the
    // activation streams, with total memory time as a floor. Fill/drain
    // charges the scheduler's one-interval demand lag per member layer
    // plus a constant start/finish quantization.
    let steady = (t_weights + t_compute.max(t_act)).max(t_mem_total);
    let fill =
        interval * (FILL_BASE_INTERVALS + FILL_PER_LAYER_INTERVALS * group.layers.len() as f64);
    let cycles = steady + fill;

    // Attribute the group's cycles to its layers by MAC share, mirroring
    // the simulator's apportionment of its interval-loop cycles.
    let n = layer_ests.len().max(1) as f64;
    for l in &mut layer_ests {
        l.cycles = if macs > 0.0 {
            cycles * (l.macs / macs)
        } else {
            cycles / n
        };
    }

    GroupEstimate {
        name: group.name.clone(),
        cycles,
        weight_bytes,
        act_bytes,
        macs,
        layers: layer_ests,
    }
}

/// Scheduler-start/finish quantization charged once per group, in
/// intervals. Calibrated against the cycle-level model on the 11-workload
/// suite (tests/validation.rs).
const FILL_BASE_INTERVALS: f64 = 2.0;
/// Wavefront fill + one-interval demand lag per member layer, in
/// intervals. Calibrated likewise.
const FILL_PER_LAYER_INTERVALS: f64 = 1.5;

/// Estimates a whole network under an explicit mapping.
pub fn estimate_mapping(
    net: &Network,
    cfg: &IsoscelesConfig,
    mapping: &Mapping,
) -> NetworkEstimate {
    let mut out = NetworkEstimate::default();
    for group in &mapping.groups {
        let g = estimate_group(net, cfg, group);
        out.cycles += g.cycles;
        out.dram_bytes += g.total_bytes();
        out.macs += g.macs;
        out.groups.push(g);
    }
    out
}

/// Estimates a whole network under the greedy mapper's plan (what the
/// cycle-level [`Accelerator`](isosceles::accel::Accelerator) impl runs).
pub fn estimate_network(net: &Network, cfg: &IsoscelesConfig) -> NetworkEstimate {
    let mapping = map_network(net, cfg, ExecMode::Pipelined);
    estimate_mapping(net, cfg, &mapping)
}

/// Derives the area-model configuration for an accelerator config.
pub fn area_config_of(cfg: &IsoscelesConfig) -> AreaConfig {
    AreaConfig {
        lanes: cfg.lanes as u32,
        macs_per_lane: cfg.macs_per_lane as u32,
        mergers_per_lane: cfg.mergers_per_lane as u32,
        lane_sram_kb: ((cfg.context_bytes_per_lane + cfg.queue_bytes_per_lane) / 1024) as u32,
        filter_buffer_kb: (cfg.filter_buffer_bytes / 1024) as u32,
    }
}

/// Total area in mm² at 45 nm for an accelerator config.
///
/// Table II's merger constant is anchored at the paper's radix-256
/// design; a merger's comparator tree grows linearly in radix, so the
/// per-merger cost is scaled by `merger_radix / 256`.
pub fn area_mm2(cfg: &IsoscelesConfig) -> f64 {
    let mut params = AreaParams::default();
    params.merger_mm2 *= cfg.merger_radix as f64 / 256.0;
    area_of(&area_config_of(cfg), &params).total_mm2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use isos_nn::models::suite_workload;

    #[test]
    fn estimate_traffic_components_are_positive_and_consistent() {
        let net = suite_workload("G58", 1).network;
        let cfg = IsoscelesConfig::default();
        let est = estimate_network(&net, &cfg);
        assert!(est.cycles > 0.0);
        assert!(est.macs > 0.0);
        let group_bytes: f64 = est.groups.iter().map(GroupEstimate::total_bytes).sum();
        assert!((est.dram_bytes - group_bytes).abs() < 1e-6);
        let group_cycles: f64 = est.groups.iter().map(|g| g.cycles).sum();
        assert!((est.cycles - group_cycles).abs() < 1e-6);
    }

    #[test]
    fn layer_estimates_sum_to_group_totals() {
        let net = suite_workload("R96", 1).network;
        let cfg = IsoscelesConfig::default();
        let est = estimate_network(&net, &cfg);
        for g in &est.groups {
            assert!(!g.layers.is_empty(), "group {} has layers", g.name);
            let cycles: f64 = g.layers.iter().map(|l| l.cycles).sum();
            let weight: f64 = g.layers.iter().map(|l| l.weight_bytes).sum();
            let act: f64 = g.layers.iter().map(|l| l.act_bytes).sum();
            let macs: f64 = g.layers.iter().map(|l| l.macs).sum();
            assert!((cycles - g.cycles).abs() / g.cycles.max(1.0) < 1e-9);
            assert!((weight - g.weight_bytes).abs() / g.weight_bytes.max(1.0) < 1e-9);
            assert!((act - g.act_bytes).abs() / g.act_bytes.max(1.0) < 1e-9);
            assert!((macs - g.macs).abs() / g.macs.max(1.0) < 1e-9);
        }
        let flat: usize = est.layers().count();
        let per_group: usize = est.groups.iter().map(|g| g.layers.len()).sum();
        assert_eq!(flat, per_group);
    }

    #[test]
    fn estimated_macs_are_exact() {
        let net = suite_workload("R96", 1).network;
        let cfg = IsoscelesConfig::default();
        let est = estimate_network(&net, &cfg);
        let expected = net.total_effectual_macs();
        assert!((est.macs - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn default_area_matches_table2() {
        let a = area_mm2(&IsoscelesConfig::default());
        assert!((a - 25.932).abs() < 1e-9, "area {a}");
    }

    #[test]
    fn merger_radix_scales_area() {
        let base = IsoscelesConfig::default();
        let mut small = base;
        small.merger_radix = 64;
        // Radix-64 mergers cost a quarter: total drops by 3/4 of the
        // merger budget (64 lanes × 16 × 0.00375 = 3.84 mm²).
        let delta = area_mm2(&base) - area_mm2(&small);
        assert!((delta - 3.84 * 0.75).abs() < 1e-9, "delta {delta}");
    }

    #[test]
    fn bigger_machine_estimates_fewer_cycles_more_area() {
        let net = suite_workload("V68", 1).network;
        let base = IsoscelesConfig::default();
        let mut big = base;
        big.lanes = 128;
        let eb = estimate_network(&net, &base);
        let eg = estimate_network(&net, &big);
        assert!(eg.cycles < eb.cycles);
        assert!(area_mm2(&big) > area_mm2(&base));
    }

    #[test]
    fn energy_mirrors_activity() {
        let net = suite_workload("M75", 1).network;
        let cfg = IsoscelesConfig::default();
        let est = estimate_network(&net, &cfg);
        let act = est.activity(&cfg);
        assert_eq!(act.dram_bytes, est.dram_bytes);
        assert_eq!(act.macs, est.macs);
        assert_eq!(act.local_sram_bytes, est.macs * 4.0);
        assert!(est.energy_mj(&cfg) > 0.0);
    }
}
