//! Analytical-model-guided design-space exploration for ISOSceles.
//!
//! The cycle-level simulator answers "how fast is *this* configuration"
//! in milliseconds; this crate answers "which configuration should we
//! build" by layering three pieces on top of it:
//!
//! - [`model`]: a closed-form cost model estimating cycles, DRAM traffic,
//!   energy, and area for any [`IsoscelesConfig`](isosceles::IsoscelesConfig)
//!   and workload — no simulation, validated within 25% of the
//!   cycle-level model on the paper's 11-CNN suite;
//! - [`space`] + [`mod@search`]: an enumerator over lane count, filter-buffer
//!   capacity, merger radix, and pipeline partitioning, with a driver
//!   that screens every point analytically and dispatches the top-K
//!   survivors to the cycle-level simulator through the parallel, cached
//!   suite engine;
//! - [`pareto`] + [`report`]: non-dominated frontier extraction over
//!   (cycles, mm², mJ) and JSON/CSV/markdown export;
//! - [`arch`]: declarative accelerator descriptions — architectures
//!   specified as TOML/JSON data (buffer hierarchy, sparsity features,
//!   dataflow) and lowered onto the shared sim substrate, so whole
//!   architecture *families* enumerate through the same screen-then-
//!   simulate flow.
//!
//! The `dse` binary wires these together:
//! `cargo run --release -p isos-explore --bin dse -- --net R96 --top-k 8`.
//!
//! # Examples
//!
//! ```
//! use isos_explore::model::estimate_network;
//! use isosceles::IsoscelesConfig;
//! let net = isos_nn::models::suite_workload("G58", 1).network;
//! let est = estimate_network(&net, &IsoscelesConfig::default());
//! assert!(est.cycles > 0.0 && est.dram_bytes > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arch;
pub mod model;
pub mod pareto;
pub mod report;
pub mod search;
pub mod space;

pub use arch::{ArchAccel, ArchDesc, ArchError};
pub use model::{area_mm2, estimate_mapping, estimate_network, NetworkEstimate};
pub use pareto::pareto_indices;
pub use search::{search, search_arch, ArchSearchResult, SearchOptions, SearchResult};
pub use space::{ArchPoint, ArchSpace, DesignPoint, DesignSpace};
