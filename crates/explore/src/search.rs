//! The search driver: analytically screen every enumerated design point,
//! then dispatch the survivors to the cycle-level simulator through the
//! parallel, cached suite engine.
//!
//! Two parallel flows share the pattern. [`search`] sweeps
//! [`IsoscelesConfig`] points ([`DesignSpace`]); [`search_arch`] sweeps
//! declarative [`ArchPoint`]s — descriptions of whole architecture
//! families — screening each through its interpreter's
//! [`ArchAccel::estimate`] and simulating survivors through the same
//! cached engine (described points cache under their description hash).

use crate::arch::{reference, ArchAccel, ArchError};
use crate::model::{area_mm2, estimate_network, NetworkEstimate};
use crate::pareto::pareto_indices;
use crate::space::{ArchPoint, DesignPoint, DesignSpace};
use isos_nn::models::Workload;
use isos_sim::energy::{energy_of, EnergyParams};
use isos_stream::StreamConfig;
use isosceles::accel::Accelerator;
use isosceles::IsoscelesConfig;
use isosceles_bench::engine::{CacheStats, SuiteEngine};
use isosceles_bench::stream::run_stream_cached;
use serde::{Deserialize, Serialize};

/// One analytically screened design point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScreenedPoint {
    /// The candidate.
    pub point: DesignPoint,
    /// Analytical estimate for the workload.
    pub estimate: NetworkEstimate,
    /// Total area in mm² at 45 nm.
    pub area_mm2: f64,
    /// Estimated energy per inference in millijoules.
    pub energy_mj: f64,
}

/// Screens every point of `space` against `workload` analytically —
/// thousands of points cost milliseconds, no simulation — sorted by
/// estimated cycles ascending.
pub fn screen(workload: &Workload, space: &DesignSpace) -> Vec<ScreenedPoint> {
    let mut screened: Vec<ScreenedPoint> = space
        .enumerate()
        .into_iter()
        .map(|point| {
            let estimate = estimate_network(&workload.network, &point.config);
            let area_mm2 = area_mm2(&point.config);
            let energy_mj = estimate.energy_mj(&point.config);
            ScreenedPoint {
                point,
                estimate,
                area_mm2,
                energy_mj,
            }
        })
        .collect();
    screened.sort_by(|a, b| a.estimate.cycles.total_cmp(&b.estimate.cycles));
    screened
}

/// Search parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SearchOptions {
    /// How many screened survivors to simulate cycle-level.
    pub top_k: usize,
    /// Area budget in mm² at 45 nm; screened points above it are
    /// discarded before the top-K cut (the paper-default reference point
    /// is always simulated regardless, so speedups stay anchored).
    pub budget_mm2: Option<f64>,
}

impl Default for SearchOptions {
    fn default() -> Self {
        Self {
            top_k: 8,
            budget_mm2: None,
        }
    }
}

/// One cycle-level-simulated design point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EvaluatedPoint {
    /// Label from the design space (`paper-default` for the anchor).
    pub label: String,
    /// The full configuration.
    pub config: IsoscelesConfig,
    /// Cycle-level simulated cycles.
    pub cycles: u64,
    /// Analytical estimate, for model-error reporting.
    pub est_cycles: f64,
    /// Total area in mm² at 45 nm.
    pub area_mm2: f64,
    /// Simulated energy per inference in millijoules.
    pub energy_mj: f64,
    /// Speedup over the paper-default configuration (>1 = faster).
    pub speedup_vs_default: f64,
}

impl EvaluatedPoint {
    /// Relative error of the analytical estimate vs the simulation.
    pub fn model_error(&self) -> f64 {
        (self.est_cycles - self.cycles as f64).abs() / self.cycles as f64
    }
}

/// A finished search.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SearchResult {
    /// Workload id (`"R96"`, ...).
    pub workload: String,
    /// Points analytically screened.
    pub screened: usize,
    /// Points discarded by the area budget.
    pub over_budget: usize,
    /// Simulated points, sorted by simulated cycles ascending.
    pub evaluated: Vec<EvaluatedPoint>,
    /// Indices into `evaluated` of the (cycles, area, energy) Pareto
    /// frontier, minimizing all three.
    pub frontier: Vec<usize>,
    /// Engine cache counters for the simulation batch.
    pub cache: CacheStats,
    /// Wall time of the simulation batch in milliseconds.
    pub sim_wall_millis: f64,
}

impl SearchResult {
    /// The frontier as evaluated points.
    pub fn frontier_points(&self) -> Vec<&EvaluatedPoint> {
        self.frontier.iter().map(|&i| &self.evaluated[i]).collect()
    }
}

/// Runs the full screen-then-simulate search for one workload.
///
/// The analytical model ranks every point in `space`; the area budget
/// (if any) and the top-K cut pick the survivors; the suite engine
/// simulates them — in parallel, memoized across repeated searches — and
/// the Pareto frontier is extracted from the simulated (cycles, mm², mJ).
pub fn search(
    engine: &SuiteEngine,
    workload: &Workload,
    space: &DesignSpace,
    opts: &SearchOptions,
    seed: u64,
) -> SearchResult {
    let screened = screen(workload, space);
    let total = screened.len();
    let within: Vec<ScreenedPoint> = screened
        .into_iter()
        .filter(|s| opts.budget_mm2.is_none_or(|b| s.area_mm2 <= b))
        .collect();
    let over_budget = total - within.len();

    // Survivors: best-estimated K, plus the paper default as the anchor
    // every speedup is measured against.
    let mut survivors: Vec<DesignPoint> = within
        .into_iter()
        .take(opts.top_k.max(1))
        .map(|s| s.point)
        .collect();
    let default_cfg = IsoscelesConfig::default();
    if !survivors.iter().any(|p| p.config == default_cfg) {
        survivors.push(DesignPoint {
            label: "paper-default".into(),
            config: default_cfg,
        });
    }

    let accels: Vec<&dyn Accelerator> = survivors
        .iter()
        .map(|p| &p.config as &dyn Accelerator)
        .collect();
    let (grid, stats) = engine.run_matrix(std::slice::from_ref(workload), &accels, seed);
    let metrics = &grid[0];

    let default_cycles = survivors
        .iter()
        .zip(metrics)
        .find(|(p, _)| p.config == default_cfg)
        .map(|(_, m)| m.total.cycles)
        .expect("default anchor always simulated");

    let mut evaluated: Vec<EvaluatedPoint> = survivors
        .iter()
        .zip(metrics)
        .map(|(p, m)| {
            let est = estimate_network(&workload.network, &p.config);
            let energy = energy_of(&m.total.activity, &EnergyParams::default());
            EvaluatedPoint {
                label: p.label.clone(),
                config: p.config,
                cycles: m.total.cycles,
                est_cycles: est.cycles,
                area_mm2: area_mm2(&p.config),
                energy_mj: energy.total_mj(),
                speedup_vs_default: default_cycles as f64 / m.total.cycles as f64,
            }
        })
        .collect();
    evaluated.sort_by_key(|e| e.cycles);

    let objectives: Vec<Vec<f64>> = evaluated
        .iter()
        .map(|e| vec![e.cycles as f64, e.area_mm2, e.energy_mj])
        .collect();
    let frontier = pareto_indices(&objectives);

    SearchResult {
        workload: workload.id.to_string(),
        screened: total,
        over_budget,
        evaluated,
        frontier,
        cache: stats.cache(),
        sim_wall_millis: stats.wall_millis,
    }
}

/// One simulated `(design point, batch size)` streaming scenario.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StreamEvaluatedPoint {
    /// Label from the design space (`paper-default` for the anchor).
    pub label: String,
    /// The full configuration.
    pub config: IsoscelesConfig,
    /// Batch size of this scenario.
    pub batch: u64,
    /// Stream makespan in cycles.
    pub cycles: u64,
    /// Median request latency in cycles.
    pub p50_cycles: u64,
    /// 95th-percentile request latency in cycles.
    pub p95_cycles: u64,
    /// 99th-percentile request latency in cycles.
    pub p99_cycles: u64,
    /// Throughput in images per second at the modeled clock.
    pub throughput_imgs_per_sec: f64,
    /// Total area in mm² at 45 nm.
    pub area_mm2: f64,
    /// Simulated energy for the whole stream in millijoules.
    pub energy_mj: f64,
}

impl StreamEvaluatedPoint {
    /// Average cycles per image (inverse throughput in cycle units).
    pub fn cycles_per_image(&self, requests: u64) -> f64 {
        self.cycles as f64 / requests.max(1) as f64
    }
}

/// A finished streaming search over the `(design point, batch)` grid.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StreamSearchResult {
    /// Workload id.
    pub workload: String,
    /// Requests per stream.
    pub requests: u64,
    /// Batch sizes swept.
    pub batches: Vec<u64>,
    /// Points analytically screened.
    pub screened: usize,
    /// Points discarded by the area budget.
    pub over_budget: usize,
    /// Simulated scenarios, sorted by cycles-per-image ascending.
    pub evaluated: Vec<StreamEvaluatedPoint>,
    /// Indices into `evaluated` of the (p99, cycles-per-image, mm²)
    /// Pareto frontier — the latency-vs-throughput trade batching buys.
    pub frontier: Vec<usize>,
}

impl StreamSearchResult {
    /// The frontier as evaluated scenarios.
    pub fn frontier_points(&self) -> Vec<&StreamEvaluatedPoint> {
        self.frontier.iter().map(|&i| &self.evaluated[i]).collect()
    }
}

/// Runs the screen-then-simulate search under a streaming scenario,
/// adding the batch size as an explicit design axis.
///
/// Screening and survivor selection are identical to [`search`] (the
/// arrival process does not change the per-image analytical ranking);
/// each survivor then streams `base.requests` requests at every batch
/// size in `batches`, and the Pareto frontier is extracted from
/// (p99 latency, cycles-per-image, area) — batching trades tail
/// latency against amortized weight traffic, so both must be
/// objectives for the trade to be visible.
pub fn search_stream(
    engine: &SuiteEngine,
    workload: &Workload,
    space: &DesignSpace,
    opts: &SearchOptions,
    batches: &[u64],
    base: &StreamConfig,
    seed: u64,
) -> StreamSearchResult {
    let batches: Vec<u64> = if batches.is_empty() {
        vec![base.batch]
    } else {
        batches.to_vec()
    };
    let screened = screen(workload, space);
    let total = screened.len();
    let within: Vec<ScreenedPoint> = screened
        .into_iter()
        .filter(|s| opts.budget_mm2.is_none_or(|b| s.area_mm2 <= b))
        .collect();
    let over_budget = total - within.len();

    let mut survivors: Vec<DesignPoint> = within
        .into_iter()
        .take(opts.top_k.max(1))
        .map(|s| s.point)
        .collect();
    let default_cfg = IsoscelesConfig::default();
    if !survivors.iter().any(|p| p.config == default_cfg) {
        survivors.push(DesignPoint {
            label: "paper-default".into(),
            config: default_cfg,
        });
    }

    let mut evaluated: Vec<StreamEvaluatedPoint> = survivors
        .iter()
        .flat_map(|p| {
            batches.iter().map(|&batch| {
                let cfg = StreamConfig { batch, ..*base };
                let (s, _) = run_stream_cached(engine, &p.config, workload.id, seed, &cfg);
                let energy = energy_of(&s.total.activity, &EnergyParams::default());
                StreamEvaluatedPoint {
                    label: p.label.clone(),
                    config: p.config,
                    batch,
                    cycles: s.total.cycles,
                    p50_cycles: s.p50(),
                    p95_cycles: s.p95(),
                    p99_cycles: s.p99(),
                    throughput_imgs_per_sec: s.throughput_imgs_per_sec(cfg.clock_ghz),
                    area_mm2: area_mm2(&p.config),
                    energy_mj: energy.total_mj(),
                }
            })
        })
        .collect();
    evaluated.sort_by(|a, b| a.cycles.cmp(&b.cycles).then(a.batch.cmp(&b.batch)));

    let objectives: Vec<Vec<f64>> = evaluated
        .iter()
        .map(|e| {
            vec![
                e.p99_cycles as f64,
                e.cycles_per_image(base.requests),
                e.area_mm2,
            ]
        })
        .collect();
    let frontier = pareto_indices(&objectives);

    StreamSearchResult {
        workload: workload.id.to_string(),
        requests: base.requests,
        batches,
        screened: total,
        over_budget,
        evaluated,
        frontier,
    }
}

/// One analytically screened described point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ArchScreenedPoint {
    /// The candidate description.
    pub point: ArchPoint,
    /// Analytical estimate for the workload (via the interpreter).
    pub estimate: NetworkEstimate,
    /// Total area in mm² at 45 nm, from the described hierarchy.
    pub area_mm2: f64,
    /// Estimated energy per inference in millijoules.
    pub energy_mj: f64,
}

/// Screens described points against `workload` analytically, sorted by
/// estimated cycles ascending.
///
/// # Errors
///
/// Fails on the first description that does not validate (points from
/// [`crate::space::ArchSpace`] or `load_dir` are valid by
/// construction).
pub fn screen_arch(
    workload: &Workload,
    points: &[ArchPoint],
) -> Result<Vec<ArchScreenedPoint>, ArchError> {
    let mut screened = Vec::with_capacity(points.len());
    for point in points {
        let accel = ArchAccel::new(point.desc.clone())
            .map_err(|e| ArchError::new(format!("point `{}`: {e}", point.label)))?;
        let estimate = accel.estimate(&workload.network);
        // All described datapaths use 16-bit accumulators (the schema
        // does not parameterize precision), so the default conversion
        // constants apply to every family.
        let energy_mj = estimate.energy_mj(&IsoscelesConfig::default());
        screened.push(ArchScreenedPoint {
            point: point.clone(),
            area_mm2: accel.area_mm2(),
            energy_mj,
            estimate,
        });
    }
    screened.sort_by(|a, b| a.estimate.cycles.total_cmp(&b.estimate.cycles));
    Ok(screened)
}

/// One simulated described point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ArchEvaluatedPoint {
    /// Label from the space (`paper-default` for the anchor).
    pub label: String,
    /// The full description.
    pub desc: crate::arch::ArchDesc,
    /// Simulated cycles (cycle-level for IS-OS machines, the exact
    /// closed form for the analytic families).
    pub cycles: u64,
    /// Analytical screening estimate, for model-error reporting.
    pub est_cycles: f64,
    /// Total area in mm² at 45 nm.
    pub area_mm2: f64,
    /// Simulated energy per inference in millijoules.
    pub energy_mj: f64,
    /// Speedup over the paper-default ISOSceles description.
    pub speedup_vs_default: f64,
}

impl ArchEvaluatedPoint {
    /// Relative error of the analytical estimate vs the simulation.
    pub fn model_error(&self) -> f64 {
        (self.est_cycles - self.cycles as f64).abs() / self.cycles as f64
    }
}

/// A finished described-architecture search.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ArchSearchResult {
    /// Workload id.
    pub workload: String,
    /// Described points analytically screened.
    pub screened: usize,
    /// Points discarded by the area budget.
    pub over_budget: usize,
    /// Simulated points, sorted by simulated cycles ascending.
    pub evaluated: Vec<ArchEvaluatedPoint>,
    /// Indices into `evaluated` of the (cycles, mm², mJ) frontier.
    pub frontier: Vec<usize>,
    /// Engine cache counters for the simulation batch.
    pub cache: CacheStats,
    /// Wall time of the simulation batch in milliseconds.
    pub sim_wall_millis: f64,
}

impl ArchSearchResult {
    /// The frontier as evaluated points.
    pub fn frontier_points(&self) -> Vec<&ArchEvaluatedPoint> {
        self.frontier.iter().map(|&i| &self.evaluated[i]).collect()
    }
}

/// Runs the screen-then-simulate search over described architectures.
///
/// Same shape as [`search`]: analytic ranking, optional area budget,
/// top-K cut, engine simulation (parallel + cached: described points
/// key the cache by their description hash), Pareto extraction. The
/// anchor every speedup is measured against is the paper's ISOSceles
/// description ([`reference::isosceles`]).
///
/// # Errors
///
/// Propagates [`screen_arch`]'s validation failures.
pub fn search_arch(
    engine: &SuiteEngine,
    workload: &Workload,
    points: &[ArchPoint],
    opts: &SearchOptions,
    seed: u64,
) -> Result<ArchSearchResult, ArchError> {
    let screened = screen_arch(workload, points)?;
    let total = screened.len();
    let within: Vec<ArchScreenedPoint> = screened
        .into_iter()
        .filter(|s| opts.budget_mm2.is_none_or(|b| s.area_mm2 <= b))
        .collect();
    let over_budget = total - within.len();

    let mut survivors: Vec<ArchPoint> = within
        .into_iter()
        .take(opts.top_k.max(1))
        .map(|s| s.point)
        .collect();
    let anchor_desc = reference::isosceles();
    if !survivors.iter().any(|p| p.desc == anchor_desc) {
        survivors.push(ArchPoint {
            label: "paper-default".into(),
            desc: anchor_desc.clone(),
        });
    }

    let accels: Vec<ArchAccel> = survivors
        .iter()
        .map(|p| {
            ArchAccel::new(p.desc.clone()).expect("survivors already validated during screening")
        })
        .collect();
    let dyn_accels: Vec<&dyn Accelerator> = accels.iter().map(|a| a as &dyn Accelerator).collect();
    let (grid, stats) = engine.run_matrix(std::slice::from_ref(workload), &dyn_accels, seed);
    let metrics = &grid[0];

    let default_cycles = survivors
        .iter()
        .zip(metrics)
        .find(|(p, _)| p.desc == anchor_desc)
        .map(|(_, m)| m.total.cycles)
        .expect("anchor always simulated");

    let mut evaluated: Vec<ArchEvaluatedPoint> = survivors
        .iter()
        .zip(&accels)
        .zip(metrics)
        .map(|((p, accel), m)| {
            let est = accel.estimate(&workload.network);
            let energy = energy_of(&m.total.activity, &EnergyParams::default());
            ArchEvaluatedPoint {
                label: p.label.clone(),
                desc: p.desc.clone(),
                cycles: m.total.cycles,
                est_cycles: est.cycles,
                area_mm2: accel.area_mm2(),
                energy_mj: energy.total_mj(),
                speedup_vs_default: default_cycles as f64 / m.total.cycles as f64,
            }
        })
        .collect();
    evaluated.sort_by_key(|e| e.cycles);

    let objectives: Vec<Vec<f64>> = evaluated
        .iter()
        .map(|e| vec![e.cycles as f64, e.area_mm2, e.energy_mj])
        .collect();
    let frontier = pareto_indices(&objectives);

    Ok(ArchSearchResult {
        workload: workload.id.to_string(),
        screened: total,
        over_budget,
        evaluated,
        frontier,
        cache: stats.cache(),
        sim_wall_millis: stats.wall_millis,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use isos_nn::models::suite_workload;

    #[test]
    fn screen_orders_by_estimated_cycles_and_keeps_every_point() {
        let w = suite_workload("G58", 1);
        let space = DesignSpace::smoke();
        let screened = screen(&w, &space);
        assert_eq!(screened.len(), space.len());
        assert!(screened
            .windows(2)
            .all(|p| p[0].estimate.cycles <= p[1].estimate.cycles));
        assert!(screened.iter().all(|s| s.area_mm2 > 0.0));
        assert!(screened.iter().all(|s| s.energy_mj > 0.0));
    }

    #[test]
    fn arch_screen_covers_families_and_orders_by_cycles() {
        let w = suite_workload("G58", 1);
        let points = crate::space::ArchSpace::smoke().enumerate();
        let screened = screen_arch(&w, &points).unwrap();
        assert_eq!(screened.len(), points.len());
        assert!(screened
            .windows(2)
            .all(|p| p[0].estimate.cycles <= p[1].estimate.cycles));
        assert!(screened.iter().all(|s| s.area_mm2 > 0.0));
        assert!(screened.iter().all(|s| s.energy_mj > 0.0));
    }

    #[test]
    fn arch_screen_reports_invalid_points_by_label() {
        let w = suite_workload("G58", 1);
        let mut bad = crate::space::ArchPoint {
            label: "broken".into(),
            desc: crate::arch::reference::sparten(),
        };
        bad.desc.levels[0].bytes = 0;
        let err = screen_arch(&w, &[bad]).unwrap_err();
        assert!(err.message().contains("broken"), "{err}");
        assert!(err.message().contains("zero size"), "{err}");
    }

    #[test]
    fn stream_search_sweeps_the_batch_axis() {
        use isosceles_bench::engine::{EngineOptions, SuiteEngine};

        let w = suite_workload("G58", 1);
        let space = DesignSpace::smoke();
        let engine = SuiteEngine::new(EngineOptions {
            threads: 2,
            use_cache: false,
            quiet: true,
            ..EngineOptions::default()
        });
        let opts = SearchOptions {
            top_k: 2,
            budget_mm2: None,
        };
        let base = StreamConfig {
            requests: 4,
            ..StreamConfig::default()
        };
        let result = search_stream(&engine, &w, &space, &opts, &[1, 2], &base, 1);

        // Every survivor (top-2 + the paper-default anchor) ran at both
        // batch sizes.
        assert_eq!(result.batches, vec![1, 2]);
        assert_eq!(result.evaluated.len() % 2, 0);
        assert!(result.evaluated.len() >= 4);
        assert!(!result.frontier.is_empty());
        // The paper-default anchor is always simulated, either as one of
        // the space's own points or as the appended anchor.
        assert!(result
            .evaluated
            .iter()
            .any(|e| e.config == IsoscelesConfig::default()));

        for e in &result.evaluated {
            assert!(e.p50_cycles <= e.p95_cycles && e.p95_cycles <= e.p99_cycles);
            assert!(e.throughput_imgs_per_sec > 0.0);
            assert!(e.area_mm2 > 0.0 && e.energy_mj > 0.0);
        }
        // Batching amortizes weight traffic: for any fixed config, the
        // batch-2 stream never has a longer makespan than batch-1.
        for e in &result.evaluated {
            if e.batch == 2 {
                let b1 = result
                    .evaluated
                    .iter()
                    .find(|o| o.batch == 1 && o.config == e.config)
                    .expect("batch-1 twin");
                assert!(
                    e.cycles <= b1.cycles,
                    "{}: batching slowed it down",
                    e.label
                );
                assert!(e.throughput_imgs_per_sec >= b1.throughput_imgs_per_sec);
            }
        }
    }

    #[test]
    fn budget_filter_discards_large_points() {
        let w = suite_workload("G58", 1);
        let space = DesignSpace::smoke();
        let screened = screen(&w, &space);
        let min_area = screened
            .iter()
            .map(|s| s.area_mm2)
            .fold(f64::INFINITY, f64::min);
        let max_area = screened.iter().map(|s| s.area_mm2).fold(0.0, f64::max);
        assert!(min_area < max_area, "smoke space should span areas");
    }
}
