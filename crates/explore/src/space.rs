//! Design-point enumeration: the swept architectural axes and the
//! alternative pipeline-group partitions.
//!
//! Two enumerators live here. [`DesignSpace`] sweeps the hand-written
//! ISOSceles configuration ([`IsoscelesConfig`]) directly.
//! [`ArchSpace`] generalizes that to whole architecture *families*
//! described as data: it stamps out declarative [`ArchDesc`] points
//! across three dataflow templates (IS-OS, output-stationary,
//! fused-tile), so a single sweep covers machines as different as
//! ISOSceles, SparTen-likes, and Fused-Layer-likes — all screened by
//! the same analytic flow and simulated through the same engine.

use crate::arch::{reference, ArchDesc};
use isos_nn::graph::Network;
use isosceles::mapping::{map_network, ExecMode, Mapping};
use isosceles::IsoscelesConfig;
use serde::{Deserialize, Serialize};

/// One candidate accelerator configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Short label encoding the swept values, e.g. `l64-fb1024-r256-c16`.
    pub label: String,
    /// The full configuration (unswept fields at their defaults).
    pub config: IsoscelesConfig,
}

/// The swept axes. Every combination is one [`DesignPoint`]; unlisted
/// [`IsoscelesConfig`] fields stay at their defaults.
///
/// `max_contexts` is the partitioning axis: it bounds how many layers the
/// greedy mapper may pipeline per group, so sweeping it explores the
/// `map_network` alternatives from layer-by-layer (1) to the paper's
/// deepest pipelines (16). [`enumerate_partitions`] additionally yields
/// explicit sub-partitions of one configuration's plan for analytical
/// comparison.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DesignSpace {
    /// Lane counts (64 MACs each at default `macs_per_lane`).
    pub lanes: Vec<usize>,
    /// Shared filter-buffer capacities in KB.
    pub filter_buffer_kb: Vec<u64>,
    /// Merger radices (area axis; Sec. IV-A).
    pub merger_radix: Vec<usize>,
    /// Context counts: the pipeline-partitioning axis.
    pub max_contexts: Vec<usize>,
}

impl Default for DesignSpace {
    fn default() -> Self {
        Self {
            lanes: vec![16, 32, 64, 128],
            filter_buffer_kb: vec![256, 512, 1024, 2048],
            merger_radix: vec![64, 128, 256],
            max_contexts: vec![1, 2, 4, 8, 16],
        }
    }
}

impl DesignSpace {
    /// A four-point space for CI smoke runs: the paper's design plus one
    /// step along each major axis.
    pub fn smoke() -> Self {
        Self {
            lanes: vec![32, 64],
            filter_buffer_kb: vec![1024],
            merger_radix: vec![256],
            max_contexts: vec![1, 16],
        }
    }

    /// Number of points [`enumerate`](Self::enumerate) will yield.
    pub fn len(&self) -> usize {
        self.lanes.len()
            * self.filter_buffer_kb.len()
            * self.merger_radix.len()
            * self.max_contexts.len()
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes every combination as a labeled [`DesignPoint`].
    pub fn enumerate(&self) -> Vec<DesignPoint> {
        let mut points = Vec::with_capacity(self.len());
        for &lanes in &self.lanes {
            for &fb_kb in &self.filter_buffer_kb {
                for &radix in &self.merger_radix {
                    for &contexts in &self.max_contexts {
                        let config = IsoscelesConfig {
                            lanes,
                            filter_buffer_bytes: fb_kb * 1024,
                            merger_radix: radix,
                            max_contexts: contexts,
                            ..IsoscelesConfig::default()
                        };
                        points.push(DesignPoint {
                            label: format!("l{lanes}-fb{fb_kb}-r{radix}-c{contexts}"),
                            config,
                        });
                    }
                }
            }
        }
        points
    }
}

/// One candidate *described* architecture: a label plus the full
/// declarative description it denotes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ArchPoint {
    /// Short label encoding family and swept values,
    /// e.g. `isos-l64-fb1024-bw128-r256-c16`.
    pub label: String,
    /// The description (also carries the label as its name).
    pub desc: ArchDesc,
}

/// The swept axes of the declarative-architecture space.
///
/// Every combination is stamped into each applicable dataflow family's
/// reference template ([`reference::isosceles`], [`reference::sparten`],
/// [`reference::fused_layer`]): the merger/context axes apply only to
/// the IS-OS family, the tile axis only to the output-stationary (K
/// tile) and fused-tile (P/Q tile) families. The default space covers
/// 10,800 points — large enough that only analytic screening makes it
/// tractable.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ArchSpace {
    /// Lane (cluster) counts.
    pub lanes: Vec<usize>,
    /// Shared weight-buffer capacities in KB.
    pub shared_kb: Vec<u64>,
    /// DRAM bandwidths in bytes per cycle.
    pub dram_bytes_per_cycle: Vec<f64>,
    /// Merger radices (IS-OS family only).
    pub merger_radix: Vec<usize>,
    /// Context counts (IS-OS family only).
    pub contexts: Vec<usize>,
    /// Tile bounds: the K tile of output-stationary points, the P/Q
    /// tile of fused-tile points.
    pub tiles: Vec<u64>,
}

impl Default for ArchSpace {
    fn default() -> Self {
        Self {
            lanes: vec![8, 16, 24, 32, 48, 64, 96, 128, 192, 256],
            shared_kb: vec![128, 256, 384, 512, 768, 1024, 1536, 2048, 3072, 4096],
            dram_bytes_per_cycle: vec![64.0, 128.0, 256.0, 512.0],
            merger_radix: vec![64, 128, 256],
            contexts: vec![1, 2, 4, 8, 16],
            tiles: vec![8, 16, 32, 64, 128, 256],
        }
    }
}

impl ArchSpace {
    /// A ten-point space for CI smoke runs: the paper's sizing plus one
    /// step along the lane and tile axes in each family.
    pub fn smoke() -> Self {
        Self {
            lanes: vec![32, 64],
            shared_kb: vec![1024],
            dram_bytes_per_cycle: vec![128.0],
            merger_radix: vec![256],
            contexts: vec![16],
            tiles: vec![32, 64],
        }
    }

    /// Points per family and in total:
    /// `(is_os, output_stationary, fused_tile)`.
    pub fn family_sizes(&self) -> (usize, usize, usize) {
        let base = self.lanes.len() * self.shared_kb.len() * self.dram_bytes_per_cycle.len();
        (
            base * self.merger_radix.len() * self.contexts.len(),
            base * self.tiles.len(),
            base * self.tiles.len(),
        )
    }

    /// Number of points [`enumerate`](Self::enumerate) will yield.
    pub fn len(&self) -> usize {
        let (a, b, c) = self.family_sizes();
        a + b + c
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes every combination as a labeled [`ArchPoint`].
    ///
    /// Every yielded description is valid by construction (asserted in
    /// tests): the templates validate and the sweep only touches fields
    /// validation constrains jointly with nothing else.
    pub fn enumerate(&self) -> Vec<ArchPoint> {
        let mut points = Vec::with_capacity(self.len());
        for &lanes in &self.lanes {
            for &kb in &self.shared_kb {
                for &bw in &self.dram_bytes_per_cycle {
                    for &radix in &self.merger_radix {
                        for &ctx in &self.contexts {
                            let mut desc = reference::isosceles();
                            desc.compute.lanes = lanes;
                            desc.compute.merger_radix = radix;
                            desc.compute.contexts = ctx;
                            desc.memory.dram_bytes_per_cycle = bw;
                            desc.levels[0].bytes = kb * 1024;
                            let label = format!("isos-l{lanes}-fb{kb}-bw{bw:.0}-r{radix}-c{ctx}");
                            desc.name = label.clone();
                            points.push(ArchPoint { label, desc });
                        }
                    }
                    for &tile in &self.tiles {
                        let mut desc = reference::sparten();
                        desc.compute.lanes = lanes;
                        desc.memory.dram_bytes_per_cycle = bw;
                        desc.levels[0].bytes = kb * 1024;
                        desc.dataflow.loop_nest[0] = format!("K/{tile}");
                        let label = format!("os-l{lanes}-fb{kb}-bw{bw:.0}-k{tile}");
                        desc.name = label.clone();
                        points.push(ArchPoint { label, desc });

                        let mut desc = reference::fused_layer();
                        desc.compute.lanes = lanes;
                        desc.memory.dram_bytes_per_cycle = bw;
                        desc.levels[0].bytes = kb * 1024;
                        desc.dataflow.loop_nest[0] = format!("P/{tile}");
                        desc.dataflow.loop_nest[1] = format!("Q/{tile}");
                        let label = format!("fused-l{lanes}-fb{kb}-bw{bw:.0}-t{tile}");
                        desc.name = label.clone();
                        points.push(ArchPoint { label, desc });
                    }
                }
            }
        }
        points
    }
}

/// Enumerates alternative pipeline partitions of `net` under one
/// configuration: the greedy plan itself, the fully layer-by-layer plan,
/// and every plan obtained by splitting one pipelined group in half.
///
/// All returned mappings are validated by
/// [`Mapping::from_partitions`], so each covers every layer exactly once
/// in topological order.
pub fn enumerate_partitions(net: &Network, cfg: &IsoscelesConfig) -> Vec<Mapping> {
    let greedy = map_network(net, cfg, ExecMode::Pipelined);
    let base = greedy.partitions();
    let mut plans = vec![greedy];

    // Layer-by-layer: split every part into singletons. (Adds fused into
    // their conv by the single-layer mapper stay fused here too: a bare
    // singleton Add is pipeline-legal, so full decomposition is simplest.)
    let singles: Vec<Vec<usize>> = base.iter().flatten().map(|&id| vec![id]).collect();
    if singles.len() != base.len() {
        plans.push(
            Mapping::from_partitions(net, cfg, &singles)
                .expect("singleton partition of a valid plan is valid"),
        );
    }

    // Halve each pipelined group in turn.
    for (gi, part) in base.iter().enumerate() {
        if part.len() < 2 {
            continue;
        }
        let mut split = base.clone();
        let tail = split[gi].split_off(part.len() / 2);
        split.insert(gi + 1, tail);
        plans.push(
            Mapping::from_partitions(net, cfg, &split)
                .expect("splitting a valid group keeps the plan valid"),
        );
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use isos_nn::models::suite_workload;

    #[test]
    fn default_space_size_and_labels() {
        let space = DesignSpace::default();
        let points = space.enumerate();
        assert_eq!(points.len(), space.len());
        assert_eq!(points.len(), 4 * 4 * 3 * 5);
        // Labels are unique.
        let mut labels: Vec<&str> = points.iter().map(|p| p.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), points.len());
        // The paper's configuration is in the space.
        assert!(points
            .iter()
            .any(|p| p.config == IsoscelesConfig::default()));
    }

    #[test]
    fn smoke_space_is_small_and_contains_default() {
        let points = DesignSpace::smoke().enumerate();
        assert_eq!(points.len(), 4);
        assert!(points
            .iter()
            .any(|p| p.config == IsoscelesConfig::default()));
    }

    #[test]
    fn default_arch_space_exceeds_ten_thousand_points() {
        let space = ArchSpace::default();
        assert!(space.len() >= 10_000, "len {}", space.len());
        let (isos, os, fused) = space.family_sizes();
        assert_eq!(isos + os + fused, space.len());
        assert!(isos > 0 && os > 0 && fused > 0);
    }

    #[test]
    fn arch_space_enumeration_is_valid_and_uniquely_labeled() {
        let points = ArchSpace::smoke().enumerate();
        assert_eq!(points.len(), ArchSpace::smoke().len());
        let mut labels: Vec<&str> = points.iter().map(|p| p.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), points.len());
        for p in &points {
            assert_eq!(p.desc.name, p.label);
            assert!(p.desc.validate().is_ok(), "{}", p.label);
        }
    }

    #[test]
    fn full_arch_space_points_all_validate() {
        // Validity by construction, asserted over the whole 10,800.
        for p in ArchSpace::default().enumerate() {
            assert!(p.desc.validate().is_ok(), "{}", p.label);
        }
    }

    #[test]
    fn partitions_cover_every_layer_exactly_once() {
        let net = suite_workload("R96", 1).network;
        let cfg = IsoscelesConfig::default();
        let plans = enumerate_partitions(&net, &cfg);
        assert!(plans.len() >= 3, "greedy + singles + >=1 split");
        for plan in &plans {
            let flat: Vec<usize> = plan.groups.iter().flat_map(|g| g.layers.clone()).collect();
            assert_eq!(flat.len(), net.len());
            assert!(flat.windows(2).all(|w| w[0] < w[1]), "topological order");
        }
    }

    #[test]
    fn split_plans_have_more_groups_than_greedy() {
        let net = suite_workload("R99", 1).network;
        let cfg = IsoscelesConfig::default();
        let plans = enumerate_partitions(&net, &cfg);
        let greedy_groups = plans[0].groups.len();
        for plan in &plans[1..] {
            assert!(plan.groups.len() > greedy_groups);
        }
    }
}
