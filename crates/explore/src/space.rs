//! Design-point enumeration: the swept architectural axes and the
//! alternative pipeline-group partitions.

use isos_nn::graph::Network;
use isosceles::mapping::{map_network, ExecMode, Mapping};
use isosceles::IsoscelesConfig;
use serde::{Deserialize, Serialize};

/// One candidate accelerator configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Short label encoding the swept values, e.g. `l64-fb1024-r256-c16`.
    pub label: String,
    /// The full configuration (unswept fields at their defaults).
    pub config: IsoscelesConfig,
}

/// The swept axes. Every combination is one [`DesignPoint`]; unlisted
/// [`IsoscelesConfig`] fields stay at their defaults.
///
/// `max_contexts` is the partitioning axis: it bounds how many layers the
/// greedy mapper may pipeline per group, so sweeping it explores the
/// `map_network` alternatives from layer-by-layer (1) to the paper's
/// deepest pipelines (16). [`enumerate_partitions`] additionally yields
/// explicit sub-partitions of one configuration's plan for analytical
/// comparison.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DesignSpace {
    /// Lane counts (64 MACs each at default `macs_per_lane`).
    pub lanes: Vec<usize>,
    /// Shared filter-buffer capacities in KB.
    pub filter_buffer_kb: Vec<u64>,
    /// Merger radices (area axis; Sec. IV-A).
    pub merger_radix: Vec<usize>,
    /// Context counts: the pipeline-partitioning axis.
    pub max_contexts: Vec<usize>,
}

impl Default for DesignSpace {
    fn default() -> Self {
        Self {
            lanes: vec![16, 32, 64, 128],
            filter_buffer_kb: vec![256, 512, 1024, 2048],
            merger_radix: vec![64, 128, 256],
            max_contexts: vec![1, 2, 4, 8, 16],
        }
    }
}

impl DesignSpace {
    /// A four-point space for CI smoke runs: the paper's design plus one
    /// step along each major axis.
    pub fn smoke() -> Self {
        Self {
            lanes: vec![32, 64],
            filter_buffer_kb: vec![1024],
            merger_radix: vec![256],
            max_contexts: vec![1, 16],
        }
    }

    /// Number of points [`enumerate`](Self::enumerate) will yield.
    pub fn len(&self) -> usize {
        self.lanes.len()
            * self.filter_buffer_kb.len()
            * self.merger_radix.len()
            * self.max_contexts.len()
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes every combination as a labeled [`DesignPoint`].
    pub fn enumerate(&self) -> Vec<DesignPoint> {
        let mut points = Vec::with_capacity(self.len());
        for &lanes in &self.lanes {
            for &fb_kb in &self.filter_buffer_kb {
                for &radix in &self.merger_radix {
                    for &contexts in &self.max_contexts {
                        let config = IsoscelesConfig {
                            lanes,
                            filter_buffer_bytes: fb_kb * 1024,
                            merger_radix: radix,
                            max_contexts: contexts,
                            ..IsoscelesConfig::default()
                        };
                        points.push(DesignPoint {
                            label: format!("l{lanes}-fb{fb_kb}-r{radix}-c{contexts}"),
                            config,
                        });
                    }
                }
            }
        }
        points
    }
}

/// Enumerates alternative pipeline partitions of `net` under one
/// configuration: the greedy plan itself, the fully layer-by-layer plan,
/// and every plan obtained by splitting one pipelined group in half.
///
/// All returned mappings are validated by
/// [`Mapping::from_partitions`], so each covers every layer exactly once
/// in topological order.
pub fn enumerate_partitions(net: &Network, cfg: &IsoscelesConfig) -> Vec<Mapping> {
    let greedy = map_network(net, cfg, ExecMode::Pipelined);
    let base = greedy.partitions();
    let mut plans = vec![greedy];

    // Layer-by-layer: split every part into singletons. (Adds fused into
    // their conv by the single-layer mapper stay fused here too: a bare
    // singleton Add is pipeline-legal, so full decomposition is simplest.)
    let singles: Vec<Vec<usize>> = base.iter().flatten().map(|&id| vec![id]).collect();
    if singles.len() != base.len() {
        plans.push(
            Mapping::from_partitions(net, cfg, &singles)
                .expect("singleton partition of a valid plan is valid"),
        );
    }

    // Halve each pipelined group in turn.
    for (gi, part) in base.iter().enumerate() {
        if part.len() < 2 {
            continue;
        }
        let mut split = base.clone();
        let tail = split[gi].split_off(part.len() / 2);
        split.insert(gi + 1, tail);
        plans.push(
            Mapping::from_partitions(net, cfg, &split)
                .expect("splitting a valid group keeps the plan valid"),
        );
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use isos_nn::models::suite_workload;

    #[test]
    fn default_space_size_and_labels() {
        let space = DesignSpace::default();
        let points = space.enumerate();
        assert_eq!(points.len(), space.len());
        assert_eq!(points.len(), 4 * 4 * 3 * 5);
        // Labels are unique.
        let mut labels: Vec<&str> = points.iter().map(|p| p.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), points.len());
        // The paper's configuration is in the space.
        assert!(points
            .iter()
            .any(|p| p.config == IsoscelesConfig::default()));
    }

    #[test]
    fn smoke_space_is_small_and_contains_default() {
        let points = DesignSpace::smoke().enumerate();
        assert_eq!(points.len(), 4);
        assert!(points
            .iter()
            .any(|p| p.config == IsoscelesConfig::default()));
    }

    #[test]
    fn partitions_cover_every_layer_exactly_once() {
        let net = suite_workload("R96", 1).network;
        let cfg = IsoscelesConfig::default();
        let plans = enumerate_partitions(&net, &cfg);
        assert!(plans.len() >= 3, "greedy + singles + >=1 split");
        for plan in &plans {
            let flat: Vec<usize> = plan.groups.iter().flat_map(|g| g.layers.clone()).collect();
            assert_eq!(flat.len(), net.len());
            assert!(flat.windows(2).all(|w| w[0] < w[1]), "topological order");
        }
    }

    #[test]
    fn split_plans_have_more_groups_than_greedy() {
        let net = suite_workload("R99", 1).network;
        let cfg = IsoscelesConfig::default();
        let plans = enumerate_partitions(&net, &cfg);
        let greedy_groups = plans[0].groups.len();
        for plan in &plans[1..] {
            assert!(plan.groups.len() > greedy_groups);
        }
    }
}
