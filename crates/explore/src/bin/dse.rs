//! Design-space exploration driver.
//!
//! Screens the full design space analytically, simulates the top-K
//! survivors cycle-level through the parallel cached suite engine, and
//! writes the (cycles, mm², mJ) Pareto frontier as JSON + CSV + markdown.
//!
//! ```text
//! cargo run --release -p isos-explore --bin dse -- [flags]
//!   --net ID          workload to explore (default R96)
//!   --top-k N         survivors to simulate cycle-level (default 8)
//!   --budget-mm2 F    discard screened points above F mm² at 45 nm
//!   --smoke           tiny 4-point space for CI
//!   --out DIR         output directory (default results/dse)
//!   --seed N          simulation seed (default the suite seed)
//!   --threads N       engine worker threads (also ISOS_THREADS)
//!   --no-cache        disable the engine result cache (also ISOS_NO_CACHE)
//! ```

use isos_explore::report::{to_markdown, write_all};
use isos_explore::search::{search, SearchOptions};
use isos_explore::space::DesignSpace;
use isos_nn::models::{try_suite_workload, SUITE_IDS};
use isosceles_bench::engine::SuiteEngine;
use isosceles_bench::suite::SEED;
use std::path::PathBuf;
use std::process::exit;

/// Prints the error and usage to stderr and exits with status 2.
fn usage(error: &str) -> ! {
    eprintln!("error: {error}");
    eprintln!(
        "usage: dse [--net ID] [--top-k N] [--budget-mm2 F] [--smoke]\n\
         \u{20}          [--out DIR] [--seed N] [--threads N] [--no-cache]\n\
         \n\
         --net ID        workload to explore (default R96); one of {}\n\
         --top-k N       survivors to simulate cycle-level (default 8)\n\
         --budget-mm2 F  discard screened points above F mm\u{b2} at 45 nm\n\
         --smoke         tiny 4-point space for CI\n\
         --out DIR       output directory (default results/dse)\n\
         --seed N        simulation seed (default {SEED})\n\
         --threads N     engine worker threads (also ISOS_THREADS)\n\
         --no-cache      disable the engine result cache (also ISOS_NO_CACHE)",
        SUITE_IDS.join(", "),
    );
    exit(2);
}

fn main() {
    let mut net = "R96".to_string();
    let mut opts = SearchOptions::default();
    let mut smoke = false;
    let mut out = PathBuf::from("results/dse");
    let mut seed = SEED;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| match it.next() {
            Some(v) => v.clone(),
            None => usage(&format!("{name} needs a value")),
        };
        match arg.as_str() {
            "--net" => net = value("--net"),
            "--top-k" => match value("--top-k").parse() {
                Ok(n) => opts.top_k = n,
                Err(_) => usage("--top-k needs an integer"),
            },
            "--budget-mm2" => match value("--budget-mm2").parse() {
                Ok(f) => opts.budget_mm2 = Some(f),
                Err(_) => usage("--budget-mm2 needs a number"),
            },
            "--smoke" => smoke = true,
            "--out" => out = PathBuf::from(value("--out")),
            "--seed" => match value("--seed").parse() {
                Ok(n) => seed = n,
                Err(_) => usage("--seed needs an integer"),
            },
            // Engine flags (--threads, --no-cache) are parsed by
            // EngineOptions::from_env; everything else is rejected.
            "--threads" => {
                let _ = value("--threads");
            }
            "--no-cache" => {}
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown flag {other}")),
        }
    }

    let Some(workload) = try_suite_workload(&net, seed) else {
        usage(&format!("unknown workload id {net}"));
    };
    let space = if smoke {
        DesignSpace::smoke()
    } else {
        DesignSpace::default()
    };
    eprintln!(
        "dse: exploring {} over {} points (top-{} simulated{})",
        workload.id,
        space.len(),
        opts.top_k,
        opts.budget_mm2
            .map(|b| format!(", budget {b} mm\u{b2}"))
            .unwrap_or_default()
    );

    let engine = SuiteEngine::from_env();
    let result = search(&engine, &workload, &space, &opts, seed);
    println!("{}", to_markdown(&result));
    match write_all(&result, &out) {
        Ok(paths) => {
            for p in paths {
                eprintln!("dse: wrote {}", p.display());
            }
        }
        Err(e) => {
            eprintln!("dse: failed to write reports under {}: {e}", out.display());
            std::process::exit(1);
        }
    }
}
