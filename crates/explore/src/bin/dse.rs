//! Design-space exploration driver.
//!
//! Screens the full design space analytically, simulates the top-K
//! survivors cycle-level through the parallel cached suite engine, and
//! writes the (cycles, mm², mJ) Pareto frontier as JSON + CSV + markdown.
//!
//! ```text
//! cargo run --release -p isos-explore --bin dse -- [flags]
//!   --net ID          workload to explore (default R96)
//!   --top-k N         survivors to simulate cycle-level (default 8)
//!   --budget-mm2 F    discard screened points above F mm² at 45 nm
//!   --smoke           tiny 4-point space for CI
//!   --out DIR         output directory (default results/dse)
//!   --seed N          simulation seed (default the suite seed)
//!   --threads N       engine worker threads (also ISOS_THREADS)
//!   --no-cache        disable the engine result cache (also ISOS_NO_CACHE)
//! ```

use isos_explore::report::{to_markdown, write_all};
use isos_explore::search::{search, SearchOptions};
use isos_explore::space::DesignSpace;
use isos_nn::models::suite_workload;
use isosceles_bench::engine::SuiteEngine;
use isosceles_bench::suite::SEED;
use std::path::PathBuf;

fn main() {
    let mut net = "R96".to_string();
    let mut opts = SearchOptions::default();
    let mut smoke = false;
    let mut out = PathBuf::from("results/dse");
    let mut seed = SEED;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
                .clone()
        };
        match arg.as_str() {
            "--net" => net = value("--net"),
            "--top-k" => opts.top_k = value("--top-k").parse().expect("--top-k N"),
            "--budget-mm2" => {
                opts.budget_mm2 = Some(value("--budget-mm2").parse().expect("--budget-mm2 F"));
            }
            "--smoke" => smoke = true,
            "--out" => out = PathBuf::from(value("--out")),
            "--seed" => seed = value("--seed").parse().expect("--seed N"),
            // Engine flags (--threads, --no-cache) are parsed by
            // EngineOptions::from_env; everything else is rejected.
            "--threads" => {
                let _ = value("--threads");
            }
            "--no-cache" => {}
            other => panic!("unknown flag {other}; see the module docs"),
        }
    }

    let workload = suite_workload(&net, seed);
    let space = if smoke {
        DesignSpace::smoke()
    } else {
        DesignSpace::default()
    };
    eprintln!(
        "dse: exploring {} over {} points (top-{} simulated{})",
        workload.id,
        space.len(),
        opts.top_k,
        opts.budget_mm2
            .map(|b| format!(", budget {b} mm\u{b2}"))
            .unwrap_or_default()
    );

    let engine = SuiteEngine::from_env();
    let result = search(&engine, &workload, &space, &opts, seed);
    println!("{}", to_markdown(&result));
    match write_all(&result, &out) {
        Ok(paths) => {
            for p in paths {
                eprintln!("dse: wrote {}", p.display());
            }
        }
        Err(e) => {
            eprintln!("dse: failed to write reports under {}: {e}", out.display());
            std::process::exit(1);
        }
    }
}
