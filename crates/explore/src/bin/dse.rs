//! Design-space exploration driver.
//!
//! Screens a design space analytically, simulates the top-K survivors
//! through the parallel cached suite engine, and writes the (cycles,
//! mm², mJ) Pareto frontier as JSON + CSV + markdown.
//!
//! Three spaces are available: the default [`IsoscelesConfig`] sweep,
//! an explicit set of declarative architecture descriptions
//! (`--arch FILE|DIR`), or the built-in described-architecture family
//! space spanning IS-OS, output-stationary, and fused-tile machines
//! (`--arch-space`, 10,800 points).
//!
//! ```text
//! cargo run --release -p isos-explore --bin dse -- [flags]
//!   --net ID          workload to explore (default R96)
//!   --arch PATH       explore the .toml/.json description(s) at PATH
//!   --arch-space      explore the built-in described-architecture space
//!   --top-k N         survivors to simulate cycle-level (default 8)
//!   --budget-mm2 F    discard screened points above F mm² at 45 nm
//!   --smoke           tiny space for CI (and default net G58 in arch mode)
//!   --out DIR         output directory (default results/dse)
//!   --seed N          simulation seed (default the suite seed)
//!   --threads N       worker threads for the engine job pool and the
//!                     run-level pool inside each simulation (also
//!                     ISOS_THREADS)
//!   --no-cache        disable the engine result cache (also ISOS_NO_CACHE)
//! ```
//!
//! [`IsoscelesConfig`]: isosceles::IsoscelesConfig

use isos_explore::arch::{load_dir, load_path};
use isos_explore::report::{
    arch_to_markdown, stream_to_markdown, to_markdown, write_all, write_all_arch, write_all_stream,
};
use isos_explore::search::{search, search_arch, search_stream, SearchOptions};
use isos_explore::space::{ArchPoint, ArchSpace, DesignSpace};
use isos_nn::models::{try_suite_workload, SUITE_IDS};
use isos_stream::StreamConfig;
use isosceles_bench::engine::SuiteEngine;
use isosceles_bench::suite::SEED;
use std::path::{Path, PathBuf};
use std::process::exit;

/// Prints the error and usage to stderr and exits with status 2.
fn usage(error: &str) -> ! {
    eprintln!("error: {error}");
    eprintln!(
        "usage: dse [--net ID] [--arch PATH | --arch-space] [--top-k N]\n\
         \u{20}          [--budget-mm2 F] [--smoke] [--out DIR] [--seed N]\n\
         \u{20}          [--stream [--batches LIST] [--requests N]]\n\
         \u{20}          [--threads N] [--no-cache]\n\
         \n\
         --net ID        workload to explore (default R96); one of {}\n\
         --arch PATH     explore declarative description(s): a .toml/.json\n\
         \u{20}               file or a directory of them\n\
         --arch-space    explore the built-in described-architecture family\n\
         \u{20}               space (IS-OS / output-stationary / fused-tile)\n\
         --stream        sweep the batch-size axis under a streaming\n\
         \u{20}               scenario (p99 / cycles-per-image / mm\u{b2} frontier)\n\
         --batches LIST  comma-separated batch sizes (default 1,2,4,8)\n\
         --requests N    requests per streamed scenario (default 64)\n\
         --top-k N       survivors to simulate cycle-level (default 8)\n\
         --budget-mm2 F  discard screened points above F mm\u{b2} at 45 nm\n\
         --smoke         tiny space for CI (arch mode: default net G58)\n\
         --out DIR       output directory (default results/dse)\n\
         --seed N        simulation seed (default {SEED})\n\
         --threads N     worker threads (also ISOS_THREADS). Sizes BOTH\n\
         \u{20}               pools: the engine's job pool (one worker per\n\
         \u{20}               workload x model simulation) and the run-level\n\
         \u{20}               pool inside each simulation (pipeline groups of\n\
         \u{20}               one network simulated concurrently). The pools\n\
         \u{20}               nest — J engine jobs x N run workers can occupy\n\
         \u{20}               up to J*N cores — so on a saturated engine the\n\
         \u{20}               run pool mostly helps the long-tail jobs that\n\
         \u{20}               finish last\n\
         --no-cache      disable the engine result cache (also ISOS_NO_CACHE)",
        SUITE_IDS.join(", "),
    );
    exit(2);
}

/// Loads described points from a file or directory of descriptions.
fn arch_points_from(path: &Path) -> Vec<ArchPoint> {
    let descs = if path.is_dir() {
        match load_dir(path) {
            Ok(d) => d,
            Err(e) => usage(&format!("{e}")),
        }
    } else {
        match load_path(path) {
            Ok(d) => vec![d],
            Err(e) => usage(&format!("{e}")),
        }
    };
    descs
        .into_iter()
        .map(|desc| ArchPoint {
            label: desc.name.clone(),
            desc,
        })
        .collect()
}

fn main() {
    let mut net: Option<String> = None;
    let mut opts = SearchOptions::default();
    let mut smoke = false;
    let mut out = PathBuf::from("results/dse");
    let mut seed = SEED;
    let mut arch_path: Option<PathBuf> = None;
    let mut arch_space = false;
    let mut stream = false;
    let mut batches: Vec<u64> = vec![1, 2, 4, 8];
    let mut requests: u64 = 64;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| match it.next() {
            Some(v) => v.clone(),
            None => usage(&format!("{name} needs a value")),
        };
        match arg.as_str() {
            "--net" => net = Some(value("--net")),
            "--arch" => arch_path = Some(PathBuf::from(value("--arch"))),
            "--arch-space" => arch_space = true,
            "--stream" => stream = true,
            "--batches" => {
                batches = value("--batches")
                    .split(',')
                    .map(|s| match s.trim().parse::<u64>() {
                        Ok(b) if b >= 1 => b,
                        _ => usage("--batches needs comma-separated integers >= 1"),
                    })
                    .collect();
                if batches.is_empty() {
                    usage("--batches needs at least one batch size");
                }
            }
            "--requests" => match value("--requests").parse() {
                Ok(n) if n >= 1 => requests = n,
                _ => usage("--requests needs an integer >= 1"),
            },
            "--top-k" => match value("--top-k").parse() {
                Ok(n) => opts.top_k = n,
                Err(_) => usage("--top-k needs an integer"),
            },
            "--budget-mm2" => match value("--budget-mm2").parse() {
                Ok(f) => opts.budget_mm2 = Some(f),
                Err(_) => usage("--budget-mm2 needs a number"),
            },
            "--smoke" => smoke = true,
            "--out" => out = PathBuf::from(value("--out")),
            "--seed" => match value("--seed").parse() {
                Ok(n) => seed = n,
                Err(_) => usage("--seed needs an integer"),
            },
            // Also an engine flag (EngineOptions::from_env re-parses it
            // for the job pool); here it additionally sizes the run-level
            // pool inside each simulation.
            "--threads" => match value("--threads").parse::<usize>() {
                Ok(n) if n >= 1 => isos_sim::threads::set_run_threads(n),
                _ => usage("--threads needs an integer >= 1"),
            },
            "--no-cache" => {}
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if arch_path.is_some() && arch_space {
        usage("--arch and --arch-space are mutually exclusive");
    }
    if stream && (arch_path.is_some() || arch_space) {
        usage("--stream explores the config space; it cannot combine with --arch/--arch-space");
    }

    let arch_mode = arch_path.is_some() || arch_space;
    // In arch mode the smoke gate favors the fastest suite workload so
    // the CI check stays quick; otherwise R96 is the paper's headline.
    let net = net.unwrap_or_else(|| {
        if arch_mode && smoke {
            "G58".to_string()
        } else {
            "R96".to_string()
        }
    });
    let Some(workload) = try_suite_workload(&net, seed) else {
        usage(&format!("unknown workload id {net}"));
    };

    let engine = SuiteEngine::from_env();

    if stream {
        let space = if smoke {
            requests = requests.min(4);
            batches.truncate(2);
            DesignSpace::smoke()
        } else {
            DesignSpace::default()
        };
        let base = StreamConfig {
            requests,
            ..StreamConfig::default()
        };
        eprintln!(
            "dse: streaming {} requests over {} points x batches {:?} (top-{} simulated{})",
            requests,
            space.len(),
            batches,
            opts.top_k,
            opts.budget_mm2
                .map(|b| format!(", budget {b} mm\u{b2}"))
                .unwrap_or_default()
        );
        let result = search_stream(&engine, &workload, &space, &opts, &batches, &base, seed);
        println!("{}", stream_to_markdown(&result));
        match write_all_stream(&result, &out) {
            Ok(paths) => {
                for p in paths {
                    eprintln!("dse: wrote {}", p.display());
                }
            }
            Err(e) => {
                eprintln!("dse: failed to write reports under {}: {e}", out.display());
                exit(1);
            }
        }
        return;
    }

    if arch_mode {
        let points = match &arch_path {
            Some(path) => arch_points_from(path),
            None => {
                if smoke {
                    ArchSpace::smoke().enumerate()
                } else {
                    ArchSpace::default().enumerate()
                }
            }
        };
        eprintln!(
            "dse: exploring {} over {} described architectures (top-{} simulated{})",
            workload.id,
            points.len(),
            opts.top_k,
            opts.budget_mm2
                .map(|b| format!(", budget {b} mm\u{b2}"))
                .unwrap_or_default()
        );
        let result = match search_arch(&engine, &workload, &points, &opts, seed) {
            Ok(r) => r,
            Err(e) => usage(&format!("{e}")),
        };
        println!("{}", arch_to_markdown(&result));
        match write_all_arch(&result, &out) {
            Ok(paths) => {
                for p in paths {
                    eprintln!("dse: wrote {}", p.display());
                }
            }
            Err(e) => {
                eprintln!("dse: failed to write reports under {}: {e}", out.display());
                exit(1);
            }
        }
        return;
    }

    let space = if smoke {
        DesignSpace::smoke()
    } else {
        DesignSpace::default()
    };
    eprintln!(
        "dse: exploring {} over {} points (top-{} simulated{})",
        workload.id,
        space.len(),
        opts.top_k,
        opts.budget_mm2
            .map(|b| format!(", budget {b} mm\u{b2}"))
            .unwrap_or_default()
    );

    let result = search(&engine, &workload, &space, &opts, seed);
    println!("{}", to_markdown(&result));
    match write_all(&result, &out) {
        Ok(paths) => {
            for p in paths {
                eprintln!("dse: wrote {}", p.display());
            }
        }
        Err(e) => {
            eprintln!("dse: failed to write reports under {}: {e}", out.display());
            exit(1);
        }
    }
}
