//! Declarative accelerator descriptions.
//!
//! This module lets an accelerator architecture be specified *as data*
//! — a TOML or JSON [`ArchDesc`] naming its compute array, buffer
//! hierarchy (with per-level sparsity features), and dataflow — and
//! lowered onto the workspace's shared simulation substrate. A
//! description becomes an [`ArchAccel`], a first-class
//! [`Accelerator`](isosceles::accel::Accelerator): it runs through the
//! bench suite engine and its cache, serves over the wire protocol, and
//! screens analytically in the design-space exploration.
//!
//! - [`schema`]: the description types, hand-written (de)serialization
//!   with actionable errors, and semantic validation.
//! - [`toml`]: the TOML-subset reader/writer descriptions ship in.
//! - [`mod@lower`]: the interpreter mapping each dataflow family onto the
//!   exact closed form its hand-written model uses.
//! - [`mod@reference`]: constructors for the paper's machines, mirrored by
//!   the TOML files under `configs/arch/`.
//!
//! # Examples
//!
//! ```
//! use isos_explore::arch::{ArchAccel, ArchDesc, reference};
//! use isosceles::accel::Accelerator;
//! let toml = reference::sparten().to_toml();
//! let desc = ArchDesc::from_config_str(&toml).unwrap();
//! let accel = ArchAccel::new(desc).unwrap();
//! let net = isos_nn::models::googlenet_inception3a(0.58, 1);
//! assert!(accel.simulate(&net, 1).total.cycles > 0);
//! ```

pub mod lower;
pub mod reference;
pub mod schema;
pub mod toml;

pub use lower::{lower, ArchAccel, Lowered};
pub use schema::{
    ArchDesc, ArchError, BufferLevel, ComputeDesc, DataflowDesc, DataflowStyle, Gating, LoopDim,
    MemoryDesc, PipelinePolicy, TensorBinding, TensorFormat, TensorKind,
};
pub use toml::{toml_to_value, value_to_toml};

use std::path::Path;

/// Loads one description from a `.toml` or `.json` file, validated.
///
/// # Errors
///
/// Returns an [`ArchError`] naming the file on I/O failure, or the
/// parser's/schema's actionable message.
pub fn load_path(path: &Path) -> Result<ArchDesc, ArchError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ArchError::new(format!("cannot read {}: {e}", path.display())))?;
    ArchDesc::from_config_str(&text).map_err(|e| ArchError::new(format!("{}: {e}", path.display())))
}

/// Loads every `.toml`/`.json` description in a directory, sorted by
/// file name for deterministic ordering.
///
/// # Errors
///
/// Fails on an unreadable directory or any invalid description.
pub fn load_dir(dir: &Path) -> Result<Vec<ArchDesc>, ArchError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| ArchError::new(format!("cannot read {}: {e}", dir.display())))?;
    let mut paths: Vec<_> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            matches!(
                p.extension().and_then(|e| e.to_str()),
                Some("toml") | Some("json")
            )
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(ArchError::new(format!(
            "no .toml or .json descriptions in {}",
            dir.display()
        )));
    }
    paths.iter().map(|p| load_path(p)).collect()
}
