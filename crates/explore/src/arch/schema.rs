//! The declarative architecture-description schema.
//!
//! An [`ArchDesc`] specifies a sparse-CNN accelerator *as data*, in the
//! style of Sparseloop: a compute array, a buffer hierarchy with
//! per-level sparse-acceleration features (compression format, compute
//! skipping, gating), and a dataflow (loop nest + pipelining policy).
//! Descriptions load from TOML or JSON (see [`super::toml`] and
//! [`ArchDesc::from_value`]), are checked by [`ArchDesc::validate`], and
//! lower onto the shared simulation substrate through [`super::lower()`].
//!
//! (De)serialization is hand-written rather than derived so malformed
//! descriptions are rejected with *actionable* messages: unknown fields,
//! unknown sparsity features, and type mismatches all name the offending
//! key and list the accepted values.

use serde::json::{Error as JsonError, Value};
use serde::{Deserialize, Serialize};

/// A schema or semantic error in an architecture description.
///
/// The message is human-actionable: it names the offending field or
/// level and states what was expected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArchError(String);

impl ArchError {
    /// Wraps a message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for ArchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArchError {}

impl From<JsonError> for ArchError {
    fn from(e: JsonError) -> Self {
        Self(e.to_string())
    }
}

/// A complete declarative accelerator description.
#[derive(Clone, Debug, PartialEq)]
pub struct ArchDesc {
    /// Description name; becomes the model label (`arch:<name>`).
    pub name: String,
    /// The compute array.
    pub compute: ComputeDesc,
    /// The off-chip memory interface.
    pub memory: MemoryDesc,
    /// The on-chip buffer hierarchy, outermost (DRAM-facing) first.
    pub levels: Vec<BufferLevel>,
    /// The dataflow: loop nest plus pipelining policy.
    pub dataflow: DataflowDesc,
}

/// The compute array of a description.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ComputeDesc {
    /// Parallel lanes (clusters).
    pub lanes: usize,
    /// MAC units per lane.
    pub macs_per_lane: usize,
    /// Sustained fraction of peak MAC throughput on scheduled work.
    pub efficiency: f64,
    /// Hardware mergers per lane (0 = the machine has no mergers).
    pub mergers_per_lane: usize,
    /// Merger radix (ignored when `mergers_per_lane` is 0).
    pub merger_radix: usize,
    /// Layer contexts the compute array can time-multiplex.
    pub contexts: usize,
}

/// The off-chip memory interface of a description.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemoryDesc {
    /// DRAM bandwidth in bytes per cycle.
    pub dram_bytes_per_cycle: f64,
}

/// One level of the on-chip buffer hierarchy.
#[derive(Clone, Debug, PartialEq)]
pub struct BufferLevel {
    /// Level name (e.g. `"filter-buffer"`).
    pub name: String,
    /// Capacity in bytes (per instance: total if shared, per lane if
    /// `per_lane`).
    pub bytes: u64,
    /// Bank count (wide-word parallelism; informational for analytics).
    pub banks: usize,
    /// Whether each lane has a private instance of this level.
    pub per_lane: bool,
    /// Effective bytes consumed per stored byte (allocation padding and
    /// bank alignment; 1.0 = none).
    pub alloc_overhead: f64,
    /// Tensors bound at this level, with their sparsity features.
    pub stores: Vec<TensorBinding>,
}

/// One tensor bound at a buffer level, with its sparse-acceleration
/// features (Sparseloop's compression / skipping / gating taxonomy).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TensorBinding {
    /// Which tensor.
    pub tensor: TensorKind,
    /// Storage format at (and below) this level.
    pub format: TensorFormat,
    /// Whether ineffectual computation on this operand is *skipped*
    /// (saves cycles: only effectual MACs are scheduled).
    pub skipping: bool,
    /// Whether ineffectual *fetches* of this operand are gated.
    pub gating: Gating,
}

/// The tensors a buffer level can bind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TensorKind {
    /// Filter weights.
    Weights,
    /// Input activations.
    Inputs,
    /// Output activations / partial sums.
    Outputs,
}

impl TensorKind {
    /// The wire spelling.
    pub fn label(self) -> &'static str {
        match self {
            TensorKind::Weights => "weights",
            TensorKind::Inputs => "inputs",
            TensorKind::Outputs => "outputs",
        }
    }
}

/// Compressed tensor formats the substrate models.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TensorFormat {
    /// Uncompressed.
    Dense,
    /// One mask bit per element plus one byte per nonzero (SparTen).
    Bitmask,
    /// Compressed sparse fiber (ISOSceles).
    Csf,
}

impl TensorFormat {
    /// The wire spelling.
    pub fn label(self) -> &'static str {
        match self {
            TensorFormat::Dense => "dense",
            TensorFormat::Bitmask => "bitmask",
            TensorFormat::Csf => "csf",
        }
    }
}

/// Fetch-gating features.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Gating {
    /// No gating.
    None,
    /// GoSPA-style implicit intersection: input elements whose positions
    /// can never meet a nonzero weight are not fetched.
    Gospa,
}

impl Gating {
    /// The wire spelling.
    pub fn label(self) -> &'static str {
        match self {
            Gating::None => "none",
            Gating::Gospa => "gospa",
        }
    }
}

/// The dataflow of a description.
#[derive(Clone, Debug, PartialEq)]
pub struct DataflowDesc {
    /// Dataflow family.
    pub style: DataflowStyle,
    /// Loop nest, outermost first. Each entry is a dimension from
    /// `{N, K, P, Q, C, R, S}`, optionally tiled as `"K/64"`.
    pub loop_nest: Vec<String>,
    /// Inter-layer pipelining policy.
    pub pipeline: PipelinePolicy,
}

/// The dataflow families the interpreter can lower.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataflowStyle {
    /// The paper's two-phase input-stationary / output-stationary
    /// streaming dataflow (requires mergers).
    IsOs,
    /// Output-stationary with a tiled K loop: inputs are re-read once
    /// per K tile (SparTen's regime).
    OutputStationary,
    /// Dense 2-D-tiled pipeline with halo recomputation (Fused-Layer's
    /// regime); requires matching P and Q tiles.
    FusedTile,
}

impl DataflowStyle {
    /// The wire spelling.
    pub fn label(self) -> &'static str {
        match self {
            DataflowStyle::IsOs => "is-os",
            DataflowStyle::OutputStationary => "output-stationary",
            DataflowStyle::FusedTile => "fused-tile",
        }
    }
}

/// Inter-layer pipelining policies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PipelinePolicy {
    /// Layers run one at a time, spilling activations between them.
    None,
    /// Consecutive layers stream through on-chip queues (ISOSceles).
    InterLayer,
}

impl PipelinePolicy {
    /// The wire spelling.
    pub fn label(self) -> &'static str {
        match self {
            PipelinePolicy::None => "none",
            PipelinePolicy::InterLayer => "inter-layer",
        }
    }
}

/// The dimensions a loop nest may name, in canonical order.
pub const LOOP_DIMS: [&str; 7] = ["N", "K", "P", "Q", "C", "R", "S"];

/// One parsed loop-nest entry: dimension plus optional tile bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoopDim {
    /// Dimension letter, one of [`LOOP_DIMS`].
    pub dim: &'static str,
    /// Tile bound, if the entry was written `"DIM/TILE"`.
    pub tile: Option<u64>,
}

impl DataflowDesc {
    /// Parses the loop nest into `(dim, tile)` entries.
    ///
    /// # Errors
    ///
    /// Rejects unknown dimensions, duplicates (a rank mismatch: each
    /// dimension may appear at most once), bad tile syntax, and an
    /// empty nest.
    pub fn parsed_loop_nest(&self) -> Result<Vec<LoopDim>, ArchError> {
        if self.loop_nest.is_empty() {
            return Err(ArchError::new(
                "dataflow rank mismatch: `loop_nest` is empty (list dimensions outermost first, \
                 e.g. [\"K/64\", \"P\", \"Q\", \"C\", \"R\", \"S\"])",
            ));
        }
        let mut seen: Vec<&'static str> = Vec::new();
        let mut out = Vec::with_capacity(self.loop_nest.len());
        for entry in &self.loop_nest {
            let (dim_str, tile) = match entry.split_once('/') {
                Some((d, t)) => {
                    let tile: u64 = t.parse().map_err(|_| {
                        ArchError::new(format!(
                            "bad loop tile `{entry}`: the part after `/` must be a positive \
                             integer"
                        ))
                    })?;
                    if tile == 0 {
                        return Err(ArchError::new(format!(
                            "bad loop tile `{entry}`: tile bound must be at least 1"
                        )));
                    }
                    (d, Some(tile))
                }
                None => (entry.as_str(), None),
            };
            let Some(&dim) = LOOP_DIMS.iter().find(|&&d| d == dim_str) else {
                return Err(ArchError::new(format!(
                    "dataflow rank mismatch: unknown dimension `{dim_str}` in loop_nest \
                     (expected one of {})",
                    LOOP_DIMS.join(", ")
                )));
            };
            if seen.contains(&dim) {
                return Err(ArchError::new(format!(
                    "dataflow rank mismatch: dimension `{dim}` appears more than once in \
                     loop_nest"
                )));
            }
            seen.push(dim);
            out.push(LoopDim { dim, tile });
        }
        Ok(out)
    }

    /// The tile bound of dimension `dim`, if the loop nest tiles it.
    pub fn tile_of(&self, dim: &str) -> Option<u64> {
        self.parsed_loop_nest()
            .ok()?
            .into_iter()
            .find(|l| l.dim == dim)
            .and_then(|l| l.tile)
    }
}

impl ArchDesc {
    /// The first (outermost) level binding `tensor`, restricted to
    /// shared (`!per_lane`) levels.
    pub fn shared_level_for(&self, tensor: TensorKind) -> Option<&BufferLevel> {
        self.levels
            .iter()
            .find(|l| !l.per_lane && l.stores.iter().any(|b| b.tensor == tensor))
    }

    /// The first per-lane level binding `tensor`.
    pub fn per_lane_level_for(&self, tensor: TensorKind) -> Option<&BufferLevel> {
        self.levels
            .iter()
            .find(|l| l.per_lane && l.stores.iter().any(|b| b.tensor == tensor))
    }

    /// The DRAM-facing storage format of `tensor`: the format at the
    /// outermost level binding it ([`TensorFormat::Dense`] if unbound).
    pub fn dram_format(&self, tensor: TensorKind) -> TensorFormat {
        self.levels
            .iter()
            .flat_map(|l| l.stores.iter())
            .find(|b| b.tensor == tensor)
            .map(|b| b.format)
            .unwrap_or(TensorFormat::Dense)
    }

    /// Whether any level skips ineffectual compute on `tensor`.
    pub fn skips(&self, tensor: TensorKind) -> bool {
        self.levels
            .iter()
            .flat_map(|l| l.stores.iter())
            .any(|b| b.tensor == tensor && b.skipping)
    }

    /// Whether any input binding enables GoSPA-style gating.
    pub fn gospa_gating(&self) -> bool {
        self.levels
            .iter()
            .flat_map(|l| l.stores.iter())
            .any(|b| b.tensor == TensorKind::Inputs && b.gating == Gating::Gospa)
    }

    /// Checks the description's semantic invariants.
    ///
    /// # Errors
    ///
    /// Returns an [`ArchError`] whose message names the offending field
    /// and what the interpreter needs instead. Structural problems
    /// (unknown fields, unknown sparsity features, wrong types) are
    /// caught earlier, at deserialization.
    pub fn validate(&self) -> Result<(), ArchError> {
        if self.name.trim().is_empty() {
            return Err(ArchError::new("description `name` must be non-empty"));
        }
        if self.compute.lanes == 0 {
            return Err(ArchError::new("compute.lanes must be at least 1"));
        }
        if self.compute.macs_per_lane == 0 {
            return Err(ArchError::new("compute.macs_per_lane must be at least 1"));
        }
        if !(self.compute.efficiency > 0.0 && self.compute.efficiency <= 1.0) {
            return Err(ArchError::new(format!(
                "compute.efficiency must be in (0, 1], got {}",
                self.compute.efficiency
            )));
        }
        if self.compute.contexts == 0 {
            return Err(ArchError::new("compute.contexts must be at least 1"));
        }
        if self.compute.mergers_per_lane > 0 && self.compute.merger_radix < 2 {
            return Err(ArchError::new(
                "compute.merger_radix must be at least 2 when the machine has mergers",
            ));
        }
        // NaN must fail too, so compare for "not strictly positive".
        if self.memory.dram_bytes_per_cycle.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(ArchError::new(
                "memory.dram_bytes_per_cycle must be positive",
            ));
        }
        if self.levels.is_empty() {
            return Err(ArchError::new(
                "a description needs at least one buffer level",
            ));
        }
        for level in &self.levels {
            if level.bytes == 0 {
                return Err(ArchError::new(format!(
                    "buffer level `{}` has zero size; give it a positive `bytes`",
                    level.name
                )));
            }
            if level.banks == 0 {
                return Err(ArchError::new(format!(
                    "buffer level `{}`: `banks` must be at least 1",
                    level.name
                )));
            }
            if level.alloc_overhead < 1.0 {
                return Err(ArchError::new(format!(
                    "buffer level `{}`: `alloc_overhead` must be at least 1.0",
                    level.name
                )));
            }
            for binding in &level.stores {
                if binding.gating == Gating::Gospa && binding.tensor != TensorKind::Inputs {
                    return Err(ArchError::new(format!(
                        "buffer level `{}`: gospa gating applies to the `inputs` tensor, not \
                         `{}`",
                        level.name,
                        binding.tensor.label()
                    )));
                }
            }
        }
        let nest = self.dataflow.parsed_loop_nest()?;
        if self.shared_level_for(TensorKind::Weights).is_none() {
            return Err(ArchError::new(
                "no shared buffer level stores `weights`; the interpreter needs a filter buffer \
                 to size dataflow groups against",
            ));
        }
        match self.dataflow.style {
            DataflowStyle::IsOs => {
                if self.compute.mergers_per_lane == 0 {
                    return Err(ArchError::new(
                        "is-os dataflow needs mergers: set compute.mergers_per_lane (and \
                         merger_radix)",
                    ));
                }
                if self.per_lane_level_for(TensorKind::Outputs).is_none() {
                    return Err(ArchError::new(
                        "is-os dataflow needs a per-lane level storing `outputs` (the context \
                         arrays)",
                    ));
                }
                if self.per_lane_level_for(TensorKind::Inputs).is_none() {
                    return Err(ArchError::new(
                        "is-os dataflow needs a per-lane level storing `inputs` (the stream \
                         queues)",
                    ));
                }
            }
            DataflowStyle::OutputStationary => {
                if self.dataflow.pipeline != PipelinePolicy::None {
                    return Err(ArchError::new(
                        "output-stationary dataflow runs layer by layer; set dataflow.pipeline \
                         = \"none\"",
                    ));
                }
                if !nest.iter().any(|l| l.dim == "K" && l.tile.is_some()) {
                    return Err(ArchError::new(
                        "output-stationary dataflow needs a tiled K loop (e.g. \"K/64\") to set \
                         the output channels per input pass",
                    ));
                }
            }
            DataflowStyle::FusedTile => {
                if self.dataflow.pipeline != PipelinePolicy::None {
                    return Err(ArchError::new(
                        "fused-tile dataflow pipelines through its 2-D tiling; set \
                         dataflow.pipeline = \"none\"",
                    ));
                }
                let p = nest.iter().find(|l| l.dim == "P").and_then(|l| l.tile);
                let q = nest.iter().find(|l| l.dim == "Q").and_then(|l| l.tile);
                match (p, q) {
                    (Some(p), Some(q)) if p == q => {}
                    _ => {
                        return Err(ArchError::new(
                            "fused-tile dataflow needs matching P and Q tiles (e.g. \"P/32\", \
                             \"Q/32\") to set the output tile edge",
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Loads a description from TOML or JSON text, picking the parser by
    /// whether the trimmed text starts with `{`.
    ///
    /// # Errors
    ///
    /// Returns the parser's or schema's actionable message.
    pub fn from_config_str(text: &str) -> Result<Self, ArchError> {
        let value = if text.trim_start().starts_with('{') {
            serde::json::parse(text).map_err(|e| ArchError::new(format!("bad JSON: {e}")))?
        } else {
            super::toml::toml_to_value(text)?
        };
        let desc = ArchDesc::from_value(&value)?;
        desc.validate()?;
        Ok(desc)
    }

    /// Renders the description as TOML (the inverse of the TOML loader).
    pub fn to_toml(&self) -> String {
        super::toml::value_to_toml(&self.to_value())
    }
}

// ---------------------------------------------------------------------
// Hand-written (de)serialization with actionable errors.
// ---------------------------------------------------------------------

/// Returns the object's pairs, rejecting non-objects and unknown keys.
fn obj_fields<'a>(
    value: &'a Value,
    ctx: &str,
    allowed: &[&str],
) -> Result<&'a [(String, Value)], JsonError> {
    let Value::Obj(pairs) = value else {
        return Err(JsonError::new(format!(
            "{ctx}: expected an object, got {}",
            value.kind()
        )));
    };
    for (key, _) in pairs {
        if !allowed.contains(&key.as_str()) {
            return Err(JsonError::new(format!(
                "{ctx}: unknown field `{key}` (expected {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(pairs)
}

fn get<'a>(pairs: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn req<'a>(pairs: &'a [(String, Value)], ctx: &str, key: &str) -> Result<&'a Value, JsonError> {
    get(pairs, key).ok_or_else(|| JsonError::new(format!("{ctx}: missing required field `{key}`")))
}

fn as_count(value: &Value, ctx: &str, key: &str) -> Result<usize, JsonError> {
    value
        .as_u64()
        .map(|n| n as usize)
        .map_err(|_| JsonError::new(format!("{ctx}: `{key}` must be a non-negative integer")))
}

fn as_bytes(value: &Value, ctx: &str, key: &str) -> Result<u64, JsonError> {
    value
        .as_u64()
        .map_err(|_| JsonError::new(format!("{ctx}: `{key}` must be a non-negative integer")))
}

fn as_number(value: &Value, ctx: &str, key: &str) -> Result<f64, JsonError> {
    value
        .as_f64()
        .map_err(|_| JsonError::new(format!("{ctx}: `{key}` must be a number")))
}

fn as_flag(value: &Value, ctx: &str, key: &str) -> Result<bool, JsonError> {
    value
        .as_bool()
        .map_err(|_| JsonError::new(format!("{ctx}: `{key}` must be a boolean")))
}

fn as_text(value: &Value, ctx: &str, key: &str) -> Result<String, JsonError> {
    value
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| JsonError::new(format!("{ctx}: `{key}` must be a string")))
}

fn tensor_kind_from(value: &Value, ctx: &str) -> Result<TensorKind, JsonError> {
    match value.as_str() {
        Some("weights") => Ok(TensorKind::Weights),
        Some("inputs") => Ok(TensorKind::Inputs),
        Some("outputs") => Ok(TensorKind::Outputs),
        Some(other) => Err(JsonError::new(format!(
            "{ctx}: unknown tensor `{other}` (expected weights, inputs, or outputs)"
        ))),
        None => Err(JsonError::new(format!("{ctx}: `tensor` must be a string"))),
    }
}

fn format_from(value: &Value, ctx: &str) -> Result<TensorFormat, JsonError> {
    match value.as_str() {
        Some("dense") => Ok(TensorFormat::Dense),
        Some("bitmask") => Ok(TensorFormat::Bitmask),
        Some("csf") => Ok(TensorFormat::Csf),
        Some(other) => Err(JsonError::new(format!(
            "{ctx}: unknown sparsity format `{other}` (expected dense, bitmask, or csf)"
        ))),
        None => Err(JsonError::new(format!("{ctx}: `format` must be a string"))),
    }
}

fn gating_from(value: &Value, ctx: &str) -> Result<Gating, JsonError> {
    match value.as_str() {
        Some("none") => Ok(Gating::None),
        Some("gospa") => Ok(Gating::Gospa),
        Some(other) => Err(JsonError::new(format!(
            "{ctx}: unknown gating feature `{other}` (expected none or gospa)"
        ))),
        None => Err(JsonError::new(format!("{ctx}: `gating` must be a string"))),
    }
}

fn style_from(value: &Value, ctx: &str) -> Result<DataflowStyle, JsonError> {
    match value.as_str() {
        Some("is-os") => Ok(DataflowStyle::IsOs),
        Some("output-stationary") => Ok(DataflowStyle::OutputStationary),
        Some("fused-tile") => Ok(DataflowStyle::FusedTile),
        Some(other) => Err(JsonError::new(format!(
            "{ctx}: unknown dataflow style `{other}` (expected is-os, output-stationary, or \
             fused-tile)"
        ))),
        None => Err(JsonError::new(format!("{ctx}: `style` must be a string"))),
    }
}

fn pipeline_from(value: &Value, ctx: &str) -> Result<PipelinePolicy, JsonError> {
    match value.as_str() {
        Some("none") => Ok(PipelinePolicy::None),
        Some("inter-layer") => Ok(PipelinePolicy::InterLayer),
        Some(other) => Err(JsonError::new(format!(
            "{ctx}: unknown pipeline policy `{other}` (expected none or inter-layer)"
        ))),
        None => Err(JsonError::new(format!(
            "{ctx}: `pipeline` must be a string"
        ))),
    }
}

fn compute_from(value: &Value) -> Result<ComputeDesc, JsonError> {
    let ctx = "compute";
    let pairs = obj_fields(
        value,
        ctx,
        &[
            "lanes",
            "macs_per_lane",
            "efficiency",
            "mergers_per_lane",
            "merger_radix",
            "contexts",
        ],
    )?;
    Ok(ComputeDesc {
        lanes: as_count(req(pairs, ctx, "lanes")?, ctx, "lanes")?,
        macs_per_lane: as_count(req(pairs, ctx, "macs_per_lane")?, ctx, "macs_per_lane")?,
        efficiency: as_number(req(pairs, ctx, "efficiency")?, ctx, "efficiency")?,
        mergers_per_lane: match get(pairs, "mergers_per_lane") {
            Some(v) => as_count(v, ctx, "mergers_per_lane")?,
            None => 0,
        },
        merger_radix: match get(pairs, "merger_radix") {
            Some(v) => as_count(v, ctx, "merger_radix")?,
            None => 256,
        },
        contexts: match get(pairs, "contexts") {
            Some(v) => as_count(v, ctx, "contexts")?,
            None => 1,
        },
    })
}

fn memory_from(value: &Value) -> Result<MemoryDesc, JsonError> {
    let ctx = "memory";
    let pairs = obj_fields(value, ctx, &["dram_bytes_per_cycle"])?;
    Ok(MemoryDesc {
        dram_bytes_per_cycle: as_number(
            req(pairs, ctx, "dram_bytes_per_cycle")?,
            ctx,
            "dram_bytes_per_cycle",
        )?,
    })
}

fn binding_from(value: &Value, ctx: &str) -> Result<TensorBinding, JsonError> {
    let pairs = obj_fields(value, ctx, &["tensor", "format", "skipping", "gating"])?;
    Ok(TensorBinding {
        tensor: tensor_kind_from(req(pairs, ctx, "tensor")?, ctx)?,
        format: match get(pairs, "format") {
            Some(v) => format_from(v, ctx)?,
            None => TensorFormat::Dense,
        },
        skipping: match get(pairs, "skipping") {
            Some(v) => as_flag(v, ctx, "skipping")?,
            None => false,
        },
        gating: match get(pairs, "gating") {
            Some(v) => gating_from(v, ctx)?,
            None => Gating::None,
        },
    })
}

fn level_from(value: &Value, index: usize) -> Result<BufferLevel, JsonError> {
    let ctx = format!("levels[{index}]");
    let pairs = obj_fields(
        value,
        &ctx,
        &[
            "name",
            "bytes",
            "banks",
            "per_lane",
            "alloc_overhead",
            "stores",
        ],
    )?;
    let name = as_text(req(pairs, &ctx, "name")?, &ctx, "name")?;
    let ctx = format!("level `{name}`");
    let stores = match get(pairs, "stores") {
        Some(v) => {
            let arr = v
                .as_arr()
                .map_err(|_| JsonError::new(format!("{ctx}: `stores` must be an array")))?;
            arr.iter()
                .map(|b| binding_from(b, &format!("{ctx} stores entry")))
                .collect::<Result<Vec<_>, _>>()?
        }
        None => Vec::new(),
    };
    Ok(BufferLevel {
        bytes: as_bytes(req(pairs, &ctx, "bytes")?, &ctx, "bytes")?,
        banks: match get(pairs, "banks") {
            Some(v) => as_count(v, &ctx, "banks")?,
            None => 1,
        },
        per_lane: match get(pairs, "per_lane") {
            Some(v) => as_flag(v, &ctx, "per_lane")?,
            None => false,
        },
        alloc_overhead: match get(pairs, "alloc_overhead") {
            Some(v) => as_number(v, &ctx, "alloc_overhead")?,
            None => 1.0,
        },
        stores,
        name,
    })
}

fn dataflow_from(value: &Value) -> Result<DataflowDesc, JsonError> {
    let ctx = "dataflow";
    let pairs = obj_fields(value, ctx, &["style", "loop_nest", "pipeline"])?;
    let nest_value = req(pairs, ctx, "loop_nest")?;
    let nest = nest_value
        .as_arr()
        .map_err(|_| JsonError::new(format!("{ctx}: `loop_nest` must be an array of strings")))?
        .iter()
        .map(|v| {
            v.as_str().map(str::to_string).ok_or_else(|| {
                JsonError::new(format!(
                    "{ctx}: loop_nest entries must be strings like \"K/64\", got {}",
                    v.kind()
                ))
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(DataflowDesc {
        style: style_from(req(pairs, ctx, "style")?, ctx)?,
        loop_nest: nest,
        pipeline: match get(pairs, "pipeline") {
            Some(v) => pipeline_from(v, ctx)?,
            None => PipelinePolicy::None,
        },
    })
}

impl Deserialize for ArchDesc {
    fn from_value(value: &Value) -> Result<Self, JsonError> {
        let ctx = "arch description";
        let pairs = obj_fields(
            value,
            ctx,
            &["name", "compute", "memory", "levels", "dataflow"],
        )?;
        let levels = req(pairs, ctx, "levels")?
            .as_arr()
            .map_err(|_| JsonError::new(format!("{ctx}: `levels` must be an array")))?
            .iter()
            .enumerate()
            .map(|(i, v)| level_from(v, i))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ArchDesc {
            name: as_text(req(pairs, ctx, "name")?, ctx, "name")?,
            compute: compute_from(req(pairs, ctx, "compute")?)?,
            memory: memory_from(req(pairs, ctx, "memory")?)?,
            levels,
            dataflow: dataflow_from(req(pairs, ctx, "dataflow")?)?,
        })
    }
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

impl Serialize for ArchDesc {
    fn to_value(&self) -> Value {
        obj(vec![
            ("name", Value::Str(self.name.clone())),
            (
                "compute",
                obj(vec![
                    ("lanes", Value::U64(self.compute.lanes as u64)),
                    (
                        "macs_per_lane",
                        Value::U64(self.compute.macs_per_lane as u64),
                    ),
                    ("efficiency", Value::F64(self.compute.efficiency)),
                    (
                        "mergers_per_lane",
                        Value::U64(self.compute.mergers_per_lane as u64),
                    ),
                    ("merger_radix", Value::U64(self.compute.merger_radix as u64)),
                    ("contexts", Value::U64(self.compute.contexts as u64)),
                ]),
            ),
            (
                "memory",
                obj(vec![(
                    "dram_bytes_per_cycle",
                    Value::F64(self.memory.dram_bytes_per_cycle),
                )]),
            ),
            (
                "levels",
                Value::Arr(
                    self.levels
                        .iter()
                        .map(|l| {
                            obj(vec![
                                ("name", Value::Str(l.name.clone())),
                                ("bytes", Value::U64(l.bytes)),
                                ("banks", Value::U64(l.banks as u64)),
                                ("per_lane", Value::Bool(l.per_lane)),
                                ("alloc_overhead", Value::F64(l.alloc_overhead)),
                                (
                                    "stores",
                                    Value::Arr(
                                        l.stores
                                            .iter()
                                            .map(|b| {
                                                obj(vec![
                                                    ("tensor", Value::Str(b.tensor.label().into())),
                                                    ("format", Value::Str(b.format.label().into())),
                                                    ("skipping", Value::Bool(b.skipping)),
                                                    ("gating", Value::Str(b.gating.label().into())),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "dataflow",
                obj(vec![
                    ("style", Value::Str(self.dataflow.style.label().into())),
                    (
                        "loop_nest",
                        Value::Arr(
                            self.dataflow
                                .loop_nest
                                .iter()
                                .cloned()
                                .map(Value::Str)
                                .collect(),
                        ),
                    ),
                    (
                        "pipeline",
                        Value::Str(self.dataflow.pipeline.label().into()),
                    ),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::reference;

    #[test]
    fn references_round_trip_through_json_values() {
        for desc in reference::all() {
            let value = desc.to_value();
            let back = ArchDesc::from_value(&value).unwrap();
            assert_eq!(back, desc);
            assert!(back.validate().is_ok(), "{}", desc.name);
        }
    }

    #[test]
    fn zero_size_level_is_rejected_with_the_level_name() {
        let mut desc = reference::sparten();
        desc.levels[0].bytes = 0;
        let err = desc.validate().unwrap_err();
        assert!(err.message().contains("zero size"), "{err}");
        assert!(err.message().contains(&desc.levels[0].name), "{err}");
    }

    #[test]
    fn duplicate_and_unknown_loop_dims_are_rank_mismatches() {
        let mut desc = reference::sparten();
        desc.dataflow.loop_nest = vec!["K/64".into(), "K".into()];
        let err = desc.validate().unwrap_err();
        assert!(err.message().contains("rank mismatch"), "{err}");
        assert!(err.message().contains("more than once"), "{err}");

        desc.dataflow.loop_nest = vec!["Z".into()];
        let err = desc.validate().unwrap_err();
        assert!(err.message().contains("unknown dimension `Z`"), "{err}");
    }

    #[test]
    fn unknown_sparsity_feature_is_rejected_with_alternatives() {
        let mut value = reference::sparten().to_value();
        // Patch the first binding's format to an unknown feature.
        let Value::Obj(pairs) = &mut value else {
            panic!()
        };
        let levels = pairs.iter_mut().find(|(k, _)| k == "levels").unwrap();
        let Value::Arr(levels) = &mut levels.1 else {
            panic!()
        };
        let Value::Obj(level) = &mut levels[0] else {
            panic!()
        };
        let stores = level.iter_mut().find(|(k, _)| k == "stores").unwrap();
        let Value::Arr(stores) = &mut stores.1 else {
            panic!()
        };
        let Value::Obj(binding) = &mut stores[0] else {
            panic!()
        };
        let format = binding.iter_mut().find(|(k, _)| k == "format").unwrap();
        format.1 = Value::Str("runlength".into());
        let err = ArchDesc::from_value(&value).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown sparsity format `runlength`"), "{msg}");
        assert!(msg.contains("dense, bitmask, or csf"), "{msg}");
    }

    #[test]
    fn unknown_fields_name_the_context() {
        let mut text = serde::json::to_string(&reference::fused_layer());
        text = text.replacen("\"lanes\"", "\"lane\"", 1);
        let err = ArchDesc::from_config_str(&text).unwrap_err();
        assert!(err.message().contains("unknown field `lane`"), "{err}");
        assert!(err.message().contains("compute"), "{err}");
    }

    #[test]
    fn missing_required_fields_are_named() {
        let err = ArchDesc::from_config_str("{\"name\":\"x\"}").unwrap_err();
        assert!(
            err.message().contains("missing required field `levels`"),
            "{err}"
        );
        let err = ArchDesc::from_config_str("{\"name\":\"x\",\"levels\":[]}").unwrap_err();
        assert!(
            err.message().contains("missing required field `compute`"),
            "{err}"
        );
    }

    #[test]
    fn os_without_k_tile_and_fused_without_pq_tiles_are_rejected() {
        let mut os = reference::sparten();
        os.dataflow.loop_nest = vec!["K".into(), "P".into(), "Q".into()];
        let err = os.validate().unwrap_err();
        assert!(err.message().contains("tiled K loop"), "{err}");

        let mut fused = reference::fused_layer();
        fused.dataflow.loop_nest = vec!["P/32".into(), "Q/16".into(), "K".into()];
        let err = fused.validate().unwrap_err();
        assert!(err.message().contains("matching P and Q tiles"), "{err}");
    }

    #[test]
    fn is_os_needs_mergers_and_lane_levels() {
        let mut desc = reference::isosceles_single();
        desc.compute.mergers_per_lane = 0;
        let err = desc.validate().unwrap_err();
        assert!(err.message().contains("needs mergers"), "{err}");
    }

    #[test]
    fn gospa_on_weights_is_rejected() {
        let mut desc = reference::sparten();
        for level in &mut desc.levels {
            for b in &mut level.stores {
                if b.tensor == TensorKind::Weights {
                    b.gating = Gating::Gospa;
                }
            }
        }
        let err = desc.validate().unwrap_err();
        assert!(err.message().contains("gospa gating"), "{err}");
    }

    #[test]
    fn loop_nest_helpers_expose_tiles() {
        let desc = reference::sparten();
        assert_eq!(desc.dataflow.tile_of("K"), Some(64));
        assert_eq!(desc.dataflow.tile_of("P"), None);
        let nest = desc.dataflow.parsed_loop_nest().unwrap();
        assert_eq!(nest[0].dim, "K");
    }
}
