//! A minimal TOML reader/writer for architecture descriptions.
//!
//! The workspace vendors a JSON-only serde stand-in, so this module
//! implements the TOML subset the shipped descriptions use and maps it
//! onto [`serde::json::Value`]: comments, `[table]` headers, dotted
//! header paths, `[[array-of-tables]]` headers, and single-line values
//! (strings with escapes, integers with `_` separators, floats,
//! booleans, arrays, inline tables). Errors carry the 1-based line
//! number and an actionable message.
//!
//! [`value_to_toml`] is the inverse used by round-trip tests and by
//! tooling that wants to print a description back out.

use super::schema::ArchError;
use serde::json::Value;

/// Parses TOML text into a JSON value tree.
///
/// # Errors
///
/// Returns an [`ArchError`] naming the offending line.
pub fn toml_to_value(text: &str) -> Result<Value, ArchError> {
    let mut root: Vec<(String, Value)> = Vec::new();
    let mut current_path: Vec<String> = Vec::new();
    for (index, raw) in text.lines().enumerate() {
        let line_no = index + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            let inner = rest
                .strip_suffix("]]")
                .ok_or_else(|| at(line_no, "array-of-tables header must end with `]]`".into()))?;
            let path = parse_path(inner, line_no)?;
            append_array_table(&mut root, &path, line_no)?;
            current_path = path;
        } else if let Some(rest) = line.strip_prefix('[') {
            let inner = rest
                .strip_suffix(']')
                .ok_or_else(|| at(line_no, "table header must end with `]`".into()))?;
            let path = parse_path(inner, line_no)?;
            open_table(&mut root, &path, line_no)?;
            current_path = path;
        } else {
            let (key, rest) = line
                .split_once('=')
                .ok_or_else(|| at(line_no, format!("expected `key = value`, got `{line}`")))?;
            let key = parse_key(key.trim(), line_no)?;
            let (value, rest) = parse_value(rest.trim(), line_no)?;
            if !rest.trim().is_empty() {
                return Err(at(
                    line_no,
                    format!("unexpected trailing text `{}` after value", rest.trim()),
                ));
            }
            let table = resolve(&mut root, &current_path, line_no)?;
            if table.iter().any(|(k, _)| *k == key) {
                return Err(at(line_no, format!("duplicate key `{key}`")));
            }
            table.push((key, value));
        }
    }
    Ok(Value::Obj(root))
}

fn at(line: usize, msg: String) -> ArchError {
    ArchError::new(format!("TOML line {line}: {msg}"))
}

/// Drops a trailing `# comment`, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_key(raw: &str, line: usize) -> Result<String, ArchError> {
    if raw.is_empty() {
        return Err(at(line, "empty key before `=`".into()));
    }
    if let Some(inner) = raw.strip_prefix('"') {
        let inner = inner
            .strip_suffix('"')
            .ok_or_else(|| at(line, format!("unterminated quoted key `{raw}`")))?;
        return Ok(inner.to_string());
    }
    if raw
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        Ok(raw.to_string())
    } else {
        Err(at(line, format!("invalid key `{raw}`")))
    }
}

fn parse_path(raw: &str, line: usize) -> Result<Vec<String>, ArchError> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Err(at(line, "empty table header".into()));
    }
    raw.split('.')
        .map(|seg| parse_key(seg.trim(), line))
        .collect()
}

/// Walks `path`, descending into the last element of any
/// array-of-tables along the way, creating missing tables.
fn resolve<'a>(
    root: &'a mut Vec<(String, Value)>,
    path: &[String],
    line: usize,
) -> Result<&'a mut Vec<(String, Value)>, ArchError> {
    let mut current = root;
    for seg in path {
        if !current.iter().any(|(k, _)| k == seg) {
            current.push((seg.clone(), Value::Obj(Vec::new())));
        }
        let slot = current
            .iter_mut()
            .find(|(k, _)| k == seg)
            .map(|(_, v)| v)
            .expect("just ensured present");
        current = match slot {
            Value::Obj(pairs) => pairs,
            Value::Arr(items) => match items.last_mut() {
                Some(Value::Obj(pairs)) => pairs,
                _ => {
                    return Err(at(
                        line,
                        format!("`{seg}` is not a table or array of tables"),
                    ))
                }
            },
            _ => return Err(at(line, format!("`{seg}` is not a table"))),
        };
    }
    Ok(current)
}

fn open_table(
    root: &mut Vec<(String, Value)>,
    path: &[String],
    line: usize,
) -> Result<(), ArchError> {
    resolve(root, path, line).map(|_| ())
}

fn append_array_table(
    root: &mut Vec<(String, Value)>,
    path: &[String],
    line: usize,
) -> Result<(), ArchError> {
    let (last, parent) = path.split_last().expect("parse_path rejects empty paths");
    let parent = resolve(root, parent, line)?;
    match parent.iter_mut().find(|(k, _)| k == last) {
        None => {
            parent.push((last.clone(), Value::Arr(vec![Value::Obj(Vec::new())])));
            Ok(())
        }
        Some((_, Value::Arr(items))) => {
            items.push(Value::Obj(Vec::new()));
            Ok(())
        }
        Some(_) => Err(at(
            line,
            format!("`{last}` already holds a non-array value"),
        )),
    }
}

/// Parses one value from the front of `s`; returns it plus the rest.
fn parse_value(s: &str, line: usize) -> Result<(Value, &str), ArchError> {
    let s = s.trim_start();
    let Some(first) = s.chars().next() else {
        return Err(at(line, "expected a value".into()));
    };
    match first {
        '"' => parse_string(s, line),
        '[' => parse_array(s, line),
        '{' => parse_inline_table(s, line),
        _ => parse_scalar(s, line),
    }
}

fn parse_string(s: &str, line: usize) -> Result<(Value, &str), ArchError> {
    let mut out = String::new();
    let mut chars = s.char_indices().skip(1);
    while let Some((i, c)) = chars.next() {
        match c {
            '\\' => match chars.next() {
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, other)) => {
                    return Err(at(line, format!("unknown string escape `\\{other}`")))
                }
                None => return Err(at(line, "unterminated string".into())),
            },
            '"' => return Ok((Value::Str(out), &s[i + 1..])),
            _ => out.push(c),
        }
    }
    Err(at(line, "unterminated string".into()))
}

fn parse_array(s: &str, line: usize) -> Result<(Value, &str), ArchError> {
    let mut rest = s[1..].trim_start();
    let mut items = Vec::new();
    loop {
        if let Some(after) = rest.strip_prefix(']') {
            return Ok((Value::Arr(items), after));
        }
        let (value, after) = parse_value(rest, line)?;
        items.push(value);
        rest = after.trim_start();
        if let Some(after) = rest.strip_prefix(',') {
            rest = after.trim_start();
        } else if !rest.starts_with(']') {
            return Err(at(line, "expected `,` or `]` in array".into()));
        }
    }
}

fn parse_inline_table(s: &str, line: usize) -> Result<(Value, &str), ArchError> {
    let mut rest = s[1..].trim_start();
    let mut pairs: Vec<(String, Value)> = Vec::new();
    loop {
        if let Some(after) = rest.strip_prefix('}') {
            return Ok((Value::Obj(pairs), after));
        }
        let eq = rest
            .find('=')
            .ok_or_else(|| at(line, "expected `key = value` in inline table".into()))?;
        let key = parse_key(rest[..eq].trim(), line)?;
        let (value, after) = parse_value(rest[eq + 1..].trim_start(), line)?;
        pairs.push((key, value));
        rest = after.trim_start();
        if let Some(after) = rest.strip_prefix(',') {
            rest = after.trim_start();
        } else if !rest.starts_with('}') {
            return Err(at(line, "expected `,` or `}` in inline table".into()));
        }
    }
}

fn parse_scalar(s: &str, line: usize) -> Result<(Value, &str), ArchError> {
    let end = s
        .find(|c: char| matches!(c, ',' | ']' | '}') || c.is_whitespace())
        .unwrap_or(s.len());
    let (token, rest) = s.split_at(end);
    if token.is_empty() {
        return Err(at(line, "expected a value".into()));
    }
    match token {
        "true" => return Ok((Value::Bool(true), rest)),
        "false" => return Ok((Value::Bool(false), rest)),
        _ => {}
    }
    let digits: String = token.chars().filter(|&c| c != '_').collect();
    let value = if digits.contains('.') || digits.contains('e') || digits.contains('E') {
        digits
            .parse::<f64>()
            .map(Value::F64)
            .map_err(|_| at(line, format!("invalid number `{token}`")))?
    } else if digits.starts_with('-') {
        digits
            .parse::<i64>()
            .map(Value::I64)
            .map_err(|_| at(line, format!("invalid number `{token}`")))?
    } else {
        digits
            .parse::<u64>()
            .map(Value::U64)
            .map_err(|_| at(line, format!("invalid value `{token}`")))?
    };
    Ok((value, rest))
}

// ---------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------

/// Renders a value tree (top-level object) as TOML text.
///
/// Scalars and scalar arrays render inline; nested objects become
/// `[table]` sections and arrays of objects `[[table]]` sections, so
/// the output parses back to the same tree via [`toml_to_value`].
pub fn value_to_toml(value: &Value) -> String {
    let mut out = String::new();
    if let Value::Obj(pairs) = value {
        emit_table(&mut out, pairs, &mut Vec::new());
    }
    out
}

fn is_section(value: &Value) -> bool {
    match value {
        Value::Obj(_) => true,
        Value::Arr(items) => !items.is_empty() && items.iter().all(|v| matches!(v, Value::Obj(_))),
        _ => false,
    }
}

fn emit_table(out: &mut String, pairs: &[(String, Value)], path: &mut Vec<String>) {
    for (key, value) in pairs.iter().filter(|(_, v)| !is_section(v)) {
        out.push_str(key);
        out.push_str(" = ");
        emit_inline(out, value);
        out.push('\n');
    }
    for (key, value) in pairs.iter().filter(|(_, v)| is_section(v)) {
        path.push(key.clone());
        match value {
            Value::Obj(nested) => {
                out.push_str(&format!("\n[{}]\n", path.join(".")));
                emit_table(out, nested, path);
            }
            Value::Arr(items) => {
                for item in items {
                    if let Value::Obj(nested) = item {
                        out.push_str(&format!("\n[[{}]]\n", path.join(".")));
                        emit_table(out, nested, path);
                    }
                }
            }
            _ => unreachable!("is_section admits only objects and object arrays"),
        }
        path.pop();
    }
}

fn emit_inline(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("\"\""),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.fract() == 0.0 && f.is_finite() && f.abs() < 1e15 {
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&format!("{f}"));
            }
        }
        Value::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    _ => out.push(c),
                }
            }
            out.push('"');
        }
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                emit_inline(out, item);
            }
            out.push(']');
        }
        Value::Obj(pairs) => {
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(k);
                out.push_str(" = ");
                emit_inline(out, v);
            }
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_arrays_and_scalars() {
        let text = r#"
# top comment
name = "demo"
count = 1_024
ratio = 0.95
flag = true
list = [1, 2, 3]

[compute]
lanes = 64 # trailing comment

[[levels]]
name = "fb"
stores = [{tensor = "weights", format = "bitmask"}]

[[levels]]
name = "q"
"#;
        let value = toml_to_value(text).unwrap();
        assert_eq!(value.field("name").unwrap().as_str(), Some("demo"));
        assert_eq!(value.field("count").unwrap().as_u64().unwrap(), 1024);
        assert_eq!(value.field("ratio").unwrap().as_f64().unwrap(), 0.95);
        assert!(value.field("flag").unwrap().as_bool().unwrap());
        let levels = value.field("levels").unwrap().as_arr().unwrap();
        assert_eq!(levels.len(), 2);
        let stores = levels[0].field("stores").unwrap().as_arr().unwrap();
        assert_eq!(stores[0].field("tensor").unwrap().as_str(), Some("weights"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = toml_to_value("ok = 1\nbroken").unwrap_err();
        assert!(err.message().contains("line 2"), "{err}");
        let err = toml_to_value("x = \"unterminated").unwrap_err();
        assert!(err.message().contains("unterminated"), "{err}");
    }

    #[test]
    fn emitted_toml_round_trips() {
        let text = "a = 1\nb = \"two\"\n\n[t]\nc = 0.5\n\n[[arr]]\nd = true\n";
        let value = toml_to_value(text).unwrap();
        let emitted = value_to_toml(&value);
        assert_eq!(toml_to_value(&emitted).unwrap(), value);
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let value = toml_to_value("s = \"a # b\"").unwrap();
        assert_eq!(value.field("s").unwrap().as_str(), Some("a # b"));
    }
}
