//! Lowering: from a declarative [`ArchDesc`] to the shared simulation
//! substrate.
//!
//! The interpreter does not invent new cost models. It maps each
//! dataflow family onto the exact closed form the hand-written models
//! use — [`DataflowStyle::IsOs`] onto the cycle-level
//! `isosceles::arch` engine, [`DataflowStyle::OutputStationary`] onto
//! `isos_baselines::sparten_layer_metrics`, and
//! [`DataflowStyle::FusedTile`] onto
//! `isos_baselines::fused_group_metrics` — so a description whose
//! parameters match a hand-written model reproduces it *bit for bit*,
//! and any other point in the family inherits the same accounting.
//!
//! [`ArchAccel`] wraps the lowered form as an
//! [`Accelerator`], so described machines run through the bench suite
//! engine (and its cache: the cache key hashes the description itself)
//! exactly like the built-in models. [`ArchAccel::estimate`] produces a
//! [`NetworkEstimate`] compatible with `explore::model`, which is what
//! lets the DSE screen thousands of described points analytically.

use super::schema::{ArchDesc, ArchError, DataflowStyle, PipelinePolicy, TensorKind};
use crate::model::{estimate_mapping, GroupEstimate, LayerEstimate, NetworkEstimate};
use isos_baselines::{
    fused_group_metrics, fused_groups, sparten_layer_metrics, FusedLayerConfig, SpartenConfig,
};
use isos_nn::graph::Network;
use isos_sim::area::{area_of, AreaConfig, AreaParams};
use isos_sim::metrics::RunMetrics;
use isos_trace::TraceSink;
use isosceles::accel::{stable_key, Accelerator};
use isosceles::arch::{run_network, run_network_traced};
use isosceles::mapping::{map_network, ExecMode};
use isosceles::metrics::NetworkMetrics;
use isosceles::IsoscelesConfig;

/// A description lowered onto one of the substrate's cost models.
#[derive(Clone, Debug, PartialEq)]
pub enum Lowered {
    /// The two-phase IS-OS dataflow on the cycle-level engine.
    IsOs {
        /// The hardware configuration the engine runs.
        cfg: IsoscelesConfig,
        /// Pipelined or layer-by-layer, from the description's
        /// `dataflow.pipeline`.
        mode: ExecMode,
    },
    /// Output-stationary bitmask intersection (SparTen's closed form).
    OutputStationary(SpartenConfig),
    /// Dense fused-tile pipelining (Fused-Layer's closed form).
    FusedTile(FusedLayerConfig),
}

/// Lowers a validated description onto the substrate.
///
/// # Errors
///
/// Returns the description's validation error if it is not
/// well-formed; a valid description always lowers.
pub fn lower(desc: &ArchDesc) -> Result<Lowered, ArchError> {
    desc.validate()?;
    let weights = desc
        .shared_level_for(TensorKind::Weights)
        .expect("validate requires a shared weights level");
    let filter_buffer_bytes = weights.bytes;
    let total_macs = desc.compute.lanes * desc.compute.macs_per_lane;
    Ok(match desc.dataflow.style {
        DataflowStyle::IsOs => {
            let contexts = desc
                .per_lane_level_for(TensorKind::Outputs)
                .expect("validate requires a per-lane outputs level");
            let queues = desc
                .per_lane_level_for(TensorKind::Inputs)
                .expect("validate requires a per-lane inputs level");
            Lowered::IsOs {
                cfg: IsoscelesConfig {
                    lanes: desc.compute.lanes,
                    macs_per_lane: desc.compute.macs_per_lane,
                    filter_buffer_bytes,
                    context_bytes_per_lane: contexts.bytes,
                    queue_bytes_per_lane: queues.bytes,
                    mergers_per_lane: desc.compute.mergers_per_lane,
                    merger_radix: desc.compute.merger_radix,
                    dram_bytes_per_cycle: desc.memory.dram_bytes_per_cycle,
                    max_contexts: desc.compute.contexts,
                    pe_efficiency: desc.compute.efficiency,
                    filter_buffer_alloc_overhead: weights.alloc_overhead,
                    // Datapath constants the schema does not (yet)
                    // parameterize: 8-bit multipliers into 16-bit
                    // accumulators at 1 GHz, 100-cycle scheduling.
                    ..IsoscelesConfig::default()
                },
                mode: match desc.dataflow.pipeline {
                    PipelinePolicy::InterLayer => ExecMode::Pipelined,
                    PipelinePolicy::None => ExecMode::SingleLayer,
                },
            }
        }
        DataflowStyle::OutputStationary => Lowered::OutputStationary(SpartenConfig {
            clusters: desc.compute.lanes,
            macs_per_cluster: desc.compute.macs_per_lane,
            cluster_buffer_bytes: desc
                .levels
                .iter()
                .find(|l| l.per_lane)
                .map_or(0, |l| l.bytes),
            filter_buffer_bytes,
            dram_bytes_per_cycle: desc.memory.dram_bytes_per_cycle,
            k_per_pass: desc
                .dataflow
                .tile_of("K")
                .expect("validate requires a K tile for output-stationary")
                as usize,
            compute_efficiency: desc.compute.efficiency,
            gospa_filtering: desc.gospa_gating(),
        }),
        DataflowStyle::FusedTile => Lowered::FusedTile(FusedLayerConfig {
            total_macs,
            filter_buffer_bytes,
            dram_bytes_per_cycle: desc.memory.dram_bytes_per_cycle,
            tile: desc
                .dataflow
                .tile_of("P")
                .expect("validate requires matching P/Q tiles for fused-tile")
                as usize,
            compute_efficiency: desc.compute.efficiency,
        }),
    })
}

/// A described architecture, ready to run: the description plus its
/// lowered form, wrapped as an [`Accelerator`].
///
/// The model name is `arch:<description name>` and the cache key hashes
/// the description itself, so described points flow through the bench
/// engine's on-disk cache and the serve layer's single-flight dedup
/// with no engine changes.
#[derive(Clone, Debug)]
pub struct ArchAccel {
    desc: ArchDesc,
    lowered: Lowered,
    label: String,
}

impl ArchAccel {
    /// Validates and lowers `desc`.
    ///
    /// # Errors
    ///
    /// Returns the description's validation error.
    pub fn new(desc: ArchDesc) -> Result<Self, ArchError> {
        let lowered = lower(&desc)?;
        let label = format!("arch:{}", desc.name);
        Ok(Self {
            desc,
            lowered,
            label,
        })
    }

    /// The description this accelerator was built from.
    pub fn desc(&self) -> &ArchDesc {
        &self.desc
    }

    /// The lowered substrate form.
    pub fn lowered(&self) -> &Lowered {
        &self.lowered
    }

    /// The [`IsoscelesConfig`] used for energy conversion: the lowered
    /// hardware for IS-OS machines, the default datapath constants
    /// (16-bit accumulators, matching the baselines' 4 local bytes per
    /// MAC) otherwise.
    fn energy_cfg(&self) -> IsoscelesConfig {
        match &self.lowered {
            Lowered::IsOs { cfg, .. } => *cfg,
            _ => IsoscelesConfig::default(),
        }
    }

    /// Analytical estimate of `net` on this description, in the same
    /// [`NetworkEstimate`] form the hand-written analytic model
    /// produces — the screening currency of the DSE.
    ///
    /// IS-OS machines go through `explore::model`'s group estimator on
    /// the lowered mapping; the closed-form families *are* analytical,
    /// so their estimates restate the exact model outputs.
    pub fn estimate(&self, net: &Network) -> NetworkEstimate {
        match &self.lowered {
            Lowered::IsOs { cfg, mode } => {
                let mapping = map_network(net, cfg, *mode);
                estimate_mapping(net, cfg, &mapping)
            }
            Lowered::OutputStationary(cfg) => {
                let mut out = NetworkEstimate::default();
                for node in net.nodes() {
                    let m = sparten_layer_metrics(&node.layer, cfg);
                    push_metrics_group(&mut out, node.layer.name.clone(), &m, Vec::new());
                }
                out
            }
            Lowered::FusedTile(cfg) => {
                let mut out = NetworkEstimate::default();
                for group in fused_groups(net, cfg) {
                    let run = fused_group_metrics(net, &group, cfg);
                    let name = net.layer(group[0]).name.clone();
                    let layers = run
                        .layers
                        .iter()
                        .map(|(lname, lm)| layer_estimate_of(lname.clone(), lm))
                        .collect();
                    push_metrics_group(&mut out, name, &run.metrics, layers);
                }
                out
            }
        }
    }

    /// Estimated silicon area in mm² at 45 nm, from the description's
    /// compute array and buffer capacities through `isos-sim`'s Table II
    /// constants (merger cost scaled linearly in radix from the
    /// radix-256 anchor, as in [`crate::model::area_mm2`]).
    pub fn area_mm2(&self) -> f64 {
        let per_lane_bytes: u64 = self
            .desc
            .levels
            .iter()
            .filter(|l| l.per_lane)
            .map(|l| l.bytes)
            .sum();
        let shared_bytes: u64 = self
            .desc
            .levels
            .iter()
            .filter(|l| !l.per_lane)
            .map(|l| l.bytes)
            .sum();
        let area_cfg = AreaConfig {
            lanes: self.desc.compute.lanes as u32,
            macs_per_lane: self.desc.compute.macs_per_lane as u32,
            mergers_per_lane: self.desc.compute.mergers_per_lane as u32,
            lane_sram_kb: (per_lane_bytes / 1024) as u32,
            filter_buffer_kb: (shared_bytes / 1024) as u32,
        };
        let mut params = AreaParams::default();
        params.merger_mm2 *= self.desc.compute.merger_radix as f64 / 256.0;
        area_of(&area_cfg, &params).total_mm2()
    }

    /// Estimated energy per inference in millijoules, from
    /// [`estimate`](Self::estimate)'s activity mirror.
    pub fn energy_mj(&self, net: &Network) -> f64 {
        self.estimate(net).energy_mj(&self.energy_cfg())
    }
}

/// Folds one `RunMetrics` group into a [`NetworkEstimate`]. If `layers`
/// is empty the group becomes its own single-layer breakdown, matching
/// how the layer-by-layer models report.
fn push_metrics_group(
    out: &mut NetworkEstimate,
    name: String,
    m: &RunMetrics,
    layers: Vec<LayerEstimate>,
) {
    let layers = if layers.is_empty() {
        vec![layer_estimate_of(name.clone(), m)]
    } else {
        layers
    };
    let g = GroupEstimate {
        name,
        cycles: m.cycles as f64,
        weight_bytes: m.weight_traffic,
        act_bytes: m.act_traffic,
        macs: m.effectual_macs,
        layers,
    };
    out.cycles += g.cycles;
    out.dram_bytes += g.total_bytes();
    out.macs += g.macs;
    out.groups.push(g);
}

fn layer_estimate_of(name: String, m: &RunMetrics) -> LayerEstimate {
    LayerEstimate {
        name,
        cycles: m.cycles as f64,
        weight_bytes: m.weight_traffic,
        act_bytes: m.act_traffic,
        macs: m.effectual_macs,
    }
}

impl Accelerator for ArchAccel {
    fn name(&self) -> &str {
        &self.label
    }

    fn cache_key(&self) -> u64 {
        stable_key(&self.label, &self.desc)
    }

    fn simulate(&self, net: &Network, seed: u64) -> NetworkMetrics {
        match &self.lowered {
            Lowered::IsOs { cfg, mode } => run_network(net, cfg, *mode, seed),
            Lowered::OutputStationary(cfg) => cfg.simulate(net, seed),
            Lowered::FusedTile(cfg) => cfg.simulate(net, seed),
        }
    }

    fn simulate_traced(
        &self,
        net: &Network,
        seed: u64,
        sink: &mut dyn TraceSink,
    ) -> NetworkMetrics {
        match &self.lowered {
            Lowered::IsOs { cfg, mode } => run_network_traced(net, cfg, *mode, seed, sink),
            Lowered::OutputStationary(cfg) => cfg.simulate_traced(net, seed, sink),
            Lowered::FusedTile(cfg) => cfg.simulate_traced(net, seed, sink),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::reference;
    use isos_baselines::IsoscelesSingleConfig;
    use isos_nn::models::suite_workload;

    #[test]
    fn references_lower_to_the_hand_written_configs() {
        match lower(&reference::isosceles_single()).unwrap() {
            Lowered::IsOs { cfg, mode } => {
                assert_eq!(cfg, IsoscelesConfig::default());
                assert_eq!(mode, ExecMode::SingleLayer);
            }
            other => panic!("wrong lowering: {other:?}"),
        }
        match lower(&reference::isosceles()).unwrap() {
            Lowered::IsOs { cfg, mode } => {
                assert_eq!(cfg, IsoscelesConfig::default());
                assert_eq!(mode, ExecMode::Pipelined);
            }
            other => panic!("wrong lowering: {other:?}"),
        }
        match lower(&reference::sparten()).unwrap() {
            Lowered::OutputStationary(cfg) => assert_eq!(cfg, SpartenConfig::default()),
            other => panic!("wrong lowering: {other:?}"),
        }
        match lower(&reference::fused_layer()).unwrap() {
            Lowered::FusedTile(cfg) => assert_eq!(cfg, FusedLayerConfig::default()),
            other => panic!("wrong lowering: {other:?}"),
        }
    }

    #[test]
    fn described_single_simulates_bit_identical_to_hand_written() {
        let net = suite_workload("G58", 1).network;
        let accel = ArchAccel::new(reference::isosceles_single()).unwrap();
        let described = accel.simulate(&net, 7);
        let hand = IsoscelesSingleConfig::default().simulate(&net, 7);
        assert_eq!(described, hand);
    }

    #[test]
    fn cache_keys_are_stable_and_track_the_description() {
        let a = ArchAccel::new(reference::sparten()).unwrap();
        let b = ArchAccel::new(reference::sparten()).unwrap();
        assert_eq!(a.cache_key(), b.cache_key());
        let mut changed = reference::sparten();
        changed.compute.lanes = 32;
        let c = ArchAccel::new(changed).unwrap();
        assert_ne!(a.cache_key(), c.cache_key());
        // Distinct from the hand-written model's key: different namespace.
        assert_ne!(
            a.cache_key(),
            Accelerator::cache_key(&SpartenConfig::default())
        );
    }

    #[test]
    fn described_isosceles_area_matches_the_model_formula() {
        let accel = ArchAccel::new(reference::isosceles()).unwrap();
        assert!(
            (accel.area_mm2() - crate::model::area_mm2(&IsoscelesConfig::default())).abs() < 1e-9
        );
    }

    #[test]
    fn estimates_are_positive_and_energy_converts() {
        let net = suite_workload("M75", 1).network;
        for desc in reference::all() {
            let accel = ArchAccel::new(desc).unwrap();
            let est = accel.estimate(&net);
            assert!(est.cycles > 0.0, "{}", accel.name());
            assert!(est.dram_bytes > 0.0, "{}", accel.name());
            assert!(accel.energy_mj(&net) > 0.0, "{}", accel.name());
            assert!(accel.area_mm2() > 0.0, "{}", accel.name());
        }
    }
}
