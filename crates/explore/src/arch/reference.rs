//! Reference descriptions of the paper's machines.
//!
//! These constructors are the in-code source of truth for the TOML
//! files shipped under `configs/arch/`: the validation suite asserts
//! that each shipped file parses to exactly the corresponding
//! constructor, and that each constructor lowers to exactly the
//! hand-written model configuration it describes
//! ([`IsoscelesConfig::default`](isosceles::IsoscelesConfig),
//! [`SpartenConfig::default`](isos_baselines::SpartenConfig),
//! [`FusedLayerConfig::default`](isos_baselines::FusedLayerConfig)).

use super::schema::{
    ArchDesc, BufferLevel, ComputeDesc, DataflowDesc, DataflowStyle, Gating, MemoryDesc,
    PipelinePolicy, TensorBinding, TensorFormat, TensorKind,
};

fn binding(
    tensor: TensorKind,
    format: TensorFormat,
    skipping: bool,
    gating: Gating,
) -> TensorBinding {
    TensorBinding {
        tensor,
        format,
        skipping,
        gating,
    }
}

fn nest(dims: &[&str]) -> Vec<String> {
    dims.iter().map(|d| d.to_string()).collect()
}

/// The full ISOSceles machine (Table I) with inter-layer pipelining.
pub fn isosceles() -> ArchDesc {
    ArchDesc {
        name: "isosceles".into(),
        compute: ComputeDesc {
            lanes: 64,
            macs_per_lane: 64,
            efficiency: 0.95,
            mergers_per_lane: 16,
            merger_radix: 256,
            contexts: 16,
        },
        memory: MemoryDesc {
            dram_bytes_per_cycle: 128.0,
        },
        levels: vec![
            BufferLevel {
                name: "filter-buffer".into(),
                bytes: 1 << 20,
                banks: 64,
                per_lane: false,
                alloc_overhead: 1.5,
                stores: vec![binding(
                    TensorKind::Weights,
                    TensorFormat::Csf,
                    true,
                    Gating::None,
                )],
            },
            BufferLevel {
                name: "context-arrays".into(),
                bytes: 8 << 10,
                banks: 1,
                per_lane: true,
                alloc_overhead: 1.0,
                stores: vec![binding(
                    TensorKind::Outputs,
                    TensorFormat::Csf,
                    false,
                    Gating::None,
                )],
            },
            BufferLevel {
                name: "queues".into(),
                bytes: 8 << 10,
                banks: 1,
                per_lane: true,
                alloc_overhead: 1.0,
                stores: vec![binding(
                    TensorKind::Inputs,
                    TensorFormat::Csf,
                    true,
                    Gating::None,
                )],
            },
        ],
        dataflow: DataflowDesc {
            style: DataflowStyle::IsOs,
            loop_nest: nest(&["K", "C", "P", "Q", "R", "S"]),
            pipeline: PipelinePolicy::InterLayer,
        },
    }
}

/// ISOSceles hardware run layer by layer (the Fig. 18 ablation).
pub fn isosceles_single() -> ArchDesc {
    let mut desc = isosceles();
    desc.name = "isosceles-single".into();
    desc.dataflow.pipeline = PipelinePolicy::None;
    desc
}

/// SparTen with GoSPA filtering (Table III).
pub fn sparten() -> ArchDesc {
    ArchDesc {
        name: "sparten".into(),
        compute: ComputeDesc {
            lanes: 64,
            macs_per_lane: 64,
            efficiency: 0.35,
            mergers_per_lane: 0,
            merger_radix: 256,
            contexts: 1,
        },
        memory: MemoryDesc {
            dram_bytes_per_cycle: 128.0,
        },
        levels: vec![
            BufferLevel {
                name: "filter-buffer".into(),
                bytes: 1 << 20,
                banks: 64,
                per_lane: false,
                alloc_overhead: 1.0,
                stores: vec![binding(
                    TensorKind::Weights,
                    TensorFormat::Bitmask,
                    true,
                    Gating::None,
                )],
            },
            BufferLevel {
                name: "cluster-buffers".into(),
                bytes: 64 << 10,
                banks: 1,
                per_lane: true,
                alloc_overhead: 1.0,
                stores: vec![
                    binding(
                        TensorKind::Inputs,
                        TensorFormat::Bitmask,
                        true,
                        Gating::Gospa,
                    ),
                    binding(
                        TensorKind::Outputs,
                        TensorFormat::Bitmask,
                        false,
                        Gating::None,
                    ),
                ],
            },
        ],
        dataflow: DataflowDesc {
            style: DataflowStyle::OutputStationary,
            loop_nest: nest(&["K/64", "P", "Q", "C", "R", "S"]),
            pipeline: PipelinePolicy::None,
        },
    }
}

/// Fused-Layer: dense tiled inter-layer pipelining (Sec. V sizing).
pub fn fused_layer() -> ArchDesc {
    ArchDesc {
        name: "fused-layer".into(),
        compute: ComputeDesc {
            lanes: 64,
            macs_per_lane: 64,
            efficiency: 0.95,
            mergers_per_lane: 0,
            merger_radix: 256,
            contexts: 1,
        },
        memory: MemoryDesc {
            dram_bytes_per_cycle: 128.0,
        },
        levels: vec![
            BufferLevel {
                name: "filter-buffer".into(),
                bytes: 5 << 19,
                banks: 64,
                per_lane: false,
                alloc_overhead: 1.0,
                stores: vec![binding(
                    TensorKind::Weights,
                    TensorFormat::Dense,
                    false,
                    Gating::None,
                )],
            },
            BufferLevel {
                name: "tile-buffer".into(),
                bytes: 512 << 10,
                banks: 8,
                per_lane: false,
                alloc_overhead: 1.0,
                stores: vec![
                    binding(TensorKind::Inputs, TensorFormat::Dense, false, Gating::None),
                    binding(
                        TensorKind::Outputs,
                        TensorFormat::Dense,
                        false,
                        Gating::None,
                    ),
                ],
            },
        ],
        dataflow: DataflowDesc {
            style: DataflowStyle::FusedTile,
            loop_nest: nest(&["P/32", "Q/32", "K", "C", "R", "S"]),
            pipeline: PipelinePolicy::None,
        },
    }
}

/// All four reference descriptions.
pub fn all() -> Vec<ArchDesc> {
    vec![isosceles(), isosceles_single(), sparten(), fused_layer()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_reference_validates() {
        for desc in all() {
            assert!(desc.validate().is_ok(), "{}", desc.name);
        }
    }

    #[test]
    fn references_round_trip_through_toml() {
        for desc in all() {
            let toml = desc.to_toml();
            let back = ArchDesc::from_config_str(&toml).unwrap();
            assert_eq!(back, desc, "TOML round trip for {}:\n{toml}", desc.name);
        }
    }
}
