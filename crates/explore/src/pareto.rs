//! Pareto-frontier extraction over minimized objectives.

/// Indices of the non-dominated rows of `objectives`, in input order.
///
/// Every objective is minimized. Row `a` dominates row `b` when `a` is no
/// worse in every objective and strictly better in at least one; rows
/// equal in all objectives do not dominate each other (both survive).
///
/// # Panics
///
/// Panics if rows have differing lengths.
pub fn pareto_indices(objectives: &[Vec<f64>]) -> Vec<usize> {
    if let Some(first) = objectives.first() {
        let width = first.len();
        assert!(
            objectives.iter().all(|r| r.len() == width),
            "ragged objective rows"
        );
    }
    (0..objectives.len())
        .filter(|&i| {
            !objectives
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && dominates(other, &objectives[i]))
        })
        .collect()
}

/// Whether `a` dominates `b` (all objectives minimized).
fn dominates(a: &[f64], b: &[f64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y) && a.iter().zip(b).any(|(x, y)| x < y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_is_its_own_frontier() {
        assert_eq!(pareto_indices(&[vec![1.0, 2.0]]), vec![0]);
    }

    #[test]
    fn dominated_points_are_dropped() {
        // (1,1) dominates (2,2); (0,3) and (3,0) trade off.
        let rows = vec![
            vec![1.0, 1.0],
            vec![2.0, 2.0],
            vec![0.0, 3.0],
            vec![3.0, 0.0],
        ];
        assert_eq!(pareto_indices(&rows), vec![0, 2, 3]);
    }

    #[test]
    fn duplicates_both_survive() {
        let rows = vec![vec![1.0, 1.0], vec![1.0, 1.0], vec![2.0, 1.0]];
        assert_eq!(pareto_indices(&rows), vec![0, 1]);
    }

    #[test]
    fn three_objectives() {
        // Worse on two axes but best on the third stays non-dominated.
        let rows = vec![
            vec![1.0, 1.0, 5.0],
            vec![2.0, 2.0, 1.0],
            vec![2.0, 2.0, 6.0], // dominated by both
        ];
        assert_eq!(pareto_indices(&rows), vec![0, 1]);
    }

    #[test]
    fn empty_input_empty_frontier() {
        assert!(pareto_indices(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        pareto_indices(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
