//! End-to-end tests of the simulation service over real TCP sockets:
//! single-flight dedup across concurrent clients, matrix streaming,
//! inline-config equivalence, malformed-request recovery, idle
//! timeouts, and graceful SIGTERM drain of the `serve` binary.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

use isos_serve::{Server, ServerOptions};
use isosceles_bench::engine::EngineOptions;
use serde::json::Value;
use serde::Serialize;

fn scratch_dir(tag: &str) -> PathBuf {
    static NONCE: AtomicU32 = AtomicU32::new(0);
    let n = NONCE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("isos-serve-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A bound server on an ephemeral port with a scratch cache.
fn test_server(tag: &str, workers: usize) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServerOptions {
        addr: "127.0.0.1:0".to_string(),
        workers,
        idle_timeout: Duration::from_secs(60),
        engine: EngineOptions {
            threads: 2,
            use_cache: true,
            cache_dir: scratch_dir(tag),
            quiet: true,
            ..EngineOptions::default()
        },
    })
    .expect("bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        let writer = stream.try_clone().expect("clone");
        Self {
            writer,
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, line: &str) {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
    }

    fn recv(&mut self) -> Value {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("recv");
        assert!(line.ends_with('\n'), "connection closed mid-response");
        serde::json::parse(line.trim()).expect("response JSON")
    }

    /// Sends a request and collects responses through the first line
    /// whose type is in `terminal`.
    fn roundtrip(&mut self, request: &str, terminal: &[&str]) -> Vec<Value> {
        self.send(request);
        let mut out = Vec::new();
        loop {
            let v = self.recv();
            let kind = kind_of(&v);
            out.push(v);
            if terminal.contains(&kind.as_str()) {
                return out;
            }
        }
    }
}

fn kind_of(v: &Value) -> String {
    v.field("type")
        .expect("typed response")
        .as_str()
        .expect("string type")
        .to_string()
}

fn u64_field(v: &Value, name: &str) -> u64 {
    v.field(name)
        .unwrap_or_else(|e| panic!("field {name}: {e}"))
        .as_u64()
        .unwrap_or_else(|e| panic!("field {name}: {e}"))
}

#[test]
fn eight_concurrent_cold_clients_cost_exactly_one_simulation() {
    let (addr, handle) = test_server("dedup", 8);
    const CLIENTS: usize = 8;
    let request = r#"{"type":"run","workload":"G58","model":"isosceles","seed":99}"#;

    let barrier = std::sync::Barrier::new(CLIENTS);
    let rows: Vec<Value> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let barrier = &barrier;
                s.spawn(move |_| {
                    let mut client = Client::connect(addr);
                    barrier.wait();
                    client.roundtrip(request, &["done"])
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                let mut lines = h.join().expect("client thread");
                assert_eq!(kind_of(&lines[0]), "row");
                assert_eq!(kind_of(&lines[1]), "done");
                lines.swap_remove(0)
            })
            .collect()
    })
    .expect("client scope");

    // Bit-identical metrics on every connection: the serialized JSON
    // trees must match exactly, not just approximately.
    let reference = rows[0].field("metrics").unwrap().render();
    assert!(!reference.is_empty());
    for row in &rows {
        assert_eq!(row.field("metrics").unwrap().render(), reference);
        assert_eq!(u64_field(row, "seed"), 99);
    }

    // Exactly one simulation happened; the other seven clients were
    // deduped against it or hit the cache it populated.
    let mut client = Client::connect(addr);
    let stats = client
        .roundtrip(r#"{"type":"stats"}"#, &["stats"])
        .remove(0);
    assert_eq!(u64_field(&stats, "computes"), 1, "{}", stats.render());
    assert_eq!(
        u64_field(&stats, "hits") + u64_field(&stats, "deduped") + u64_field(&stats, "misses"),
        CLIENTS as u64,
        "{}",
        stats.render()
    );
    assert_eq!(u64_field(&stats, "misses"), 1);
    assert_eq!(u64_field(&stats, "in_flight"), 0);

    // A warm repeat is a pure cache hit.
    let row = client.roundtrip(request, &["done"]).remove(0);
    assert!(row.field("cache_hit").unwrap().as_bool().unwrap());
    assert_eq!(row.field("metrics").unwrap().render(), reference);

    client.roundtrip(r#"{"type":"shutdown"}"#, &["bye"]);
    handle.join().expect("server thread");
}

#[test]
fn matrix_streams_every_row_and_a_done_summary() {
    let (addr, handle) = test_server("matrix", 4);
    let mut client = Client::connect(addr);
    let lines = client.roundtrip(
        r#"{"type":"matrix","workloads":["G58","M75"],"models":["isosceles","sparten"]}"#,
        &["done"],
    );
    assert_eq!(lines.len(), 5, "4 rows + done");
    let mut indexes: Vec<u64> = lines[..4]
        .iter()
        .map(|row| {
            assert_eq!(kind_of(row), "row");
            u64_field(row, "index")
        })
        .collect();
    indexes.sort_unstable();
    assert_eq!(indexes, vec![0, 1, 2, 3]);
    let done = &lines[4];
    assert_eq!(u64_field(done, "jobs"), 4);
    assert_eq!(
        u64_field(done, "hits") + u64_field(done, "misses") + u64_field(done, "deduped"),
        4
    );

    // Row fields carry the right workload/model pairing per index:
    // index = workload-major, model-minor.
    for row in &lines[..4] {
        let index = u64_field(row, "index");
        let workload = row.field("workload").unwrap().as_str().unwrap().to_string();
        let model = row.field("model").unwrap().as_str().unwrap().to_string();
        assert_eq!(workload, ["G58", "G58", "M75", "M75"][index as usize]);
        assert_eq!(
            model,
            ["isosceles", "sparten", "isosceles", "sparten"][index as usize]
        );
    }

    client.roundtrip(r#"{"type":"shutdown"}"#, &["bye"]);
    handle.join().expect("server thread");
}

#[test]
fn malformed_lines_get_structured_errors_and_the_connection_survives() {
    let (addr, handle) = test_server("malformed", 2);
    let mut client = Client::connect(addr);

    let err = client.roundtrip("this is not json", &["error"]).remove(0);
    assert!(err
        .field("message")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("malformed"));

    // Job-level failures come back as an error row followed by `done`;
    // read through `done` so the stream stays aligned.
    let err = client
        .roundtrip(
            r#"{"type":"run","workload":"NOPE","model":"isosceles"}"#,
            &["done"],
        )
        .remove(0);
    assert_eq!(kind_of(&err), "error");
    assert!(err
        .field("message")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("unknown workload"));

    let err = client
        .roundtrip(
            r#"{"type":"run","workload":"G58","model":"eyeriss"}"#,
            &["done"],
        )
        .remove(0);
    assert_eq!(kind_of(&err), "error");
    assert!(err
        .field("message")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("unknown model"));

    // Same connection still works.
    let pong = client.roundtrip(r#"{"type":"ping"}"#, &["pong"]).remove(0);
    assert_eq!(kind_of(&pong), "pong");

    client.roundtrip(r#"{"type":"shutdown"}"#, &["bye"]);
    handle.join().expect("server thread");
}

#[test]
fn unknown_job_errors_still_end_with_done_inside_a_matrix() {
    let (addr, handle) = test_server("mixed", 2);
    let mut client = Client::connect(addr);
    let lines = client.roundtrip(
        r#"{"type":"matrix","workloads":["G58","NOPE"],"models":["isosceles"]}"#,
        &["done"],
    );
    assert_eq!(lines.len(), 3, "row + error + done");
    let kinds: Vec<String> = lines.iter().map(kind_of).collect();
    assert!(kinds.contains(&"row".to_string()));
    assert!(kinds.contains(&"error".to_string()));
    assert_eq!(kinds.last().unwrap(), "done");
    let error = lines.iter().find(|l| kind_of(l) == "error").unwrap();
    assert_eq!(u64_field(error, "index"), 1, "second workload, only model");

    client.roundtrip(r#"{"type":"shutdown"}"#, &["bye"]);
    handle.join().expect("server thread");
}

#[test]
fn inline_config_run_matches_a_direct_simulation() {
    use isosceles::accel::Accelerator;

    let (addr, handle) = test_server("inline", 2);
    let config = isosceles::IsoscelesConfig {
        lanes: 32,
        ..isosceles::IsoscelesConfig::default()
    };
    let seed = 5u64;
    let workload = isos_nn::models::suite_workload("G58", seed);
    let expected = config.simulate(&workload.network, seed).to_value().render();

    let mut client = Client::connect(addr);
    let request = format!(
        r#"{{"type":"run","workload":"G58","config":{{"label":"l32","config":{}}},"seed":{seed}}}"#,
        serde::json::to_string(&config)
    );
    let row = client.roundtrip(&request, &["done"]).remove(0);
    assert_eq!(kind_of(&row), "row");
    assert_eq!(row.field("label").unwrap().as_str().unwrap(), "l32");
    assert_eq!(row.field("metrics").unwrap().render(), expected);

    // The same point again is served from the cache under the config's
    // own cache key.
    let row = client.roundtrip(&request, &["done"]).remove(0);
    assert!(row.field("cache_hit").unwrap().as_bool().unwrap());
    assert_eq!(row.field("metrics").unwrap().render(), expected);

    client.roundtrip(r#"{"type":"shutdown"}"#, &["bye"]);
    handle.join().expect("server thread");
}

#[test]
fn traced_runs_attach_stall_rows_with_identical_metrics() {
    let (addr, handle) = test_server("trace", 2);
    let mut client = Client::connect(addr);

    let plain = client
        .roundtrip(
            r#"{"type":"run","workload":"G58","model":"isosceles"}"#,
            &["done"],
        )
        .remove(0);
    let traced = client
        .roundtrip(
            r#"{"type":"run","workload":"G58","model":"isosceles","trace":true}"#,
            &["done"],
        )
        .remove(0);

    assert_eq!(
        traced.field("metrics").unwrap().render(),
        plain.field("metrics").unwrap().render(),
        "traced metrics are bit-identical to untraced ones"
    );
    let stalls = traced.field("stalls").unwrap().as_arr().unwrap();
    assert!(!stalls.is_empty(), "traced run reports per-unit breakdowns");
    for unit in stalls {
        assert!(unit.field("unit").unwrap().as_str().is_some());
        assert!(unit.field("busy").unwrap().as_f64().is_ok());
        assert!(unit.field("merge_bound").unwrap().as_f64().is_ok());
    }
    assert!(plain.field("stalls").is_err(), "untraced rows omit stalls");

    client.roundtrip(r#"{"type":"shutdown"}"#, &["bye"]);
    handle.join().expect("server thread");
}

#[test]
fn stream_requests_report_tail_latency_and_replay_from_the_cache() {
    let (addr, handle) = test_server("stream", 2);
    let mut client = Client::connect(addr);

    let request = r#"{"type":"stream","workload":"G58","model":"isosceles","requests":6,"batch":2,"arrival":"poisson:50000","seed":11}"#;
    let row = client.roundtrip(request, &["done"]).remove(0);
    assert_eq!(kind_of(&row), "row");
    let metrics = row.field("metrics").unwrap();
    assert_eq!(u64_field(metrics, "requests"), 6);
    assert_eq!(u64_field(metrics, "batch"), 2);
    let (p50, p95, p99) = (
        u64_field(metrics, "p50_cycles"),
        u64_field(metrics, "p95_cycles"),
        u64_field(metrics, "p99_cycles"),
    );
    assert!(p50 <= p95 && p95 <= p99 && p50 > 0);
    assert!(
        metrics
            .field("throughput_imgs_per_sec")
            .unwrap()
            .as_f64()
            .unwrap()
            > 0.0
    );
    // Server-time conservation survives serialization.
    assert_eq!(
        u64_field(metrics, "busy_cycles")
            + u64_field(metrics, "idle_cycles")
            + u64_field(metrics, "formation_cycles"),
        u64_field(metrics, "cycles")
    );

    // The identical scenario replays bit-identically from the cache.
    let replay = client.roundtrip(request, &["done"]).remove(0);
    assert!(replay.field("cache_hit").unwrap().as_bool().unwrap());
    assert_eq!(replay.field("metrics").unwrap().render(), metrics.render());

    client.roundtrip(r#"{"type":"shutdown"}"#, &["bye"]);
    handle.join().expect("server thread");
}

#[test]
fn batch_requests_mix_kinds_and_dedup_identical_jobs() {
    let (addr, handle) = test_server("batch", 4);
    let mut client = Client::connect(addr);

    // Two identical run jobs plus one stream job in a single request:
    // the duplicates must cost one simulation (single-flight dedup or a
    // cache hit, depending on timing), never two.
    let lines = client.roundtrip(
        concat!(
            r#"{"type":"batch","jobs":["#,
            r#"{"workload":"G58","model":"isosceles","seed":42},"#,
            r#"{"workload":"G58","model":"isosceles","seed":42},"#,
            r#"{"type":"stream","workload":"G58","model":"isosceles","requests":4,"batch":2,"seed":42}"#,
            r#"]}"#
        ),
        &["done"],
    );
    assert_eq!(lines.len(), 4, "3 rows + done");
    let done = lines.last().unwrap();
    assert_eq!(u64_field(done, "jobs"), 3);
    assert!(
        u64_field(done, "hits") + u64_field(done, "deduped") >= 1,
        "duplicate run jobs must dedup: {}",
        done.render()
    );
    let rows: Vec<&Value> = lines[..3].iter().collect();
    let stream_rows: Vec<&&Value> = rows
        .iter()
        .filter(|r| r.field("metrics").unwrap().field("p99_cycles").is_ok())
        .collect();
    assert_eq!(stream_rows.len(), 1, "exactly one stream row");
    let run_rows: Vec<&&Value> = rows
        .iter()
        .filter(|r| r.field("metrics").unwrap().field("p99_cycles").is_err())
        .collect();
    assert_eq!(run_rows.len(), 2);
    assert_eq!(
        run_rows[0].field("metrics").unwrap().render(),
        run_rows[1].field("metrics").unwrap().render(),
        "deduped duplicates are bit-identical"
    );

    // The engine computed at most one single-inference job for the two
    // duplicates (the stream job simulates its own requests).
    let stats = client
        .roundtrip(r#"{"type":"stats"}"#, &["stats"])
        .remove(0);
    assert_eq!(u64_field(&stats, "misses"), 1, "{}", stats.render());

    client.roundtrip(r#"{"type":"shutdown"}"#, &["bye"]);
    handle.join().expect("server thread");
}

/// The real `isos-client` binary with `--stream`: rows print to stdout
/// as NDJSON and carry the latency summary.
#[test]
fn isos_client_streams_against_a_live_server() {
    use std::process::Command;

    let (addr, handle) = test_server("client-stream", 2);
    let output = Command::new(env!("CARGO_BIN_EXE_isos-client"))
        .args([
            "--addr",
            &addr.to_string(),
            "--net",
            "G58",
            "--model",
            "isosceles",
            "--stream",
            "--requests",
            "4",
            "--batch",
            "2",
            "--policy",
            "waitfull",
        ])
        .output()
        .expect("run isos-client");
    assert!(
        output.status.success(),
        "isos-client failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("utf8 stdout");
    let lines: Vec<Value> = stdout
        .lines()
        .map(|l| serde::json::parse(l).expect("NDJSON line"))
        .collect();
    assert_eq!(lines.len(), 2, "row + done: {stdout}");
    assert_eq!(kind_of(&lines[0]), "row");
    let metrics = lines[0].field("metrics").unwrap();
    assert_eq!(u64_field(metrics, "requests"), 4);
    assert!(u64_field(metrics, "p99_cycles") >= u64_field(metrics, "p50_cycles"));
    assert_eq!(kind_of(&lines[1]), "done");
    assert_eq!(u64_field(&lines[1], "jobs"), 1);

    // Multiple workloads ride as one batch request.
    let output = Command::new(env!("CARGO_BIN_EXE_isos-client"))
        .args([
            "--addr",
            &addr.to_string(),
            "--net",
            "G58,M75",
            "--model",
            "isosceles",
            "--stream",
            "--requests",
            "2",
        ])
        .output()
        .expect("run isos-client");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).expect("utf8 stdout");
    let lines: Vec<Value> = stdout
        .lines()
        .map(|l| serde::json::parse(l).expect("NDJSON line"))
        .collect();
    assert_eq!(lines.len(), 3, "2 rows + done: {stdout}");
    assert_eq!(u64_field(lines.last().unwrap(), "jobs"), 2);

    let mut client = Client::connect(addr);
    client.roundtrip(r#"{"type":"shutdown"}"#, &["bye"]);
    handle.join().expect("server thread");
}

#[test]
fn idle_connections_are_closed_with_a_bye() {
    let server = Server::bind(ServerOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        idle_timeout: Duration::from_millis(200),
        engine: EngineOptions {
            threads: 1,
            use_cache: false,
            cache_dir: scratch_dir("idle"),
            quiet: true,
            ..EngineOptions::default()
        },
    })
    .expect("bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());

    let mut client = Client::connect(addr);
    // Say nothing; the server must hang up with an idle-timeout bye.
    let bye = client.recv();
    assert_eq!(kind_of(&bye), "bye");
    assert_eq!(
        bye.field("reason").unwrap().as_str().unwrap(),
        "idle-timeout"
    );

    let mut client = Client::connect(addr);
    client.roundtrip(r#"{"type":"shutdown"}"#, &["bye"]);
    handle.join().expect("server thread");
}

/// SIGTERM on the real `serve` binary: the in-flight request completes
/// and the process exits cleanly instead of dying mid-write.
#[test]
#[cfg(unix)]
fn sigterm_drains_the_serve_binary() {
    use std::process::{Command, Stdio};

    let cache = scratch_dir("sigterm");
    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(["--addr", "127.0.0.1:0", "--workers", "2", "--threads", "2"])
        .env("ISOS_CACHE_DIR", &cache)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve");

    // Discover the ephemeral port from the listening line.
    let mut stdout = BufReader::new(child.stdout.take().expect("child stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("listening line");
    let listening = serde::json::parse(line.trim()).expect("listening JSON");
    assert_eq!(kind_of(&listening), "listening");
    let addr = listening
        .field("addr")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();

    // Park an in-flight request, then deliver SIGTERM while the
    // simulation runs.
    let mut client = Client::connect(addr.parse().expect("addr"));
    client.send(r#"{"type":"run","workload":"G58","model":"isosceles"}"#);
    // Give the handler a beat to pick the request up, so the stop flag
    // cannot win the race against a line already on the wire.
    std::thread::sleep(Duration::from_millis(150));
    let status = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill -TERM");
    assert!(status.success());

    // The request still completes: a row and a done line arrive.
    let row = client.recv();
    assert_eq!(kind_of(&row), "row");
    let done = client.recv();
    assert_eq!(kind_of(&done), "done");

    let status = child.wait().expect("serve exit status");
    assert!(status.success(), "serve exited with {status:?}");
    let _ = std::fs::remove_dir_all(cache);
}
