//! Multi-tenant simulation service for the ISOSceles reproduction.
//!
//! A long-running server on [`std::net::TcpListener`] speaking
//! newline-delimited JSON ([`protocol`]): clients request suite
//! workloads, inline DSE configuration points, or batched
//! streaming-inference scenarios (`stream`/`batch` request kinds,
//! reporting throughput and p50/p95/p99 tail latency), and a worker
//! pool
//! ([`dispatch`]) funnels every job through one shared
//! [`SuiteEngine`], so all connections benefit from — and contribute
//! to — the same persistent sharded cache and single-flight dedup
//! table. `N` concurrent identical requests cost exactly one
//! simulation, no matter how many clients sent them.
//!
//! The server is deliberately plain: blocking sockets with short read
//! timeouts, one thread per connection, no async runtime. The heavy
//! lifting (scheduling, dedup, caching) lives in `isosceles-bench`;
//! this crate is the wire format and the lifecycle (graceful drain on
//! shutdown, idle-timeout for abandoned connections, structured errors
//! for malformed requests).
//!
//! Binaries: `serve` (the daemon, plus a self-checking `--smoke` mode
//! used by `scripts/check.sh`) and `isos-client` (one-shot queries,
//! matrix requests, stats).

#![warn(missing_docs)]

pub mod dispatch;
pub mod protocol;

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::unbounded;
use isosceles_bench::engine::{EngineOptions, SuiteEngine};
use serde::json::Value;

use dispatch::{stalls_value, JobOutcome, WorkerPool};
use protocol::{parse_request, JobSpec, Request, Response};

/// How the server is configured.
#[derive(Clone, Debug)]
pub struct ServerOptions {
    /// Listen address (`127.0.0.1:0` for an ephemeral port).
    pub addr: String,
    /// Worker threads simulating jobs.
    pub workers: usize,
    /// Close connections silent for this long.
    pub idle_timeout: Duration,
    /// Engine options (cache directory, byte bound, ...).
    pub engine: EngineOptions,
}

impl Default for ServerOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            idle_timeout: Duration::from_secs(300),
            engine: EngineOptions {
                quiet: true,
                ..EngineOptions::default()
            },
        }
    }
}

/// Shared state every connection handler sees.
struct Shared {
    engine: SuiteEngine,
    pool: WorkerPool,
    stop: AtomicBool,
    idle_timeout: Duration,
    started: Instant,
    connections: std::sync::atomic::AtomicU64,
}

/// The server: bind, then [`run`](Server::run) until a shutdown request
/// or the stop flag.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
}

/// Granularity of the accept loop's stop-flag checks and of connection
/// read timeouts.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

impl Server {
    /// Binds the listen socket and spawns the worker pool.
    ///
    /// # Errors
    ///
    /// Fails if the address cannot be bound.
    pub fn bind(opts: ServerOptions) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&opts.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let engine = SuiteEngine::new(opts.engine);
        let pool = WorkerPool::new(engine.clone(), opts.workers);
        Ok(Self {
            listener,
            local_addr,
            shared: Arc::new(Shared {
                engine,
                pool,
                stop: AtomicBool::new(false),
                idle_timeout: opts.idle_timeout,
                started: Instant::now(),
                connections: std::sync::atomic::AtomicU64::new(0),
            }),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle that makes [`run`](Server::run) drain and return when
    /// set — wire it to a signal handler for graceful SIGTERM/ctrl-c
    /// shutdown.
    pub fn stop_flag(&self) -> Arc<dyn Fn() + Send + Sync> {
        let shared = Arc::clone(&self.shared);
        Arc::new(move || shared.stop.store(true, Ordering::SeqCst))
    }

    /// The engine every connection shares (for smoke checks and tests).
    pub fn engine(&self) -> &SuiteEngine {
        &self.shared.engine
    }

    /// Accepts connections until a `shutdown` request arrives or the
    /// stop flag is set, then drains: connection threads finish their
    /// in-flight request, workers finish queued jobs, and everything is
    /// joined before returning.
    pub fn run(self) {
        let handles: Mutex<Vec<std::thread::JoinHandle<()>>> = Mutex::new(Vec::new());
        while !self.shared.stop.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&self.shared);
                    shared.connections.fetch_add(1, Ordering::Relaxed);
                    let handle = std::thread::spawn(move || handle_connection(stream, &shared));
                    handles.lock().expect("handle list lock").push(handle);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(_) => std::thread::sleep(POLL_INTERVAL),
            }
        }
        // Drain: connections observe the stop flag at their next read
        // timeout and close after finishing the request in hand.
        for handle in handles.into_inner().expect("handle list lock") {
            let _ = handle.join();
        }
        self.shared.pool.shutdown();
    }
}

/// Why a blocking `read_line` round ended without a full line.
enum ReadStatus {
    /// A full line was read.
    Line,
    /// The read timed out with no (or only partial) data.
    Timeout,
    /// The peer closed the connection or it broke.
    Closed,
}

/// One `read_line` attempt against a stream with a short read timeout.
/// Partial lines accumulate in `buf` across timeouts.
fn read_line_step(reader: &mut BufReader<TcpStream>, buf: &mut String) -> ReadStatus {
    match reader.read_line(buf) {
        Ok(0) => ReadStatus::Closed,
        Ok(_) if buf.ends_with('\n') => ReadStatus::Line,
        // EOF in the middle of an unterminated final line.
        Ok(_) => ReadStatus::Closed,
        Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
            ReadStatus::Timeout
        }
        Err(e) if e.kind() == ErrorKind::Interrupted => ReadStatus::Timeout,
        Err(_) => ReadStatus::Closed,
    }
}

fn send_line(stream: &mut TcpStream, line: &str) -> bool {
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .is_ok()
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut buf = String::new();
    let mut last_activity = Instant::now();

    loop {
        match read_line_step(&mut reader, &mut buf) {
            ReadStatus::Line => {
                let line = std::mem::take(&mut buf);
                let line = line.trim();
                last_activity = Instant::now();
                if line.is_empty() {
                    continue;
                }
                match parse_request(line) {
                    Err(message) => {
                        if !send_line(&mut writer, &Response::error(&message, None)) {
                            return;
                        }
                    }
                    Ok(Request::Ping) => {
                        if !send_line(&mut writer, &Response::pong()) {
                            return;
                        }
                    }
                    Ok(Request::Stats) => {
                        if !send_line(&mut writer, &stats_line(shared)) {
                            return;
                        }
                    }
                    Ok(Request::Shutdown) => {
                        shared.stop.store(true, Ordering::SeqCst);
                        let _ = send_line(&mut writer, &Response::bye("shutdown"));
                        return;
                    }
                    Ok(Request::Run(spec)) => {
                        if !serve_jobs(&mut writer, shared, vec![*spec]) {
                            return;
                        }
                    }
                    Ok(Request::Matrix(jobs)) | Ok(Request::Batch(jobs)) => {
                        if !serve_jobs(&mut writer, shared, jobs) {
                            return;
                        }
                    }
                }
            }
            ReadStatus::Timeout => {
                if shared.stop.load(Ordering::SeqCst) {
                    let _ = send_line(&mut writer, &Response::bye("shutdown"));
                    return;
                }
                if last_activity.elapsed() >= shared.idle_timeout {
                    let _ = send_line(&mut writer, &Response::bye("idle-timeout"));
                    return;
                }
            }
            ReadStatus::Closed => return,
        }
    }
}

/// Submits `jobs` to the pool and streams rows back in completion
/// order, followed by a `done` summary. Returns `false` when the
/// connection broke and the handler should stop.
fn serve_jobs(writer: &mut TcpStream, shared: &Shared, jobs: Vec<JobSpec>) -> bool {
    let started = Instant::now();
    let (reply_tx, reply_rx) = unbounded::<JobOutcome>();
    let specs: Vec<JobSpec> = jobs;
    let mut submitted = 0usize;
    for (index, spec) in specs.iter().enumerate() {
        if shared.pool.submit(index, spec.clone(), reply_tx.clone()) {
            submitted += 1;
        } else {
            // Pool already shut down; report instead of hanging.
            if !send_line(
                writer,
                &Response::error("server is shutting down", Some(index)),
            ) {
                return false;
            }
        }
    }
    drop(reply_tx);

    let (mut hits, mut misses, mut deduped, mut errors) = (0usize, 0usize, 0usize, 0usize);
    let mut alive = true;
    for _ in 0..submitted {
        // recv cannot block forever: every submitted job sends exactly
        // one outcome, even on worker panic.
        let Ok(outcome) = reply_rx.recv() else { break };
        let line = match outcome.result {
            Ok(done) => {
                if done.cache_hit {
                    hits += 1;
                } else if done.deduped {
                    deduped += 1;
                } else {
                    misses += 1;
                }
                Response::row(
                    outcome.index,
                    &specs[outcome.index],
                    &done.model,
                    done.cache_hit,
                    done.deduped,
                    done.millis,
                    &done.metrics,
                    done.stalls.as_deref().map(stalls_value),
                )
            }
            Err(message) => {
                errors += 1;
                Response::error(&message, Some(outcome.index))
            }
        };
        // Keep draining outcomes even if the peer is gone, so workers
        // never block on a dead connection's channel (it is unbounded,
        // but the counters should still be consistent).
        if alive && !send_line(writer, &line) {
            alive = false;
        }
    }
    let jobs_done = hits + misses + deduped + errors;
    alive
        && send_line(
            writer,
            &Response::done(
                jobs_done,
                hits,
                misses,
                deduped,
                started.elapsed().as_secs_f64() * 1e3,
            ),
        )
}

/// Builds the `stats` response from the engine, store, and pool.
fn stats_line(shared: &Shared) -> String {
    let cache = shared.engine.lifetime_cache();
    let mut pairs: Vec<(&str, Value)> = vec![
        (
            "uptime_millis",
            Value::F64(shared.started.elapsed().as_secs_f64() * 1e3),
        ),
        (
            "connections",
            Value::U64(shared.connections.load(Ordering::Relaxed)),
        ),
        ("hits", Value::U64(cache.hits as u64)),
        ("misses", Value::U64(cache.misses as u64)),
        (
            "deduped",
            Value::U64(shared.engine.lifetime_deduped() as u64),
        ),
        (
            "computes",
            Value::U64(shared.engine.lifetime_computes() as u64),
        ),
        ("in_flight", Value::U64(shared.engine.inflight_len() as u64)),
    ];
    if let Some(store) = shared.engine.cache_store() {
        let usage = store.usage();
        let counters = store.counters();
        pairs.push((
            "store",
            Value::Obj(vec![
                (
                    "root".to_string(),
                    Value::Str(store.root().display().to_string()),
                ),
                (
                    "byte_limit".to_string(),
                    match store.byte_limit() {
                        Some(b) => Value::U64(b),
                        None => Value::Null,
                    },
                ),
                ("entries".to_string(), Value::U64(usage.entries as u64)),
                ("bytes".to_string(), Value::U64(usage.bytes)),
                (
                    "counters".to_string(),
                    serde::Serialize::to_value(&counters),
                ),
            ]),
        ));
    }
    let workers = shared.pool.worker_stats();
    pairs.push((
        "workers",
        Value::Arr(
            workers
                .iter()
                .map(|w| {
                    Value::Obj(vec![
                        ("jobs".to_string(), Value::U64(w.jobs)),
                        ("busy_millis".to_string(), Value::F64(w.busy_millis)),
                    ])
                })
                .collect(),
        ),
    ));
    Response::stats(pairs)
}
