//! Command-line client for the `serve` daemon.
//!
//! ```text
//! isos-client --addr HOST:PORT --ping
//! isos-client --addr HOST:PORT --stats
//! isos-client --addr HOST:PORT --shutdown
//! isos-client --addr HOST:PORT --net R96[,G58,...] --model isosceles[,sparten,...]
//!             [--seed N] [--trace]
//! isos-client --addr HOST:PORT --net R96 --config point.json [--seed N]
//! isos-client --addr HOST:PORT --net R96 --arch arch.toml [--seed N]
//! isos-client --addr HOST:PORT --net R81 --model isosceles --stream
//!             [--requests N] [--batch B] [--arrival burst|periodic:N|poisson:F]
//!             [--policy greedy|waitfull]
//! ```
//!
//! Emits the server's NDJSON responses verbatim on stdout, one line per
//! row, so output pipes straight into `jq` or a results file. Exits 1
//! if any response is an `error`, 2 on usage or connection problems.
//!
//! `--config FILE` sends the file's JSON as an inline configuration: a
//! bare `IsoscelesConfig` object or a labeled DSE design point
//! (`{"label":...,"config":{...}}`), exactly what `isos-explore`
//! emits for frontier points.
//!
//! `--arch FILE` sends a declarative architecture description inline
//! (the `configs/arch/*.toml` schema; `.toml` or JSON, picked by
//! extension). The server validates and lowers it; schema violations
//! come back as structured `error` lines rather than a dropped
//! connection.
//!
//! `--stream` turns each scenario into a batched streaming-inference
//! run: rows report throughput and p50/p95/p99 tail latency. With
//! several `--net`/`--model` values, the scenarios travel as one
//! `batch` request so the server can dedup identical jobs in flight.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use serde::json::Value;

struct Args {
    addr: String,
    nets: Vec<String>,
    models: Vec<String>,
    config: Option<String>,
    arch: Option<String>,
    seed: Option<u64>,
    trace: bool,
    ping: bool,
    stats: bool,
    shutdown: bool,
    stream: bool,
    requests: Option<u64>,
    batch: Option<u64>,
    arrival: Option<String>,
    policy: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: isos-client [--addr HOST:PORT] (--ping | --stats | --shutdown | \
         --net IDS [--model NAMES | --config FILE | --arch FILE] [--seed N] [--trace] \
         [--stream [--requests N] [--batch B] [--arrival A] [--policy P]])"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:9377".to_string(),
        nets: Vec::new(),
        models: Vec::new(),
        config: None,
        arch: None,
        seed: None,
        trace: false,
        ping: false,
        stats: false,
        shutdown: false,
        stream: false,
        requests: None,
        batch: None,
        arrival: None,
        policy: None,
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut it = raw.iter();
    while let Some(arg) = it.next() {
        let mut take = |flag: &str| -> Option<String> {
            if let Some(v) = arg.strip_prefix(&format!("{flag}=")) {
                Some(v.to_string())
            } else if arg == flag {
                it.next().cloned()
            } else {
                None
            }
        };
        if let Some(v) = take("--addr") {
            args.addr = v;
        } else if let Some(v) = take("--net") {
            args.nets = v.split(',').map(|s| s.trim().to_string()).collect();
        } else if let Some(v) = take("--model") {
            args.models = v.split(',').map(|s| s.trim().to_string()).collect();
        } else if let Some(v) = take("--config") {
            args.config = Some(v);
        } else if let Some(v) = take("--arch") {
            args.arch = Some(v);
        } else if let Some(v) = take("--seed") {
            match v.parse() {
                Ok(n) => args.seed = Some(n),
                Err(_) => usage(),
            }
        } else if let Some(v) = take("--requests") {
            match v.parse() {
                Ok(n) => args.requests = Some(n),
                Err(_) => usage(),
            }
        } else if let Some(v) = take("--batch") {
            match v.parse() {
                Ok(n) => args.batch = Some(n),
                Err(_) => usage(),
            }
        } else if let Some(v) = take("--arrival") {
            args.arrival = Some(v);
        } else if let Some(v) = take("--policy") {
            args.policy = Some(v);
        } else if arg == "--stream" {
            args.stream = true;
        } else if arg == "--trace" {
            args.trace = true;
        } else if arg == "--ping" {
            args.ping = true;
        } else if arg == "--stats" {
            args.stats = true;
        } else if arg == "--shutdown" {
            args.shutdown = true;
        } else {
            usage();
        }
    }
    args
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Builds the request line from the parsed flags.
fn build_request(args: &Args) -> Result<String, String> {
    if args.ping {
        return Ok(r#"{"type":"ping"}"#.to_string());
    }
    if args.stats {
        return Ok(r#"{"type":"stats"}"#.to_string());
    }
    if args.shutdown {
        return Ok(r#"{"type":"shutdown"}"#.to_string());
    }
    if args.nets.is_empty() {
        return Err("nothing to do: pass --net, --ping, --stats, or --shutdown".to_string());
    }

    let inline: Option<Value> = match &args.config {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            Some(serde::json::parse(&text).map_err(|e| format!("bad JSON in {path}: {e}"))?)
        }
        None => None,
    };
    let arch: Option<Value> = match &args.arch {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            // TOML by extension; anything else is treated as JSON. The
            // server validates the description either way.
            if path.ends_with(".toml") {
                Some(
                    isos_explore::arch::toml_to_value(&text)
                        .map_err(|e| format!("bad TOML in {path}: {e}"))?,
                )
            } else {
                Some(serde::json::parse(&text).map_err(|e| format!("bad JSON in {path}: {e}"))?)
            }
        }
        None => None,
    };
    let exclusive = usize::from(arch.is_some())
        + usize::from(inline.is_some())
        + usize::from(!args.models.is_empty());
    if exclusive > 1 {
        return Err("--model, --config, and --arch are mutually exclusive".to_string());
    }
    if exclusive == 0 {
        return Err("pass --model NAMES, --config FILE, or --arch FILE with --net".to_string());
    }

    if !args.stream
        && (args.requests.is_some()
            || args.batch.is_some()
            || args.arrival.is_some()
            || args.policy.is_some())
    {
        return Err("--requests/--batch/--arrival/--policy need --stream".to_string());
    }
    if args.stream {
        return Ok(build_stream_request(args, &inline, &arch));
    }

    let mut pairs: Vec<(&str, Value)> = Vec::new();
    let single = args.nets.len() == 1 && args.models.len() <= 1;
    if single {
        pairs.push(("type", Value::Str("run".to_string())));
        pairs.push(("workload", Value::Str(args.nets[0].clone())));
        if let Some(desc) = &arch {
            pairs.push(("arch", desc.clone()));
        } else if let Some(config) = &inline {
            pairs.push(("config", config.clone()));
        } else {
            pairs.push(("model", Value::Str(args.models[0].clone())));
        }
    } else {
        pairs.push(("type", Value::Str("matrix".to_string())));
        pairs.push((
            "workloads",
            Value::Arr(args.nets.iter().cloned().map(Value::Str).collect()),
        ));
        let models = if let Some(desc) = &arch {
            vec![obj(vec![("arch", desc.clone())])]
        } else if let Some(config) = &inline {
            vec![config.clone()]
        } else {
            args.models.iter().cloned().map(Value::Str).collect()
        };
        pairs.push(("models", Value::Arr(models)));
    }
    if let Some(seed) = args.seed {
        pairs.push(("seed", Value::U64(seed)));
    }
    if args.trace {
        pairs.push(("trace", Value::Bool(true)));
    }
    Ok(obj(pairs).render())
}

/// Builds a `stream` request (one scenario) or a `batch` of `stream`
/// jobs (workloads × models cross product in one request, so the
/// server can dedup identical jobs in flight).
fn build_stream_request(args: &Args, inline: &Option<Value>, arch: &Option<Value>) -> String {
    let job = |net: &str, model: Option<&str>| -> Value {
        let mut pairs: Vec<(&str, Value)> = vec![
            ("type", Value::Str("stream".to_string())),
            ("workload", Value::Str(net.to_string())),
        ];
        if let Some(desc) = arch {
            pairs.push(("arch", desc.clone()));
        } else if let Some(config) = inline {
            pairs.push(("config", config.clone()));
        } else if let Some(name) = model {
            pairs.push(("model", Value::Str(name.to_string())));
        }
        if let Some(n) = args.requests {
            pairs.push(("requests", Value::U64(n)));
        }
        if let Some(b) = args.batch {
            pairs.push(("batch", Value::U64(b)));
        }
        if let Some(a) = &args.arrival {
            pairs.push(("arrival", Value::Str(a.clone())));
        }
        if let Some(p) = &args.policy {
            pairs.push(("policy", Value::Str(p.clone())));
        }
        if let Some(seed) = args.seed {
            pairs.push(("seed", Value::U64(seed)));
        }
        if args.trace {
            pairs.push(("trace", Value::Bool(true)));
        }
        obj(pairs)
    };

    if args.nets.len() == 1 && args.models.len() <= 1 {
        return job(&args.nets[0], args.models.first().map(String::as_str)).render();
    }
    let models: Vec<Option<&str>> = if args.models.is_empty() {
        vec![None]
    } else {
        args.models.iter().map(|m| Some(m.as_str())).collect()
    };
    let jobs: Vec<Value> = args
        .nets
        .iter()
        .flat_map(|net| models.iter().map(|m| job(net, *m)))
        .collect();
    obj(vec![
        ("type", Value::Str("batch".to_string())),
        ("jobs", Value::Arr(jobs)),
    ])
    .render()
}

fn main() {
    let args = parse_args();
    let request = match build_request(&args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("isos-client: {e}");
            std::process::exit(2);
        }
    };

    let stream = match TcpStream::connect(&args.addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("isos-client: cannot connect to {}: {e}", args.addr);
            std::process::exit(2);
        }
    };
    let mut writer = match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("isos-client: {e}");
            std::process::exit(2);
        }
    };
    if writer.write_all(format!("{request}\n").as_bytes()).is_err() {
        eprintln!("isos-client: send failed");
        std::process::exit(2);
    }

    // Requests that end in a single terminal line vs. a row stream.
    let terminal: &[&str] = if args.ping {
        &["pong"]
    } else if args.stats {
        &["stats"]
    } else if args.shutdown {
        &["bye"]
    } else {
        &["done"]
    };

    let mut saw_error = false;
    for line in BufReader::new(stream).lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("isos-client: recv failed: {e}");
                std::process::exit(2);
            }
        };
        println!("{line}");
        let value = serde::json::parse(&line).ok();
        let kind = value
            .as_ref()
            .and_then(|v| {
                v.field("type")
                    .ok()
                    .map(|t| t.as_str().unwrap_or("").to_string())
            })
            .unwrap_or_default();
        if kind == "error" {
            saw_error = true;
            // An error without an `index` rejected the whole request
            // (e.g. an invalid --arch description): the server keeps
            // the connection open for the next request, but this
            // one-shot client is done — no rows or `done` will follow.
            let request_level = value.is_none_or(|v| v.field("index").is_err());
            if request_level {
                std::process::exit(1);
            }
        }
        if terminal.contains(&kind.as_str()) {
            std::process::exit(i32::from(saw_error));
        }
    }
    eprintln!("isos-client: connection closed before the final response");
    std::process::exit(2);
}
