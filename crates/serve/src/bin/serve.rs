//! The simulation daemon.
//!
//! ```text
//! serve [--addr HOST:PORT] [--workers N] [--idle-timeout-secs S]
//!       [--threads N] [--no-cache] [--cache-bytes N[k|m|g]] [--smoke]
//! ```
//!
//! Prints a `{"type":"listening","addr":...}` line to stdout once the
//! socket is bound (scripts parse it to discover ephemeral ports), then
//! serves until a `shutdown` request or SIGINT/SIGTERM, draining
//! in-flight jobs before exiting.
//!
//! `--smoke` binds an ephemeral port, runs one suite request, one
//! inline-config request, and a stats query against itself, validates
//! the responses, shuts down cleanly, and exits 0/1 — the self-check
//! `scripts/check.sh` runs.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use isos_serve::protocol::Response;
use isos_serve::{Server, ServerOptions};
use isosceles_bench::engine::EngineOptions;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = ServerOptions {
        addr: "127.0.0.1:9377".to_string(),
        engine: EngineOptions {
            quiet: true,
            ..EngineOptions::from_env()
        },
        ..ServerOptions::default()
    };
    let mut smoke = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |flag: &str| -> Option<String> {
            if let Some(v) = arg.strip_prefix(&format!("{flag}=")) {
                Some(v.to_string())
            } else if arg == flag {
                it.next().cloned()
            } else {
                None
            }
        };
        if let Some(v) = take("--addr") {
            opts.addr = v;
        } else if let Some(v) = take("--workers") {
            match v.parse::<usize>() {
                Ok(n) if n >= 1 => opts.workers = n,
                _ => die(&format!("invalid --workers value `{v}`")),
            }
        } else if let Some(v) = take("--idle-timeout-secs") {
            match v.parse::<u64>() {
                Ok(s) if s >= 1 => opts.idle_timeout = Duration::from_secs(s),
                _ => die(&format!("invalid --idle-timeout-secs value `{v}`")),
            }
        } else if arg == "--smoke" {
            smoke = true;
        }
        // --threads / --no-cache / --cache-bytes are consumed by
        // EngineOptions::from_env(); anything else is ignored, matching
        // the other harness binaries.
    }

    if smoke {
        opts.addr = "127.0.0.1:0".to_string();
        std::process::exit(run_smoke(opts));
    }

    let server = match Server::bind(opts) {
        Ok(s) => s,
        Err(e) => die(&format!("bind failed: {e}")),
    };
    println!("{}", Response::listening(&server.local_addr().to_string()));
    let _ = std::io::stdout().flush();

    install_signal_bridge(server.stop_flag());
    server.run();
    eprintln!("serve: drained and stopped");
}

fn die(msg: &str) -> ! {
    eprintln!("serve: {msg}");
    std::process::exit(2);
}

/// Routes SIGINT/SIGTERM to the server's stop flag so `run()` drains
/// in-flight jobs instead of the process dying mid-write.
#[cfg(unix)]
fn install_signal_bridge(stop: std::sync::Arc<dyn Fn() + Send + Sync>) {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SIGNALED: AtomicBool = AtomicBool::new(false);
    extern "C" fn on_signal(_sig: i32) {
        SIGNALED.store(true, Ordering::SeqCst);
    }
    // The platform libc is already linked by std; declaring `signal`
    // directly avoids depending on a libc crate the vendor tree lacks.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
    std::thread::spawn(move || loop {
        if SIGNALED.load(Ordering::SeqCst) {
            stop();
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    });
}

#[cfg(not(unix))]
fn install_signal_bridge(_stop: std::sync::Arc<dyn Fn() + Send + Sync>) {}

/// One line out, one or more lines back (until `stop_at` matches a
/// response `type`). Returns the collected response lines.
fn roundtrip(addr: &str, request: &str, stop_at: &[&str]) -> Result<Vec<String>, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    writer
        .write_all(format!("{request}\n").as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut lines = Vec::new();
    for line in BufReader::new(stream).lines() {
        let line = line.map_err(|e| format!("recv: {e}"))?;
        let value = serde::json::parse(&line).map_err(|e| format!("bad response JSON: {e}"))?;
        let kind = value
            .field("type")
            .ok()
            .and_then(serde::json::Value::as_str)
            .ok_or("response without a type")?
            .to_string();
        lines.push(line);
        if kind == "error" {
            return Err(format!("server error: {}", lines.last().unwrap()));
        }
        if stop_at.contains(&kind.as_str()) {
            return Ok(lines);
        }
    }
    Err("connection closed before the final response".to_string())
}

/// The `--smoke` self-check. Returns the process exit code.
fn run_smoke(opts: ServerOptions) -> i32 {
    let server = match Server::bind(opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("smoke: bind failed: {e}");
            return 1;
        }
    };
    let addr = server.local_addr().to_string();
    let server_thread = std::thread::spawn(move || server.run());

    let checks = || -> Result<(), String> {
        // 1. A suite request by name.
        let rows = roundtrip(
            &addr,
            r#"{"type":"run","workload":"M75","model":"isosceles"}"#,
            &["done"],
        )?;
        if rows.len() != 2 {
            return Err(format!("expected row + done, got {} lines", rows.len()));
        }
        let row = serde::json::parse(&rows[0]).map_err(|e| e.to_string())?;
        let cycles = row
            .field("metrics")
            .and_then(|m| m.field("total"))
            .and_then(|t| t.field("cycles"))
            .and_then(serde::json::Value::as_u64)
            .map_err(|e| format!("row without total cycles: {e}"))?;
        if cycles == 0 {
            return Err("suite run reported zero cycles".to_string());
        }

        // 2. An inline-config request (the paper default, relabeled).
        let config = serde::json::to_string(&isosceles::IsoscelesConfig::default());
        let request = format!(
            r#"{{"type":"run","workload":"M75","config":{{"label":"smoke-point","config":{config}}}}}"#
        );
        let rows = roundtrip(&addr, &request, &["done"])?;
        let row = serde::json::parse(&rows[0]).map_err(|e| e.to_string())?;
        let label = row
            .field("label")
            .ok()
            .and_then(serde::json::Value::as_str)
            .unwrap_or_default()
            .to_string();
        if label != "smoke-point" {
            return Err(format!("inline run echoed label `{label}`"));
        }

        // 3. Stats reflect the two requests.
        let stats = roundtrip(&addr, r#"{"type":"stats"}"#, &["stats"])?;
        let stats = serde::json::parse(&stats[0]).map_err(|e| e.to_string())?;
        let computes = stats
            .field("computes")
            .and_then(serde::json::Value::as_u64)
            .map_err(|e| format!("stats without computes: {e}"))?;
        let hits = stats
            .field("hits")
            .and_then(serde::json::Value::as_u64)
            .map_err(|e| format!("stats without hits: {e}"))?;
        // Both runs share one job key, so with a cold cache one compute
        // and one hit; with a warm cache zero computes and two hits.
        if computes + hits < 2 {
            return Err(format!(
                "stats did not account for both requests: computes={computes} hits={hits}"
            ));
        }
        Ok(())
    };
    let result = checks();

    // Clean shutdown either way.
    let bye = roundtrip(&addr, r#"{"type":"shutdown"}"#, &["bye"]);
    let _ = server_thread.join();

    match (result, bye) {
        (Ok(()), Ok(_)) => {
            eprintln!("smoke: ok");
            0
        }
        (Err(e), _) => {
            eprintln!("smoke: FAILED: {e}");
            1
        }
        (_, Err(e)) => {
            eprintln!("smoke: shutdown FAILED: {e}");
            1
        }
    }
}
