//! The newline-delimited JSON wire protocol.
//!
//! Every request is one line holding a JSON object with a `"type"`
//! field; every response is one line holding a JSON object with a
//! `"type"` field. Requests are parsed tolerantly by hand from the
//! [`Value`] tree (optional fields get defaults; anything structurally
//! wrong produces a [`Response::error`] instead of a dropped
//! connection), and responses are built as `Value` trees directly so
//! the wire format is owned by this module, not by derive expansion.
//!
//! Request types:
//!
//! - `{"type":"run","workload":"R96","model":"isosceles","seed":...,"trace":false}`
//!   — one job. `"model"` names a default-configured suite model;
//!   `"config"` instead carries an inline [`IsoscelesConfig`] object or
//!   a full DSE [`DesignPoint`] (`{"label":...,"config":{...}}`);
//!   `"arch"` instead carries a declarative [`ArchDesc`] object, which
//!   the server lowers onto the sim substrate before running. Schema
//!   violations come back as structured `error` lines naming the bad
//!   field; the connection stays open.
//! - `{"type":"matrix","workloads":[...],"models":[...]}` — the cross
//!   product, streamed as `row` responses in completion order. A model
//!   entry is a name string, an inline config object, or an
//!   `{"arch":{...}}` description. Omitted `workloads`/`models` default
//!   to the full paper suite and all four models.
//! - `{"type":"stream","workload":...,"model":...,"requests":256,
//!   "batch":4,"arrival":"poisson:50000","policy":"greedy"}` — one
//!   batched streaming-inference scenario ([`StreamConfig`] fields all
//!   optional); the row's `metrics` carry throughput, p50/p95/p99
//!   latency, and queue depth next to the conserved totals.
//! - `{"type":"batch","jobs":[{...},{...}]}` — heterogeneous scenarios
//!   (each entry a `run`- or `stream`-shaped object, discriminated by
//!   its own `"type"`, default `run`) submitted as one request;
//!   identical concurrent jobs are deduplicated through the engine's
//!   single-flight table, so duplicates cost one simulation.
//! - `{"type":"stats"}` — lifetime engine, store, and worker counters.
//! - `{"type":"ping"}` / `{"type":"shutdown"}`.

use isos_explore::arch::ArchDesc;
use isos_explore::space::DesignPoint;
use isos_stream::{Arrival, BatchPolicy, StreamConfig};
use isosceles::IsoscelesConfig;
use serde::json::Value;
use serde::Deserialize;

/// Default request seed: the paper suite seed.
pub const DEFAULT_SEED: u64 = isosceles_bench::suite::SEED;

/// Which accelerator a job should run on.
#[derive(Clone, Debug, PartialEq)]
pub enum ModelSpec {
    /// A default-configured suite model, by name (`"isosceles"`,
    /// `"sparten"`, ...).
    Named(String),
    /// An inline DSE configuration point.
    Inline(DesignPoint),
    /// A declarative architecture description, lowered server-side.
    Arch(Box<ArchDesc>),
}

impl ModelSpec {
    /// The label reported back in `row` responses.
    pub fn label(&self) -> &str {
        match self {
            ModelSpec::Named(name) => name,
            ModelSpec::Inline(point) => &point.label,
            ModelSpec::Arch(desc) => &desc.name,
        }
    }
}

/// One simulation job as requested on the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Suite workload id (`"R96"`, ...).
    pub workload: String,
    /// Accelerator to run it on.
    pub model: ModelSpec,
    /// RNG seed.
    pub seed: u64,
    /// Attach an event trace and return per-unit stall breakdowns.
    /// Traced jobs always simulate (the cache stores metrics only).
    pub trace: bool,
    /// `Some` turns the job into a batched streaming-inference
    /// scenario ([`isosceles_bench::stream`]) instead of one
    /// single-image simulation.
    pub stream: Option<StreamConfig>,
}

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Run one job and stream its row.
    Run(Box<JobSpec>),
    /// Run a workloads × models matrix, streaming rows as they finish.
    Matrix(Vec<JobSpec>),
    /// Run an explicit list of heterogeneous jobs (single-inference and
    /// streaming scenarios mixed) as one request.
    Batch(Vec<JobSpec>),
    /// Report lifetime server statistics.
    Stats,
    /// Liveness probe.
    Ping,
    /// Drain in-flight jobs and stop the server.
    Shutdown,
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a human-readable message for malformed JSON, a missing or
/// unknown `"type"`, or structurally invalid fields. The caller wraps
/// it in a [`Response::error`] line; the connection stays usable.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = serde::json::parse(line).map_err(|e| format!("malformed request: {e}"))?;
    let kind = value
        .field("type")
        .ok()
        .and_then(Value::as_str)
        .ok_or("request must be an object with a string `type` field")?;
    match kind {
        "run" => Ok(Request::Run(Box::new(parse_job(&value)?))),
        "stream" => Ok(Request::Run(Box::new(parse_stream_job(&value)?))),
        "matrix" => parse_matrix(&value),
        "batch" => parse_batch(&value),
        "stats" => Ok(Request::Stats),
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!(
            "unknown request type `{other}` (expected run, stream, matrix, batch, stats, ping, \
             or shutdown)"
        )),
    }
}

/// Parses the seed/trace fields shared by `run` and `matrix`.
fn parse_common(value: &Value) -> Result<(u64, bool), String> {
    let seed = match value.field("seed") {
        Ok(v) => v.as_u64().map_err(|e| format!("bad `seed`: {e}"))?,
        Err(_) => DEFAULT_SEED,
    };
    let trace = match value.field("trace") {
        Ok(v) => v.as_bool().map_err(|e| format!("bad `trace`: {e}"))?,
        Err(_) => false,
    };
    Ok((seed, trace))
}

fn parse_job(value: &Value) -> Result<JobSpec, String> {
    let workload = value
        .field("workload")
        .ok()
        .and_then(Value::as_str)
        .ok_or("`run` needs a string `workload` field")?
        .to_string();
    let model = parse_model(value)?;
    let (seed, trace) = parse_common(value)?;
    Ok(JobSpec {
        workload,
        model,
        seed,
        trace,
        stream: None,
    })
}

/// Parses a `stream` job: a `run`-shaped object plus the optional
/// [`StreamConfig`] fields (`requests`, `batch`, `arrival`, `policy`).
fn parse_stream_job(value: &Value) -> Result<JobSpec, String> {
    let mut spec = parse_job(value)?;
    spec.stream = Some(parse_stream_cfg(value)?);
    Ok(spec)
}

/// Extracts a validated [`StreamConfig`] from a request object; every
/// field is optional and defaults to [`StreamConfig::default`].
fn parse_stream_cfg(value: &Value) -> Result<StreamConfig, String> {
    let mut cfg = StreamConfig::default();
    if let Ok(v) = value.field("requests") {
        cfg.requests = v.as_u64().map_err(|e| format!("bad `requests`: {e}"))?;
    }
    if let Ok(v) = value.field("batch") {
        cfg.batch = v.as_u64().map_err(|e| format!("bad `batch`: {e}"))?;
    }
    if let Ok(v) = value.field("arrival") {
        let spelled = v
            .as_str()
            .ok_or_else(|| format!("bad `arrival`: expected string, got {}", v.kind()))?;
        cfg.arrival = Arrival::parse(spelled).map_err(|e| format!("bad `arrival`: {e}"))?;
    }
    if let Ok(v) = value.field("policy") {
        let spelled = v
            .as_str()
            .ok_or_else(|| format!("bad `policy`: expected string, got {}", v.kind()))?;
        cfg.policy = BatchPolicy::parse(spelled).map_err(|e| format!("bad `policy`: {e}"))?;
    }
    cfg.validate()
        .map_err(|e| format!("bad stream config: {e}"))?;
    Ok(cfg)
}

/// Parses a `batch` request: an explicit `jobs` array of heterogeneous
/// `run`/`stream` objects, discriminated by each entry's own `"type"`.
fn parse_batch(value: &Value) -> Result<Request, String> {
    let jobs = value
        .field("jobs")
        .map_err(|_| "`batch` needs a `jobs` array".to_string())?
        .as_arr()
        .map_err(|e| format!("bad `jobs`: {e}"))?;
    if jobs.is_empty() {
        return Err("batch needs at least one job".to_string());
    }
    jobs.iter()
        .enumerate()
        .map(|(i, job)| {
            let kind = match job.field("type") {
                Ok(t) => t
                    .as_str()
                    .ok_or_else(|| format!("job {i}: `type` must be a string"))?,
                Err(_) => "run",
            };
            match kind {
                "run" => parse_job(job),
                "stream" => parse_stream_job(job),
                other => Err(format!("job {i}: unknown job type `{other}`")),
            }
            .map_err(|e| format!("job {i}: {e}"))
        })
        .collect::<Result<Vec<_>, _>>()
        .map(Request::Batch)
}

/// Resolves a job's accelerator: a `"model"` name, an inline `"config"`
/// object (either a bare [`IsoscelesConfig`] or a labeled
/// [`DesignPoint`]), or a declarative `"arch"` description.
fn parse_model(value: &Value) -> Result<ModelSpec, String> {
    if let Ok(arch) = value.field("arch") {
        return parse_arch(arch);
    }
    if let Ok(config) = value.field("config") {
        return parse_inline(config);
    }
    let name = value.field("model").ok().and_then(Value::as_str).ok_or(
        "job needs a string `model` name, an inline `config` object, or an `arch` description",
    )?;
    Ok(ModelSpec::Named(name.to_string()))
}

/// Parses and validates a declarative [`ArchDesc`]. Both structural
/// problems (unknown fields, wrong types) and semantic ones (zero-size
/// buffers, dataflow rank mismatches) surface as error messages so the
/// client sees a structured `error` line instead of a dropped
/// connection.
fn parse_arch(arch: &Value) -> Result<ModelSpec, String> {
    let desc = ArchDesc::from_value(arch).map_err(|e| format!("bad arch description: {e}"))?;
    desc.validate()
        .map_err(|e| format!("invalid arch description: {e}"))?;
    Ok(ModelSpec::Arch(Box::new(desc)))
}

fn parse_inline(config: &Value) -> Result<ModelSpec, String> {
    // A labeled DSE point ({"label":...,"config":{...}}) or a bare
    // IsoscelesConfig object.
    if config.field("label").is_ok() {
        let point =
            DesignPoint::from_value(config).map_err(|e| format!("bad design point: {e}"))?;
        return Ok(ModelSpec::Inline(point));
    }
    let config = IsoscelesConfig::from_value(config)
        .map_err(|e| format!("bad inline config (all IsoscelesConfig fields required): {e}"))?;
    Ok(ModelSpec::Inline(DesignPoint {
        label: "inline".to_string(),
        config,
    }))
}

fn parse_matrix(value: &Value) -> Result<Request, String> {
    let (seed, trace) = parse_common(value)?;
    let workloads: Vec<String> = match value.field("workloads") {
        Ok(v) => v
            .as_arr()
            .map_err(|e| format!("bad `workloads`: {e}"))?
            .iter()
            .map(|w| {
                w.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("bad workload id: expected string, got {}", w.kind()))
            })
            .collect::<Result<_, _>>()?,
        Err(_) => isos_nn::models::SUITE_IDS
            .iter()
            .map(|s| s.to_string())
            .collect(),
    };
    let models: Vec<ModelSpec> = match value.field("models") {
        Ok(v) => v
            .as_arr()
            .map_err(|e| format!("bad `models`: {e}"))?
            .iter()
            .map(|m| match m {
                Value::Str(name) => Ok(ModelSpec::Named(name.clone())),
                Value::Obj(_) => match m.field("arch") {
                    Ok(arch) => parse_arch(arch),
                    Err(_) => parse_inline(m),
                },
                other => Err(format!(
                    "bad model: expected name, config object, or arch description, got {}",
                    other.kind()
                )),
            })
            .collect::<Result<_, _>>()?,
        Err(_) => isosceles_bench::trace::MODEL_NAMES
            .iter()
            .map(|s| ModelSpec::Named(s.to_string()))
            .collect(),
    };
    if workloads.is_empty() || models.is_empty() {
        return Err("matrix needs at least one workload and one model".to_string());
    }
    let jobs = workloads
        .iter()
        .flat_map(|w| {
            models.iter().map(move |m| JobSpec {
                workload: w.clone(),
                model: m.clone(),
                seed,
                trace,
                stream: None,
            })
        })
        .collect();
    Ok(Request::Matrix(jobs))
}

/// Response line builders. Each returns the serialized JSON (without
/// the trailing newline the connection handler appends).
pub struct Response;

/// Builds a JSON object from `(key, value)` pairs.
fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn str_value(s: &str) -> Value {
    Value::Str(s.to_string())
}

impl Response {
    /// `{"type":"error","message":...}` (+ `index` inside a matrix).
    pub fn error(message: &str, index: Option<usize>) -> String {
        let mut pairs = vec![
            ("type", str_value("error")),
            ("message", str_value(message)),
        ];
        if let Some(i) = index {
            pairs.push(("index", Value::U64(i as u64)));
        }
        obj(pairs).render()
    }

    /// `{"type":"pong"}`.
    pub fn pong() -> String {
        obj(vec![("type", str_value("pong"))]).render()
    }

    /// `{"type":"bye","reason":...}` — the connection's last line.
    pub fn bye(reason: &str) -> String {
        obj(vec![
            ("type", str_value("bye")),
            ("reason", str_value(reason)),
        ])
        .render()
    }

    /// `{"type":"listening","addr":...}` — printed by the `serve` bin so
    /// scripts can discover an ephemeral port.
    pub fn listening(addr: &str) -> String {
        obj(vec![
            ("type", str_value("listening")),
            ("addr", str_value(addr)),
        ])
        .render()
    }

    /// One finished job. `stalls` rows are attached for traced jobs.
    #[allow(clippy::too_many_arguments)]
    pub fn row(
        index: usize,
        spec: &JobSpec,
        model: &str,
        cache_hit: bool,
        deduped: bool,
        millis: f64,
        metrics: &Value,
        stalls: Option<Value>,
    ) -> String {
        let mut pairs = vec![
            ("type", str_value("row")),
            ("index", Value::U64(index as u64)),
            ("workload", str_value(&spec.workload)),
            ("model", str_value(model)),
            ("label", str_value(spec.model.label())),
            ("seed", Value::U64(spec.seed)),
            ("cache_hit", Value::Bool(cache_hit)),
            ("deduped", Value::Bool(deduped)),
            ("millis", Value::F64(millis)),
            ("metrics", metrics.clone()),
        ];
        if let Some(stalls) = stalls {
            pairs.push(("stalls", stalls));
        }
        obj(pairs).render()
    }

    /// End-of-request summary after all rows of a `run`/`matrix`.
    pub fn done(
        jobs: usize,
        hits: usize,
        misses: usize,
        deduped: usize,
        wall_millis: f64,
    ) -> String {
        obj(vec![
            ("type", str_value("done")),
            ("jobs", Value::U64(jobs as u64)),
            ("hits", Value::U64(hits as u64)),
            ("misses", Value::U64(misses as u64)),
            ("deduped", Value::U64(deduped as u64)),
            ("wall_millis", Value::F64(wall_millis)),
        ])
        .render()
    }

    /// `{"type":"stats",...}` from pre-built sections.
    pub fn stats(pairs: Vec<(&str, Value)>) -> String {
        let mut all = vec![("type", str_value("stats"))];
        all.extend(pairs);
        obj(all).render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_request_with_defaults() {
        let req = parse_request(r#"{"type":"run","workload":"R96","model":"sparten"}"#).unwrap();
        let Request::Run(spec) = req else {
            panic!("expected run")
        };
        assert_eq!(spec.workload, "R96");
        assert_eq!(spec.model, ModelSpec::Named("sparten".into()));
        assert_eq!(spec.seed, DEFAULT_SEED);
        assert!(!spec.trace);
    }

    #[test]
    fn run_request_with_inline_config() {
        let config = IsoscelesConfig {
            lanes: 32,
            ..IsoscelesConfig::default()
        };
        let line = format!(
            r#"{{"type":"run","workload":"G58","config":{},"seed":7}}"#,
            serde::json::to_string(&config)
        );
        let Request::Run(spec) = parse_request(&line).unwrap() else {
            panic!("expected run")
        };
        assert_eq!(spec.seed, 7);
        let ModelSpec::Inline(point) = spec.model else {
            panic!("expected inline model")
        };
        assert_eq!(point.label, "inline");
        assert_eq!(point.config, config);
    }

    #[test]
    fn run_request_with_labeled_design_point() {
        let point = DesignPoint {
            label: "l32".into(),
            config: IsoscelesConfig {
                lanes: 32,
                ..IsoscelesConfig::default()
            },
        };
        let line = format!(
            r#"{{"type":"run","workload":"G58","config":{}}}"#,
            serde::json::to_string(&point)
        );
        let Request::Run(spec) = parse_request(&line).unwrap() else {
            panic!("expected run")
        };
        assert_eq!(spec.model, ModelSpec::Inline(point));
    }

    #[test]
    fn run_request_with_arch_description() {
        let desc = isos_explore::arch::reference::sparten();
        let line = format!(
            r#"{{"type":"run","workload":"G58","arch":{}}}"#,
            serde::json::to_string(&desc)
        );
        let Request::Run(spec) = parse_request(&line).unwrap() else {
            panic!("expected run")
        };
        assert_eq!(spec.model.label(), "sparten");
        assert_eq!(spec.model, ModelSpec::Arch(Box::new(desc)));
    }

    #[test]
    fn arch_schema_violations_return_structured_messages() {
        // Semantic violation: zero-size buffer level.
        let mut desc = isos_explore::arch::reference::sparten();
        desc.levels[0].bytes = 0;
        let line = format!(
            r#"{{"type":"run","workload":"G58","arch":{}}}"#,
            serde::json::to_string(&desc)
        );
        let err = parse_request(&line).unwrap_err();
        assert!(err.contains("invalid arch description"), "{err}");
        assert!(err.contains("zero size"), "{err}");

        // Structural violation: unknown field.
        let err =
            parse_request(r#"{"type":"run","workload":"G58","arch":{"nome":"x"}}"#).unwrap_err();
        assert!(err.contains("bad arch description"), "{err}");
        assert!(err.contains("unknown field"), "{err}");
    }

    #[test]
    fn matrix_accepts_arch_model_entries() {
        let desc = isos_explore::arch::reference::fused_layer();
        let line = format!(
            r#"{{"type":"matrix","workloads":["G58"],"models":["isosceles",{{"arch":{}}}]}}"#,
            serde::json::to_string(&desc)
        );
        let Request::Matrix(jobs) = parse_request(&line).unwrap() else {
            panic!("expected matrix")
        };
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].model.label(), "isosceles");
        assert_eq!(jobs[1].model.label(), "fused-layer");
        assert!(matches!(jobs[1].model, ModelSpec::Arch(_)));
    }

    #[test]
    fn matrix_request_expands_the_cross_product() {
        let req = parse_request(
            r#"{"type":"matrix","workloads":["R96","G58"],"models":["isosceles","sparten"],"seed":3}"#,
        )
        .unwrap();
        let Request::Matrix(jobs) = req else {
            panic!("expected matrix")
        };
        assert_eq!(jobs.len(), 4);
        assert_eq!(jobs[0].workload, "R96");
        assert_eq!(jobs[0].model.label(), "isosceles");
        assert_eq!(jobs[3].workload, "G58");
        assert_eq!(jobs[3].model.label(), "sparten");
        assert!(jobs.iter().all(|j| j.seed == 3));
    }

    #[test]
    fn matrix_defaults_to_the_full_suite() {
        let Request::Matrix(jobs) = parse_request(r#"{"type":"matrix"}"#).unwrap() else {
            panic!("expected matrix")
        };
        assert_eq!(
            jobs.len(),
            isos_nn::models::SUITE_IDS.len() * isosceles_bench::trace::MODEL_NAMES.len()
        );
    }

    #[test]
    fn stream_request_carries_a_validated_scenario() {
        let req = parse_request(
            r#"{"type":"stream","workload":"G58","model":"isosceles","requests":16,"batch":4,
                "arrival":"poisson:50000","policy":"waitfull","seed":9}"#,
        )
        .unwrap();
        let Request::Run(spec) = req else {
            panic!("expected run-shaped job")
        };
        assert_eq!(spec.workload, "G58");
        assert_eq!(spec.seed, 9);
        let cfg = spec.stream.expect("stream scenario");
        assert_eq!((cfg.requests, cfg.batch), (16, 4));
        assert_eq!(cfg.arrival, Arrival::Poisson { mean: 50000.0 });
        assert_eq!(cfg.policy, BatchPolicy::WaitFull);

        // All scenario fields are optional.
        let Request::Run(spec) =
            parse_request(r#"{"type":"stream","workload":"G58","model":"sparten"}"#).unwrap()
        else {
            panic!("expected run-shaped job")
        };
        assert_eq!(spec.stream, Some(StreamConfig::default()));

        // But present fields are validated.
        let err =
            parse_request(r#"{"type":"stream","workload":"G58","model":"isosceles","requests":0}"#)
                .unwrap_err();
        assert!(err.contains("bad stream config"), "{err}");
        let err = parse_request(
            r#"{"type":"stream","workload":"G58","model":"isosceles","arrival":"fibonacci"}"#,
        )
        .unwrap_err();
        assert!(err.contains("bad `arrival`"), "{err}");
    }

    #[test]
    fn batch_request_mixes_run_and_stream_jobs() {
        let req = parse_request(
            r#"{"type":"batch","jobs":[
                {"workload":"G58","model":"isosceles","seed":3},
                {"type":"stream","workload":"M75","model":"sparten","requests":8,"batch":2}
            ]}"#,
        )
        .unwrap();
        let Request::Batch(jobs) = req else {
            panic!("expected batch")
        };
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].workload, "G58");
        assert!(jobs[0].stream.is_none(), "untyped entries default to run");
        assert_eq!(jobs[1].workload, "M75");
        assert_eq!(jobs[1].stream.map(|c| (c.requests, c.batch)), Some((8, 2)));

        let err = parse_request(r#"{"type":"batch","jobs":[]}"#).unwrap_err();
        assert!(err.contains("at least one job"), "{err}");
        let err = parse_request(r#"{"type":"batch"}"#).unwrap_err();
        assert!(err.contains("jobs"), "{err}");
        let err = parse_request(r#"{"type":"batch","jobs":[{"type":"dance","workload":"G58"}]}"#)
            .unwrap_err();
        assert!(err.contains("job 0"), "{err}");
        assert!(err.contains("unknown job type"), "{err}");
    }

    #[test]
    fn malformed_lines_return_messages_not_panics() {
        assert!(parse_request("not json").unwrap_err().contains("malformed"));
        assert!(parse_request("[1,2]").unwrap_err().contains("type"));
        assert!(parse_request(r#"{"type":"dance"}"#)
            .unwrap_err()
            .contains("unknown request type"));
        assert!(parse_request(r#"{"type":"run"}"#)
            .unwrap_err()
            .contains("workload"));
        assert!(parse_request(r#"{"type":"run","workload":"R96"}"#)
            .unwrap_err()
            .contains("model"));
        assert!(
            parse_request(r#"{"type":"run","workload":"R96","config":{"lanes":64}}"#)
                .unwrap_err()
                .contains("inline config")
        );
    }

    #[test]
    fn responses_are_single_line_json_with_a_type() {
        for line in [
            Response::error("boom", Some(3)),
            Response::pong(),
            Response::bye("shutdown"),
            Response::listening("127.0.0.1:9"),
            Response::done(4, 1, 2, 1, 12.5),
        ] {
            assert!(!line.contains('\n'));
            let v = serde::json::parse(&line).unwrap();
            assert!(v.field("type").unwrap().as_str().is_some(), "{line}");
        }
    }
}
