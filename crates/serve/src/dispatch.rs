//! The worker pool behind the server: a crossbeam channel of jobs
//! drained by N threads, each funneling simulations through the shared
//! [`SuiteEngine`] so caching and single-flight dedup apply across
//! every connection.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crossbeam::channel::{unbounded, Sender};
use isos_sim::metrics::StreamMetrics;
use isos_stream::StreamConfig;
use isos_trace::breakdown::StallBreakdown;
use isosceles_bench::engine::SuiteEngine;
use isosceles_bench::stream::run_stream_cached;
use isosceles_bench::trace::{accel_by_name, trace_workload};
use serde::json::Value;
use serde::Serialize;

use crate::protocol::{JobSpec, ModelSpec};

/// One job as queued to the pool: the spec, its position in the
/// request, and where to send the outcome.
struct Job {
    index: usize,
    spec: JobSpec,
    reply: Sender<JobOutcome>,
}

/// What a worker sends back for one job.
pub struct JobOutcome {
    /// The job's index within its request.
    pub index: usize,
    /// The finished row, or a message describing why it failed.
    pub result: Result<JobDone, String>,
}

/// A finished simulation, ready to serialize as a `row` response.
pub struct JobDone {
    /// Canonical model name ([`Accelerator::name`]) the job ran on.
    ///
    /// [`Accelerator::name`]: isosceles::accel::Accelerator::name
    pub model: String,
    /// Whether the result came from the persistent cache.
    pub cache_hit: bool,
    /// Whether the result came from an identical in-flight job.
    pub deduped: bool,
    /// Wall time of the job in milliseconds.
    pub millis: f64,
    /// The metrics, pre-serialized to a JSON tree.
    pub metrics: Value,
    /// Per-unit stall breakdowns, for traced jobs.
    pub stalls: Option<Vec<StallBreakdown>>,
}

/// Lifetime counters for one worker thread.
#[derive(Debug, Default)]
struct WorkerCounters {
    jobs: AtomicU64,
    busy_micros: AtomicU64,
}

/// A snapshot of one worker's lifetime activity, for `stats` responses.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkerStats {
    /// Jobs this worker finished.
    pub jobs: u64,
    /// Total wall time this worker spent inside jobs, in milliseconds.
    pub busy_millis: f64,
}

/// The dispatcher: submit jobs, receive outcomes on per-request
/// channels, inspect per-worker utilization.
pub struct WorkerPool {
    submit: Mutex<Option<Sender<Job>>>,
    counters: Vec<Arc<WorkerCounters>>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl WorkerPool {
    /// Spawns `workers` threads draining a shared job queue into
    /// `engine`.
    pub fn new(engine: SuiteEngine, workers: usize) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = unbounded::<Job>();
        let counters: Vec<Arc<WorkerCounters>> = (0..workers)
            .map(|_| Arc::new(WorkerCounters::default()))
            .collect();
        let handles = counters
            .iter()
            .map(|counters| {
                let rx = rx.clone();
                let engine = engine.clone();
                let counters = Arc::clone(counters);
                std::thread::spawn(move || {
                    for job in rx.iter() {
                        let started = Instant::now();
                        let result = catch_unwind(AssertUnwindSafe(|| run_job(&engine, &job.spec)))
                            .unwrap_or_else(|panic| {
                                Err(format!("job panicked: {}", panic_message(&panic)))
                            });
                        counters.jobs.fetch_add(1, Ordering::Relaxed);
                        counters
                            .busy_micros
                            .fetch_add(started.elapsed().as_micros() as u64, Ordering::Relaxed);
                        job.reply.send(JobOutcome {
                            index: job.index,
                            result,
                        });
                    }
                })
            })
            .collect();
        Self {
            submit: Mutex::new(Some(tx)),
            counters,
            handles: Mutex::new(handles),
        }
    }

    /// Queues one job; its outcome arrives on `reply`. Returns `false`
    /// if the pool has already shut down.
    pub fn submit(&self, index: usize, spec: JobSpec, reply: Sender<JobOutcome>) -> bool {
        let guard = self.submit.lock().expect("pool submit lock");
        match guard.as_ref() {
            Some(tx) => {
                tx.send(Job { index, spec, reply });
                true
            }
            None => false,
        }
    }

    /// Per-worker lifetime activity snapshots.
    pub fn worker_stats(&self) -> Vec<WorkerStats> {
        self.counters
            .iter()
            .map(|c| WorkerStats {
                jobs: c.jobs.load(Ordering::Relaxed),
                busy_millis: c.busy_micros.load(Ordering::Relaxed) as f64 / 1e3,
            })
            .collect()
    }

    /// Closes the queue and joins every worker. In-flight jobs finish;
    /// queued jobs still drain (submitters have already been promised an
    /// outcome). Idempotent.
    pub fn shutdown(&self) {
        drop(self.submit.lock().expect("pool submit lock").take());
        let handles: Vec<_> = self
            .handles
            .lock()
            .expect("pool handles lock")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Resolves and runs one job on the shared engine.
fn run_job(engine: &SuiteEngine, spec: &JobSpec) -> Result<JobDone, String> {
    let workload =
        isos_nn::models::try_suite_workload(&spec.workload, spec.seed).ok_or_else(|| {
            format!(
                "unknown workload `{}` (expected one of {})",
                spec.workload,
                isos_nn::models::SUITE_IDS.join(", ")
            )
        })?;
    let accel: Box<dyn isosceles::accel::Accelerator> = match &spec.model {
        ModelSpec::Named(name) => accel_by_name(name).ok_or_else(|| {
            format!(
                "unknown model `{name}` (expected one of {})",
                isosceles_bench::trace::MODEL_NAMES.join(", ")
            )
        })?,
        ModelSpec::Inline(point) => Box::new(point.config),
        ModelSpec::Arch(desc) => Box::new(
            isos_explore::arch::ArchAccel::new((**desc).clone())
                .map_err(|e| format!("invalid arch description: {e}"))?,
        ),
    };

    if let Some(cfg) = &spec.stream {
        return run_stream_job(engine, spec, accel.as_ref(), cfg);
    }

    if spec.trace {
        // Traced runs bypass the cache: the event stream is not stored,
        // and the metrics are bit-identical to untraced ones anyway.
        let started = Instant::now();
        let run = trace_workload(&workload, accel.as_ref(), spec.seed);
        return Ok(JobDone {
            model: run.model,
            cache_hit: false,
            deduped: false,
            millis: started.elapsed().as_secs_f64() * 1e3,
            metrics: run.metrics.to_value(),
            stalls: Some(run.buffer.breakdowns()),
        });
    }

    let (metrics, record) = engine.run_one(&workload, accel.as_ref(), spec.seed);
    Ok(JobDone {
        model: record.accel,
        cache_hit: record.cache_hit,
        deduped: record.deduped,
        millis: record.millis,
        metrics: metrics.to_value(),
        stalls: None,
    })
}

/// Runs one batched streaming scenario. Untraced streams go through
/// the engine's persistent cache (`"stream"` payload kind); traced
/// streams always simulate and attach per-request span breakdowns.
fn run_stream_job(
    engine: &SuiteEngine,
    spec: &JobSpec,
    accel: &dyn isosceles::accel::Accelerator,
    cfg: &StreamConfig,
) -> Result<JobDone, String> {
    let started = Instant::now();
    if spec.trace {
        let mut buffer = isos_trace::EventBuffer::new();
        let metrics =
            isos_stream::run_stream_traced(accel, &spec.workload, spec.seed, cfg, &mut buffer);
        return Ok(JobDone {
            model: accel.name().to_string(),
            cache_hit: false,
            deduped: false,
            millis: started.elapsed().as_secs_f64() * 1e3,
            metrics: stream_value(&metrics, cfg),
            stalls: Some(buffer.breakdowns()),
        });
    }
    let (metrics, cache_hit) = run_stream_cached(engine, accel, &spec.workload, spec.seed, cfg);
    Ok(JobDone {
        model: accel.name().to_string(),
        cache_hit,
        deduped: false,
        millis: started.elapsed().as_secs_f64() * 1e3,
        metrics: stream_value(&metrics, cfg),
        stalls: None,
    })
}

/// Serializes a stream row for the wire: the latency/throughput summary
/// plus the conserved totals, without the per-request span list (a
/// 256-request stream would be kilobytes of spans per row).
fn stream_value(s: &StreamMetrics, cfg: &StreamConfig) -> Value {
    Value::Obj(vec![
        ("requests".to_string(), Value::U64(s.requests.len() as u64)),
        ("batch".to_string(), Value::U64(cfg.batch)),
        ("cycles".to_string(), Value::U64(s.total.cycles)),
        (
            "throughput_imgs_per_sec".to_string(),
            Value::F64(s.throughput_imgs_per_sec(cfg.clock_ghz)),
        ),
        ("p50_cycles".to_string(), Value::U64(s.p50())),
        ("p95_cycles".to_string(), Value::U64(s.p95())),
        ("p99_cycles".to_string(), Value::U64(s.p99())),
        ("busy_cycles".to_string(), Value::U64(s.busy_cycles)),
        ("idle_cycles".to_string(), Value::U64(s.idle_cycles)),
        (
            "formation_cycles".to_string(),
            Value::U64(s.formation_cycles),
        ),
        ("batches".to_string(), Value::U64(s.batches)),
        ("queue_max_depth".to_string(), Value::U64(s.queue.max_depth)),
        (
            "queue_mean_depth".to_string(),
            Value::F64(s.queue.mean_depth),
        ),
        ("total".to_string(), s.total.to_value()),
    ])
}

/// Best-effort text of a panic payload.
fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> &str {
    if let Some(s) = panic.downcast_ref::<&str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// Serializes stall breakdowns for a `row` response.
pub fn stalls_value(stalls: &[StallBreakdown]) -> Value {
    Value::Arr(
        stalls
            .iter()
            .map(|b| {
                let mut pairs = vec![
                    ("unit".to_string(), Value::Str(b.name.clone())),
                    ("kind".to_string(), Value::Str(b.kind.label().to_string())),
                    ("cycles".to_string(), Value::U64(b.cycles)),
                    ("busy".to_string(), Value::F64(b.busy)),
                ];
                for kind in isos_trace::event::StallKind::ALL {
                    pairs.push((kind.label().to_string(), Value::F64(b.stalls[kind.index()])));
                }
                Value::Obj(pairs)
            })
            .collect(),
    )
}
