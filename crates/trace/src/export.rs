//! Exporters: Chrome/Perfetto trace-event JSON, occupancy-timeline CSV,
//! and a markdown stall summary.
//!
//! The Perfetto export uses the legacy Chrome trace-event JSON format
//! (`{"traceEvents": [...]}`), which <https://ui.perfetto.dev> opens
//! directly. Timestamps are reported with **1 µs = 1 cycle**: a 100-cycle
//! scheduler interval renders as a 100 µs slice. Each traced unit becomes
//! one named thread track carrying complete (`"ph":"X"`) slices labeled
//! by the interval's dominant state (`busy` or the largest stall);
//! consecutive intervals in the same dominant state are run-length merged
//! so multi-million-cycle runs stay openable, with the exact busy/stall
//! split preserved in the slice `args`. DRAM demand and grant appear as
//! counter (`"ph":"C"`) tracks in bytes/cycle per traffic class.

use crate::breakdown::dominant_state;
use crate::event::{DramClass, StallKind, TraceEvent};
use crate::sink::EventBuffer;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON/CSV-safe number: displays as the `f64` itself, or `0` for
/// non-finite values (which JSON cannot represent otherwise). Being a
/// `Display` wrapper, it formats straight into the output buffer — the
/// exporters' per-event loops never allocate intermediate strings.
struct Num(f64);

impl std::fmt::Display for Num {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0.is_finite() {
            write!(f, "{}", self.0)
        } else {
            f.write_str("0")
        }
    }
}

/// Formats an `f64` as a JSON/CSV-safe number (allocating convenience
/// wrapper around [`Num`]).
#[cfg(test)]
fn num(v: f64) -> String {
    Num(v).to_string()
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One in-progress run-length-merged slice on a unit track.
struct OpenSlice {
    state: &'static str,
    t: u64,
    cycles: u64,
    busy: f64,
    stalls: [f64; 4],
}

impl OpenSlice {
    fn flush_into(&self, out: &mut String, tid: u32) {
        let _ = write!(
            out,
            concat!(
                r#"{{"name":"{}","cat":"compute","ph":"X","pid":1,"tid":{},"#,
                r#""ts":{},"dur":{},"args":{{"busy":{}"#
            ),
            self.state,
            tid + 1,
            self.t,
            self.cycles,
            Num(self.busy),
        );
        for kind in StallKind::ALL {
            let _ = write!(
                out,
                r#","{}":{}"#,
                kind.label(),
                Num(self.stalls[kind.index()])
            );
        }
        out.push_str("}},\n");
    }
}

/// Renders the buffer as Chrome/Perfetto trace-event JSON.
///
/// `process_name` labels the single process track (conventionally
/// `"<model> on <workload>"`).
pub fn perfetto_json(buf: &EventBuffer, process_name: &str) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let _ = write!(
        out,
        concat!(
            r#"{{"name":"process_name","ph":"M","pid":1,"tid":0,"#,
            r#""args":{{"name":"{}"}}}},"#,
            "\n"
        ),
        json_escape(process_name)
    );
    for (i, meta) in buf.units().iter().enumerate() {
        let _ = write!(
            out,
            concat!(
                r#"{{"name":"thread_name","ph":"M","pid":1,"tid":{},"#,
                r#""args":{{"name":"{} [{}]"}}}},"#,
                "\n"
            ),
            i + 1,
            json_escape(&meta.name),
            meta.kind.label()
        );
    }

    // Compute slices: run-length merge consecutive same-dominant-state
    // intervals per unit. Events arrive in time order per unit, so one
    // open slice per unit suffices.
    let mut open: Vec<Option<OpenSlice>> = (0..buf.units().len()).map(|_| None).collect();
    // DRAM counters: aggregate per (t, class) across clients.
    let mut counters: BTreeMap<(u64, usize), (f64, f64, u64)> = BTreeMap::new();

    for ev in buf.events() {
        match *ev {
            TraceEvent::Compute {
                unit,
                t,
                cycles,
                busy,
                stalls,
            } => {
                if !unit.is_some() || unit.index() >= open.len() {
                    continue;
                }
                let state = dominant_state(busy, &stalls);
                let slot = &mut open[unit.index()];
                match slot {
                    Some(s) if s.state == state && s.t + s.cycles == t => {
                        s.cycles += cycles;
                        s.busy += busy;
                        for (acc, v) in s.stalls.iter_mut().zip(&stalls) {
                            *acc += v;
                        }
                    }
                    _ => {
                        if let Some(s) = slot.take() {
                            s.flush_into(&mut out, unit.0);
                        }
                        *slot = Some(OpenSlice {
                            state,
                            t,
                            cycles,
                            busy,
                            stalls,
                        });
                    }
                }
            }
            TraceEvent::Dram {
                t,
                cycles,
                class,
                demand,
                granted,
                ..
            } => {
                let e = counters
                    .entry((t, class as usize))
                    .or_insert((0.0, 0.0, cycles));
                e.0 += demand;
                e.1 += granted;
            }
        }
    }
    for (i, slot) in open.into_iter().enumerate() {
        if let Some(s) = slot {
            s.flush_into(&mut out, i as u32);
        }
    }
    for ((t, class), (demand, granted, cycles)) in counters {
        let per_cycle = 1.0 / cycles.max(1) as f64;
        let _ = write!(
            out,
            concat!(
                r#"{{"name":"dram.{}","ph":"C","pid":1,"tid":0,"ts":{},"#,
                r#""args":{{"granted_B_per_cycle":{},"demand_B_per_cycle":{}}}}},"#,
                "\n"
            ),
            DramClass::ALL[class].label(),
            t,
            Num(granted * per_cycle),
            Num(demand * per_cycle),
        );
    }

    // Closing metadata event avoids a trailing comma.
    out.push_str(r#"{"name":"trace_end","ph":"M","pid":1,"tid":0,"args":{}}"#);
    out.push_str("\n]}\n");
    out
}

/// Renders every compute event as one CSV row:
/// `t,unit,kind,cycles,busy,input_starved,output_blocked,dram_throttled,merge_bound`.
pub fn timeline_csv(buf: &EventBuffer) -> String {
    let mut out = String::from("t,unit,kind,cycles,busy");
    for kind in StallKind::ALL {
        let _ = write!(out, ",{}", kind.label());
    }
    out.push('\n');
    for ev in buf.events() {
        if let TraceEvent::Compute {
            unit,
            t,
            cycles,
            busy,
            stalls,
        } = *ev
        {
            let kind = if unit.is_some() && unit.index() < buf.units().len() {
                buf.units()[unit.index()].kind.label()
            } else {
                "?"
            };
            let _ = write!(out, "{t},");
            write_csv_field(&mut out, buf.unit_name(unit));
            let _ = write!(out, ",{},{},{}", kind, cycles, Num(busy));
            for k in StallKind::ALL {
                let _ = write!(out, ",{}", Num(stalls[k.index()]));
            }
            out.push('\n');
        }
    }
    out
}

/// Appends a CSV field, quoting it when it contains a delimiter or quote;
/// the common unquoted case is a straight copy into `out`.
fn write_csv_field(out: &mut String, s: &str) {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        out.push('"');
        for c in s.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
    } else {
        out.push_str(s);
    }
}

/// Quotes a CSV field (allocating convenience wrapper around
/// [`write_csv_field`]).
#[cfg(test)]
fn csv_field(s: &str) -> String {
    let mut out = String::new();
    write_csv_field(&mut out, s);
    out
}

/// Renders the per-unit stall breakdown as a markdown table.
pub fn stall_summary_md(buf: &EventBuffer, title: &str) -> String {
    let mut out = format!("## Stall attribution — {title}\n\n");
    out.push_str("| unit | kind | cycles | busy |");
    for kind in StallKind::ALL {
        let _ = write!(out, " {} |", kind.label().replace('_', "-"));
    }
    out.push_str(" dominant |\n|---|---|---:|---:|---:|---:|---:|---:|---|\n");
    for b in buf.breakdowns() {
        if b.cycles == 0 {
            continue;
        }
        let _ = write!(
            out,
            "| {} | {} | {} | {:.1}% |",
            b.name,
            b.kind.label(),
            b.cycles,
            100.0 * b.busy_frac()
        );
        for kind in StallKind::ALL {
            let _ = write!(out, " {:.1}% |", 100.0 * b.stall_frac(kind));
        }
        let _ = writeln!(out, " {} |", b.dominant());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::UnitKind;
    use crate::sink::{emit_dram, TraceSink};

    fn sample_buffer() -> EventBuffer {
        let mut b = EventBuffer::new();
        let u = b.unit("conv1", UnitKind::Layer);
        let v = b.unit("conv2", UnitKind::Layer);
        for (i, busy) in [90.0, 85.0, 10.0].iter().enumerate() {
            b.emit(TraceEvent::Compute {
                unit: u,
                t: i as u64 * 100,
                cycles: 100,
                busy: *busy,
                stalls: [100.0 - busy, 0.0, 0.0, 0.0],
            });
        }
        b.emit(TraceEvent::Compute {
            unit: v,
            t: 0,
            cycles: 300,
            busy: 30.0,
            stalls: [0.0, 0.0, 270.0, 0.0],
        });
        emit_dram(&mut b, u, 0, 100, DramClass::WeightRead, 256.0, 128.0);
        emit_dram(&mut b, v, 0, 100, DramClass::WeightRead, 128.0, 64.0);
        emit_dram(&mut b, v, 100, 100, DramClass::ActivationWrite, 64.0, 64.0);
        b
    }

    /// A tiny structural JSON validator: balanced braces/brackets outside
    /// strings, and no trailing comma before a closer.
    fn assert_json_shaped(s: &str) {
        let mut depth: i64 = 0;
        let mut in_str = false;
        let mut esc = false;
        let mut prev_non_ws = ' ';
        for c in s.chars() {
            if in_str {
                if esc {
                    esc = false;
                } else if c == '\\' {
                    esc = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => {
                    assert_ne!(prev_non_ws, ',', "trailing comma before closer");
                    depth -= 1;
                    assert!(depth >= 0, "unbalanced closer");
                }
                _ => {}
            }
            if !c.is_whitespace() {
                prev_non_ws = c;
            }
        }
        assert_eq!(depth, 0, "unbalanced JSON");
        assert!(!in_str, "unterminated string");
    }

    #[test]
    fn perfetto_export_is_json_shaped_and_merges_runs() {
        let b = sample_buffer();
        let json = perfetto_json(&b, "demo on G58");
        assert_json_shaped(&json);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("demo on G58"));
        assert!(json.contains("conv1 [layer]"));
        // conv1's first two intervals are both dominant-busy and
        // contiguous: they merge into one 200-cycle slice.
        assert!(json.contains(
            r#""name":"busy","cat":"compute","ph":"X","pid":1,"tid":1,"ts":0,"dur":200"#
        ));
        // The third flips to input_starved.
        assert!(json.contains(r#""name":"input_starved"#));
        // conv2 is dram_throttled-dominant.
        assert!(json.contains(r#""name":"dram_throttled"#));
        // DRAM counters aggregate the two t=0 weight clients.
        assert!(json.contains(r#""name":"dram.weight_read","ph":"C","pid":1,"tid":0,"ts":0"#));
        assert!(json.contains(r#""granted_B_per_cycle":1.92"#)); // (128+64)/100
        assert!(json.contains(r#""name":"dram.act_write"#));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
        assert_eq!(num(f64::NAN), "0");
        assert_eq!(num(1.5), "1.5");
    }

    #[test]
    fn csv_has_one_row_per_compute_event() {
        let b = sample_buffer();
        let csv = timeline_csv(&b);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines[0],
            "t,unit,kind,cycles,busy,input_starved,output_blocked,dram_throttled,merge_bound"
        );
        // 4 compute events; DRAM events are not rows.
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[1], "0,conv1,layer,100,90,10,0,0,0");
        assert!(lines[4].starts_with("0,conv2,layer,300,30,"));
        assert_eq!(csv_field("a,b"), "\"a,b\"");
    }

    #[test]
    fn markdown_summary_lists_units_with_percentages() {
        let b = sample_buffer();
        let md = stall_summary_md(&b, "demo");
        assert!(md.contains("## Stall attribution — demo"));
        assert!(md.contains("| conv1 | layer | 300 | 61.7% |"));
        assert!(md.contains("| conv2 | layer | 300 | 10.0% |"));
        assert!(md.contains("dram_throttled |"));
    }
}
