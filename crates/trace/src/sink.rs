//! Trace sinks: where models deliver their events.
//!
//! [`TraceSink`] is the interface the memory harness and the accelerator
//! models are threaded with. Two implementations ship here:
//!
//! - [`NullSink`] — the default. [`TraceSink::enabled`] returns `false`,
//!   so instrumented code skips event construction entirely and the
//!   simulated numbers (and their float rounding) are untouched; this is
//!   what keeps the bench goldens bit-identical whether or not a caller
//!   ever heard of tracing.
//! - [`EventBuffer`] — an in-memory recorder that keeps the unit table
//!   and the full event stream, and derives the per-unit
//!   [`StallBreakdown`]s and DRAM totals the exporters consume.

use crate::breakdown::{DramTotals, StallBreakdown};
use crate::event::{DramClass, TraceEvent, UnitId, UnitKind};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Receiver for trace events. See the [module docs](self).
pub trait TraceSink {
    /// Whether events will actually be recorded. Emitters consult this
    /// before doing any attribution work, so a disabled sink costs one
    /// branch per interval.
    fn enabled(&self) -> bool {
        true
    }

    /// Registers a unit (one timeline) and returns its handle. Disabled
    /// sinks return [`UnitId::NONE`].
    fn unit(&mut self, name: &str, kind: UnitKind) -> UnitId;

    /// Delivers one event.
    fn emit(&mut self, event: TraceEvent);

    /// Advises the sink that about `additional` more events are coming
    /// (e.g. one scheduler interval's worth), so buffering sinks can
    /// reserve instead of growing mid-stream. Default: no-op.
    fn hint_events(&mut self, _additional: usize) {}
}

/// The zero-overhead default sink: records nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn unit(&mut self, _name: &str, _kind: UnitKind) -> UnitId {
        UnitId::NONE
    }

    fn emit(&mut self, _event: TraceEvent) {}
}

/// One registered unit's metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct UnitMeta {
    /// Display name (layer or group name). Interned: units registered
    /// under the same label share one allocation.
    pub name: Arc<str>,
    /// What the unit models.
    pub kind: UnitKind,
}

/// A buffering sink that records the unit table and every event.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EventBuffer {
    units: Vec<UnitMeta>,
    events: Vec<TraceEvent>,
    /// Label interner: repeated registrations of the same name (e.g.
    /// `"c0"` across every group of a sweep) reuse one allocation.
    names: BTreeSet<Arc<str>>,
}

impl EventBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a buffer with pre-reserved space for `units` units and
    /// `events` events.
    pub fn with_capacity(units: usize, events: usize) -> Self {
        Self {
            units: Vec::with_capacity(units),
            events: Vec::with_capacity(events),
            names: BTreeSet::new(),
        }
    }

    /// The registered units, indexed by [`UnitId::index`].
    pub fn units(&self) -> &[UnitMeta] {
        &self.units
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Display name of a unit (`"?"` for [`UnitId::NONE`] or an unknown
    /// id).
    pub fn unit_name(&self, unit: UnitId) -> &str {
        if unit.is_some() {
            self.units
                .get(unit.index())
                .map(|m| &*m.name)
                .unwrap_or("?")
        } else {
            "?"
        }
    }

    /// Aggregates the compute events into one [`StallBreakdown`] per
    /// registered unit (in registration order). Units with no compute
    /// events come back with zero cycles.
    pub fn breakdowns(&self) -> Vec<StallBreakdown> {
        let mut out: Vec<StallBreakdown> = self
            .units
            .iter()
            .enumerate()
            .map(|(i, m)| StallBreakdown::new(UnitId(i as u32), m.name.to_string(), m.kind))
            .collect();
        for ev in &self.events {
            if let TraceEvent::Compute {
                unit,
                cycles,
                busy,
                stalls,
                ..
            } = *ev
            {
                if unit.is_some() && unit.index() < out.len() {
                    out[unit.index()].add(cycles, busy, &stalls);
                }
            }
        }
        out
    }

    /// Sums the DRAM events into per-class demand and grant totals.
    pub fn dram_totals(&self) -> DramTotals {
        let mut totals = DramTotals::default();
        for ev in &self.events {
            if let TraceEvent::Dram {
                class,
                demand,
                granted,
                ..
            } = *ev
            {
                totals.add(class, demand, granted);
            }
        }
        totals
    }

    /// Sum of granted DRAM bytes attributed to `unit`, by class.
    pub fn dram_granted_for(&self, unit: UnitId) -> DramTotals {
        let mut totals = DramTotals::default();
        for ev in &self.events {
            if let TraceEvent::Dram {
                unit: u,
                class,
                demand,
                granted,
                ..
            } = *ev
            {
                if u == unit {
                    totals.add(class, demand, granted);
                }
            }
        }
        totals
    }
}

impl TraceSink for EventBuffer {
    fn unit(&mut self, name: &str, kind: UnitKind) -> UnitId {
        let id = UnitId(self.units.len() as u32);
        let name: Arc<str> = match self.names.get(name) {
            Some(interned) => Arc::clone(interned),
            None => {
                let fresh: Arc<str> = Arc::from(name);
                self.names.insert(Arc::clone(&fresh));
                fresh
            }
        };
        self.units.push(UnitMeta { name, kind });
        id
    }

    fn emit(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    fn hint_events(&mut self, additional: usize) {
        self.events.reserve(additional);
    }
}

/// Convenience: emit one DRAM event on `sink` if it is enabled and any
/// bytes were demanded or granted.
pub fn emit_dram(
    sink: &mut dyn TraceSink,
    unit: UnitId,
    t: u64,
    cycles: u64,
    class: DramClass,
    demand: f64,
    granted: f64,
) {
    if sink.enabled() && (demand > 0.0 || granted > 0.0) {
        sink.emit(TraceEvent::Dram {
            unit,
            t,
            cycles,
            class,
            demand,
            granted,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::StallKind;

    #[test]
    fn null_sink_is_disabled_and_inert() {
        let mut s = NullSink;
        assert!(!s.enabled());
        assert_eq!(s.unit("conv1", UnitKind::Layer), UnitId::NONE);
        s.emit(TraceEvent::Compute {
            unit: UnitId::NONE,
            t: 0,
            cycles: 100,
            busy: 1.0,
            stalls: [0.0; 4],
        });
    }

    #[test]
    fn buffer_registers_units_densely() {
        let mut b = EventBuffer::new();
        let a = b.unit("conv1", UnitKind::Layer);
        let c = b.unit("g0", UnitKind::Group);
        assert_eq!((a, c), (UnitId(0), UnitId(1)));
        assert_eq!(b.unit_name(a), "conv1");
        assert_eq!(b.unit_name(UnitId::NONE), "?");
        assert_eq!(b.units().len(), 2);
        assert!(b.is_empty());
    }

    #[test]
    fn repeated_labels_share_one_interned_allocation() {
        let mut b = EventBuffer::new();
        let ids: Vec<UnitId> = (0..4)
            .map(|g| b.unit(if g % 2 == 0 { "c0" } else { "c1" }, UnitKind::Layer))
            .collect();
        assert_eq!(ids, vec![UnitId(0), UnitId(1), UnitId(2), UnitId(3)]);
        // Same label -> same Arc, not a fresh String per registration.
        assert!(Arc::ptr_eq(&b.units()[0].name, &b.units()[2].name));
        assert!(Arc::ptr_eq(&b.units()[1].name, &b.units()[3].name));
        assert!(!Arc::ptr_eq(&b.units()[0].name, &b.units()[1].name));
        assert_eq!(b.unit_name(ids[2]), "c0");
    }

    #[test]
    fn hint_events_reserves_capacity() {
        let mut b = EventBuffer::with_capacity(2, 8);
        b.hint_events(100);
        let before = b.events.capacity();
        assert!(before >= 100);
        for t in 0..100u64 {
            b.emit(TraceEvent::Compute {
                unit: UnitId(0),
                t,
                cycles: 1,
                busy: 1.0,
                stalls: [0.0; 4],
            });
        }
        assert_eq!(b.events.capacity(), before);
        assert_eq!(b.len(), 100);
        // NullSink accepts hints and stays inert.
        NullSink.hint_events(1 << 20);
    }

    #[test]
    fn breakdowns_aggregate_per_unit() {
        let mut b = EventBuffer::new();
        let u = b.unit("conv1", UnitKind::Layer);
        let v = b.unit("conv2", UnitKind::Layer);
        for t in [0u64, 100] {
            b.emit(TraceEvent::Compute {
                unit: u,
                t,
                cycles: 100,
                busy: 60.0,
                stalls: [10.0, 0.0, 30.0, 0.0],
            });
        }
        b.emit(TraceEvent::Compute {
            unit: v,
            t: 0,
            cycles: 100,
            busy: 100.0,
            stalls: [0.0; 4],
        });
        let bd = b.breakdowns();
        assert_eq!(bd.len(), 2);
        assert_eq!(bd[0].cycles, 200);
        assert_eq!(bd[0].busy, 120.0);
        assert_eq!(bd[0].stalls[StallKind::InputStarved.index()], 20.0);
        assert_eq!(bd[0].stalls[StallKind::DramThrottled.index()], 60.0);
        assert_eq!(bd[0].accounted(), 200.0);
        assert_eq!(bd[1].cycles, 100);
        assert_eq!(bd[1].busy_frac(), 1.0);
    }

    #[test]
    fn dram_totals_sum_by_class() {
        let mut b = EventBuffer::new();
        let u = b.unit("conv1", UnitKind::Layer);
        emit_dram(&mut b, u, 0, 100, DramClass::WeightRead, 100.0, 80.0);
        emit_dram(&mut b, u, 100, 100, DramClass::WeightRead, 20.0, 20.0);
        emit_dram(&mut b, u, 0, 100, DramClass::ActivationRead, 50.0, 50.0);
        emit_dram(&mut b, u, 0, 100, DramClass::ActivationWrite, 30.0, 30.0);
        // Zero demand+grant events are dropped.
        emit_dram(&mut b, u, 0, 100, DramClass::ActivationWrite, 0.0, 0.0);
        let t = b.dram_totals();
        assert_eq!(t.granted(DramClass::WeightRead), 100.0);
        assert_eq!(t.demand(DramClass::WeightRead), 120.0);
        assert_eq!(t.granted(DramClass::ActivationRead), 50.0);
        assert_eq!(t.granted(DramClass::ActivationWrite), 30.0);
        assert_eq!(t.total_granted(), 180.0);
        assert_eq!(b.len(), 4);
        assert_eq!(b.dram_granted_for(u).total_granted(), 180.0);
        assert_eq!(b.dram_granted_for(UnitId(9)).total_granted(), 0.0);
    }
}
