//! The trace event model: units, stall taxonomy, and the two event kinds
//! every accelerator model emits.
//!
//! A *unit* is one timeline in the trace — a pipeline stage (layer
//! context) or a whole group. Models register units on a
//! [`TraceSink`](crate::sink::TraceSink) and then emit interval-scoped
//! events against them:
//!
//! - [`TraceEvent::Compute`]: one unit's occupancy over one interval,
//!   split into effectual-busy time plus the four-way stall taxonomy of
//!   [`StallKind`]. Within every event `busy + stalls` sums to the
//!   interval length, so per-unit aggregates conserve cycles by
//!   construction (the same discipline as the per-layer `RunMetrics`
//!   breakdowns).
//! - [`TraceEvent::Dram`]: one memory client's posted demand versus the
//!   bytes the DRAM actually granted it this interval, classed by
//!   direction and data kind. Granted bytes aggregate exactly to the
//!   run's traffic totals because they are the *same* grants the memory
//!   harness accumulates into `RunMetrics`.

use std::fmt;

/// Handle to one registered trace unit (a timeline).
///
/// Unit ids are dense indices assigned by the sink at registration; the
/// reserved [`UnitId::NONE`] tags events (or memory clients) that belong
/// to no registered unit, e.g. when tracing is disabled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UnitId(pub u32);

impl UnitId {
    /// The "no unit" sentinel returned by disabled sinks.
    pub const NONE: UnitId = UnitId(u32::MAX);

    /// Whether this id refers to a real registered unit.
    pub fn is_some(self) -> bool {
        self != Self::NONE
    }

    /// The id as a dense index.
    ///
    /// # Panics
    ///
    /// Panics on [`UnitId::NONE`].
    pub fn index(self) -> usize {
        assert!(self.is_some(), "UnitId::NONE has no index");
        self.0 as usize
    }
}

impl fmt::Display for UnitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_some() {
            write!(f, "u{}", self.0)
        } else {
            f.write_str("u-none")
        }
    }
}

/// What a registered unit models.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnitKind {
    /// One layer's execution context (a pipeline stage).
    Layer,
    /// A whole pipeline / fusion group.
    Group,
}

impl UnitKind {
    /// Stable lowercase label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            UnitKind::Layer => "layer",
            UnitKind::Group => "group",
        }
    }
}

/// Why a unit was not doing effectual work during some slice of an
/// interval.
///
/// The taxonomy follows the paper's bottleneck vocabulary (Sec. VI):
/// pipeline stages *starve* when the upstream wavefront has not arrived,
/// *block* when downstream queues exert backpressure, wait on *DRAM*
/// for weights or writeback drain, and lose issue slots to the
/// *merge/intersection* machinery (including scheduler-granularity
/// fragmentation and shared-array contention, which are likewise
/// compute-side losses).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StallKind {
    /// Upstream has not produced the input wavefront this unit needs
    /// (also: the unit drained early and has no work left in its group).
    InputStarved,
    /// Downstream backpressure: the consumer's decoupling queue budget
    /// (`ahead_cols`) forbids running further ahead.
    OutputBlocked,
    /// Waiting on DRAM: weights not yet resident, input stream behind,
    /// or produced output still draining to memory.
    DramThrottled,
    /// Compute-side loss: merge/intersection overhead while active, plus
    /// scheduler fragmentation and shared-MAC-array contention.
    MergeBound,
}

impl StallKind {
    /// All four kinds, in canonical (export-column) order.
    pub const ALL: [StallKind; 4] = [
        StallKind::InputStarved,
        StallKind::OutputBlocked,
        StallKind::DramThrottled,
        StallKind::MergeBound,
    ];

    /// Dense index of this kind inside per-event stall arrays.
    pub fn index(self) -> usize {
        match self {
            StallKind::InputStarved => 0,
            StallKind::OutputBlocked => 1,
            StallKind::DramThrottled => 2,
            StallKind::MergeBound => 3,
        }
    }

    /// Stable snake_case label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            StallKind::InputStarved => "input_starved",
            StallKind::OutputBlocked => "output_blocked",
            StallKind::DramThrottled => "dram_throttled",
            StallKind::MergeBound => "merge_bound",
        }
    }
}

impl fmt::Display for StallKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Accounting class of one DRAM demand/grant event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DramClass {
    /// Compressed (or dense, for Fused-Layer) filter reads.
    WeightRead,
    /// Input-activation reads.
    ActivationRead,
    /// Output-activation writeback.
    ActivationWrite,
}

impl DramClass {
    /// All three classes, in canonical order.
    pub const ALL: [DramClass; 3] = [
        DramClass::WeightRead,
        DramClass::ActivationRead,
        DramClass::ActivationWrite,
    ];

    /// Stable snake_case label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            DramClass::WeightRead => "weight_read",
            DramClass::ActivationRead => "act_read",
            DramClass::ActivationWrite => "act_write",
        }
    }
}

impl fmt::Display for DramClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One traced observation. See the [module docs](self) for the model.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// One unit's occupancy over `[t, t + cycles)`: `busy` effectual
    /// cycles plus the four stall components, indexed by
    /// [`StallKind::index`]. Emitters keep `busy + stalls.sum()` equal to
    /// `cycles` (to float rounding).
    Compute {
        /// The unit this slice belongs to.
        unit: UnitId,
        /// Interval start, in cycles since the start of the network run.
        t: u64,
        /// Interval length in cycles.
        cycles: u64,
        /// Effectual-work cycles inside the interval.
        busy: f64,
        /// Stall cycles by [`StallKind::index`].
        stalls: [f64; 4],
    },
    /// One memory client's interval on the DRAM interface: what it asked
    /// for versus what the arbitrated grant gave it.
    Dram {
        /// The unit whose stream this client serves.
        unit: UnitId,
        /// Interval start, in cycles since the start of the network run.
        t: u64,
        /// Interval length in cycles.
        cycles: u64,
        /// Traffic class of the stream.
        class: DramClass,
        /// Bytes the client wanted to move this interval.
        demand: f64,
        /// Bytes the DRAM granted (what traffic accounting accumulates).
        granted: f64,
    },
}

impl TraceEvent {
    /// The unit the event is attributed to.
    pub fn unit(&self) -> UnitId {
        match *self {
            TraceEvent::Compute { unit, .. } | TraceEvent::Dram { unit, .. } => unit,
        }
    }

    /// The interval start cycle.
    pub fn t(&self) -> u64 {
        match *self {
            TraceEvent::Compute { t, .. } | TraceEvent::Dram { t, .. } => t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_kind_indices_are_dense_and_ordered() {
        for (i, k) in StallKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        let labels: Vec<&str> = StallKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(
            labels,
            vec![
                "input_starved",
                "output_blocked",
                "dram_throttled",
                "merge_bound"
            ]
        );
    }

    #[test]
    fn unit_id_sentinel_behaves() {
        assert!(!UnitId::NONE.is_some());
        assert!(UnitId(0).is_some());
        assert_eq!(UnitId(3).index(), 3);
        assert_eq!(UnitId(3).to_string(), "u3");
        assert_eq!(UnitId::NONE.to_string(), "u-none");
    }

    #[test]
    #[should_panic(expected = "no index")]
    fn none_unit_has_no_index() {
        UnitId::NONE.index();
    }

    #[test]
    fn event_accessors() {
        let e = TraceEvent::Dram {
            unit: UnitId(2),
            t: 400,
            cycles: 100,
            class: DramClass::WeightRead,
            demand: 10.0,
            granted: 5.0,
        };
        assert_eq!(e.unit(), UnitId(2));
        assert_eq!(e.t(), 400);
    }
}
