//! Event tracing, stall attribution, and timeline export for the
//! ISOSceles accelerator models.
//!
//! The crate is the observability layer of the simulator: accelerator
//! models are threaded with a [`TraceSink`] and, when one is enabled,
//! emit interval-scoped [`TraceEvent`]s — per-unit compute occupancy
//! split into effectual-busy time plus a four-way stall taxonomy
//! ([`StallKind`]), and per-client DRAM demand versus arbitrated grant
//! ([`DramClass`]). The default [`NullSink`] is disabled, so untraced
//! runs skip all event construction and stay bit-identical to the
//! pre-trace simulator.
//!
//! Recorded streams land in an [`EventBuffer`], which aggregates them
//! into per-unit [`StallBreakdown`]s (conserving `busy + Σ stalls ==
//! cycles`) and [`DramTotals`] (granted bytes equal the run's traffic
//! accounting). Three exporters render a buffer for humans:
//! [`export::perfetto_json`] (Chrome/Perfetto trace-event JSON,
//! 1 cycle = 1 µs), [`export::timeline_csv`], and
//! [`export::stall_summary_md`].

#![warn(missing_docs)]

pub mod breakdown;
pub mod event;
pub mod export;
pub mod sink;

pub use breakdown::{dominant_state, DramTotals, StallBreakdown};
pub use event::{DramClass, StallKind, TraceEvent, UnitId, UnitKind};
pub use sink::{emit_dram, EventBuffer, NullSink, TraceSink, UnitMeta};
