//! Per-unit aggregation of the event stream: stall breakdowns and DRAM
//! demand/grant totals.
//!
//! [`StallBreakdown`] carries the conservation invariant at the heart of
//! the trace subsystem: for every traced unit, `busy + Σ stalls` equals
//! the unit's recorded cycles (to float rounding), exactly mirroring the
//! per-layer `RunMetrics` discipline where breakdowns must sum back to
//! totals. A trace that drops or double-counts an interval is visible as
//! a conservation violation, not as a silently wrong timeline.

use crate::event::{DramClass, StallKind, UnitId, UnitKind};

/// Aggregated occupancy of one unit over a whole run.
#[derive(Clone, Debug, PartialEq)]
pub struct StallBreakdown {
    /// The unit's id in its buffer.
    pub unit: UnitId,
    /// The unit's display name.
    pub name: String,
    /// What the unit models.
    pub kind: UnitKind,
    /// Total cycles covered by the unit's compute events.
    pub cycles: u64,
    /// Effectual-work cycles.
    pub busy: f64,
    /// Stall cycles by [`StallKind::index`].
    pub stalls: [f64; 4],
}

impl StallBreakdown {
    /// An empty breakdown for `unit`.
    pub fn new(unit: UnitId, name: String, kind: UnitKind) -> Self {
        Self {
            unit,
            name,
            kind,
            cycles: 0,
            busy: 0.0,
            stalls: [0.0; 4],
        }
    }

    /// Folds one compute event into the aggregate.
    pub fn add(&mut self, cycles: u64, busy: f64, stalls: &[f64; 4]) {
        self.cycles += cycles;
        self.busy += busy;
        for (acc, s) in self.stalls.iter_mut().zip(stalls) {
            *acc += s;
        }
    }

    /// Total stall cycles across the taxonomy.
    pub fn stall_total(&self) -> f64 {
        self.stalls.iter().sum()
    }

    /// `busy + Σ stalls` — equals [`cycles`](Self::cycles) (to float
    /// rounding) for any conserving emitter.
    pub fn accounted(&self) -> f64 {
        self.busy + self.stall_total()
    }

    /// Busy fraction of the unit's cycles (0 when the unit never ran).
    pub fn busy_frac(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.busy / self.cycles as f64
        }
    }

    /// Fraction of the unit's cycles lost to `kind`.
    pub fn stall_frac(&self, kind: StallKind) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.stalls[kind.index()] / self.cycles as f64
        }
    }

    /// The dominant state label: `"busy"` or the largest stall kind.
    /// Ties break toward `busy`, then taxonomy order.
    pub fn dominant(&self) -> &'static str {
        dominant_state(self.busy, &self.stalls)
    }
}

/// The dominant state of a busy/stall split: `"busy"` if busy is at
/// least every stall component, else the largest stall's label (first in
/// taxonomy order on ties).
pub fn dominant_state(busy: f64, stalls: &[f64; 4]) -> &'static str {
    let mut best = "busy";
    let mut best_v = busy;
    for kind in StallKind::ALL {
        let v = stalls[kind.index()];
        if v > best_v {
            best = kind.label();
            best_v = v;
        }
    }
    best
}

/// Per-class DRAM demand and grant totals.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DramTotals {
    demand: [f64; 3],
    granted: [f64; 3],
}

impl DramTotals {
    /// Folds one demand/grant observation into the totals.
    pub fn add(&mut self, class: DramClass, demand: f64, granted: f64) {
        let i = class as usize;
        self.demand[i] += demand;
        self.granted[i] += granted;
    }

    /// Bytes demanded under `class`.
    pub fn demand(&self, class: DramClass) -> f64 {
        self.demand[class as usize]
    }

    /// Bytes granted under `class`.
    pub fn granted(&self, class: DramClass) -> f64 {
        self.granted[class as usize]
    }

    /// Granted bytes over all classes and directions.
    pub fn total_granted(&self) -> f64 {
        self.granted.iter().sum()
    }

    /// Granted activation bytes, read plus write (the `act_traffic`
    /// convention of `RunMetrics`).
    pub fn act_granted(&self) -> f64 {
        self.granted(DramClass::ActivationRead) + self.granted(DramClass::ActivationWrite)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_accumulates_and_fractions() {
        let mut b = StallBreakdown::new(UnitId(0), "conv".into(), UnitKind::Layer);
        b.add(100, 40.0, &[10.0, 20.0, 30.0, 0.0]);
        b.add(100, 60.0, &[0.0, 0.0, 40.0, 0.0]);
        assert_eq!(b.cycles, 200);
        assert_eq!(b.busy, 100.0);
        assert_eq!(b.stall_total(), 100.0);
        assert_eq!(b.accounted(), 200.0);
        assert_eq!(b.busy_frac(), 0.5);
        assert_eq!(b.stall_frac(StallKind::DramThrottled), 0.35);
        assert_eq!(b.dominant(), "busy");
    }

    #[test]
    fn empty_breakdown_has_zero_fractions() {
        let b = StallBreakdown::new(UnitId(0), "x".into(), UnitKind::Group);
        assert_eq!(b.busy_frac(), 0.0);
        assert_eq!(b.stall_frac(StallKind::MergeBound), 0.0);
        assert_eq!(b.dominant(), "busy");
    }

    #[test]
    fn dominant_prefers_busy_on_ties_and_finds_max_stall() {
        assert_eq!(dominant_state(10.0, &[10.0, 10.0, 10.0, 10.0]), "busy");
        assert_eq!(
            dominant_state(1.0, &[0.0, 5.0, 9.0, 2.0]),
            StallKind::DramThrottled.label()
        );
        assert_eq!(
            dominant_state(0.0, &[4.0, 4.0, 0.0, 0.0]),
            StallKind::InputStarved.label()
        );
    }

    #[test]
    fn dram_totals_index_by_class() {
        let mut t = DramTotals::default();
        t.add(DramClass::WeightRead, 10.0, 8.0);
        t.add(DramClass::ActivationRead, 4.0, 4.0);
        t.add(DramClass::ActivationWrite, 2.0, 1.0);
        assert_eq!(t.demand(DramClass::WeightRead), 10.0);
        assert_eq!(t.granted(DramClass::WeightRead), 8.0);
        assert_eq!(t.act_granted(), 5.0);
        assert_eq!(t.total_granted(), 13.0);
    }
}
