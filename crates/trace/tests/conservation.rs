//! Cycle-conservation and traffic-conservation checks over the full
//! evaluation matrix: every suite workload on every accelerator model.
//!
//! Two invariants make the stall attribution trustworthy:
//!
//! 1. **Cycle conservation** — for every traced unit, `busy` plus the
//!    four stall buckets accounts for exactly the unit's recorded
//!    cycles (relative 1e-6, the buckets are floats).
//! 2. **Traffic conservation** — the granted bytes recorded on the DRAM
//!    events sum to the same weight / activation traffic the metrics
//!    report, so the timeline's bandwidth counters and the headline
//!    numbers cannot drift apart. The per-interval accumulation order
//!    is identical on both paths; only the cross-group reassociation
//!    differs, hence the tight relative tolerance.
//!
//! A third check pins the observer effect at zero: tracing a run
//! returns metrics equal to the untraced run.

use isos_baselines::{FusedLayerConfig, IsoscelesSingleConfig, SpartenConfig};
use isos_nn::models::{suite_workload, SUITE_IDS};
use isos_trace::EventBuffer;
use isosceles::{Accelerator, IsoscelesConfig};

const SEED: u64 = 0xC0FFEE;

fn models() -> Vec<Box<dyn Accelerator>> {
    vec![
        Box::new(IsoscelesConfig::default()),
        Box::new(IsoscelesSingleConfig::default()),
        Box::new(SpartenConfig::default()),
        Box::new(FusedLayerConfig::default()),
    ]
}

/// `|a - b|` within `rel` of the magnitude (or within `rel` absolutely,
/// for values near zero).
fn close(a: f64, b: f64, rel: f64) -> bool {
    (a - b).abs() <= rel * a.abs().max(b.abs()).max(1.0)
}

#[test]
fn busy_plus_stalls_accounts_for_every_unit_cycle() {
    for id in SUITE_IDS {
        let w = suite_workload(id, SEED);
        for accel in models() {
            let mut buf = EventBuffer::new();
            accel.simulate_traced(&w.network, SEED, &mut buf);
            assert!(!buf.is_empty(), "{}/{id}: no events recorded", accel.name());
            for b in buf.breakdowns() {
                let cycles = b.cycles as f64;
                assert!(
                    close(b.accounted(), cycles, 1e-6),
                    "{}/{id} unit {}: busy {} + stalls {:?} = {} != cycles {}",
                    accel.name(),
                    b.name,
                    b.busy,
                    b.stalls,
                    b.accounted(),
                    cycles
                );
                assert!(
                    b.busy >= -1e-9 && b.stalls.iter().all(|s| *s >= -1e-9),
                    "{}/{id} unit {}: negative occupancy ({} / {:?})",
                    accel.name(),
                    b.name,
                    b.busy,
                    b.stalls
                );
            }
        }
    }
}

#[test]
fn dram_grant_events_sum_to_the_reported_traffic() {
    use isos_trace::DramClass;
    for id in SUITE_IDS {
        let w = suite_workload(id, SEED);
        for accel in models() {
            let mut buf = EventBuffer::new();
            let m = accel.simulate_traced(&w.network, SEED, &mut buf);
            let totals = buf.dram_totals();
            let weight = totals.granted(DramClass::WeightRead);
            assert!(
                close(weight, m.total.weight_traffic, 1e-9),
                "{}/{id}: traced weight grants {} != metrics {}",
                accel.name(),
                weight,
                m.total.weight_traffic
            );
            assert!(
                close(totals.act_granted(), m.total.act_traffic, 1e-9),
                "{}/{id}: traced activation grants {} != metrics {}",
                accel.name(),
                totals.act_granted(),
                m.total.act_traffic
            );
        }
    }
}

/// The suite at the paper-default configuration never fills the
/// decoupling queues, so `OutputBlocked` stays zero there; shrinking the
/// per-lane queue budget makes consumer backpressure bind and the
/// attribution must both fire and keep conserving cycles.
#[test]
fn output_blocked_fires_under_tight_queues_and_still_conserves() {
    use isos_trace::StallKind;
    let w = suite_workload("M75", SEED);
    let cfg = IsoscelesConfig {
        queue_bytes_per_lane: 256,
        ..Default::default()
    };
    let mut buf = EventBuffer::new();
    cfg.simulate_traced(&w.network, SEED, &mut buf);
    let blocked: f64 = buf
        .breakdowns()
        .iter()
        .map(|b| b.stalls[StallKind::OutputBlocked.index()])
        .sum();
    assert!(
        blocked > 0.0,
        "tight queues must surface output-blocked stalls, got {blocked}"
    );
    for b in buf.breakdowns() {
        assert!(
            close(b.accounted(), b.cycles as f64, 1e-6),
            "unit {}: accounted {} != cycles {}",
            b.name,
            b.accounted(),
            b.cycles
        );
    }
}

#[test]
fn tracing_does_not_perturb_the_metrics() {
    for id in SUITE_IDS {
        let w = suite_workload(id, SEED);
        for accel in models() {
            let untraced = accel.simulate(&w.network, SEED);
            let mut buf = EventBuffer::new();
            let traced = accel.simulate_traced(&w.network, SEED, &mut buf);
            assert_eq!(
                traced,
                untraced,
                "{}/{id}: traced metrics diverged",
                accel.name()
            );
        }
    }
}
