//! Baseline accelerator models for the ISOSceles reproduction.
//!
//! The paper compares ISOSceles against two accelerators (Sec. V) plus one
//! ablation, all re-implemented here from their papers' dataflow
//! descriptions and sized to the same MAC count and memory bandwidth:
//!
//! - [`sparten`]: SparTen, the state-of-the-art sparse single-layer
//!   accelerator (output-stationary, bitmask intersection), enhanced with
//!   GoSPA's activation filtering (Table III configuration);
//! - [`fused_layer`]: Fused-Layer, the dense inter-layer-pipelining
//!   accelerator (tiled dataflow with growing input halos, 2.5 MB filter
//!   buffer);
//! - [`single`]: ISOSceles-single — IS-OS hardware run layer by layer
//!   (Fig. 18 ablation).
//!
//! Every baseline is a config struct implementing
//! [`isosceles::accel::Accelerator`], so the bench suite drives them
//! uniformly through trait objects.
//!
//! # Examples
//!
//! ```
//! use isos_baselines::{FusedLayerConfig, SpartenConfig};
//! use isosceles::accel::Accelerator;
//! let net = isos_nn::models::googlenet_inception3a(0.58, 1);
//! let ft = FusedLayerConfig::default().simulate(&net, 1);
//! let sp = SpartenConfig::default().simulate(&net, 1);
//! assert!(ft.total.cycles > 0 && sp.total.cycles > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fused_layer;
pub mod single;
pub mod sparten;

pub use fused_layer::{fused_groups, FusedLayerConfig};
pub use single::IsoscelesSingleConfig;
pub use sparten::SpartenConfig;

// Description-referenceable closed forms: the declarative-architecture
// interpreter in `isos-explore` lowers onto these exact functions.
pub use fused_layer::{group_metrics as fused_group_metrics, FusedGroupRun};
pub use sparten::layer_metrics as sparten_layer_metrics;
