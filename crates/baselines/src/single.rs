//! ISOSceles-single: the IS-OS dataflow without inter-layer pipelining.
//!
//! The Fig. 18 ablation: same hardware, same dataflow, but every layer runs
//! as its own "pipeline" of one, spilling activations between layers. The
//! gap between this and SparTen isolates the IS-OS dataflow's benefit; the
//! gap between this and full ISOSceles isolates inter-layer pipelining's.

use isos_nn::graph::Network;
use isos_trace::TraceSink;
use isosceles::accel::{stable_key, Accelerator};
use isosceles::arch::{run_network, run_network_traced};
use isosceles::mapping::ExecMode;
use isosceles::metrics::NetworkMetrics;
use isosceles::IsoscelesConfig;
use serde::{Deserialize, Serialize};

/// ISOSceles hardware constrained to layer-by-layer execution.
///
/// A newtype over [`IsoscelesConfig`]: identical Table I hardware, but the
/// mapper is forced into [`ExecMode::SingleLayer`]. Kept distinct from the
/// pipelined model so the two register as different accelerators (with
/// different cache keys) in the suite engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct IsoscelesSingleConfig(pub IsoscelesConfig);

impl Accelerator for IsoscelesSingleConfig {
    fn name(&self) -> &str {
        "isosceles-single"
    }

    fn cache_key(&self) -> u64 {
        stable_key(Accelerator::name(self), self)
    }

    fn simulate(&self, net: &Network, seed: u64) -> NetworkMetrics {
        run_network(net, &self.0, ExecMode::SingleLayer, seed)
    }

    fn simulate_traced(
        &self,
        net: &Network,
        seed: u64,
        sink: &mut dyn TraceSink,
    ) -> NetworkMetrics {
        run_network_traced(net, &self.0, ExecMode::SingleLayer, seed, sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isos_nn::models::resnet50;
    use isosceles::mapping::ExecMode;

    #[test]
    fn single_mode_has_one_weighted_layer_per_group() {
        let net = resnet50(0.96, 1);
        let r = IsoscelesSingleConfig::default().simulate(&net, 1);
        // Adds fuse into the conv feeding them, so groups number fewer
        // than layers but at least one per conv/pool/FC.
        let adds = net
            .nodes()
            .iter()
            .filter(|n| matches!(n.layer.kind, isos_nn::layer::LayerKind::Add))
            .count();
        assert_eq!(r.groups.len(), net.len() - adds);
    }

    #[test]
    fn pipelining_beats_single_on_r96() {
        // The headline Fig. 18 relationship, at network scale.
        let net = resnet50(0.96, 1);
        let cfg = IsoscelesConfig::default();
        let single = IsoscelesSingleConfig(cfg).simulate(&net, 1);
        let full = run_network(&net, &cfg, ExecMode::Pipelined, 1);
        assert!(
            full.total.cycles < single.total.cycles,
            "full {} vs single {}",
            full.total.cycles,
            single.total.cycles
        );
        assert!(full.total.total_traffic() < single.total.total_traffic());
    }

    #[test]
    fn trait_impl_is_single_layer_run_network() {
        // The trait impl must be exactly `run_network` in SingleLayer mode
        // on the wrapped hardware config (formerly asserted by the
        // deprecated free-function compat test).
        let net = resnet50(0.9, 1);
        let cfg = IsoscelesConfig::default();
        let via_trait = IsoscelesSingleConfig(cfg).simulate(&net, 7);
        let direct = run_network(&net, &cfg, ExecMode::SingleLayer, 7);
        assert_eq!(via_trait, direct);
    }

    #[test]
    fn single_config_key_differs_from_pipelined() {
        // Same underlying hardware struct, different model identity.
        let cfg = IsoscelesConfig::default();
        assert_ne!(
            IsoscelesSingleConfig(cfg).cache_key(),
            Accelerator::cache_key(&cfg)
        );
    }
}
