//! ISOSceles-single: the IS-OS dataflow without inter-layer pipelining.
//!
//! The Fig. 18 ablation: same hardware, same dataflow, but every layer runs
//! as its own "pipeline" of one, spilling activations between layers. The
//! gap between this and SparTen isolates the IS-OS dataflow's benefit; the
//! gap between this and full ISOSceles isolates inter-layer pipelining's.

use isos_nn::graph::Network;
use isosceles::arch::simulate_network;
use isosceles::mapping::ExecMode;
use isosceles::metrics::NetworkMetrics;
use isosceles::IsoscelesConfig;

/// Simulates a network on ISOSceles hardware, layer by layer.
pub fn simulate_isosceles_single(
    net: &Network,
    cfg: &IsoscelesConfig,
    seed: u64,
) -> NetworkMetrics {
    simulate_network(net, cfg, ExecMode::SingleLayer, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use isos_nn::models::resnet50;
    use isosceles::mapping::ExecMode;

    #[test]
    fn single_mode_has_one_weighted_layer_per_group() {
        let net = resnet50(0.96, 1);
        let r = simulate_isosceles_single(&net, &IsoscelesConfig::default(), 1);
        // Adds fuse into the conv feeding them, so groups number fewer
        // than layers but at least one per conv/pool/FC.
        let adds = net
            .nodes()
            .iter()
            .filter(|n| matches!(n.layer.kind, isos_nn::layer::LayerKind::Add))
            .count();
        assert_eq!(r.groups.len(), net.len() - adds);
    }

    #[test]
    fn pipelining_beats_single_on_r96() {
        // The headline Fig. 18 relationship, at network scale.
        let net = resnet50(0.96, 1);
        let cfg = IsoscelesConfig::default();
        let single = simulate_isosceles_single(&net, &cfg, 1);
        let full = simulate_network(&net, &cfg, ExecMode::Pipelined, 1);
        assert!(
            full.total.cycles < single.total.cycles,
            "full {} vs single {}",
            full.total.cycles,
            single.total.cycles
        );
        assert!(full.total.total_traffic() < single.total.total_traffic());
    }
}
