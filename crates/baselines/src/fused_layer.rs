//! Fused-Layer baseline model [Alwani et al., MICRO 2016].
//!
//! Fused-Layer is a *dense* CNN accelerator that pipelines multiple layers
//! with a tiled output-stationary dataflow (paper Fig. 2): output tiles of
//! the last fused layer are produced from progressively larger input tiles
//! of earlier layers, with the overlapping *input halos* recomputed at tile
//! boundaries and growing with pipeline depth. It runs uncompressed data,
//! so it performs all dense MACs and moves dense weights — which is what
//! makes it compute-bound (paper Fig. 15/16: ~100% MAC utilization, <50%
//! bandwidth utilization). Configured per Sec. V: same MACs and bandwidth
//! as ISOSceles, 2.5 MB filter buffer.

use isos_nn::graph::{Network, NodeId};

use isos_sim::harness::{MemClient, MemHarness};
use isos_sim::metrics::{apportion_capped, apportion_cycles, NetworkMetrics, RunMetrics};
use isos_trace::{NullSink, StallKind, TraceEvent, TraceSink, UnitId, UnitKind};
use isosceles::accel::{stable_key, Accelerator};
use serde::{Deserialize, Serialize};

/// Fused-Layer system configuration (paper Sec. V).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FusedLayerConfig {
    /// Total MAC units.
    pub total_macs: usize,
    /// Filter buffer bytes (holds the dense weights of all fused layers).
    pub filter_buffer_bytes: u64,
    /// DRAM bandwidth in bytes/cycle.
    pub dram_bytes_per_cycle: f64,
    /// Output tile edge length in the 2-D tiled dataflow.
    pub tile: usize,
    /// Sustained fraction of peak MAC throughput (dense dataflows come
    /// close to 1.0).
    pub compute_efficiency: f64,
}

impl Default for FusedLayerConfig {
    fn default() -> Self {
        Self {
            total_macs: 4096,
            filter_buffer_bytes: 5 << 19, // 2.5 MB
            dram_bytes_per_cycle: 128.0,
            tile: 32,
            compute_efficiency: 0.95,
        }
    }
}

/// Greedy fusion: consecutive conv layers are fused while their *dense*
/// weights fit the filter buffer; pools/FC are boundaries (the original
/// paper fuses only convolutional stages).
fn fuse_groups(net: &Network, cfg: &FusedLayerConfig) -> Vec<Vec<NodeId>> {
    let mut groups: Vec<Vec<NodeId>> = Vec::new();
    let mut current: Vec<NodeId> = Vec::new();
    let mut current_bytes = 0.0f64;
    for id in 0..net.len() {
        let layer = net.layer(id);
        let fusable = layer.kind.is_pipelineable();
        let w = layer.weight_dense_bytes();
        if !fusable {
            if !current.is_empty() {
                groups.push(std::mem::take(&mut current));
                current_bytes = 0.0;
            }
            groups.push(vec![id]);
            continue;
        }
        if !current.is_empty() && current_bytes + w > cfg.filter_buffer_bytes as f64 {
            groups.push(std::mem::take(&mut current));
            current_bytes = 0.0;
        }
        current.push(id);
        current_bytes += w;
    }
    if !current.is_empty() {
        groups.push(current);
    }
    groups
}

/// One fused group's totals plus its per-layer breakdown.
#[derive(Debug)]
pub struct FusedGroupRun {
    /// Group totals.
    pub metrics: RunMetrics,
    /// Per-member-layer breakdown, in group order; sums to `metrics`.
    pub layers: Vec<(String, RunMetrics)>,
}

/// Simulates one fused group.
///
/// Public as the description-referenceable form of the model: the
/// declarative-architecture interpreter lowers fused-tile descriptions
/// onto exactly this closed form.
pub fn group_metrics(net: &Network, group: &[NodeId], cfg: &FusedLayerConfig) -> FusedGroupRun {
    simulate_group_traced(net, group, cfg, 0, &mut NullSink)
}

/// Internal alias kept for the model's own call sites.
fn simulate_group(net: &Network, group: &[NodeId], cfg: &FusedLayerConfig) -> FusedGroupRun {
    group_metrics(net, group, cfg)
}

/// [`simulate_group`] with trace emission. Every fused layer is one unit
/// spanning the whole group run (the layers execute concurrently in the
/// tile pipeline): its busy time is its ideal MAC share, the dense-array
/// efficiency loss lands on `MergeBound`, waiting for the *other* fused
/// layers' tile wavefronts on `InputStarved`, and whatever the memory
/// bound stretches the group beyond its compute time on `DramThrottled`.
fn simulate_group_traced(
    net: &Network,
    group: &[NodeId],
    cfg: &FusedLayerConfig,
    t0: u64,
    sink: &mut dyn TraceSink,
) -> FusedGroupRun {
    let unit_ids: Vec<UnitId> = group
        .iter()
        .map(|&id| sink.unit(&net.layer(id).name, UnitKind::Layer))
        .collect();
    let mut m = RunMetrics::default();
    let mut mem = MemHarness::new(cfg.dram_bytes_per_cycle);
    let first = net.layer(group[0]);
    let last = net.layer(*group.last().unwrap());

    // Dense traffic: group input once per tile (including the input halo
    // ring each tile re-fetches, which grows with fusion depth — the
    // central cost of Fig. 2), group output once, dense weights of every
    // fused layer once.
    let tile = cfg.tile as f64;
    let group_ext: usize = group
        .iter()
        .map(|&j| net.layer(j).kind.kernel().0.saturating_sub(1))
        .sum();
    let input_halo_factor = ((tile + group_ext as f64) / tile).powi(2);
    let input_bytes = first.in_act_dense_bytes() * input_halo_factor;
    let output_bytes = last.out_act_dense_bytes();
    let weight_bytes: f64 = group
        .iter()
        .map(|&id| net.layer(id).weight_dense_bytes())
        .sum();

    // Dense compute with halo recomputation: a layer at depth d in the
    // group recomputes the halo ring needed by the layers after it. The
    // ring grows by (R-1) per remaining downstream layer (paper Fig. 2).
    let mut macs = 0.0;
    let mut macs_per_layer: Vec<f64> = Vec::with_capacity(group.len());
    for (pos, &id) in group.iter().enumerate() {
        let layer = net.layer(id);
        let ext: usize = group[pos + 1..]
            .iter()
            .map(|&j| net.layer(j).kind.kernel().0.saturating_sub(1))
            .sum();
        let halo_factor = ((tile + ext as f64) / tile).powi(2);
        let layer_macs = layer.dense_macs() * halo_factor;
        macs += layer_macs;
        macs_per_layer.push(layer_macs);
    }
    m.effectual_macs = macs;

    let compute_cycles = macs / (cfg.total_macs as f64 * cfg.compute_efficiency);
    let memory_cycles = (weight_bytes + (input_bytes + output_bytes)) / cfg.dram_bytes_per_cycle;
    m.cycles = compute_cycles.max(memory_cycles).ceil().max(1.0) as u64;
    m.mac_util.add(
        (macs / cfg.total_macs as f64).min(m.cycles as f64),
        m.cycles,
    );
    // One weight stream per fused layer (each layer's filters are its
    // own), the group input entering at the first layer, the group output
    // leaving at the last. `cycles` covers the memory time, so every
    // stream is granted in full and the totals match the posted bytes —
    // splitting the weight stream only refines trace attribution.
    let clients: Vec<MemClient> = group
        .iter()
        .zip(&unit_ids)
        .map(|(&id, &unit)| MemClient::weight(net.layer(id).weight_dense_bytes()).for_unit(unit))
        .chain(std::iter::once(
            MemClient::activation(input_bytes).for_unit(unit_ids[0]),
        ))
        .collect();
    mem.step_traced(
        &clients,
        &[output_bytes],
        &unit_ids[unit_ids.len() - 1..],
        m.cycles,
        t0,
        sink,
    );
    mem.finish(&mut m);
    // 4 local bytes per MAC: a 16-bit partial read-modify-write.
    m.charge_compute_activity(macs, 4.0);

    if sink.enabled() {
        let t_f = m.cycles as f64;
        for (&unit, &layer_macs) in unit_ids.iter().zip(&macs_per_layer) {
            // This layer's ideal busy time and its share of the group's
            // compute time (efficiency loss included).
            let busy = layer_macs / cfg.total_macs as f64;
            let compute_j = layer_macs / (cfg.total_macs as f64 * cfg.compute_efficiency);
            let mut stalls = [0.0; 4];
            stalls[StallKind::MergeBound.index()] = compute_j - busy;
            stalls[StallKind::InputStarved.index()] = compute_cycles - compute_j;
            stalls[StallKind::DramThrottled.index()] = t_f - compute_cycles;
            sink.emit(TraceEvent::Compute {
                unit,
                t: t0,
                cycles: m.cycles,
                busy,
                stalls,
            });
        }
    }

    // Per-layer breakdown: each fused layer moves its own dense weights;
    // the group's input (with its halo) enters at the first layer, the
    // group's output leaves at the last; cycles — a group-shared resource
    // — are apportioned by each layer's (halo-inflated) MACs, and the
    // group's busy MAC/DRAM time by MAC/traffic share, water-filled
    // against the layer's own cycles so the breakdown sums to the group
    // totals.
    let layer_cycles = apportion_cycles(m.cycles, &macs_per_layer);
    let caps: Vec<f64> = layer_cycles.iter().map(|&c| c as f64).collect();
    let traffic_per_layer: Vec<f64> = group
        .iter()
        .enumerate()
        .map(|(pos, &id)| {
            let mut t = net.layer(id).weight_dense_bytes();
            if pos == 0 {
                t += input_bytes;
            }
            if pos == group.len() - 1 {
                t += output_bytes;
            }
            t
        })
        .collect();
    let mac_busy = apportion_capped(m.mac_util.busy(), &macs_per_layer, &caps);
    let bw_busy = apportion_capped(m.bw_util.busy(), &traffic_per_layer, &caps);
    let layers = group
        .iter()
        .zip(&macs_per_layer)
        .zip(&layer_cycles)
        .enumerate()
        .map(|(pos, ((&id, &layer_macs), &cycles))| {
            let layer = net.layer(id);
            let mut lm = RunMetrics {
                cycles,
                weight_traffic: layer.weight_dense_bytes(),
                act_traffic: 0.0,
                effectual_macs: layer_macs,
                ..Default::default()
            };
            if pos == 0 {
                lm.act_traffic += input_bytes;
            }
            if pos == group.len() - 1 {
                lm.act_traffic += output_bytes;
            }
            lm.mac_util.add(mac_busy[pos], cycles);
            lm.bw_util.add(bw_busy[pos], cycles);
            lm.activity.dram_bytes = lm.total_traffic();
            lm.charge_compute_activity(layer_macs, 4.0);
            (layer.name.clone(), lm)
        })
        .collect();
    FusedGroupRun { metrics: m, layers }
}

impl Accelerator for FusedLayerConfig {
    fn name(&self) -> &str {
        "fused-layer"
    }

    fn cache_key(&self) -> u64 {
        stable_key(Accelerator::name(self), self)
    }

    /// Simulates a whole network under Fused-Layer. The model is analytic,
    /// so the seed does not enter.
    fn simulate(&self, net: &Network, _seed: u64) -> NetworkMetrics {
        let mut out = NetworkMetrics::default();
        for group in fuse_groups(net, self) {
            let run = simulate_group(net, &group, self);
            let name = net.layer(group[0]).name.clone();
            out.push_group(name, run.metrics, run.layers);
        }
        out
    }

    /// Fused groups run one after another, so each group's events start
    /// where the previous group's cycles ended.
    fn simulate_traced(
        &self,
        net: &Network,
        _seed: u64,
        sink: &mut dyn TraceSink,
    ) -> NetworkMetrics {
        let mut out = NetworkMetrics::default();
        let mut t0 = 0u64;
        for group in fuse_groups(net, self) {
            let run = simulate_group_traced(net, &group, self, t0, sink);
            t0 += run.metrics.cycles;
            let name = net.layer(group[0]).name.clone();
            out.push_group(name, run.metrics, run.layers);
        }
        out
    }
}

/// Layer ids per fused group, exposed for per-pipeline comparisons
/// (Fig. 18 aggregates baselines over ISOSceles's pipeline extents).
pub fn fused_groups(net: &Network, cfg: &FusedLayerConfig) -> Vec<Vec<NodeId>> {
    fuse_groups(net, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use isos_nn::models::{resnet50, vgg16};

    #[test]
    fn fused_layer_is_compute_bound_on_dense_nets() {
        let net = resnet50(0.96, 1); // sparsity ignored: dense execution
        let r = FusedLayerConfig::default().simulate(&net, 0);
        // Paper Fig. 16: ~100% MAC utilization; Fig. 15: ~47% BW.
        assert!(
            r.total.mac_util.ratio() > 0.8,
            "mac {}",
            r.total.mac_util.ratio()
        );
        assert!(
            r.total.bw_util.ratio() < 0.8,
            "bw {}",
            r.total.bw_util.ratio()
        );
    }

    #[test]
    fn weight_traffic_dominates_activations() {
        // Paper Fig. 14c: Fused-Layer is dominated by (dense) weights.
        let net = resnet50(0.9, 1);
        let r = FusedLayerConfig::default().simulate(&net, 0);
        assert!(r.total.weight_traffic > r.total.act_traffic);
    }

    #[test]
    fn dense_macs_are_performed_regardless_of_sparsity() {
        let sparse = resnet50(0.99, 1);
        let r = FusedLayerConfig::default().simulate(&sparse, 0);
        // Halo recomputation makes MACs >= the dense count.
        assert!(r.total.effectual_macs >= sparse.total_dense_macs());
    }

    #[test]
    fn groups_partition_the_network() {
        let net = vgg16(0.68, 1);
        let groups = fused_groups(&net, &FusedLayerConfig::default());
        let covered: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(covered, net.len());
        // VGG's big conv layers exceed 2.5 MB quickly: several groups.
        assert!(groups.len() > 5);
    }

    #[test]
    fn deeper_fusion_costs_more_halo_macs() {
        let net = resnet50(0.9, 1);
        let cfg = FusedLayerConfig::default();
        let deep = simulate_group(&net, &[2, 3, 4], &cfg);
        let shallow: f64 = [2usize, 3, 4]
            .iter()
            .map(|&id| simulate_group(&net, &[id], &cfg).metrics.effectual_macs)
            .sum();
        assert!(deep.metrics.effectual_macs > shallow);
    }

    #[test]
    fn fused_group_layer_breakdown_conserves_totals() {
        let net = resnet50(0.9, 1);
        let cfg = FusedLayerConfig::default();
        let run = simulate_group(&net, &[2, 3, 4], &cfg);
        assert_eq!(run.layers.len(), 3);
        let mut sum = RunMetrics::default();
        for (_, m) in &run.layers {
            sum.accumulate(m);
        }
        assert_eq!(sum.cycles, run.metrics.cycles);
        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1.0);
        assert!(rel(sum.weight_traffic, run.metrics.weight_traffic) < 1e-6);
        assert!(rel(sum.act_traffic, run.metrics.act_traffic) < 1e-6);
        assert!(rel(sum.effectual_macs, run.metrics.effectual_macs) < 1e-6);
    }
}
