//! SparTen baseline model [Gondimalla et al., MICRO 2019], enhanced with
//! GoSPA's activation filtering [Deng et al., ISCA 2021] as in the paper's
//! methodology (Sec. V).
//!
//! SparTen is a state-of-the-art *single-layer* sparse CNN accelerator: an
//! output-stationary dataflow over bitmask-compressed weights and
//! activations, executed layer by layer. Every layer therefore spills its
//! output activations to DRAM and re-fetches them as the next layer's
//! input; on top of that, the OS dataflow re-reads inputs once per group of
//! output channels that fits the clusters (paper Sec. VI-C: "SparTen's OS
//! dataflow has poor reuse of input activations and may read them multiple
//! times"). Sized per Table III to match ISOSceles's MACs and bandwidth
//! with 5 MB of on-chip storage.

use isos_nn::graph::Network;
use isos_nn::layer::{Layer, LayerKind};
use isos_sim::harness::MemHarness;
use isos_sim::metrics::{NetworkMetrics, RunMetrics};
use isos_trace::{NullSink, StallKind, TraceEvent, TraceSink, UnitKind};
use isosceles::accel::{stable_key, Accelerator};
use serde::{Deserialize, Serialize};

/// SparTen system configuration (paper Table III).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpartenConfig {
    /// Compute clusters.
    pub clusters: usize,
    /// MAC units per cluster.
    pub macs_per_cluster: usize,
    /// Per-cluster buffer bytes.
    pub cluster_buffer_bytes: u64,
    /// Shared filter buffer bytes.
    pub filter_buffer_bytes: u64,
    /// DRAM bandwidth in bytes/cycle.
    pub dram_bytes_per_cycle: f64,
    /// Output channels processed per input pass (the OS-dataflow tiling
    /// width; inputs are re-read once per pass).
    pub k_per_pass: usize,
    /// Fraction of peak MAC throughput sustained on effectual work
    /// (intersection and load-balance overheads).
    pub compute_efficiency: f64,
    /// Whether GoSPA's implicit activation filtering is enabled.
    pub gospa_filtering: bool,
}

impl Default for SpartenConfig {
    fn default() -> Self {
        Self {
            clusters: 64,
            macs_per_cluster: 64,
            cluster_buffer_bytes: 64 << 10,
            filter_buffer_bytes: 1 << 20,
            dram_bytes_per_cycle: 128.0,
            k_per_pass: 64,
            compute_efficiency: 0.35,
            gospa_filtering: true,
        }
    }
}

impl SpartenConfig {
    /// Total MAC units (Table III: 4096).
    pub fn total_macs(&self) -> usize {
        self.clusters * self.macs_per_cluster
    }

    /// Total on-chip storage (Table III: 5 MB).
    pub fn total_sram_bytes(&self) -> u64 {
        self.filter_buffer_bytes + self.clusters as u64 * self.cluster_buffer_bytes
    }
}

/// Bytes of a bitmask-compressed activation tensor: one mask bit per
/// element plus one byte per nonzero (SparTen's format).
///
/// Public so declarative architecture descriptions (`isos-explore`'s
/// `arch` module) reference the exact format constant this model uses.
pub fn bitmask_act_bytes(elements: f64, density: f64) -> f64 {
    elements / 8.0 + elements * density
}

/// Bytes of bitmask-compressed weights (same format as
/// [`bitmask_act_bytes`], over the dense weight volume).
pub fn bitmask_weight_bytes(layer: &Layer) -> f64 {
    let dense = layer.dense_weights() as f64;
    dense / 8.0 + dense * layer.weight_density
}

/// Per-layer traffic and cycles under the SparTen model.
///
/// The closed-form byte totals are pushed through the shared
/// [`MemHarness`] over the layer's modeled cycle count, so the traffic
/// split, bandwidth utilization, and DRAM energy activity are accounted
/// exactly as in the cycle-level models.
///
/// Public as the description-referenceable form of the model: the
/// declarative-architecture interpreter lowers output-stationary
/// descriptions onto exactly this closed form.
pub fn layer_metrics(layer: &Layer, cfg: &SpartenConfig) -> RunMetrics {
    simulate_layer_traced(layer, cfg, 0, &mut NullSink)
}

/// Internal alias kept for the model's own call sites.
fn simulate_layer(layer: &Layer, cfg: &SpartenConfig) -> RunMetrics {
    layer_metrics(layer, cfg)
}

/// [`simulate_layer`] with trace emission: the layer becomes one unit
/// whose single compute event spans its whole modeled run starting at
/// `t0`. Busy is the effectual-MAC share of the span; intersection /
/// load-balance inefficiency (`1 - compute_efficiency`) lands on
/// `MergeBound`; whatever the memory bound adds on top (all of it, for
/// the streaming Add/pool passes) is `DramThrottled`.
fn simulate_layer_traced(
    layer: &Layer,
    cfg: &SpartenConfig,
    t0: u64,
    sink: &mut dyn TraceSink,
) -> RunMetrics {
    let unit = sink.unit(&layer.name, UnitKind::Layer);
    let mut m = RunMetrics::default();
    let mut mem = MemHarness::new(cfg.dram_bytes_per_cycle);
    let in_elems = layer.input.volume() as f64;
    let out_elems = layer.output.volume() as f64;

    let emit_compute = |sink: &mut dyn TraceSink, m: &RunMetrics, busy: f64, stalls: [f64; 4]| {
        if sink.enabled() {
            sink.emit(TraceEvent::Compute {
                unit,
                t: t0,
                cycles: m.cycles,
                busy,
                stalls,
            });
        }
    };

    match layer.kind {
        LayerKind::Add => {
            // The paper fuses the skip connection into the preceding conv:
            // the skip operand is fetched once more from DRAM, the sum is
            // written as that conv's output (already counted there).
            let read = bitmask_act_bytes(in_elems, layer.in_act_density);
            m.cycles = (read / cfg.dram_bytes_per_cycle).ceil() as u64;
            mem.transfer_traced(0.0, read, 0.0, m.cycles.max(1), t0, unit, sink);
            mem.finish(&mut m);
            let mut stalls = [0.0; 4];
            stalls[StallKind::DramThrottled.index()] = m.cycles as f64;
            emit_compute(sink, &m, 0.0, stalls);
            return m;
        }
        LayerKind::MaxPool { .. } | LayerKind::GlobalAvgPool => {
            // Streaming pass: read input, write output.
            let read = bitmask_act_bytes(in_elems, layer.in_act_density);
            let write = bitmask_act_bytes(out_elems, layer.out_act_density);
            m.cycles = ((read + write) / cfg.dram_bytes_per_cycle).ceil() as u64;
            mem.transfer_traced(0.0, read, write, m.cycles.max(1), t0, unit, sink);
            mem.finish(&mut m);
            let mut stalls = [0.0; 4];
            stalls[StallKind::DramThrottled.index()] = m.cycles as f64;
            emit_compute(sink, &m, 0.0, stalls);
            return m;
        }
        _ => {}
    }

    // Weighted layers (conv / dw-conv / FC).
    let k = layer.output.c.max(1);
    let input_passes = match layer.kind {
        // FC weights stream once; the (tiny) input vector stays on chip.
        LayerKind::FullyConnected => 1.0,
        _ => (k as f64 / cfg.k_per_pass as f64).ceil().max(1.0),
    };
    // GoSPA's implicit intersection skips fetching input activations whose
    // positions can never meet a nonzero weight. An input element is
    // useful only if any of the R*S*k_pass weight positions it touches is
    // nonzero.
    let gospa_factor = if cfg.gospa_filtering {
        let (r, s) = layer.kind.kernel();
        let positions = (r * s * k.min(cfg.k_per_pass)) as f64;
        (1.0 - (1.0 - layer.weight_density).powf(positions)).clamp(0.05, 1.0)
    } else {
        1.0
    };

    let input_read =
        bitmask_act_bytes(in_elems, layer.in_act_density) * input_passes * gospa_factor;
    let output_write = bitmask_act_bytes(out_elems, layer.out_act_density);
    let weight_read = bitmask_weight_bytes(layer);

    m.effectual_macs = layer.effectual_macs();

    let compute_cycles = m.effectual_macs / (cfg.total_macs() as f64 * cfg.compute_efficiency);
    let memory_cycles = (weight_read + (input_read + output_write)) / cfg.dram_bytes_per_cycle;
    let cycles = compute_cycles.max(memory_cycles).ceil().max(1.0);
    m.cycles = cycles as u64;
    m.mac_util
        .add(m.effectual_macs / cfg.total_macs() as f64, m.cycles);
    mem.transfer_traced(
        weight_read,
        input_read,
        output_write,
        m.cycles,
        t0,
        unit,
        sink,
    );
    mem.finish(&mut m);
    // 4 local bytes per MAC: a 16-bit partial read-modify-write in the
    // cluster buffer.
    m.charge_compute_activity(m.effectual_macs, 4.0);
    if sink.enabled() {
        // Cycles an ideal 100%-efficient array would need: the busy time.
        let ideal = m.effectual_macs / cfg.total_macs() as f64;
        let mut stalls = [0.0; 4];
        stalls[StallKind::MergeBound.index()] = compute_cycles - ideal;
        stalls[StallKind::DramThrottled.index()] = m.cycles as f64 - compute_cycles;
        emit_compute(sink, &m, ideal, stalls);
    }
    m
}

impl Accelerator for SpartenConfig {
    fn name(&self) -> &str {
        "sparten"
    }

    fn cache_key(&self) -> u64 {
        stable_key(Accelerator::name(self), self)
    }

    /// Simulates a whole network layer by layer under SparTen. The model
    /// is analytic, so the seed does not enter. Each layer is its own
    /// "group", so the group and layer breakdowns coincide.
    fn simulate(&self, net: &Network, _seed: u64) -> NetworkMetrics {
        let mut out = NetworkMetrics::default();
        for node in net.nodes() {
            let m = simulate_layer(&node.layer, self);
            out.push_group(node.layer.name.clone(), m, Vec::new());
        }
        out
    }

    /// Layers execute strictly one after another, so each layer's single
    /// compute event starts where the previous layer's cycles ended.
    fn simulate_traced(
        &self,
        net: &Network,
        _seed: u64,
        sink: &mut dyn TraceSink,
    ) -> NetworkMetrics {
        let mut out = NetworkMetrics::default();
        let mut t0 = 0u64;
        for node in net.nodes() {
            let m = simulate_layer_traced(&node.layer, self, t0, sink);
            t0 += m.cycles;
            out.push_group(node.layer.name.clone(), m, Vec::new());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isos_nn::layer::ActShape;
    use isos_nn::models::resnet50;

    #[test]
    fn table3_summary() {
        let cfg = SpartenConfig::default();
        assert_eq!(cfg.total_macs(), 4096);
        assert_eq!(cfg.total_sram_bytes(), 5 * 1024 * 1024);
    }

    #[test]
    fn wide_layers_reread_inputs() {
        let mk = |k: usize| {
            Layer::new(
                "c",
                LayerKind::Conv {
                    r: 3,
                    s: 3,
                    stride: 1,
                    pad: 1,
                },
                ActShape::new(14, 14, 256),
                k,
            )
            .with_weight_density(0.04)
            .with_act_density(0.5, 0.5)
        };
        let cfg = SpartenConfig::default();
        let narrow = simulate_layer(&mk(128), &cfg);
        let wide = simulate_layer(&mk(512), &cfg);
        // 4 passes vs 1: the input-read share of traffic scales.
        assert!(wide.act_traffic > 2.0 * narrow.act_traffic);
    }

    #[test]
    fn gospa_filtering_cuts_input_traffic_for_very_sparse_weights() {
        let mk = |gospa: bool| {
            let layer = Layer::new(
                "c",
                LayerKind::Conv {
                    r: 1,
                    s: 1,
                    stride: 1,
                    pad: 0,
                },
                ActShape::new(14, 14, 256),
                8,
            )
            .with_weight_density(0.01)
            .with_act_density(0.5, 0.5);
            let cfg = SpartenConfig {
                gospa_filtering: gospa,
                ..Default::default()
            };
            simulate_layer(&layer, &cfg)
        };
        let with = mk(true);
        let without = mk(false);
        assert!(with.act_traffic < without.act_traffic);
    }

    #[test]
    fn resnet_is_memory_bound() {
        let net = resnet50(0.96, 1);
        let r = SpartenConfig::default().simulate(&net, 0);
        // Paper Fig. 15: SparTen always saturates memory bandwidth.
        assert!(
            r.total.bw_util.ratio() > 0.8,
            "bw {}",
            r.total.bw_util.ratio()
        );
        // Paper Fig. 14c: activation traffic dominates weight traffic.
        assert!(r.total.act_traffic > r.total.weight_traffic);
    }

    #[test]
    fn per_layer_results_cover_network() {
        let net = resnet50(0.9, 1);
        let r = SpartenConfig::default().simulate(&net, 0);
        assert_eq!(r.groups.len(), net.len());
        // Layer-by-layer accelerator: layers and groups coincide.
        assert_eq!(r.layers.len(), net.len());
        let sum: u64 = r.groups.iter().map(|(_, m)| m.cycles).sum();
        assert_eq!(sum, r.total.cycles);
        assert_eq!(r.layer_sum().cycles, r.total.cycles);
    }
}
