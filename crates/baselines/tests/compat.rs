//! Compatibility test: the deprecated `simulate_*` free functions remain
//! callable at their defining paths and agree exactly with the
//! [`Accelerator`] trait they wrap. This is the only place that still
//! exercises them; everything else goes through the trait.

#![allow(deprecated)]

use isos_baselines::{FusedLayerConfig, IsoscelesSingleConfig, SpartenConfig};
use isos_nn::models::googlenet_inception3a;
use isosceles::accel::Accelerator;
use isosceles::IsoscelesConfig;

#[test]
fn deprecated_wrappers_match_the_trait() {
    let net = googlenet_inception3a(0.58, 1);
    let seed = 7;

    // SparTen and Fused-Layer are seed-independent models; the wrappers
    // pin seed 0.
    let sparten = SpartenConfig::default();
    assert_eq!(
        isos_baselines::sparten::simulate_sparten(&net, &sparten),
        sparten.simulate(&net, 0)
    );

    let fused = FusedLayerConfig::default();
    assert_eq!(
        isos_baselines::fused_layer::simulate_fused_layer(&net, &fused),
        fused.simulate(&net, 0)
    );

    let isos = IsoscelesConfig::default();
    assert_eq!(
        isos_baselines::single::simulate_isosceles_single(&net, &isos, seed),
        IsoscelesSingleConfig(isos).simulate(&net, seed)
    );
}
