//! Criterion benches that run every paper experiment end-to-end and print
//! the paper-vs-measured summary rows as they go, so `cargo bench`
//! regenerates the evaluation alongside wall-time measurements.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use isos_sim::stats::geometric_mean;
use isosceles::accel::Accelerator;
use isosceles_bench::engine::{EngineOptions, SuiteEngine};
use isosceles_bench::suite::SEED;

/// Serial, cache-less, quiet engine: criterion must measure simulation
/// time, not disk reads or thread-pool jitter.
fn measured_engine() -> SuiteEngine {
    SuiteEngine::new(EngineOptions {
        threads: 1,
        use_cache: false,
        quiet: true,
        ..EngineOptions::default()
    })
}

fn bench_fig14_suite(c: &mut Criterion) {
    // Print the headline summary once (through the shared engine, cached
    // and parallel as configured), then measure the sweep's wall time.
    let rows = SuiteEngine::from_env().run_suite(SEED).rows;
    let vs_sparten: Vec<f64> = rows.iter().map(|r| r.speedup_vs_sparten()).collect();
    let vs_fused: Vec<f64> = rows.iter().map(|r| r.speedup_vs_fused()).collect();
    let traffic: Vec<f64> = rows.iter().map(|r| r.sparten_traffic_ratio()).collect();
    println!(
        "[fig14] gmean speedup vs SparTen: {:.2}x (paper 4.3x)",
        geometric_mean(&vs_sparten)
    );
    println!(
        "[fig14] gmean speedup vs Fused-Layer: {:.2}x (paper 7.5x)",
        geometric_mean(&vs_fused)
    );
    println!(
        "[fig14] gmean traffic vs SparTen: {:.2}x (paper 4.7x)",
        geometric_mean(&traffic)
    );

    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    let suite = isos_nn::models::paper_suite(SEED);
    let engine = measured_engine();
    let isosceles = isosceles::IsoscelesConfig::default();
    let single = isos_baselines::IsoscelesSingleConfig::default();
    let sparten = isos_baselines::SpartenConfig::default();
    let fused = isos_baselines::FusedLayerConfig::default();
    let accels: [&dyn Accelerator; 4] = [&isosceles, &single, &sparten, &fused];
    // One representative per family keeps the measured set fast while the
    // printed summary above covers all 11.
    for id in ["R96", "V68", "M75", "G58"] {
        let w = vec![suite.iter().find(|w| w.id == id).unwrap().clone()];
        g.bench_function(format!("fig14_{id}_all_models"), |b| {
            b.iter(|| black_box(engine.run_matrix(black_box(&w), &accels, SEED)))
        });
    }
    g.finish();
}

fn bench_fig18_ablation(c: &mut Criterion) {
    let cfg = isosceles::IsoscelesConfig::default();
    let single_cfg = isos_baselines::IsoscelesSingleConfig(cfg);
    let net = isos_nn::models::resnet50(0.96, SEED);
    let single = single_cfg.simulate(&net, SEED);
    let full = cfg.simulate(&net, SEED);
    let sparten = isos_baselines::SpartenConfig::default().simulate(&net, SEED);
    println!(
        "[fig18] single vs SparTen {:.2}x (paper 1.9x); full vs single {:.2}x (paper 2.6x)",
        sparten.total.cycles as f64 / single.total.cycles as f64,
        single.total.cycles as f64 / full.total.cycles as f64
    );
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("fig18_r96_single_mode", |b| {
        b.iter(|| black_box(single_cfg.simulate(black_box(&net), SEED)))
    });
    g.finish();
}

fn bench_table04_mapping(c: &mut Criterion) {
    let cfg = isosceles::IsoscelesConfig::default();
    let net = isos_nn::models::resnet50(0.96, SEED);
    let mapping = isosceles::map_network(&net, &cfg, isosceles::ExecMode::Pipelined);
    println!(
        "[table04] R96: {} groups, deepest pipeline {} layers (paper: 13 pipelines of 3-6 convs)",
        mapping.groups.len(),
        mapping.max_group_len()
    );
    let mut g = c.benchmark_group("experiments");
    g.bench_function("table04_map_r96", |b| {
        b.iter(|| {
            black_box(isosceles::map_network(
                black_box(&net),
                &cfg,
                isosceles::ExecMode::Pipelined,
            ))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig14_suite,
    bench_fig18_ablation,
    bench_table04_mapping
);
criterion_main!(benches);
