//! Criterion benches that run every paper experiment end-to-end and print
//! the paper-vs-measured summary rows as they go, so `cargo bench`
//! regenerates the evaluation alongside wall-time measurements.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use isos_sim::stats::geometric_mean;
use isosceles_bench::suite::{run_suite, run_workload, SEED};

fn bench_fig14_suite(c: &mut Criterion) {
    // Print the headline summary once, then measure the sweep's wall time.
    let rows = run_suite(SEED);
    let vs_sparten: Vec<f64> = rows.iter().map(|r| r.speedup_vs_sparten()).collect();
    let vs_fused: Vec<f64> = rows.iter().map(|r| r.speedup_vs_fused()).collect();
    let traffic: Vec<f64> = rows.iter().map(|r| r.sparten_traffic_ratio()).collect();
    println!(
        "[fig14] gmean speedup vs SparTen: {:.2}x (paper 4.3x)",
        geometric_mean(&vs_sparten)
    );
    println!(
        "[fig14] gmean speedup vs Fused-Layer: {:.2}x (paper 7.5x)",
        geometric_mean(&vs_fused)
    );
    println!(
        "[fig14] gmean traffic vs SparTen: {:.2}x (paper 4.7x)",
        geometric_mean(&traffic)
    );

    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    let suite = isos_nn::models::paper_suite(SEED);
    // One representative per family keeps the measured set fast while the
    // printed summary above covers all 11.
    for id in ["R96", "V68", "M75", "G58"] {
        let w = suite.iter().find(|w| w.id == id).unwrap().clone();
        g.bench_function(format!("fig14_{id}_all_models"), |b| {
            b.iter(|| black_box(run_workload(black_box(&w), SEED)))
        });
    }
    g.finish();
}

fn bench_fig18_ablation(c: &mut Criterion) {
    let cfg = isosceles::IsoscelesConfig::default();
    let net = isos_nn::models::resnet50(0.96, SEED);
    let single = isos_baselines::simulate_isosceles_single(&net, &cfg, SEED);
    let full = isosceles::arch::simulate_network(&net, &cfg, isosceles::ExecMode::Pipelined, SEED);
    let sparten = isos_baselines::simulate_sparten(&net, &isos_baselines::SpartenConfig::default());
    println!(
        "[fig18] single vs SparTen {:.2}x (paper 1.9x); full vs single {:.2}x (paper 2.6x)",
        sparten.total.cycles as f64 / single.total.cycles as f64,
        single.total.cycles as f64 / full.total.cycles as f64
    );
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("fig18_r96_single_mode", |b| {
        b.iter(|| {
            black_box(isos_baselines::simulate_isosceles_single(
                black_box(&net),
                &cfg,
                SEED,
            ))
        })
    });
    g.finish();
}

fn bench_table04_mapping(c: &mut Criterion) {
    let cfg = isosceles::IsoscelesConfig::default();
    let net = isos_nn::models::resnet50(0.96, SEED);
    let mapping = isosceles::map_network(&net, &cfg, isosceles::ExecMode::Pipelined);
    println!(
        "[table04] R96: {} groups, deepest pipeline {} layers (paper: 13 pipelines of 3-6 convs)",
        mapping.groups.len(),
        mapping.max_group_len()
    );
    let mut g = c.benchmark_group("experiments");
    g.bench_function("table04_map_r96", |b| {
        b.iter(|| {
            black_box(isosceles::map_network(
                black_box(&net),
                &cfg,
                isosceles::ExecMode::Pipelined,
            ))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig14_suite,
    bench_fig18_ablation,
    bench_table04_mapping
);
criterion_main!(benches);
