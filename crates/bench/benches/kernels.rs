//! Criterion micro-benchmarks for the substrate kernels the simulator is
//! built on: CSF construction/traversal, the two merger designs, the
//! functional IS-OS layer executor, and the cycle-level group simulator.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use isos_tensor::bitmask::BitmaskVec;
use isos_tensor::merge::{HeapMerger, TournamentMerger};
use isos_tensor::{gen, Csf};
use isosceles::dataflow::{execute_conv, Pou};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A random bitmask vector of `len` slots at the given nonzero density.
fn random_bitmask(len: usize, density: f64, seed: u64) -> BitmaskVec {
    let mut rng = SmallRng::seed_from_u64(seed);
    let pairs: Vec<(usize, f32)> = (0..len)
        .filter(|_| rng.gen_bool(density))
        .map(|i| (i, 1.0 + (i % 7) as f32))
        .collect();
    BitmaskVec::from_pairs(len, &pairs)
}

/// Word-level intersection kernels across the density range the suite
/// workloads span: 1% (pruned nets) through 50% (dense-ish activations).
/// The work per call is one popcount pass over the packed words plus a
/// `trailing_zeros` walk of the common bits, so throughput should track
/// the intersection size, not the vector length.
fn bench_bitmask(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitmask");
    const LEN: usize = 4096;
    for &density in &[0.01, 0.1, 0.5] {
        let a = random_bitmask(LEN, density, 11);
        let b = random_bitmask(LEN, density, 12);
        g.bench_with_input(
            BenchmarkId::new("intersection_count", format!("d{density}")),
            &(&a, &b),
            |bench, (a, b)| bench.iter(|| black_box(a.intersection_count(black_box(b)))),
        );
        g.bench_with_input(
            BenchmarkId::new("dot", format!("d{density}")),
            &(&a, &b),
            |bench, (a, b)| bench.iter(|| black_box(a.dot(black_box(b)))),
        );
    }
    g.finish();
}

fn bench_csf(c: &mut Criterion) {
    let mut g = c.benchmark_group("csf");
    for &density in &[0.05, 0.5] {
        let dense = gen::random_dense(vec![64, 64, 16].into(), density, 42);
        g.bench_with_input(
            BenchmarkId::new("from_dense", format!("d{density}")),
            &dense,
            |b, d| b.iter(|| Csf::from_dense(black_box(d))),
        );
        let csf = Csf::from_dense(&dense);
        g.bench_with_input(
            BenchmarkId::new("concordant_iter", format!("d{density}")),
            &csf,
            |b, t| {
                b.iter(|| {
                    let mut sum = 0.0f32;
                    for (_, v) in t.iter() {
                        sum += v;
                    }
                    black_box(sum)
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("discordant_find", format!("d{density}")),
            &csf,
            |b, t| {
                b.iter(|| {
                    let mut hits = 0u32;
                    for h in 0..64u32 {
                        if let Some(f) = t.root().find(h) {
                            hits += f.len() as u32;
                        }
                    }
                    black_box(hits)
                })
            },
        );
    }
    g.finish();
}

fn bench_mergers(c: &mut Criterion) {
    let mut g = c.benchmark_group("mergers");
    for &radix in &[4usize, 32, 256] {
        let streams: Vec<Vec<(u32, f32)>> = (0..radix)
            .map(|i| {
                (0..256u32)
                    .map(|j| (j * radix as u32 + i as u32, 1.0f32))
                    .collect()
            })
            .collect();
        g.bench_with_input(BenchmarkId::new("tournament", radix), &streams, |b, s| {
            b.iter(|| {
                let m = TournamentMerger::new(
                    s.iter().map(|v| v.clone().into_iter()).collect::<Vec<_>>(),
                );
                black_box(m.count())
            })
        });
        g.bench_with_input(BenchmarkId::new("heap", radix), &streams, |b, s| {
            b.iter(|| {
                let m =
                    HeapMerger::new(s.iter().map(|v| v.clone().into_iter()).collect::<Vec<_>>());
                black_box(m.count())
            })
        });
    }
    g.finish();
}

/// The loser tree's batched leaf replay: when streams carry long sorted
/// runs (block-partitioned keys), the winner's refilled head beats the
/// cached challenger almost every pop, so the root-to-leaf replay is
/// skipped and a pop is O(1). Contrast with `mergers/tournament`, whose
/// round-robin interleaving defeats the fast path on every single pop.
fn bench_batched_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("mergers");
    for &radix in &[4usize, 32, 256] {
        // Stream i owns keys [i*256, (i+1)*256): maximal run length.
        let streams: Vec<Vec<(u32, f32)>> = (0..radix)
            .map(|i| (0..256u32).map(|j| (i as u32 * 256 + j, 1.0f32)).collect())
            .collect();
        g.bench_with_input(
            BenchmarkId::new("tournament_runs", radix),
            &streams,
            |b, s| {
                b.iter(|| {
                    let m = TournamentMerger::new(
                        s.iter().map(|v| v.clone().into_iter()).collect::<Vec<_>>(),
                    );
                    black_box(m.count())
                })
            },
        );
    }
    g.finish();
}

fn bench_isos_layer(c: &mut Criterion) {
    let mut g = c.benchmark_group("isos_dataflow");
    g.sample_size(20);
    for &(density, label) in &[(0.5, "moderate"), (0.1, "sparse")] {
        let input = gen::random_csf(vec![28, 28, 32].into(), density, 1);
        let filter = gen::random_csf(vec![32, 3, 32, 3].into(), density * 0.4, 2);
        g.bench_function(BenchmarkId::new("conv_28x28x32", label), |b| {
            b.iter(|| {
                black_box(execute_conv(
                    black_box(&input),
                    black_box(&filter),
                    1,
                    1,
                    &Pou::relu(32),
                ))
            })
        });
    }
    g.finish();
}

/// `execute_conv` on a real R81 (ResNet-50 at 81% density) layer: shapes
/// and densities come straight from the suite workload, so this tracks the
/// executor cost the full-suite runs actually pay.
fn bench_r81_layer(c: &mut Criterion) {
    let mut g = c.benchmark_group("isos_dataflow");
    g.sample_size(10);
    let net = isos_nn::models::resnet50(0.81, 42);
    // layer2.0.conv2: a 3x3 conv at 28x28x128, mid-network scale.
    let (id, layer) = net
        .nodes()
        .iter()
        .enumerate()
        .map(|(i, n)| (i, &n.layer))
        .find(|(_, l)| {
            matches!(l.kind, isos_nn::layer::LayerKind::Conv { r: 3, .. }) && l.input.h == 28
        })
        .expect("R81 has a 3x3 conv at 28x28");
    let (r, s) = layer.kind.kernel();
    let input = gen::random_csf(
        vec![layer.input.h, layer.input.w, layer.input.c].into(),
        layer.in_act_density,
        3,
    );
    let filter = gen::random_csf(
        vec![layer.input.c, r, layer.output.c, s].into(),
        layer.weight_density,
        4,
    );
    let stride = layer.kind.stride();
    let pad = layer.kind.pad();
    let pou = Pou::relu(layer.output.c);
    g.bench_function(BenchmarkId::new("conv_r81", format!("l{id}")), |b| {
        b.iter(|| {
            black_box(execute_conv(
                black_box(&input),
                black_box(&filter),
                stride,
                pad,
                &pou,
            ))
        })
    });
    g.finish();
}

fn bench_group_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("cycle_sim");
    g.sample_size(10);
    let net = isos_nn::models::resnet50(0.96, 42);
    let cfg = isosceles::IsoscelesConfig::default();
    g.bench_function("resnet50_r96_full_network", |b| {
        b.iter(|| {
            use isosceles::accel::Accelerator;
            black_box(cfg.simulate(black_box(&net), 42))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_csf,
    bench_bitmask,
    bench_mergers,
    bench_batched_replay,
    bench_isos_layer,
    bench_r81_layer,
    bench_group_sim
);
criterion_main!(benches);
