//! Benchmark harness for the ISOSceles reproduction.
//!
//! [`engine`] is the shared suite driver: it fans the paper's 11-CNN ×
//! 4-accelerator evaluation matrix (ISOSceles, ISOSceles-single,
//! SparTen(+GoSPA), Fused-Layer) out over a worker pool, deduplicates
//! concurrent identical jobs (single-flight), and memoizes results in
//! [`cache`] — a sharded, LRU-bounded on-disk store shared with the
//! `isos-serve` server; [`suite`] holds the result data model
//! (built on `isos_sim::metrics`, with per-group *and* per-layer
//! breakdowns); [`report`] derives the standard CSV/markdown tables,
//! including the per-layer traffic split; [`trace`] runs any suite
//! workload with event tracing attached and exports Perfetto/CSV/markdown
//! timelines; [`stream`] runs `isos-stream` batched streaming-inference
//! scenarios through the same engine cache and thread budget. The
//! binaries under `src/bin/` each regenerate one table or figure from
//! those results (see DESIGN.md's experiment index).

#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod report;
pub mod stream;
pub mod suite;
pub mod trace;
