//! Benchmark harness for the ISOSceles reproduction.
//!
//! [`suite`] runs the paper's 11-CNN evaluation suite on ISOSceles,
//! ISOSceles-single, SparTen(+GoSPA), and Fused-Layer; the binaries under
//! `src/bin/` each regenerate one table or figure from those results (see
//! DESIGN.md's experiment index).

#![warn(missing_docs)]

pub mod report;
pub mod suite;
