//! The introduction's motivating numbers (paper Sec. I):
//! - 90% sparse weights+activations: footprint falls ~10x but MACs ~100x;
//! - sparsifying ResNet-50 drops arithmetic intensity from 128 to 11
//!   operations per byte;
//! - at 90% weight sparsity an accelerator can hold ~10 layers' weights in
//!   the space one dense layer needs.

use isos_nn::models::resnet50;
use isosceles_bench::suite::SEED;

fn main() {
    println!("# Intro claim 1: 90%/90% sparsity -> ~10x footprint, ~100x MACs");
    let dense = resnet50(0.0, SEED);
    let sparse = resnet50(0.90, SEED);
    let mac_ratio = dense.total_dense_macs() / sparse.total_effectual_macs();
    println!(
        "ResNet-50 dense {:.2}G MACs vs R90 effectual {:.2}G: {:.0}x fewer",
        dense.total_dense_macs() / 1e9,
        sparse.total_effectual_macs() / 1e9,
        mac_ratio
    );
    println!("(paper Sec. VI-B: sparse CNNs have ~15x fewer MACs than dense)");

    println!();
    println!("# Intro claim 2: arithmetic intensity falls from 128 to 11 ops/byte");
    for (label, net, dense_exec) in [
        ("dense ResNet-50", &dense, true),
        ("sparse R90", &sparse, false),
    ] {
        let (macs, bytes): (f64, f64) = net
            .nodes()
            .iter()
            .map(|n| {
                let l = &n.layer;
                if dense_exec {
                    (
                        l.dense_macs(),
                        l.weight_dense_bytes() + l.in_act_dense_bytes() + l.out_act_dense_bytes(),
                    )
                } else {
                    (
                        l.effectual_macs(),
                        l.weight_csf_bytes() + l.in_act_csf_bytes() + l.out_act_csf_bytes(),
                    )
                }
            })
            .fold((0.0, 0.0), |(m, b), (dm, db)| (m + dm, b + db));
        println!(
            "{label:<18} {:>8.2}G ops / {:>7.1} MB compulsory = {:>6.1} ops/byte",
            2.0 * macs / 1e9, // MAC = multiply + add
            bytes / 1e6,
            2.0 * macs / bytes
        );
    }
    println!("(paper: 128 -> 11 ops/byte)");

    println!();
    println!("# Intro claim 3: at 90% weight sparsity, ~10 layers fit where 1 dense layer did");
    let l = sparse
        .nodes()
        .iter()
        .find(|n| n.layer.name == "layer3.1.conv2")
        .unwrap();
    let dense_bytes = l.layer.weight_dense_bytes();
    let sparse_bytes = l.layer.weight_csf_bytes();
    println!(
        "layer3.1.conv2: dense {:.0} KB vs compressed {:.0} KB -> {:.1} layers per dense-layer budget",
        dense_bytes / 1e3,
        sparse_bytes / 1e3,
        dense_bytes / sparse_bytes
    );
}
