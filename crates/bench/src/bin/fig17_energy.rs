//! Figure 17: energy per end-to-end inference, broken down by component.
//!
//! Paper: 0.2-1.9 mJ per image across ResNet-50 and MobileNetV1 variants;
//! DRAM dominates and dominates harder as networks get sparser; VGG-16
//! consumes 10.1 mJ (V68) and 3.7 mJ (V90).

use isos_sim::energy::{energy_of, EnergyParams};
use isosceles_bench::engine::SuiteEngine;
use isosceles_bench::suite::SEED;

fn main() {
    let rows = SuiteEngine::from_env().run_suite(SEED).rows;
    let params = EnergyParams::default();
    println!("# Figure 17: ISOSceles energy per inference (mJ)");
    println!(
        "{:<5} {:>8} {:>8} {:>8} {:>8} {:>8} {:>6}",
        "net", "DRAM", "SRAM", "compute", "other", "total", "DRAM%"
    );
    let mut resnet_mobilenet = Vec::new();
    for r in &rows {
        let e = energy_of(&r.isosceles.total.activity, &params);
        println!(
            "{:<5} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>6.0}",
            r.id,
            e.dram_mj,
            e.sram_mj,
            e.compute_mj,
            e.other_mj,
            e.total_mj(),
            e.dram_fraction() * 100.0
        );
        if r.id.as_str().starts_with('R') || r.id.as_str().starts_with('M') {
            resnet_mobilenet.push((r.id.as_str(), e));
        }
    }
    println!();
    let min = resnet_mobilenet
        .iter()
        .map(|(_, e)| e.total_mj())
        .fold(f64::MAX, f64::min);
    let max = resnet_mobilenet
        .iter()
        .map(|(_, e)| e.total_mj())
        .fold(0.0, f64::max);
    println!("ResNet/MobileNet range: {min:.2}-{max:.2} mJ (paper: 0.2-1.9 mJ)");
    let v68 = energy_of(&rows[6].isosceles.total.activity, &params);
    let v90 = energy_of(&rows[7].isosceles.total.activity, &params);
    println!(
        "VGG-16: V68 {:.1} mJ (paper: 10.1), V90 {:.1} mJ (paper: 3.7)",
        v68.total_mj(),
        v90.total_mj()
    );
    // DRAM share grows with sparsity on ResNet.
    let e81 = energy_of(&rows[0].isosceles.total.activity, &params);
    let e99 = energy_of(&rows[5].isosceles.total.activity, &params);
    println!(
        "DRAM share R81 {:.0}% -> R99 {:.0}% (paper: DRAM dominates, more so when sparser)",
        e81.dram_fraction() * 100.0,
        e99.dram_fraction() * 100.0
    );
    // Paper Sec. VI-B: "due to their much higher traffic, the other
    // accelerators will be even more severely dominated by DRAM energy".
    let r96 = &rows[3];
    let e_isos = energy_of(&r96.isosceles.total.activity, &params);
    let e_sp = energy_of(&r96.sparten.total.activity, &params);
    println!(
        "R96 DRAM energy: SparTen {:.2} mJ vs ISOSceles {:.2} mJ ({:.1}x more, from {:.1}x traffic)",
        e_sp.dram_mj,
        e_isos.dram_mj,
        e_sp.dram_mj / e_isos.dram_mj,
        r96.sparten_traffic_ratio()
    );
}
