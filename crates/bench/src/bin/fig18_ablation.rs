//! Figure 18: effect of pipelining — per-pipeline cycles on R96 for
//! SparTen, ISOSceles-single (IS-OS dataflow without pipelining), and full
//! ISOSceles.
//!
//! Paper: ISOSceles-single is 1.9x faster than SparTen (the dataflow's own
//! benefit); full ISOSceles is another 2.6x over single (pipelining), with
//! matching traffic reductions because R96 is memory-bound; unpipelined
//! layers account for ~16% of single-mode time.

use isos_baselines::{IsoscelesSingleConfig, SpartenConfig};
use isos_nn::models::resnet50;
use isosceles::accel::Accelerator;
use isosceles::mapping::{map_network, ExecMode};
use isosceles::IsoscelesConfig;
use isosceles_bench::suite::SEED;
use std::collections::HashMap;

fn main() {
    let cfg = IsoscelesConfig::default();
    let net = resnet50(0.96, SEED);
    let mapping = map_network(&net, &cfg, ExecMode::Pipelined);

    let isos = cfg.simulate(&net, SEED);
    let single = IsoscelesSingleConfig(cfg).simulate(&net, SEED);
    let sparten = SpartenConfig::default().simulate(&net, SEED);

    // Aggregate the layer-granular baselines over each ISOSceles pipeline's
    // extent ("their equivalent group of layers", Sec. VI-C).
    let mut layer_cycles_single: HashMap<&str, u64> = HashMap::new();
    for (name, m) in &single.groups {
        *layer_cycles_single.entry(name.as_str()).or_default() += m.cycles;
    }
    let mut layer_cycles_sparten: HashMap<&str, u64> = HashMap::new();
    for (name, m) in &sparten.groups {
        *layer_cycles_sparten.entry(name.as_str()).or_default() += m.cycles;
    }

    println!("# Figure 18: execution cycles (K) per layer group on R96");
    println!(
        "{:<24} {:>10} {:>12} {:>10}",
        "pipeline", "SparTen", "ISOS-single", "ISOSceles"
    );
    for (gi, group) in mapping.groups.iter().enumerate() {
        let member_names: Vec<&str> = group
            .layers
            .iter()
            .map(|&id| net.layer(id).name.as_str())
            .collect();
        let sp: u64 = member_names
            .iter()
            .filter_map(|n| layer_cycles_sparten.get(n))
            .sum();
        let sg: u64 = member_names
            .iter()
            .filter_map(|n| layer_cycles_single.get(n))
            .sum();
        let is = isos.groups[gi].1.cycles;
        println!(
            "{:<24} {:>10.1} {:>12.1} {:>10.1}",
            group.name,
            sp as f64 / 1e3,
            sg as f64 / 1e3,
            is as f64 / 1e3
        );
    }
    println!();
    let s_vs_sp = sparten.total.cycles as f64 / single.total.cycles as f64;
    let i_vs_s = single.total.cycles as f64 / isos.total.cycles as f64;
    let t_vs_s = single.total.total_traffic() / isos.total.total_traffic();
    println!(
        "ISOSceles-single vs SparTen: {s_vs_sp:.2}x cycles (paper: 1.9x), traffic {:.2}x (paper: matches speedup)",
        sparten.total.total_traffic() / single.total.total_traffic()
    );
    println!(
        "ISOSceles vs ISOSceles-single: {i_vs_s:.2}x cycles (paper: 2.6x), traffic {t_vs_s:.2}x (paper: 2.7x)"
    );
    // Unpipelined share of single-mode time.
    let unpipelined: u64 = mapping
        .groups
        .iter()
        .filter(|g| g.conv_count(&net) < 2)
        .flat_map(|g| g.layers.iter())
        .filter_map(|&id| layer_cycles_single.get(net.layer(id).name.as_str()))
        .sum();
    println!(
        "Unpipelined layers are {:.0}% of ISOSceles-single time (paper: 16%)",
        100.0 * unpipelined as f64 / single.total.cycles as f64
    );
}
