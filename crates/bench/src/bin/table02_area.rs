//! Table II: area breakdown of ISOSceles (45 nm).

use isos_sim::area::{area_of, sparten_area_mm2, AreaConfig, AreaParams};

fn main() {
    let params = AreaParams::default();
    let cfg = AreaConfig::isosceles_default();
    let a = area_of(&cfg, &params);
    println!("# Table II: area breakdown (paper values in parentheses)");
    println!("ISOSceles                          Per lane");
    println!(
        "  64 lanes        {:>6.1} mm2 (18.4)   64 MAC units {:>6.3} mm2 (0.069)",
        a.lanes_mm2(),
        a.macs_mm2 / cfg.lanes as f64
    );
    println!(
        "  Filter buffer   {:>6.1} mm2 (7.5)    Mergers      {:>6.3} mm2 (0.060)",
        a.filter_buffer_mm2,
        a.mergers_mm2 / cfg.lanes as f64
    );
    println!(
        "                                      Buffers      {:>6.3} mm2 (0.121)",
        a.lane_buffers_mm2 / cfg.lanes as f64
    );
    println!(
        "                                      Fetcher      {:>6.3} mm2 (0.010)",
        a.fetchers_mm2 / cfg.lanes as f64
    );
    println!(
        "                                      Crossbar     {:>6.3} mm2 (0.021)",
        a.crossbar_mm2 / cfg.lanes as f64
    );
    println!(
        "                                      Others       {:>6.3} mm2 (0.007)",
        a.others_mm2 / cfg.lanes as f64
    );
    println!(
        "  Total           {:>6.1} mm2 (26.0)   Total        {:>6.3} mm2 (0.288)",
        a.total_mm2(),
        a.per_lane_mm2(cfg.lanes)
    );
    println!();
    println!(
        "Scaled to 16 nm: {:.1} mm2 (paper: 4.7 mm2)",
        a.total_mm2() * params.scale_to_16nm
    );
    println!(
        "SparTen-class comparator at matched MACs + 5 MB SRAM: {:.1} mm2 (\"significantly less area\")",
        sparten_area_mm2(&params)
    );
}
