//! Prints the raw pipeline mapping of R96 (see table04_pipelines for the
//! paper-formatted view).
fn main() {
    let net = isos_nn::models::resnet50(0.96, 1);
    let cfg = isosceles::IsoscelesConfig::default();
    let m = isosceles::map_network(&net, &cfg, isosceles::ExecMode::Pipelined);
    for g in &m.groups {
        println!(
            "{:<24} layers={:2} convs={} p_tiles={} k_tiles={}",
            g.name,
            g.layers.len(),
            g.conv_count(&net),
            g.p_tiles,
            g.k_tiles
        );
    }
}
